# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench vet fmt experiments figures clean

all: build test

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -bench=. -benchmem .

vet:
	go vet ./...

fmt:
	gofmt -w .

# Regenerate every table and figure of the paper (plus extensions).
experiments:
	go run ./cmd/obmsim -exp all

# Write the figure SVGs into figs/.
figures:
	go run ./cmd/obmsim -exp fig3,fig4,fig8,fig9,fig10,fig12,loadsweep -svgdir figs

clean:
	rm -rf figs results.csv
