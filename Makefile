# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench bench-json bench-diff check vet fmt experiments figures clean

all: build test

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -bench=. -benchmem .

# Record the simulator and mapper benchmarks (best of $(BENCH_COUNT))
# as BENCH_noc.json and BENCH_mapping.json.
BENCH_COUNT ?= 3
NOC_BENCH = 'NoC|Fig8|Fig9|Worklist'
NOC_BENCH_PKGS = . ./internal/noc
MAPPING_BENCH = '^BenchmarkSSSMap$$|^BenchmarkAnnealingMap$$|^BenchmarkMonteCarlo$$|^BenchmarkEvaluateBatch$$|^BenchmarkDynamicStream$$|^BenchmarkNSGAII$$'
bench-json:
	go test -run '^$$' -bench $(NOC_BENCH) -benchmem -count=$(BENCH_COUNT) $(NOC_BENCH_PKGS) | go run ./cmd/benchjson -out BENCH_noc.json
	go test -run '^$$' -bench $(MAPPING_BENCH) -benchmem -count=$(BENCH_COUNT) . | go run ./cmd/benchjson -out BENCH_mapping.json

# Diff a fresh benchmark run against the committed BENCH_*.json records,
# printing per-benchmark deltas. Informational only: machine noise moves
# ns/op by a few percent, so the target never fails — read the deltas
# (or the CI artifact) instead of gating on them.
bench-diff:
	go test -run '^$$' -bench $(NOC_BENCH) -benchmem -count=$(BENCH_COUNT) $(NOC_BENCH_PKGS) | go run ./cmd/benchjson -baseline BENCH_noc.json
	go test -run '^$$' -bench $(MAPPING_BENCH) -benchmem -count=$(BENCH_COUNT) . | go run ./cmd/benchjson -baseline BENCH_mapping.json

# Everything CI gates on: vet, staticcheck (when installed), build, the
# full test suite, and the race detector over the packages that fan
# work out across goroutines or share mutable state (the obs registry,
# the artifact store, the scenario cache, the job service, and both
# frontends are exercised by dedicated hammer/lifecycle tests).
check: vet staticcheck build test
	go test -race ./internal/core/... ./internal/engine/... ./internal/experiments/... ./internal/mapping/... ./internal/noc/... ./internal/sim/... ./internal/obs/... ./internal/scenario/... ./internal/sched/... ./internal/artifact/... ./internal/service/... ./cmd/obmsim/... ./cmd/obmsimd/...

# staticcheck is optional locally (CI installs it); skip with a note
# rather than failing on machines that don't have it.
.PHONY: staticcheck
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vet:
	go vet ./...

fmt:
	gofmt -w .

# Regenerate every table and figure of the paper (plus extensions).
experiments:
	go run ./cmd/obmsim -exp all

# Write the figure SVGs into figs/.
figures:
	go run ./cmd/obmsim -exp fig3,fig4,fig8,fig9,fig10,fig12,loadsweep -svgdir figs

clean:
	rm -rf figs results.csv
