// Package obm is a from-scratch Go reproduction of "Balancing On-Chip
// Network Latency in Multi-Application Mapping for Chip-Multiprocessors"
// (Zhu, Chen, Yue, Pinkston, Pedram — IPDPS 2014).
//
// The paper formulates the On-chip latency Balanced Mapping (OBM)
// problem — assign the threads of multiple concurrently running
// applications to the tiles of a mesh CMP so that the maximum
// per-application average packet latency is minimized — proves it
// NP-complete, and proposes the O(N^3) sort-select-swap heuristic.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory): the analytic mesh latency model, the Hungarian assignment
// solver, the OBM/SAM core, all four mapping algorithms from the
// evaluation, a flit-level wormhole NoC simulator, a cache-hierarchy
// and memory-controller model, a DSENT-style power model, the
// synthetic PARSEC-like workload generator, and an experiment harness
// that regenerates every table and figure of the paper (cmd/obmsim).
//
// Entry points:
//
//	cmd/obmsim    regenerate any table/figure: obmsim -exp table1
//	cmd/mapviz    map a configuration and inspect placements
//	cmd/tracegen  generate and inspect workload traces
//	examples/     runnable walkthroughs of the public surfaces
//	bench_test.go benchmark per table/figure plus ablations
package obm
