// NP-completeness, executed: Section III.C of the paper proves the OBM
// problem NP-complete by reducing set-partition to it. This example
// runs that reduction — it builds the DOBM instance for a set, solves
// it exactly, and reads the partition back off the optimal mapping.
//
// Run with: go run ./examples/npcproof
package main

import (
	"context"
	"fmt"
	"log"

	"obm/internal/npc"
)

func main() {
	sets := [][]float64{
		{3, 1, 1, 2, 2, 1},  // balanced: {3,1,1} {2,2,1}
		{4, 5, 6, 7, 8, 10}, // sum 40: {4,6,10} {5,7,8}
		{9, 1, 1, 1},        // 9 dominates: no partition
		{2, 2, 2, 3},        // odd total: no partition
	}
	for _, set := range sets {
		inst, err := npc.Reduce(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("set %v  (gamma = mean = %.3f)\n", set, inst.Gamma)
		yes, a1, a2, err := npc.Decide(context.Background(), set)
		if err != nil {
			log.Fatal(err)
		}
		if !yes {
			fmt.Println("  -> no equal-size equal-sum partition exists")
			fmt.Println("     (no mapping achieves APL <= gamma for both applications)")
			continue
		}
		if err := npc.Verify(set, a1, a2); err != nil {
			log.Fatal(err)
		}
		sum := func(idx []int) (s float64) {
			for _, i := range idx {
				s += set[i]
			}
			return
		}
		fmt.Printf("  -> partition found: indices %v (sum %.1f) vs %v (sum %.1f)\n",
			a1, sum(a1), a2, sum(a2))
		fmt.Println("     (the optimal mapping gives both applications APL exactly gamma)")
	}
	fmt.Println("\nEvery set-partition instance becomes an OBM instance with")
	fmt.Println("TC(k) = s_k and two unit-rate applications; solving OBM answers")
	fmt.Println("set-partition, so OBM is at least as hard (Theorem, Section III.C).")
}
