// Dynamic remapping: Section IV.B of the paper argues that the O(N^3)
// runtime of sort-select-swap makes it usable when applications come
// and go at runtime — collect (c_j, m_j) statistics for an interval,
// re-solve, remap. This example simulates such a lifecycle: workload
// epochs where applications are replaced, with per-epoch rate
// measurement from a generated trace, comparing "remap every epoch with
// SSS" against "keep the initial Global mapping".
//
// Run with: go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/trace"
	"obm/internal/workload"
)

func main() {
	lm, err := model.New(mesh.MustNew(8, 8), model.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Epochs: every epoch one application finishes and a new one with a
	// different intensity profile takes its four slots.
	epochs := []string{"C1", "C3", "C5", "C7", "C8"}

	var static core.Mapping // Global mapping frozen at epoch 0
	fmt.Println("epoch  workload  static-Global(max/dev)   SSS-remap(max/dev)   remap-runtime")
	for e, cfg := range epochs {
		w := workload.MustConfig(cfg)

		// Measure the epoch's rates the way a runtime system would: from
		// an observed event trace rather than oracle knowledge.
		h, events, err := trace.Generate(w, 100_000, 2000, uint64(e+1))
		if err != nil {
			log.Fatal(err)
		}
		cRates, mRates, err := trace.Rates(h, events, 2000)
		if err != nil {
			log.Fatal(err)
		}
		measured := &workload.Workload{Name: cfg + "-measured"}
		b := w.Boundaries()
		for i := range w.Apps {
			app := workload.Application{Name: w.Apps[i].Name}
			for j := b[i]; j < b[i+1]; j++ {
				app.Threads = append(app.Threads, workload.Thread{
					CacheRate: cRates[j], MemRate: mRates[j],
				})
			}
			measured.Apps = append(measured.Apps, app)
		}

		p, err := core.NewProblem(lm, measured)
		if err != nil {
			log.Fatal(err)
		}
		if static == nil {
			static, err = mapping.MapAndCheck(context.Background(), mapping.Global{}, p)
			if err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		remap, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
		if err != nil {
			log.Fatal(err)
		}
		remapTime := time.Since(start)
		evStatic := p.Evaluate(static)
		evRemap := p.Evaluate(remap)
		fmt.Printf("%4d   %-8s %8.2f / %-8.4f %12.2f / %-8.4f %12v\n",
			e, cfg, evStatic.MaxAPL, evStatic.DevAPL, evRemap.MaxAPL, evRemap.DevAPL,
			remapTime.Round(100*time.Microsecond))
	}
	fmt.Println("\nA mapping frozen for the first workload drifts out of balance as")
	fmt.Println("applications change; re-running sort-select-swap each epoch (a few")
	fmt.Println("milliseconds for 64 tiles) keeps every epoch balanced.")
}
