// Quickstart: define a multi-application workload, build the OBM
// problem for an 8x8 mesh CMP, and compare the paper's sort-select-swap
// mapper against the traditional overall-latency-optimal mapper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func main() {
	// A 64-tile chip with the paper's latency parameters (3-stage
	// routers, 1-cycle links).
	lm, err := model.New(mesh.MustNew(8, 8), model.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Four 16-thread applications with very different network loads:
	// rates are shared-L2 requests (c_j) and memory requests (m_j) per
	// microsecond per thread.
	w := &workload.Workload{Name: "quickstart"}
	specs := []struct {
		name       string
		cache, mem float64
	}{
		{"webserver", 2.0, 0.2},
		{"analytics", 6.0, 1.1},
		{"encoder", 11.0, 1.6},
		{"keyvalue", 25.0, 3.0},
	}
	for _, s := range specs {
		app := workload.Application{Name: s.name}
		for t := 0; t < 16; t++ {
			// Mild per-thread variation around the application's profile.
			f := 0.75 + 0.5*float64(t)/15
			app.Threads = append(app.Threads, workload.Thread{
				CacheRate: s.cache * f,
				MemRate:   s.mem * f,
			})
		}
		w.Apps = append(w.Apps, app)
	}

	p, err := core.NewProblem(lm, w)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}} {
		mp, err := mapping.MapAndCheck(context.Background(), m, p)
		if err != nil {
			log.Fatal(err)
		}
		ev := p.Evaluate(mp)
		fmt.Printf("%s:\n", m.Name())
		for i, apl := range ev.APLs {
			fmt.Printf("  %-10s APL %6.2f cycles\n", w.Apps[i].Name, apl)
		}
		fmt.Printf("  max-APL %.2f  dev-APL %.4f  g-APL %.2f\n\n",
			ev.MaxAPL, ev.DevAPL, ev.GlobalAPL)
	}
	fmt.Println("sort-select-swap equalizes the per-application latencies at a")
	fmt.Println("small cost in overall latency — the paper's Figure 8 in miniature.")
}
