// NoC simulation: run the flit-level wormhole network under two
// mappings of the same workload and compare *measured* per-application
// latencies, queuing, and DSENT-style power — the substrate behind the
// paper's Figure 11 and the validation of its analytic model.
//
// Run with: go run ./examples/nocsim
package main

import (
	"context"
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/power"
	"obm/internal/sim"
	"obm/internal/workload"
)

func main() {
	lm, err := model.New(mesh.MustNew(8, 8), model.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblem(lm, workload.MustConfig("C1"))
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultRateDrivenConfig()
	cfg.MeasureCycles = 100_000
	pparams := power.Default45nm()
	msh := lm.Mesh()

	for _, m := range []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}} {
		mp, err := mapping.MapAndCheck(context.Background(), m, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RateDriven(context.Background(), p, mp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pred := p.Evaluate(mp)
		fmt.Printf("%s (simulated %d cycles, %d packets):\n",
			m.Name(), res.Cycles, res.Net.DeliveredPackets)
		for a := 0; a < p.NumApps(); a++ {
			fmt.Printf("  app %d: measured APL %6.2f  (model %6.2f)\n",
				a+1, res.AppAPL[a], pred.APLs[a])
		}
		rep, err := power.Estimate(pparams, res.Net, msh.NumTiles(),
			power.MeshLinkCount(msh.Rows(), msh.Cols()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  max-APL %.2f  dev-APL %.4f  queuing %.3f cyc/hop\n",
			res.MaxAPL, res.DevAPL, res.Net.AvgQueuingPerHop())
		fmt.Printf("  NoC power: %.3f W dynamic + %.3f W leakage\n",
			rep.DynamicW, rep.StaticW)
		fmt.Print("  hottest links:")
		for _, l := range res.Net.HottestLinks(3) {
			fmt.Printf("  tile %d -> %v (%.3f flits/cyc)", l.Tile, l.Port, float64(l.Flits)/float64(res.Net.Cycles))
		}
		fmt.Print("\n\n")
	}
	fmt.Println("The measured latencies track the analytic model within a couple of")
	fmt.Println("cycles, and the balanced mapping costs almost no extra power.")
}
