// Coherence: drive the full closed-loop memory hierarchy — private L1s,
// address-interleaved shared L2 banks with a sharer directory, corner
// memory controllers — with synthetic address streams, and watch all
// five CMP packet types (requests, replies, forwards, memory traffic)
// cross the network.
//
// Run with: go run ./examples/coherence
package main

import (
	"context"
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/noc"
	"obm/internal/sim"
	"obm/internal/workload"
)

func main() {
	lm, err := model.New(mesh.MustNew(8, 8), model.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProblem(lm, workload.MustConfig("C5"))
	if err != nil {
		log.Fatal(err)
	}
	mp, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultCacheDrivenConfig()
	cfg.Cycles = 80_000
	res, err := sim.CacheDriven(context.Background(), p, mp, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("closed-loop simulation of C5 under SSS (%d cycles):\n\n", res.Cycles)
	fmt.Printf("  thread accesses:   %10d\n", res.Cache.Accesses)
	fmt.Printf("  L1 misses:         %10d  (%.1f%% miss rate)\n",
		res.Cache.L1Misses, 100*res.Cache.L1MissRate())
	fmt.Printf("  L2 hits / misses:  %10d / %d\n", res.Cache.L2Hits, res.Cache.L2Misses)
	fmt.Printf("  coherence forwards:%10d\n", res.Cache.Forwards)
	fmt.Printf("  memory fetches:    %10d\n\n", res.Cache.MemRequests)

	names := []noc.PacketType{noc.CacheRequest, noc.CacheReply, noc.CacheForward, noc.MemRequest, noc.MemReply}
	fmt.Println("  network traffic by packet type:")
	for _, pt := range names {
		ts := res.Net.ByType[pt]
		if ts.Packets == 0 {
			continue
		}
		fmt.Printf("    %-14s %8d packets, avg latency %6.2f cycles, avg hops %.2f\n",
			pt, ts.Packets, ts.AvgLatency(), ts.AvgHops())
	}
	fmt.Printf("\n  per-application measured APL:")
	for a := 0; a < p.NumApps(); a++ {
		fmt.Printf(" %.2f", res.AppAPL[a])
	}
	fmt.Printf("\n  max-APL %.2f, dev-APL %.4f\n", res.MaxAPL, res.DevAPL)
}
