// Scaling: the paper evaluates an 8x8 chip; the library is generic in
// mesh size and application count. This example maps eight synthetic
// applications onto a 16x16 (256-tile) CMP and onto a 12x12, comparing
// sort-select-swap against Global and showing how runtime scales with
// the O(N^3) bound.
//
// Run with: go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func main() {
	for _, n := range []int{8, 12, 16} {
		lm, err := model.New(mesh.MustNew(n, n), model.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		tiles := lm.NumTiles()
		apps := 8
		w, err := workload.Generate(workload.GenSpec{
			Name:       fmt.Sprintf("scale-%dx%d", n, n),
			NumApps:    apps,
			ThreadsPer: tiles / apps,
			Cache:      workload.Stats{Mean: 8, Std: 10},
			Mem:        workload.Stats{Mean: 1.2, Std: 3},
			Seed:       uint64(n),
		})
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.NewProblem(lm, w)
		if err != nil {
			log.Fatal(err)
		}

		gm, err := mapping.MapAndCheck(context.Background(), mapping.Global{}, p)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		sm, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
		if err != nil {
			log.Fatal(err)
		}
		sssTime := time.Since(start)

		evG, evS := p.Evaluate(gm), p.Evaluate(sm)
		fmt.Printf("%2dx%-2d (%3d tiles, %d apps): Global max/dev %6.2f/%-7.4f  SSS max/dev %6.2f/%-7.4f  SSS runtime %v\n",
			n, n, tiles, apps, evG.MaxAPL, evG.DevAPL, evS.MaxAPL, evS.DevAPL,
			sssTime.Round(time.Millisecond))
	}
	fmt.Println("\nBalance holds as the chip grows, and runtime stays within the")
	fmt.Println("O(N^3) envelope — practical for runtime remapping even at 256 tiles.")
}
