package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspectBinary(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c1.trace")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "C1", "-cycles", "20000", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("generate exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "64 threads") {
		t.Errorf("unexpected output: %s", stdout.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := run([]string{"-inspect", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("inspect exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "recovered rates") {
		t.Errorf("inspect output: %s", stdout.String())
	}
}

func TestGenerateJSONAndInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c2.jsonl")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "C2", "-cycles", "5000", "-format", "json", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-inspect", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("inspect exit %d: %s", code, stderr.String())
	}
}

func TestBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "C99"}, &stdout, &stderr); code == 0 {
		t.Error("unknown config accepted")
	}
	if code := run([]string{"-config", "C1", "-format", "xml", "-out", filepath.Join(t.TempDir(), "x")}, &stdout, &stderr); code == 0 {
		t.Error("unknown format accepted")
	}
	if code := run([]string{"-inspect", "/nonexistent/file"}, &stdout, &stderr); code == 0 {
		t.Error("missing file accepted")
	}
	if code := run([]string{"-bogusflag"}, &stdout, &stderr); code == 0 {
		t.Error("bad flag accepted")
	}
}
