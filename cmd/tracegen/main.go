// Command tracegen generates, inspects and converts workload traces.
//
// Usage:
//
//	tracegen -config C1 -cycles 100000 -out c1.trace          # binary
//	tracegen -config C3 -cycles 50000 -format json -out c3.jsonl
//	tracegen -inspect c1.trace                                 # summary + recovered rates
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"obm/internal/stats"
	"obm/internal/trace"
	"obm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main so the tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		config  = fs.String("config", "C1", "paper configuration C1..C8")
		cycles  = fs.Uint64("cycles", 100_000, "trace length in cycles")
		seed    = fs.Uint64("seed", 1, "random seed")
		format  = fs.String("format", "binary", "output format: binary or json")
		out     = fs.String("out", "", "output file (default <config>.trace)")
		inspect = fs.String("inspect", "", "inspect an existing trace instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *inspect != "" {
		if err := inspectTrace(stdout, *inspect); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		return 0
	}

	w, err := workload.Config(*config)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	h, events, err := trace.Generate(w, *cycles, 2000, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	path := *out
	if path == "" {
		path = *config + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, h, events)
	case "json":
		err = trace.WriteJSON(f, h, events)
	default:
		err = fmt.Errorf("unknown format %q (want binary or json)", *format)
	}
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d events over %d cycles for %d threads (%s)\n",
		path, len(events), h.Cycles, h.Threads, *format)
	return 0
}

func inspectTrace(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, events, err := trace.ReadBinary(f)
	if err != nil {
		// Retry as JSON.
		if _, serr := f.Seek(0, 0); serr != nil {
			return serr
		}
		h, events, err = trace.ReadJSON(f)
		if err != nil {
			return fmt.Errorf("not a binary or JSON trace: %w", err)
		}
	}
	cache, mem, err := trace.Rates(h, events, 2000)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace %q: %d threads, %d cycles, %d events\n", h.Name, h.Threads, h.Cycles, len(events))
	fmt.Fprintf(stdout, "recovered rates (requests per 2000 cycles):\n")
	fmt.Fprintf(stdout, "  cache: mean %.3f std %.3f\n", stats.Mean(cache), stats.StdDev(cache))
	fmt.Fprintf(stdout, "  mem:   mean %.3f std %.3f\n", stats.Mean(mem), stats.StdDev(mem))
	return nil
}
