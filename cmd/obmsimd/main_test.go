package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"obm/internal/scenario"
	"obm/internal/service"
)

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on http://(\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL
// and a stop function that cancels it and returns the exit code.
func startDaemon(t *testing.T, args ...string) (string, *syncBuffer, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr := &syncBuffer{}
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, stderr) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			stop := func() int {
				cancel()
				select {
				case code := <-exit:
					return code
				case <-time.After(10 * time.Second):
					t.Fatal("daemon did not exit after cancel")
					return -1
				}
			}
			return "http://" + m[1], stderr, stop
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// submitAndWait posts req and polls until the job is terminal,
// returning its final status.
func submitAndWait(t *testing.T, base string, req service.Request) service.Status {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st service.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestDaemonEndToEnd is the daemon's acceptance test: serve, submit a
// real experiment over HTTP, poll it to completion, fetch an envelope
// byte-identical to the in-process service.Execute one, re-submit warm
// (0 computes, same bytes), check the ancillary endpoints, and shut
// down cleanly on context cancellation.
func TestDaemonEndToEnd(t *testing.T) {
	scenario.ResetShared()
	t.Cleanup(func() { scenario.ResetShared() })
	base, stderr, stop := startDaemon(t)

	req := service.Request{Experiments: []string{"table1"}, Quick: true, Configs: []string{"C1"}}
	cold := submitAndWait(t, base, req)
	if cold.State != service.StateDone {
		t.Fatalf("cold job finished %s: %s", cold.State, cold.Error)
	}
	if cold.Artifacts == nil || cold.Artifacts.Computed == 0 {
		t.Fatalf("cold job artifact stats = %+v, want computes", cold.Artifacts)
	}
	if cold.Events == 0 {
		t.Error("cold job journalled no progress events")
	}
	code, daemonEnv := getBody(t, base+"/v1/jobs/"+cold.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, daemonEnv)
	}

	// The same request through the in-process path must produce the
	// same bytes — the one-envelope-assembly guarantee.
	out, err := service.Execute(context.Background(), req, service.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(daemonEnv, out.Envelope) {
		t.Errorf("daemon envelope differs from service.Execute's:\ndaemon:  %.300s\ndirect:  %.300s", daemonEnv, out.Envelope)
	}

	// Warm re-submit: every artifact served from the shared store.
	warm := submitAndWait(t, base, req)
	if warm.State != service.StateDone {
		t.Fatalf("warm job finished %s: %s", warm.State, warm.Error)
	}
	if warm.Artifacts == nil || warm.Artifacts.Computed != 0 || warm.Artifacts.MemHits == 0 {
		t.Errorf("warm job artifact stats = %+v, want 0 computed and memory hits", warm.Artifacts)
	}
	_, warmEnv := getBody(t, base+"/v1/jobs/"+warm.ID+"/result")
	if !bytes.Equal(daemonEnv, warmEnv) {
		t.Error("warm envelope differs from cold")
	}

	// Ancillary endpoints: the experiment listing and the Prometheus
	// exposition with the service's job metrics.
	code, listing := getBody(t, base+"/v1/experiments")
	if code != http.StatusOK || !bytes.Contains(listing, []byte(`"table1"`)) {
		t.Errorf("experiments listing: %d %.200s", code, listing)
	}
	code, metrics := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{"# TYPE service_jobs_completed counter", "artifact_store_computed"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("no clean-drain note on stderr: %s", stderr.String())
	}
}

// TestDaemonRejectsCacheOverride: per-job cache configuration is a 400
// — the disk tier belongs to the process.
func TestDaemonRejectsCacheOverride(t *testing.T) {
	base, _, stop := startDaemon(t)
	defer stop()
	body, _ := json.Marshal(service.Request{Experiments: []string{"fig5"}, CacheDir: "/tmp/elsewhere"})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cache override accepted: %d", resp.StatusCode)
	}
}

// TestDaemonBadFlags: unusable configuration is a synchronous usage
// error, exit 2, before the daemon ever serves.
func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad -addr: exit %d, want 2 (%s)", code, stderr.String())
	}
	if code := run(context.Background(), []string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestDaemonDrainBudget: a daemon whose drain budget expires while a
// job is still running exits non-zero and reports the incomplete
// drain. A deliberately slow full-budget experiment keeps the worker
// busy past the tiny -drain window.
func TestDaemonDrainBudget(t *testing.T) {
	base, stderr, stop := startDaemon(t, "-drain", "50ms")
	body, _ := json.Marshal(service.Request{Experiments: []string{"fig11"}})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st service.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	// Wait for the job to actually start so the drain has something
	// in-flight to time out on.
	deadline := time.Now().Add(5 * time.Second)
	for st.State == service.StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		_, data := getBody(t, base+"/v1/jobs/"+st.ID)
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if code := stop(); code != 1 {
		t.Errorf("exit %d, want 1 when the drain budget expires: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drain incomplete") {
		t.Errorf("no incomplete-drain note: %s", stderr.String())
	}
}
