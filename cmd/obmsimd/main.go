// Command obmsimd serves the experiment runner as a long-running
// HTTP/JSON daemon — the asynchronous frontend to the same
// internal/service execution path cmd/obmsim drives synchronously, so
// a daemon job's result envelope is byte-identical to the CLI's for
// the same request.
//
// Usage:
//
//	obmsimd -addr 127.0.0.1:8093 -cachedir /var/cache/obm -concurrency 1
//
// API (see service.Handler for the full contract):
//
//	POST   /v1/jobs              submit a run request, returns 202 + job status
//	GET    /v1/jobs/{id}         job status + progress events (?cursor=N)
//	GET    /v1/jobs/{id}/result  the obmsim.run/v1 envelope
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/experiments       the experiment registry listing
//	GET    /metrics              Prometheus text exposition
//
// The artifact disk tier is attached once at startup (-cachedir);
// per-job cache overrides are rejected, so every job in the process
// shares one content-addressed store and warm re-submissions compute
// nothing.
//
// Shutdown: SIGINT or SIGTERM starts a graceful drain — the listener
// closes, queued jobs are rejected, in-flight jobs run to completion
// (bounded by -drain), and the process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obm/internal/obs"
	"obm/internal/scenario"
	"obm/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon until ctx is cancelled (the signal path) or
// the listener fails; factored out of main so the tests can drive it
// with their own context and buffers.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obmsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8093", "listen address (host:port; port 0 picks a free port, printed to stderr)")
		cacheDir    = fs.String("cachedir", "", "directory for the persistent mapper-artifact cache shared by every job (empty: in-memory only)")
		cacheSize   = fs.Int64("cachesize", 0, "byte budget for -cachedir (least-recently-used artifacts are evicted; 0: the 256 MiB default, < 0: unbounded)")
		queueSize   = fs.Int("queue", service.DefaultQueue, "admission queue bound: jobs accepted but not yet running (submits beyond it get HTTP 429)")
		concurrency = fs.Int("concurrency", 1, "jobs running at once; 1 keeps per-job artifact stats exact")
		retention   = fs.Duration("retention", service.DefaultRetention, "how long finished jobs stay fetchable; < 0 retains forever")
		drainWait   = fs.Duration("drain", time.Minute, "shutdown budget for in-flight jobs; jobs still running when it expires are cancelled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cacheDir != "" {
		size := *cacheSize
		if size == 0 {
			size = service.DefaultCacheSize
		}
		if _, err := scenario.ConfigureShared(*cacheDir, size); err != nil {
			fmt.Fprintln(stderr, "obmsimd:", err)
			return 2
		}
	}

	// Listening before serving reports bad addresses synchronously and
	// lets :0 pick a free port, printed so clients know where to point.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "obmsimd:", err)
		return 2
	}
	fmt.Fprintf(stderr, "obmsimd: listening on http://%s\n", ln.Addr())

	m := service.NewManager(service.Config{
		Queue:       *queueSize,
		Concurrency: *concurrency,
		Retention:   *retention,
	})
	srv := &http.Server{Handler: service.Handler(m, obs.Default())}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died underneath us; nothing to drain gracefully.
		fmt.Fprintln(stderr, "obmsimd:", err)
		m.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight HTTP exchanges and
	// jobs finish within the drain budget, then report how it went.
	fmt.Fprintln(stderr, "obmsimd: shutdown requested; draining in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "obmsimd: http shutdown:", err)
	}
	if err := m.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "obmsimd: drain incomplete after %v: %v\n", *drainWait, err)
		return 1
	}
	fmt.Fprintln(stderr, "obmsimd: drained cleanly")
	return 0
}
