// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON benchmark record. Repeated runs of the same benchmark
// (-count=N) are folded into one entry: timing and allocation numbers
// keep the best (minimum) run, throughput-style metrics (units ending
// in "/s", like the simulator's flits/s) keep the maximum — both read
// "the machine's capability, not its noise floor".
//
// Usage:
//
//	go test -bench 'NoC|Fig8|Fig9' -benchmem -count=3 | go run ./cmd/benchjson -out BENCH_noc.json
//
// With -baseline FILE the tool instead diffs the fresh results against a
// previously recorded JSON file, printing one delta line per benchmark
// (ns/op, allocs/op, and throughput metrics). The diff is informational
// — the exit status stays 0 whatever the deltas say — so CI can surface
// drift without turning machine noise into a gate. -out is only written
// in diff mode when passed explicitly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated record.
type Entry struct {
	// Runs is how many result lines were folded in.
	Runs int `json:"runs"`
	// NsPerOp is the best wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are present when -benchmem was on.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (e.g. "flits/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseBench folds benchmark result lines from r into per-name entries.
// Non-benchmark lines are ignored, so raw `go test` output pipes in
// directly.
func parseBench(r io.Reader) (map[string]*Entry, error) {
	out := map[string]*Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		name := trimProcSuffix(f[0])
		e := out[name]
		if e == nil {
			e = &Entry{}
			out[name] = e
		}
		e.Runs++
		first := e.Runs == 1
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", f[i], line)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				if first || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case "allocs/op":
				e.AllocsPerOp = foldMin(e.AllocsPerOp, v)
			case "B/op":
				e.BytesPerOp = foldMin(e.BytesPerOp, v)
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				cur, seen := e.Metrics[unit]
				switch {
				case !seen:
					e.Metrics[unit] = v
				case strings.HasSuffix(unit, "/s") && v > cur:
					e.Metrics[unit] = v
				case !strings.HasSuffix(unit, "/s") && v < cur:
					e.Metrics[unit] = v
				}
			}
		}
	}
	return out, sc.Err()
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo").
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func foldMin(cur *float64, v float64) *float64 {
	if cur == nil || v < *cur {
		return &v
	}
	return cur
}

// sortedNames returns the entry names in stable order.
func sortedNames(entries map[string]*Entry) []string {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// pct formats new relative to old as a signed percentage; positive
// means new is larger.
func pct(old, new float64) string {
	if old == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+5.1f%%", 100*(new-old)/old)
}

// printDiff renders fresh against base, one line per benchmark present
// in either. The output is advisory: machine noise easily moves ns/op
// by a few percent, so readers (and CI artifacts) interpret it, not an
// exit status.
func printDiff(w io.Writer, base, fresh map[string]*Entry) {
	all := map[string]bool{}
	for n := range base {
		all[n] = true
	}
	for n := range fresh {
		all[n] = true
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "benchmark diff (fresh vs baseline; + means fresh is larger):\n")
	for _, n := range names {
		b, f := base[n], fresh[n]
		switch {
		case b == nil:
			fmt.Fprintf(w, "  %-46s NEW  %12.1f ns/op\n", n, f.NsPerOp)
		case f == nil:
			fmt.Fprintf(w, "  %-46s GONE (in baseline at %.1f ns/op)\n", n, b.NsPerOp)
		default:
			line := fmt.Sprintf("  %-46s %12.1f -> %12.1f ns/op  %s", n, b.NsPerOp, f.NsPerOp, pct(b.NsPerOp, f.NsPerOp))
			if b.AllocsPerOp != nil && f.AllocsPerOp != nil {
				line += fmt.Sprintf("  %5.0f -> %5.0f allocs/op", *b.AllocsPerOp, *f.AllocsPerOp)
			}
			if bf, ok := b.Metrics["flits/s"]; ok {
				if ff, ok := f.Metrics["flits/s"]; ok {
					line += fmt.Sprintf("  flits/s %s", pct(bf, ff))
				}
			}
			fmt.Fprintln(w, line)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_noc.json", "output JSON file")
	baseline := flag.String("baseline", "", "diff fresh results against this recorded JSON instead of writing (exit 0 regardless)")
	flag.Parse()
	entries, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base := map[string]*Entry{}
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		printDiff(os.Stdout, base, entries)
		outSet := false
		flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })
		if !outSet {
			return
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks):\n", *out, len(entries))
	for _, n := range sortedNames(entries) {
		e := entries[n]
		line := fmt.Sprintf("  %-40s %12.1f ns/op", n, e.NsPerOp)
		if e.AllocsPerOp != nil {
			line += fmt.Sprintf("  %6.0f allocs/op", *e.AllocsPerOp)
		}
		if fs, ok := e.Metrics["flits/s"]; ok {
			line += fmt.Sprintf("  %12.0f flits/s", fs)
		}
		fmt.Println(line)
	}
}
