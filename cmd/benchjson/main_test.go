package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkNoCStep/idle-4      	323690487	         3.884 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoCStep/loaded-4    	  334402	      3915 ns/op	    747969 flits/s	       0 B/op	       0 allocs/op
BenchmarkNoCStep/loaded-4    	  300000	      4100 ns/op	    700000 flits/s	       0 B/op	       0 allocs/op
BenchmarkNoCStep/loaded-4    	  310000	      3900 ns/op	    741000 flits/s	       1 B/op	       1 allocs/op
BenchmarkFig9                	       2	 600000000 ns/op
PASS
ok  	obm	4.318s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}

	loaded := got["BenchmarkNoCStep/loaded"]
	if loaded == nil {
		t.Fatal("missing BenchmarkNoCStep/loaded (GOMAXPROCS suffix not trimmed?)")
	}
	if loaded.Runs != 3 {
		t.Errorf("Runs = %d, want 3", loaded.Runs)
	}
	if loaded.NsPerOp != 3900 {
		t.Errorf("NsPerOp = %v, want the minimum 3900", loaded.NsPerOp)
	}
	if loaded.AllocsPerOp == nil || *loaded.AllocsPerOp != 0 {
		t.Errorf("AllocsPerOp = %v, want min 0", loaded.AllocsPerOp)
	}
	if fs := loaded.Metrics["flits/s"]; fs != 747969 {
		t.Errorf("flits/s = %v, want the maximum 747969", fs)
	}

	idle := got["BenchmarkNoCStep/idle"]
	if idle == nil || idle.NsPerOp != 3.884 || idle.Runs != 1 {
		t.Errorf("idle entry wrong: %+v", idle)
	}

	fig9 := got["BenchmarkFig9"]
	if fig9 == nil {
		t.Fatal("missing BenchmarkFig9")
	}
	if fig9.AllocsPerOp != nil || fig9.Metrics != nil {
		t.Errorf("fig9 should have timing only: %+v", fig9)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX 10 oops ns/op\n"))
	if err == nil {
		t.Fatal("malformed value line parsed without error")
	}
}

func TestPrintDiff(t *testing.T) {
	fresh, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	slower := 7800.0
	allocs := 2.0
	base := map[string]*Entry{
		"BenchmarkNoCStep/loaded": {NsPerOp: slower, AllocsPerOp: &allocs, Metrics: map[string]float64{"flits/s": 373984.5}},
		"BenchmarkGone":           {NsPerOp: 1},
	}
	var sb strings.Builder
	printDiff(&sb, base, fresh)
	out := sb.String()
	for _, want := range []string{
		// 3900 vs 7800 baseline: halved, so -50.0%.
		"BenchmarkNoCStep/loaded",
		"-50.0%",
		"2 ->     0 allocs/op",
		// flits/s doubled.
		"flits/s +100.0%",
		// Present only in one side.
		"BenchmarkGone", "GONE",
		"BenchmarkNoCStep/idle", "NEW",
		"BenchmarkFig9", "NEW",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkRate-Limited": "BenchmarkRate-Limited",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
