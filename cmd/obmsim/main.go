// Command obmsim regenerates the paper's tables and figures.
//
// Usage:
//
//	obmsim -exp table1            # one experiment
//	obmsim -exp all               # everything, in order
//	obmsim -list                  # show available experiments
//	obmsim -exp fig9 -configs C1,C2 -quick -csv out.csv
//	obmsim -exp fig3,fig9 -svgdir figs   # also write SVG figures
//
// Each experiment prints a paper-style table or grid; -csv additionally
// writes machine-readable output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"obm/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main so the tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "", "experiment ID (see -list), or 'all'")
		list    = fs.Bool("list", false, "list available experiments")
		quick   = fs.Bool("quick", false, "smaller sample budgets (faster, noisier)")
		seed    = fs.Uint64("seed", 1, "base random seed")
		configs = fs.String("configs", "", "comma-separated configuration subset (e.g. C1,C5)")
		csvPath = fs.String("csv", "", "also write CSV output to this file")
		svgDir  = fs.String("svgdir", "", "write SVG figures for experiments that support them into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "  %-9s %s\n", r.ID(), r.Title())
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "obmsim: -exp required (or -list); e.g. obmsim -exp table1")
		return 2
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *configs != "" {
		opts.Configs = strings.Split(*configs, ",")
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, "obmsim:", err)
				return 2
			}
			runners = append(runners, r)
		}
	}

	var csv strings.Builder
	for i, r := range runners {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(stderr, "obmsim: %s: %v\n", r.ID(), err)
			return 1
		}
		fmt.Fprint(stdout, res.Render())
		fmt.Fprintf(stdout, "[%s in %v]\n", r.ID(), time.Since(start).Round(time.Millisecond))
		if *csvPath != "" {
			fmt.Fprintf(&csv, "# %s: %s\n%s", r.ID(), r.Title(), res.CSV())
		}
		if *svgDir != "" {
			if fig, ok := res.(experiments.Figurer); ok {
				if err := os.MkdirAll(*svgDir, 0o755); err != nil {
					fmt.Fprintln(stderr, "obmsim:", err)
					return 1
				}
				for stem, svg := range fig.SVGFigures() {
					path := filepath.Join(*svgDir, stem+".svg")
					if err := os.WriteFile(path, svg, 0o644); err != nil {
						fmt.Fprintln(stderr, "obmsim:", err)
						return 1
					}
					fmt.Fprintf(stdout, "wrote %s\n", path)
				}
			}
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "obmsim: writing csv:", err)
			return 1
		}
		fmt.Fprintf(stdout, "CSV written to %s\n", *csvPath)
	}
	return 0
}
