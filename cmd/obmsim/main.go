// Command obmsim regenerates the paper's tables and figures.
//
// Usage:
//
//	obmsim -exp table1            # one experiment
//	obmsim -exp all               # everything, in order
//	obmsim -list                  # show available experiments
//	obmsim -exp fig9 -configs C1,C2 -quick -csv out.csv
//	obmsim -exp objective                # mapper x objective grid
//	obmsim -exp fig9 -objective dev      # optimize dev-APL instead of max-APL
//	obmsim -exp fig3,fig9 -svgdir figs   # also write SVG figures
//	obmsim -exp all -timeout 2m -progress # bounded run with a stderr ticker
//	obmsim -exp all -quick -metrics       # print the run's metrics table
//	obmsim -exp fig9 -pprof 127.0.0.1:6060 -cpuprofile cpu.out
//
// Each experiment prints a paper-style table or grid; -csv additionally
// writes machine-readable output, and -json / -jsondir write the typed
// result documents (schema obmsim.result/v1). The whole run is
// cancellable: SIGINT or SIGTERM (or -timeout expiry) stops the
// in-flight experiment promptly, keeps everything already printed, and
// exits non-zero with a note on how far the batch got.
//
// Observability: -metrics prints the process metrics registry (NoC flit
// and cycle counters, replica utilization, mapper wall time, cache
// hits/misses, per-experiment durations) after the run and embeds the
// same snapshot as an obsim.metrics/v1 block in the -json envelope;
// -pprof serves net/http/pprof, and -cpuprofile/-memprofile write
// runtime profiles for offline `go tool pprof`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"obm/internal/artifact"
	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/experiments"
	"obm/internal/obs"
	"obm/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// progressSink prints throttled one-line progress events. Reporters
// below already throttle per stage, but several stages report
// concurrently (parallel configs, replica workers), so the sink applies
// its own global spacing to keep stderr readable.
type progressSink struct {
	w io.Writer

	mu   sync.Mutex
	last time.Time
}

func (s *progressSink) Event(p engine.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Skipped {
		// Cache hits are rare, cheap, and the run's main observability
		// signal, so they bypass the spacing throttle. The stage prefix
		// names the serving tier ("cached:" memory, "disk:" persistent).
		tier := "cache hit"
		if strings.HasPrefix(p.Stage, "disk:") {
			tier = "disk hit"
		}
		fmt.Fprintf(s.w, "progress: %s skipped (%s)\n", p.Stage, tier)
		return
	}
	now := time.Now()
	if now.Sub(s.last) < 250*time.Millisecond {
		return
	}
	s.last = now
	if p.Total > 0 {
		fmt.Fprintf(s.w, "progress: %s %d/%d (%v)\n", p.Stage, p.Done, p.Total, p.Elapsed.Round(time.Millisecond))
	} else {
		fmt.Fprintf(s.w, "progress: %s %d (%v)\n", p.Stage, p.Done, p.Elapsed.Round(time.Millisecond))
	}
}

// run executes the tool; factored out of main so the tests can drive it
// with their own context and buffers.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "", "experiment ID (see -list), or 'all'")
		list      = fs.Bool("list", false, "list available experiments")
		quick     = fs.Bool("quick", false, "smaller sample budgets (faster, noisier)")
		seed      = fs.Uint64("seed", 1, "base random seed")
		configs   = fs.String("configs", "", "comma-separated configuration subset (e.g. C1,C5)")
		objective = fs.String("objective", "", "optimization objective for the optimizing mappers: max (default), dev, global, ratio, or weighted:max=1,dev=2")
		workers   = fs.Int("workers", 0, "worker goroutines for the parallel mappers and the NoC step engine: 0 serial (default), -1 all cores; simulator statistics are identical for any value")
		cacheDir  = fs.String("cachedir", "", "directory for the persistent mapper-artifact cache shared across runs (empty: in-memory only); artifacts are content-addressed, so any run may share a directory")
		cacheSize = fs.Int64("cachesize", 256<<20, "byte budget for -cachedir (least-recently-used artifacts are evicted; <= 0: unbounded)")
		csvPath   = fs.String("csv", "", "also write CSV output to this file")
		svgDir    = fs.String("svgdir", "", "write SVG figures for experiments that support them into this directory")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the whole run; completed experiments are kept on expiry")
		progress  = fs.Bool("progress", false, "print throttled progress events to stderr")
		jsonPath  = fs.String("json", "", "write all results as one JSON document to this file")
		jsonDir   = fs.String("jsondir", "", "write each experiment's JSON document to <dir>/<id>.json")
		metrics   = fs.Bool("metrics", false, "print the run's metrics table and embed an obsim.metrics/v1 block in -json output")
		pprofSrv  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for the run's duration")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *pprofSrv != "" {
		stop, err := startPprof(*pprofSrv, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
		defer stop()
	}
	if *cpuProf != "" {
		stop, err := startCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := writeHeapProfile(*memProf); err != nil {
				fmt.Fprintln(stderr, "obmsim:", err)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "  %-9s %s\n", r.ID(), r.Title())
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "obmsim: -exp required (or -list); e.g. obmsim -exp table1")
		return 2
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers, CacheDir: *cacheDir, CacheSize: *cacheSize}
	if *cacheDir != "" {
		if _, err := scenario.ConfigureShared(*cacheDir, *cacheSize); err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
	}
	if *configs != "" {
		opts.Configs = strings.Split(*configs, ",")
	}
	if *objective != "" {
		obj, err := core.ParseObjective(*objective)
		if err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
		opts.Objective = obj
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(stderr, "obmsim:", err)
		return 2
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, "obmsim:", err)
				return 2
			}
			runners = append(runners, r)
		}
	}

	jobs := make([]engine.Job, len(runners))
	titles := make(map[string]string, len(runners))
	for i, r := range runners {
		r := r
		titles[r.ID()] = r.Title()
		jobs[i] = engine.Job{
			Name: r.ID(),
			Run:  func(ctx context.Context) (any, error) { return r.Run(ctx, opts) },
		}
	}

	// OnResult streams each experiment's output as soon as it finishes,
	// so an interrupted batch still shows everything that completed.
	type jsonEntry struct {
		ID     string          `json:"id"`
		Title  string          `json:"title"`
		Result json.RawMessage `json:"result"`
	}
	var csv strings.Builder
	var jsonEntries []jsonEntry
	printed := 0
	var writeErr error
	eng := engine.Runner{
		Timeout: *timeout,
		OnResult: func(res engine.Result) {
			if res.Err != nil || writeErr != nil {
				return
			}
			if printed > 0 {
				fmt.Fprintln(stdout)
			}
			printed++
			r := res.Value.(experiments.Result)
			fmt.Fprint(stdout, r.Render())
			fmt.Fprintf(stdout, "[%s in %v]\n", res.Name, res.Elapsed.Round(time.Millisecond))
			if *csvPath != "" {
				fmt.Fprintf(&csv, "# %s: %s\n%s", res.Name, titles[res.Name], r.CSV())
			}
			if *jsonPath != "" || *jsonDir != "" {
				raw, jerr := r.JSON()
				if jerr != nil {
					writeErr = fmt.Errorf("encoding %s result: %w", res.Name, jerr)
					return
				}
				if *jsonPath != "" {
					jsonEntries = append(jsonEntries, jsonEntry{ID: res.Name, Title: titles[res.Name], Result: raw})
				}
				if *jsonDir != "" {
					writeErr = writeJSONArtifact(stdout, *jsonDir, res.Name, raw)
					if writeErr != nil {
						return
					}
				}
			}
			if *svgDir != "" {
				if fig, ok := r.(experiments.Figurer); ok {
					writeErr = writeSVGs(stdout, *svgDir, fig)
				}
			}
		},
	}
	if *progress {
		eng.Sink = &progressSink{w: stderr}
	}

	results, err := eng.Run(ctx, jobs)
	cacheStats := scenario.Shared().StoreStats()
	if *progress {
		fmt.Fprintf(stderr, "obmsim: mapper artifact store: %d computed, %d memory hits, %d disk hits\n",
			cacheStats.Computed, cacheStats.MemHits, cacheStats.DiskHits)
	}
	// One post-run snapshot feeds both the printed table and the JSON
	// block, so the two can never disagree; the cache summary line is
	// derived from the same snapshot for the same reason.
	var mblock *metricsBlock
	if *metrics {
		snap := obs.Default().Snapshot()
		mblock = &metricsBlock{Schema: metricsSchema, Snapshot: snap}
		if printed > 0 {
			fmt.Fprintln(stdout)
		}
		computed, _ := snap.Counter("artifact.store.computed")
		memHits, _ := snap.Counter("artifact.mem.hits")
		diskHits, _ := snap.Counter("artifact.disk.hits")
		fmt.Fprintf(stdout, "mapper artifact store: %d computed, %d memory hits, %d disk hits\n",
			computed, memHits, diskHits)
		printMetrics(stdout, snap)
	}
	if *csvPath != "" && csv.Len() > 0 {
		if werr := artifact.WriteFileAtomic(*csvPath, []byte(csv.String()), 0o644); werr != nil {
			fmt.Fprintln(stderr, "obmsim: writing csv:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "CSV written to %s\n", *csvPath)
	}
	if *jsonPath != "" && len(jsonEntries) > 0 && writeErr == nil {
		// The options block records everything a reader needs to reproduce
		// the run byte-for-byte. Workers matters because Monte-Carlo's
		// sample partition depends on it; seed alone does not pin the run.
		// The cache block records the artifact store's disk tier and
		// per-tier traffic — results are bit-identical with or without
		// it, so it documents provenance, not inputs.
		type runOptions struct {
			Seed      uint64   `json:"seed"`
			Quick     bool     `json:"quick,omitempty"`
			Workers   int      `json:"workers,omitempty"`
			Configs   []string `json:"configs,omitempty"`
			Objective string   `json:"objective,omitempty"`
			CacheDir  string   `json:"cachedir,omitempty"`
			CacheSize int64    `json:"cachesize,omitempty"`
		}
		type cacheBlock struct {
			Dir       string `json:"dir,omitempty"`
			SizeBytes int64  `json:"size_bytes,omitempty"`
			Schema    int    `json:"artifact_schema"`
			artifact.Stats
		}
		cblock := cacheBlock{Schema: artifact.SchemaVersion, Stats: cacheStats}
		if *cacheDir != "" {
			cblock.Dir, cblock.SizeBytes = *cacheDir, *cacheSize
		}
		doc, merr := json.MarshalIndent(struct {
			Schema      string        `json:"schema"`
			Options     runOptions    `json:"options"`
			Cache       cacheBlock    `json:"cache"`
			Experiments []jsonEntry   `json:"experiments"`
			Metrics     *metricsBlock `json:"metrics,omitempty"`
		}{
			Schema: "obmsim.run/v1",
			Options: runOptions{Seed: *seed, Quick: *quick, Workers: *workers, Configs: opts.Configs, Objective: *objective,
				CacheDir: *cacheDir, CacheSize: opts.CacheSize},
			Cache:       cblock,
			Experiments: jsonEntries,
			Metrics:     mblock,
		}, "", "  ")
		if merr != nil {
			fmt.Fprintln(stderr, "obmsim: encoding json:", merr)
			return 1
		}
		if werr := artifact.WriteFileAtomic(*jsonPath, append(doc, '\n'), 0o644); werr != nil {
			fmt.Fprintln(stderr, "obmsim: writing json:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "JSON written to %s\n", *jsonPath)
	}
	if writeErr != nil {
		fmt.Fprintln(stderr, "obmsim:", writeErr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(stderr, "obmsim: %v\n", err)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			done := 0
			for _, r := range results {
				if r.Err == nil {
					done++
				}
			}
			fmt.Fprintf(stderr, "obmsim: interrupted; %d/%d experiments completed (partial results above)\n",
				done, len(jobs))
		}
		return 1
	}
	return 0
}

// writeJSONArtifact writes one experiment's JSON document to
// dir/<id>.json. The write is atomic (temp file + rename, the artifact
// store's helper), so a SIGINT mid-write never leaves a truncated
// document behind — consumers see either the previous file or the
// complete new one.
func writeJSONArtifact(stdout io.Writer, dir, id string, raw []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".json")
	if err := artifact.WriteFileAtomic(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// writeSVGs writes every figure of fig into dir.
func writeSVGs(stdout io.Writer, dir string, fig experiments.Figurer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for stem, svg := range fig.SVGFigures() {
		path := filepath.Join(dir, stem+".svg")
		if err := os.WriteFile(path, svg, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}
