// Command obmsim regenerates the paper's tables and figures.
//
// Usage:
//
//	obmsim -exp table1            # one experiment
//	obmsim -exp all               # everything, in order
//	obmsim -list                  # show available experiments
//	obmsim -exp fig9 -configs C1,C2 -quick -csv out.csv
//	obmsim -exp objective                # mapper x objective grid
//	obmsim -exp fig9 -objective dev      # optimize dev-APL instead of max-APL
//	obmsim -exp fig3,fig9 -svgdir figs   # also write SVG figures
//	obmsim -exp all -timeout 2m -progress # bounded run with a stderr ticker
//	obmsim -exp all -quick -metrics       # print the run's metrics table
//	obmsim -exp fig9 -pprof 127.0.0.1:6060 -cpuprofile cpu.out
//
// Each experiment prints a paper-style table or grid; -csv additionally
// writes machine-readable output, and -json / -jsondir write the typed
// result documents (schema obmsim.result/v1). The whole run is
// cancellable: SIGINT or SIGTERM (or -timeout expiry) stops the
// in-flight experiment promptly, keeps everything already printed, and
// exits non-zero with a note on how far the batch got.
//
// The command is a thin synchronous client of internal/service: flags
// assemble a service.Request, service.Execute runs it, and the -json
// envelope is the service's — byte-identical to what the obmsimd
// daemon returns for the same request.
//
// Observability: -metrics prints the process metrics registry (NoC flit
// and cycle counters, replica utilization, mapper wall time, cache
// hits/misses, per-experiment durations) after the run — as an aligned
// table, or as Prometheus text exposition with -metricsfmt prom — and
// embeds the same snapshot as an obsim.metrics/v1 block in the -json
// envelope; -pprof serves net/http/pprof, and -cpuprofile/-memprofile
// write runtime profiles for offline `go tool pprof`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"obm/internal/artifact"
	"obm/internal/engine"
	"obm/internal/experiments"
	"obm/internal/obs"
	"obm/internal/scenario"
	"obm/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// progressWriter formats one-line progress events for stderr. Spacing
// is the engine.Throttled wrapper's job (installed in run); Throttled
// never drops Skipped or Final events, so the per-stage completion
// line from Reporter.Finish always reaches the terminal.
type progressWriter struct {
	w io.Writer

	mu sync.Mutex
}

func (s *progressWriter) Event(p engine.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Skipped {
		// Cache hits are rare, cheap, and the run's main observability
		// signal. The stage prefix names the serving tier ("cached:"
		// memory, "disk:" persistent).
		tier := "cache hit"
		if strings.HasPrefix(p.Stage, "disk:") {
			tier = "disk hit"
		}
		fmt.Fprintf(s.w, "progress: %s skipped (%s)\n", p.Stage, tier)
		return
	}
	if p.Total > 0 {
		fmt.Fprintf(s.w, "progress: %s %d/%d (%v)\n", p.Stage, p.Done, p.Total, p.Elapsed.Round(time.Millisecond))
	} else {
		fmt.Fprintf(s.w, "progress: %s %d (%v)\n", p.Stage, p.Done, p.Elapsed.Round(time.Millisecond))
	}
}

// run executes the tool; factored out of main so the tests can drive it
// with their own context and buffers.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment ID (see -list), or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		quick      = fs.Bool("quick", false, "smaller sample budgets (faster, noisier)")
		seed       = fs.Uint64("seed", 1, "base random seed")
		configs    = fs.String("configs", "", "comma-separated configuration subset (e.g. C1,C5)")
		objective  = fs.String("objective", "", "optimization objective for the optimizing mappers: max (default), dev, global, ratio, or weighted:max=1,dev=2")
		workers    = fs.Int("workers", 0, "worker goroutines for the parallel mappers and the NoC step engine: 0 serial (default), -1 all cores; simulator statistics are identical for any value")
		cacheDir   = fs.String("cachedir", "", "directory for the persistent mapper-artifact cache shared across runs (empty: in-memory only); artifacts are content-addressed, so any run may share a directory")
		cacheSize  = fs.Int64("cachesize", 0, "byte budget for -cachedir (least-recently-used artifacts are evicted; 0: the 256 MiB default, < 0: unbounded)")
		stream     = fs.String("stream", "", "dynstream timeline generator overrides, comma-separated key=value (load, gap, minthreads, maxthreads, appsigma, threadsigma); e.g. load=0.8,maxthreads=24")
		csvPath    = fs.String("csv", "", "also write CSV output to this file")
		svgDir     = fs.String("svgdir", "", "write SVG figures for experiments that support them into this directory")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole run; completed experiments are kept on expiry")
		progress   = fs.Bool("progress", false, "print throttled progress events to stderr")
		jsonPath   = fs.String("json", "", "write all results as one JSON document to this file")
		jsonDir    = fs.String("jsondir", "", "write each experiment's JSON document to <dir>/<id>.json")
		metrics    = fs.Bool("metrics", false, "print the run's metrics and embed an obsim.metrics/v1 block in -json output")
		metricsFmt = fs.String("metricsfmt", "table", "format for -metrics output: table, or prom (Prometheus text exposition)")
		pprofSrv   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for the run's duration")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *pprofSrv != "" {
		stop, err := startPprof(*pprofSrv, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
		defer stop()
	}
	if *cpuProf != "" {
		stop, err := startCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := writeHeapProfile(*memProf); err != nil {
				fmt.Fprintln(stderr, "obmsim:", err)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range service.Experiments() {
			fmt.Fprintf(stdout, "  %-9s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "obmsim: -exp required (or -list); e.g. obmsim -exp table1")
		return 2
	}
	if *metricsFmt != "table" && *metricsFmt != "prom" {
		fmt.Fprintf(stderr, "obmsim: -metricsfmt %q: want table or prom\n", *metricsFmt)
		return 2
	}

	// Flags become the transport-neutral request the service layer
	// executes — the same structure a daemon job posts as JSON.
	req := service.Request{
		Quick:     *quick,
		Seed:      *seed,
		Objective: *objective,
		Workers:   *workers,
		CacheDir:  *cacheDir,
		CacheSize: *cacheSize,
		Stream:    *stream,
	}
	if *configs != "" {
		req.Configs = strings.Split(*configs, ",")
	}
	if *exp == "all" {
		req.Experiments = []string{"all"}
	} else {
		req.Experiments = strings.Split(*exp, ",")
	}

	// Resolve up front so usage mistakes (unknown experiment, bad
	// objective, unknown config) exit 2 before any work, as they always
	// have; the runner list also gives the batch total for the
	// interruption summary below.
	_, runners, err := req.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, "obmsim:", strings.TrimPrefix(err.Error(), service.ErrBadRequest.Error()+": "))
		return 2
	}
	titles := make(map[string]string, len(runners))
	for _, r := range runners {
		titles[r.ID()] = r.Title()
	}

	// Attaching the artifact disk tier is the host's job: once per run
	// here, once per process in the daemon.
	if *cacheDir != "" {
		if _, err := scenario.ConfigureShared(*cacheDir, req.Normalized().CacheSize); err != nil {
			fmt.Fprintln(stderr, "obmsim:", err)
			return 2
		}
	}

	// OnResult streams each experiment's output as soon as it finishes,
	// so an interrupted batch still shows everything that completed.
	var csv strings.Builder
	printed := 0
	var writeErr error
	cfg := service.ExecConfig{
		Timeout: *timeout,
		Metrics: *metrics,
		OnResult: func(res engine.Result, raw json.RawMessage) {
			if res.Err != nil || writeErr != nil {
				return
			}
			if printed > 0 {
				fmt.Fprintln(stdout)
			}
			printed++
			r := res.Value.(experiments.Result)
			fmt.Fprint(stdout, r.Render())
			fmt.Fprintf(stdout, "[%s in %v]\n", res.Name, res.Elapsed.Round(time.Millisecond))
			if *csvPath != "" {
				fmt.Fprintf(&csv, "# %s: %s\n%s", res.Name, titles[res.Name], r.CSV())
			}
			if *jsonDir != "" && raw != nil {
				writeErr = writeJSONArtifact(stdout, *jsonDir, res.Name, raw)
				if writeErr != nil {
					return
				}
			}
			if *svgDir != "" {
				if fig, ok := r.(experiments.Figurer); ok {
					writeErr = writeSVGs(stdout, *svgDir, fig)
				}
			}
		},
	}
	if *progress {
		cfg.Sink = engine.Throttled(&progressWriter{w: stderr}, 250*time.Millisecond)
	}

	out, err := service.Execute(ctx, req, cfg)
	if out == nil {
		out = &service.Outcome{}
	}
	if *progress {
		fmt.Fprintf(stderr, "obmsim: mapper artifact store: %d computed, %d memory hits, %d disk hits\n",
			out.Stats.Computed, out.Stats.MemHits, out.Stats.DiskHits)
	}
	// The printed metrics render the snapshot Execute embedded in the
	// envelope, so the two can never disagree; the cache summary line is
	// derived from the same snapshot for the same reason.
	if *metrics && out.Metrics != nil {
		if printed > 0 {
			fmt.Fprintln(stdout)
		}
		snap := out.Metrics.Snapshot
		if *metricsFmt == "prom" {
			if werr := obs.WritePrometheus(stdout, snap); werr != nil {
				fmt.Fprintln(stderr, "obmsim: writing metrics:", werr)
				return 1
			}
		} else {
			computed, _ := snap.Counter("artifact.store.computed")
			memHits, _ := snap.Counter("artifact.mem.hits")
			diskHits, _ := snap.Counter("artifact.disk.hits")
			fmt.Fprintf(stdout, "mapper artifact store: %d computed, %d memory hits, %d disk hits\n",
				computed, memHits, diskHits)
			printMetrics(stdout, snap)
		}
	}
	if *csvPath != "" && csv.Len() > 0 {
		if werr := artifact.WriteFileAtomic(*csvPath, []byte(csv.String()), 0o644); werr != nil {
			fmt.Fprintln(stderr, "obmsim: writing csv:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "CSV written to %s\n", *csvPath)
	}
	if *jsonPath != "" && len(out.Entries) > 0 && writeErr == nil {
		if werr := artifact.WriteFileAtomic(*jsonPath, out.Envelope, 0o644); werr != nil {
			fmt.Fprintln(stderr, "obmsim: writing json:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "JSON written to %s\n", *jsonPath)
	}
	if writeErr != nil {
		fmt.Fprintln(stderr, "obmsim:", writeErr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(stderr, "obmsim: %v\n", err)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			done := 0
			for _, r := range out.Results {
				if r.Err == nil {
					done++
				}
			}
			fmt.Fprintf(stderr, "obmsim: interrupted; %d/%d experiments completed (partial results above)\n",
				done, len(runners))
		}
		return 1
	}
	return 0
}

// writeJSONArtifact writes one experiment's JSON document to
// dir/<id>.json. The write is atomic (temp file + rename, the artifact
// store's helper), so a SIGINT mid-write never leaves a truncated
// document behind — consumers see either the previous file or the
// complete new one.
func writeJSONArtifact(stdout io.Writer, dir, id string, raw []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".json")
	if err := artifact.WriteFileAtomic(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// writeSVGs writes every figure of fig into dir.
func writeSVGs(stdout io.Writer, dir string, fig experiments.Figurer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for stem, svg := range fig.SVGFigures() {
		path := filepath.Join(dir, stem+".svg")
		if err := os.WriteFile(path, svg, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}
