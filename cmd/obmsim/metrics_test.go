package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/obs"
)

// TestMetricsFlagPrintsAndEmbeds checks the -metrics contract: the
// printed computed/served summary, the printed table, and the
// obsim.metrics/v1 block in the -json envelope all come from one
// snapshot, so the cache counters in the JSON must equal the printed
// numbers exactly.
func TestMetricsFlagPrintsAndEmbeds(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "table1,fig5", "-quick", "-metrics", "-json", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "metrics (obsim.metrics/v1):") {
		t.Fatalf("metrics table missing from stdout: %q", stdout.String())
	}
	var printedComputed, printedMem, printedDisk uint64
	found := false
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.Contains(line, "mapper artifact store:") {
			if _, err := fmt.Sscanf(strings.TrimSpace(line),
				"mapper artifact store: %d computed, %d memory hits, %d disk hits", &printedComputed, &printedMem, &printedDisk); err != nil {
				t.Fatalf("unparsable summary line %q: %v", line, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("computed/served summary missing from -metrics output")
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string            `json:"schema"`
		Experiments []json.RawMessage `json:"experiments"`
		Metrics     *struct {
			Schema string `json:"schema"`
			obs.Snapshot
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if doc.Schema != "obmsim.run/v1" || len(doc.Experiments) != 2 {
		t.Fatalf("envelope schema/experiments wrong: %s, %d entries", doc.Schema, len(doc.Experiments))
	}
	if doc.Metrics == nil {
		t.Fatal("metrics block missing from envelope")
	}
	if doc.Metrics.Schema != "obsim.metrics/v1" {
		t.Errorf("metrics schema = %q, want obsim.metrics/v1", doc.Metrics.Schema)
	}
	computed, ok := doc.Metrics.Counter("artifact.store.computed")
	if !ok || computed != printedComputed {
		t.Errorf("JSON computed = %d,%v; printed summary says %d computed", computed, ok, printedComputed)
	}
	hits, ok := doc.Metrics.Counter("artifact.mem.hits")
	if !ok || hits != printedMem {
		t.Errorf("JSON memory hits = %d,%v; printed summary says %d", hits, ok, printedMem)
	}
	if diskHits, ok := doc.Metrics.Counter("artifact.disk.hits"); !ok || diskHits != printedDisk {
		t.Errorf("JSON disk hits = %d,%v; printed summary says %d", diskHits, ok, printedDisk)
	}
	if _, ok := doc.Metrics.Counter("noc.flits.injected"); !ok {
		t.Error("NoC counters missing from metrics block")
	}
	if h, ok := doc.Metrics.Histogram("engine.job.table1.seconds"); !ok || h.Count < 1 {
		t.Errorf("per-experiment duration histogram missing or empty: %+v,%v", h, ok)
	}
}

// TestNoMetricsFlagOmitsBlock checks the envelope stays byte-compatible
// with pre-metrics consumers when -metrics is off: no metrics key at
// all.
func TestNoMetricsFlagOmitsBlock(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig5", "-quick", "-json", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, present := doc["metrics"]; present {
		t.Error("metrics block present without -metrics")
	}
	if strings.Contains(stdout.String(), "obsim.metrics") {
		t.Error("metrics table printed without -metrics")
	}
}

// TestProfileFlags smoke-tests -cpuprofile and -memprofile: the run
// succeeds and both profiles come out non-empty.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig5", "-quick", "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// A bad profile path is a usage error, reported before any work.
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig5", "-cpuprofile", filepath.Join(dir, "no/such/dir/x")}, &stdout, &stderr); code != 2 {
		t.Errorf("bad -cpuprofile path: exit %d, want 2 (%s)", code, stderr.String())
	}
}

// TestPprofFlag checks -pprof binds, reports its address, and rejects
// an unusable one.
func TestPprofFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig5", "-quick", "-pprof", "127.0.0.1:0"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pprof listening on http://127.0.0.1:") {
		t.Errorf("pprof address not reported: %q", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig5", "-pprof", "256.0.0.1:bad"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad -pprof address: exit %d, want 2 (%s)", code, stderr.String())
	}
}
