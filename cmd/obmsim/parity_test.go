package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/service"
)

// TestEnvelopeMatchesServiceExecute pins the thin-client contract: the
// file obmsim -json writes is byte-identical to the envelope
// service.Execute assembles for the equivalent request — the same
// property the daemon's jobs rely on.
func TestEnvelopeMatchesServiceExecute(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "fig5,table3", "-quick", "-seed", "11", "-configs", "C1,C2", "-json", jsonPath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	cli, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	out, err := service.Execute(context.Background(), service.Request{
		Experiments: []string{"fig5", "table3"},
		Quick:       true,
		Seed:        11,
		Configs:     []string{"C1", "C2"},
	}, service.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli, out.Envelope) {
		t.Errorf("CLI envelope differs from service.Execute's:\ncli:     %s\nservice: %s",
			truncateStr(string(cli), 400), truncateStr(string(out.Envelope), 400))
	}
}

// TestMetricsPromFormat checks -metricsfmt prom writes Prometheus text
// exposition instead of the aligned table, and that an unknown format
// is a usage error.
func TestMetricsPromFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "fig5", "-quick", "-metrics", "-metricsfmt", "prom"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	text := stdout.String()
	if !strings.Contains(text, "# TYPE artifact_store_computed counter") {
		t.Errorf("prom exposition missing counter TYPE line:\n%s", truncateStr(text, 600))
	}
	if strings.Contains(text, "metrics (obsim.metrics/v1):") {
		t.Error("table header printed in prom format")
	}

	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig5", "-metrics", "-metricsfmt", "xml"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown -metricsfmt: exit %d, want 2 (%s)", code, stderr.String())
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
