package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"obm/internal/obs"
	"obm/internal/service"
)

// printMetrics renders the snapshot as an aligned table: counters and
// gauges by name, histograms as count/mean/p50/p99 summaries.
// Everything is derived from the one snapshot the caller took, so the
// table and the JSON block can never disagree.
func printMetrics(w io.Writer, snap obs.Snapshot) {
	fmt.Fprintf(w, "metrics (%s):\n", service.MetricsSchema)
	width := 0
	for _, c := range snap.Counters {
		width = max(width, len(c.Name))
	}
	for _, g := range snap.Gauges {
		width = max(width, len(g.Name))
	}
	for _, h := range snap.Histograms {
		width = max(width, len(h.Name))
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "  counters:")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "    %-*s %12d\n", width, c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "  gauges:")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "    %-*s %12d\n", width, g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(w, "  histograms:")
		for _, h := range snap.Histograms {
			fmt.Fprintf(w, "    %-*s count %6d  mean %-10s p50 %-10s p99 %s\n",
				width, h.Name, h.Count,
				fmtSample(h.Name, h.Mean()), fmtSample(h.Name, h.Quantile(0.50)), fmtSample(h.Name, h.Quantile(0.99)))
		}
	}
}

// fmtSample renders one histogram statistic; second-valued histograms
// (the ".seconds" timers) print as durations.
func fmtSample(name string, v float64) string {
	if strings.HasSuffix(name, ".seconds") {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.4g", v)
}

// startPprof serves net/http/pprof on addr and returns a shutdown
// function. Listening first (rather than http.ListenAndServe) reports
// bad addresses synchronously and lets :0 pick a free port, printed so
// callers know where to point `go tool pprof`.
func startPprof(addr string, stderr io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen: %w", err)
	}
	fmt.Fprintf(stderr, "obmsim: pprof listening on http://%s/debug/pprof/\n", ln.Addr())
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

// startCPUProfile begins a CPU profile into path and returns the stop
// function.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile records an up-to-date heap profile into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialize final live-set statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
