package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, want := range []string{"table1", "fig9", "validate", "gap", "topology"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunFig5WithCSVAndSVG(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	svg := filepath.Join(dir, "figs")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig5,fig3", "-quick", "-csv", csv, "-svgdir", svg}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "10.3375") {
		t.Error("fig5 numbers missing from output")
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig5") {
		t.Error("csv missing experiment header")
	}
	figs, err := filepath.Glob(filepath.Join(svg, "*.svg"))
	if err != nil || len(figs) == 0 {
		t.Errorf("no SVGs written: %v %v", figs, err)
	}
}

func TestRunWithConfigSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig9", "-quick", "-configs", "C1,C2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "C1") || !strings.Contains(out, "C2") {
		t.Error("requested configs missing")
	}
	if strings.Contains(out, "C5") {
		t.Error("unrequested config present")
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ctx := context.Background()
	if code := run(ctx, nil, &stdout, &stderr); code == 0 {
		t.Error("missing -exp accepted")
	}
	if code := run(ctx, []string{"-exp", "nope"}, &stdout, &stderr); code == 0 {
		t.Error("unknown experiment accepted")
	}
	if code := run(ctx, []string{"-badflag"}, &stdout, &stderr); code == 0 {
		t.Error("bad flag accepted")
	}
	if code := run(ctx, []string{"-exp", "fig9", "-timeout", "banana"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed -timeout: exit %d, want 2", code)
	}
}

func TestUnknownConfigFailsFast(t *testing.T) {
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run(context.Background(), []string{"-exp", "fig9", "-configs", "C1,C99"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "C99") || !strings.Contains(stderr.String(), "valid") {
		t.Errorf("error should name the bad config and list valid ones: %s", stderr.String())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("validation took %v; should fail before any work runs", elapsed)
	}
}

// TestTimeoutKeepsPartialResults runs two experiments under a budget
// only the first can meet: the cheap fig5 output must survive, the exit
// code must be non-zero, and stderr must note the interruption.
func TestTimeoutKeepsPartialResults(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// fig5 is analytic (milliseconds); fig11 in non-quick mode runs
	// flit-level simulations on four configs and cannot finish in 2s.
	code := run(context.Background(), []string{"-exp", "fig5,fig11", "-timeout", "2s"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("timeout run exited 0")
	}
	if !strings.Contains(stdout.String(), "10.3375") {
		t.Error("completed fig5 output missing from partial results")
	}
	if !strings.Contains(stderr.String(), "interrupted") || !strings.Contains(stderr.String(), "partial results") {
		t.Errorf("stderr missing partial-results note: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "1/2 experiments completed") {
		t.Errorf("stderr should count completed experiments: %s", stderr.String())
	}
}

// TestCancelStopsPromptlyWithoutLeaks cancels mid-experiment and checks
// both that run returns quickly and that no worker goroutines are left
// behind (counting check; the repo carries no leak-detection dep).
func TestCancelStopsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run(ctx, []string{"-exp", "fig11"}, &stdout, &stderr)
	elapsed := time.Since(start)
	if code == 0 {
		t.Error("cancelled run exited 0")
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancel took %v to unwind; want prompt exit", elapsed)
	}
	// Workers should drain quickly after cancellation; poll briefly
	// before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestExpCommaList runs an explicit comma-separated -exp list (with
// whitespace) and checks every named experiment appears, in order.
func TestExpCommaList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig5, table3", "-quick"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	i5 := strings.Index(out, "[fig5 in ")
	i3 := strings.Index(out, "[table3 in ")
	if i5 < 0 || i3 < 0 {
		t.Fatalf("comma list did not run both experiments: %q", out)
	}
	if i5 > i3 {
		t.Error("experiments should run in the order listed")
	}
	// A list with an unknown member fails fast before any work.
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig5,nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown member of comma list: exit %d, want 2", code)
	}
}

// TestJSONOutput checks -json writes a combined document and -jsondir a
// per-experiment file, both valid JSON carrying the schema tags.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	combined := filepath.Join(dir, "run.json")
	perExp := filepath.Join(dir, "json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "fig5,table3", "-quick", "-json", combined, "-jsondir", perExp}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}

	data, err := os.ReadFile(combined)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		Experiments []struct {
			ID     string          `json:"id"`
			Title  string          `json:"title"`
			Result json.RawMessage `json:"result"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("combined output is not valid JSON: %v", err)
	}
	if doc.Schema != "obmsim.run/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Experiments) != 2 || doc.Experiments[0].ID != "fig5" || doc.Experiments[1].ID != "table3" {
		t.Fatalf("experiments = %+v", doc.Experiments)
	}
	for _, e := range doc.Experiments {
		var inner struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(e.Result, &inner); err != nil {
			t.Fatalf("%s result invalid: %v", e.ID, err)
		}
		if e.Title == "" {
			t.Errorf("%s missing title", e.ID)
		}
		raw, err := os.ReadFile(filepath.Join(perExp, e.ID+".json"))
		if err != nil {
			t.Fatalf("per-experiment artifact: %v", err)
		}
		if !json.Valid(raw) {
			t.Errorf("%s.json is not valid JSON", e.ID)
		}
	}
}

// TestProgressFlag checks the stderr ticker emits events during a run.
func TestProgressFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "table1", "-quick", "-progress", "-configs", "C1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "progress:") {
		t.Errorf("no progress events on stderr: %q", stderr.String())
	}
	if !strings.Contains(stderr.String(), "mapper artifact store:") {
		t.Errorf("no store stats summary on stderr: %q", stderr.String())
	}
}
