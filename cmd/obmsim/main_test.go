package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, want := range []string{"table1", "fig9", "validate", "gap", "topology"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunFig5WithCSVAndSVG(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	svg := filepath.Join(dir, "figs")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig5,fig3", "-quick", "-csv", csv, "-svgdir", svg}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "10.3375") {
		t.Error("fig5 numbers missing from output")
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig5") {
		t.Error("csv missing experiment header")
	}
	figs, err := filepath.Glob(filepath.Join(svg, "*.svg"))
	if err != nil || len(figs) == 0 {
		t.Errorf("no SVGs written: %v %v", figs, err)
	}
}

func TestRunWithConfigSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig9", "-quick", "-configs", "C1,C2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "C1") || !strings.Contains(out, "C2") {
		t.Error("requested configs missing")
	}
	if strings.Contains(out, "C5") {
		t.Error("unrequested config present")
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code == 0 {
		t.Error("missing -exp accepted")
	}
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code == 0 {
		t.Error("unknown experiment accepted")
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code == 0 {
		t.Error("bad flag accepted")
	}
}
