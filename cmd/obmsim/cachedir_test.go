package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/scenario"
)

// runEnvelope is the envelope subset the cache tests read back.
type runEnvelope struct {
	Schema  string `json:"schema"`
	Options struct {
		CacheDir  string `json:"cachedir"`
		CacheSize int64  `json:"cachesize"`
	} `json:"options"`
	Cache struct {
		Dir       string `json:"dir"`
		SizeBytes int64  `json:"size_bytes"`
		Schema    int    `json:"artifact_schema"`
		MemHits   uint64 `json:"mem_hits"`
		DiskHits  uint64 `json:"disk_hits"`
		Computed  uint64 `json:"computed"`
	} `json:"cache"`
	Experiments json.RawMessage `json:"experiments"`
}

// TestCacheDirColdWarm is the two-tier acceptance check at the CLI
// layer: a first run with -cachedir computes its artifacts and leaves
// them on disk; a second run over the same directory (fresh memory
// tier — ConfigureShared installs one per run) computes nothing, serves
// everything from disk, and produces byte-identical experiment output.
func TestCacheDirColdWarm(t *testing.T) {
	cache := t.TempDir()
	out := t.TempDir()
	t.Cleanup(func() { scenario.ResetShared() })
	do := func(jsonPath string) runEnvelope {
		t.Helper()
		var stdout, stderr bytes.Buffer
		code := run(context.Background(),
			[]string{"-exp", "table1,fig9", "-quick", "-configs", "C1,C2", "-cachedir", cache, "-json", jsonPath},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, stderr.String())
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		var env runEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("envelope: %v", err)
		}
		return env
	}

	cold := do(filepath.Join(out, "cold.json"))
	if cold.Cache.Dir != cache || cold.Cache.SizeBytes != 256<<20 || cold.Options.CacheDir != cache {
		t.Errorf("disk tier not recorded in envelope: %+v", cold.Cache)
	}
	if cold.Cache.Schema != 1 {
		t.Errorf("artifact schema = %d, want 1", cold.Cache.Schema)
	}
	if cold.Cache.Computed == 0 || cold.Cache.DiskHits != 0 {
		t.Fatalf("cold run cache block = %+v, want computes and no disk hits", cold.Cache)
	}
	files, err := filepath.Glob(filepath.Join(cache, "*.obma"))
	if err != nil || uint64(len(files)) != cold.Cache.Computed {
		t.Errorf("%d artifact files on disk for %d computes (%v)", len(files), cold.Cache.Computed, err)
	}

	warm := do(filepath.Join(out, "warm.json"))
	if warm.Cache.Computed != 0 {
		t.Errorf("warm run computed %d artifacts, want 0", warm.Cache.Computed)
	}
	if warm.Cache.DiskHits != cold.Cache.Computed {
		t.Errorf("warm run disk hits = %d, want %d (one per cold compute)", warm.Cache.DiskHits, cold.Cache.Computed)
	}
	if !bytes.Equal(cold.Experiments, warm.Experiments) {
		t.Error("warm results differ from cold: disk tier is not byte-transparent")
	}
}

// TestCacheDirUnusableFailsFast: an unusable -cachedir is a usage
// error before any work, never a silent fall-back to memory-only.
func TestCacheDirUnusableFailsFast(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "fig5", "-quick", "-cachedir", filepath.Join(blocker, "cache")}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "obmsim:") {
		t.Errorf("error not reported: %q", stderr.String())
	}
}
