package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/artifact"
	"obm/internal/scenario"
)

// runEnvelope is the envelope subset the cache tests read back.
type runEnvelope struct {
	Schema  string `json:"schema"`
	Options struct {
		CacheDir  string `json:"cachedir"`
		CacheSize int64  `json:"cachesize"`
	} `json:"options"`
	Cache struct {
		Dir       string `json:"dir"`
		SizeBytes int64  `json:"size_bytes"`
		Schema    int    `json:"artifact_schema"`
	} `json:"cache"`
	Experiments json.RawMessage `json:"experiments"`
}

// TestCacheDirColdWarm is the two-tier acceptance check at the CLI
// layer: a first run with -cachedir computes its artifacts and leaves
// them on disk; a second run over the same directory (fresh memory
// tier — ConfigureShared installs one per run) computes nothing, serves
// everything from disk, and produces a byte-identical envelope. The
// per-run traffic stats live outside the envelope (progress line, the
// metrics block, the daemon's job status), so they are read from the
// shared store here.
func TestCacheDirColdWarm(t *testing.T) {
	cache := t.TempDir()
	out := t.TempDir()
	t.Cleanup(func() { scenario.ResetShared() })
	do := func(jsonPath string) (runEnvelope, []byte, artifact.Stats) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		code := run(context.Background(),
			[]string{"-exp", "table1,fig9", "-quick", "-configs", "C1,C2", "-cachedir", cache, "-json", jsonPath},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, stderr.String())
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		var env runEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("envelope: %v", err)
		}
		// ConfigureShared installs a fresh memory tier per run, so the
		// shared store's counters are this run's traffic exactly.
		return env, data, scenario.Shared().StoreStats()
	}

	cold, coldRaw, coldStats := do(filepath.Join(out, "cold.json"))
	if cold.Cache.Dir != cache || cold.Cache.SizeBytes != 256<<20 || cold.Options.CacheDir != cache {
		t.Errorf("disk tier not recorded in envelope: %+v", cold.Cache)
	}
	if cold.Cache.Schema != artifact.SchemaVersion {
		t.Errorf("artifact schema = %d, want %d", cold.Cache.Schema, artifact.SchemaVersion)
	}
	if coldStats.Computed == 0 || coldStats.DiskHits != 0 {
		t.Fatalf("cold run stats = %+v, want computes and no disk hits", coldStats)
	}
	files, err := filepath.Glob(filepath.Join(cache, "*.obma"))
	if err != nil || uint64(len(files)) != coldStats.Computed {
		t.Errorf("%d artifact files on disk for %d computes (%v)", len(files), coldStats.Computed, err)
	}

	warm, warmRaw, warmStats := do(filepath.Join(out, "warm.json"))
	if warmStats.Computed != 0 {
		t.Errorf("warm run computed %d artifacts, want 0", warmStats.Computed)
	}
	if warmStats.DiskHits != coldStats.Computed {
		t.Errorf("warm run disk hits = %d, want %d (one per cold compute)", warmStats.DiskHits, coldStats.Computed)
	}
	if !bytes.Equal(cold.Experiments, warm.Experiments) {
		t.Error("warm results differ from cold: disk tier is not byte-transparent")
	}
	// The envelope carries no per-run traffic, so the whole document —
	// not just the results — must be byte-identical across cold and
	// warm. This is what lets a daemon job and a CLI run agree too.
	if !bytes.Equal(coldRaw, warmRaw) {
		t.Error("cold and warm envelopes differ: envelope is not a pure function of the request")
	}
}

// TestCacheDirUnusableFailsFast: an unusable -cachedir is a usage
// error before any work, never a silent fall-back to memory-only.
func TestCacheDirUnusableFailsFast(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "fig5", "-quick", "-cachedir", filepath.Join(blocker, "cache")}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "obmsim:") {
		t.Errorf("error not reported: %q", stderr.String())
	}
}
