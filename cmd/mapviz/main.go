// Command mapviz maps a configuration with any of the algorithms and
// pretty-prints the resulting placement grid, per-application APLs and
// balance metrics.
//
// Usage:
//
//	mapviz -config C1 -algo sss
//	mapviz -config C4 -algo global,mc,sa,sss     # side by side metrics
//	mapviz -config C2 -algo sss -grid            # include the tile grid
//	mapviz -parsec canneal,x264,ferret,vips      # custom benchmark mix
//	mapviz -workload mix.json                    # user-defined workload
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func mapperFor(name string, seed uint64) (mapping.Mapper, error) {
	switch strings.ToLower(name) {
	case "random":
		return mapping.Random{Seed: seed}, nil
	case "global":
		return mapping.Global{}, nil
	case "greedy":
		return mapping.Greedy{}, nil
	case "mc":
		return mapping.MonteCarlo{Samples: 10_000, Seed: seed}, nil
	case "sa":
		return mapping.Annealing{Iters: 18_000, Seed: seed}, nil
	case "ga":
		return mapping.Genetic{Seed: seed}, nil
	case "clustersa":
		return mapping.ClusterSA{Seed: seed}, nil
	case "sss":
		return mapping.SortSelectSwap{}, nil
	case "sss-noswap":
		return mapping.SortSelectSwap{DisableSwap: true}, nil
	case "sss-multipass":
		return mapping.SortSelectSwap{Passes: 5}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want random, global, greedy, mc, sa, ga, clustersa, sss, sss-noswap, sss-multipass)", name)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; factored out of main so the tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		config = fs.String("config", "C1", "paper configuration C1..C8")
		wlPath = fs.String("workload", "", "JSON workload file (overrides -config; see workload.WriteJSON schema)")
		parsec = fs.String("parsec", "", "comma-separated PARSEC benchmark mix (overrides -config), e.g. canneal,x264,ferret,vips")
		algos  = fs.String("algo", "sss", "comma-separated algorithms (see mapperFor)")
		seed   = fs.Uint64("seed", 1, "random seed for stochastic algorithms")
		grid   = fs.Bool("grid", false, "print the application-to-tile grid per algorithm")
		n      = fs.Int("n", 8, "mesh dimension (n x n); workload is padded to fit")
		torus  = fs.Bool("torus", false, "use a torus latency model instead of a mesh")
		cap    = fs.Int("capacity", 1, "threads per tile (the paper footnote's generalization)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	msh, err := mesh.New(*n, *n)
	if err != nil {
		fmt.Fprintln(stderr, "mapviz:", err)
		return 2
	}
	var lm *model.LatencyModel
	if *torus {
		lm, err = model.NewTorus(msh, model.DefaultParams(), model.CornersPlacement(msh))
	} else {
		lm, err = model.New(msh, model.DefaultParams())
	}
	if err != nil {
		fmt.Fprintln(stderr, "mapviz:", err)
		return 2
	}

	var w *workload.Workload
	switch {
	case *parsec != "":
		names := strings.Split(*parsec, ",")
		w, err = workload.FromPARSEC(names, lm.NumTiles()/len(names), *seed)
	case *wlPath != "":
		var f *os.File
		f, err = os.Open(*wlPath)
		if err == nil {
			w, err = workload.ReadJSON(f)
			f.Close()
		}
	default:
		w, err = workload.Config(*config)
	}
	if err != nil {
		fmt.Fprintln(stderr, "mapviz:", err)
		return 2
	}
	if err := w.PadTo(lm.NumTiles() * *cap); err != nil {
		fmt.Fprintln(stderr, "mapviz:", err)
		return 2
	}
	p, err := core.NewProblemWithCapacity(lm, w, *cap)
	if err != nil {
		fmt.Fprintln(stderr, "mapviz:", err)
		return 2
	}

	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmax-APL\tdev-APL\tg-APL\tmin/max")
	for _, name := range strings.Split(*algos, ",") {
		m, err := mapperFor(strings.TrimSpace(name), *seed)
		if err != nil {
			fmt.Fprintln(stderr, "mapviz:", err)
			return 2
		}
		mp, err := mapping.MapAndCheck(context.Background(), m, p)
		if err != nil {
			fmt.Fprintln(stderr, "mapviz:", err)
			return 1
		}
		ev := p.Evaluate(mp)
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.3f\t%.4f\n",
			m.Name(), ev.MaxAPL, ev.DevAPL, ev.GlobalAPL, ev.MinMaxRatio)
		if *grid {
			tw.Flush()
			for _, row := range p.AppGrid(mp) {
				fmt.Fprint(stdout, "  ")
				for _, v := range row {
					fmt.Fprintf(stdout, "%2d ", v)
				}
				fmt.Fprintln(stdout)
			}
			for i, apl := range ev.APLs {
				if p.AppWeight(i) > 0 {
					fmt.Fprintf(stdout, "  app %d (%s): APL %.3f\n", i+1, w.Apps[i].Name, apl)
				}
			}
		}
	}
	tw.Flush()
	return 0
}
