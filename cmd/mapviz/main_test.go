package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/workload"
)

func TestDefaultRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "C1", "-algo", "global,sss"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Global") || !strings.Contains(out, "SSS") {
		t.Errorf("output: %s", out)
	}
}

func TestGridOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "C2", "-algo", "sss", "-grid"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "app 1") {
		t.Error("per-app APLs missing")
	}
}

func TestParsecMixAndTorus(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-parsec", "blackscholes,canneal,x264,ferret", "-algo", "sss", "-torus"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
}

func TestWorkloadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteJSON(f, workload.MustConfig("C3")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", path, "-algo", "greedy"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-algo", "quantum"}, &stdout, &stderr); code == 0 {
		t.Error("unknown algorithm accepted")
	}
	if code := run([]string{"-config", "C77"}, &stdout, &stderr); code == 0 {
		t.Error("unknown config accepted")
	}
	if code := run([]string{"-parsec", "doom"}, &stdout, &stderr); code == 0 {
		t.Error("unknown benchmark accepted")
	}
	if code := run([]string{"-workload", "/nope.json"}, &stdout, &stderr); code == 0 {
		t.Error("missing workload file accepted")
	}
	if code := run([]string{"-n", "0"}, &stdout, &stderr); code == 0 {
		t.Error("zero mesh accepted")
	}
}

func TestCapacityFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Two configs of apps won't fit at capacity 1; the flag doubles slots.
	code := run([]string{"-parsec", "canneal,x264,dedup,vips,ferret,facesim,raytrace,bodytrack",
		"-capacity", "2", "-n", "4", "-algo", "sss"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "SSS") {
		t.Errorf("output: %s", stdout.String())
	}
}
