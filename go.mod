module obm

go 1.22
