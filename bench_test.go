// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per exhibit), plus ablation benchmarks for
// the design choices DESIGN.md calls out and microbenchmarks of the
// hot substrates. Metrics that matter scientifically (max-APL, dev-APL,
// g-APL, watts) are attached to each benchmark via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the regeneration cost and the reproduced numbers.
package obm_test

import (
	"context"
	"fmt"
	"testing"

	"obm/internal/core"
	"obm/internal/experiments"
	"obm/internal/hungarian"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/noc"
	"obm/internal/obs"
	"obm/internal/sched"
	"obm/internal/sim"
	"obm/internal/stats"
	"obm/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1}
}

func paperProblem(b *testing.B, cfg string) *core.Problem {
	b.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	p, err := core.NewProblem(lm, workload.MustConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- One benchmark per table/figure ---------------------------------

// BenchmarkTable1 regenerates Table 1 (imbalance exacerbation by
// Global) and reports the average dev-APL ratio Global/random.
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "table1")
		if err != nil {
			b.Fatal(err)
		}
		last = r.(*experiments.Table1Result)
	}
	b.ReportMetric(last.Avg.GlobalDevAPL/last.Avg.RandDevAPL, "devAPL-ratio")
	b.ReportMetric(last.Avg.GlobalMaxAPL, "global-maxAPL")
}

// BenchmarkTable3 regenerates Table 3 (workload statistics).
func BenchmarkTable3(b *testing.B) {
	var last *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "table3")
		if err != nil {
			b.Fatal(err)
		}
		last = r.(*experiments.Table3Result)
	}
	b.ReportMetric(last.Rows[0].Got.Cache.Mean, "C1-cache-mean")
}

// BenchmarkTable4 regenerates Table 4 (dev-APL of the four mappers)
// and reports SSS's average dev-APL.
func BenchmarkTable4(b *testing.B) {
	var sss float64
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "table4")
		if err != nil {
			b.Fatal(err)
		}
		t4 := r.(*experiments.Table4Result)
		for mi, name := range t4.Mappers {
			if name == "SSS" {
				var s float64
				for _, v := range t4.Dev[mi] {
					s += v
				}
				sss = s / float64(len(t4.Dev[mi]))
			}
		}
	}
	b.ReportMetric(sss, "SSS-devAPL")
}

// BenchmarkFig3 regenerates the Figure 3 latency heatmaps.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mustRun(b, "fig3"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the Figure 4 Global mapping of C1.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mustRun(b, "fig4"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the Figure 5 worked example and reports the
// two APLs the paper quotes.
func BenchmarkFig5(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig5")
		if err != nil {
			b.Fatal(err)
		}
		last = r.(*experiments.Fig5Result)
	}
	b.ReportMetric(last.GoodAPL, "optimal-APL")
	b.ReportMetric(last.BadAPL, "bad-APL")
}

// BenchmarkFig8 regenerates the Figure 8 SSS mapping of C1.
func BenchmarkFig8(b *testing.B) {
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig8")
		if err != nil {
			b.Fatal(err)
		}
		last = r.(*experiments.Fig8Result)
	}
	b.ReportMetric(100*(last.GlobalMax-last.SSSMax)/last.GlobalMax, "maxAPL-redux-%")
}

// BenchmarkFig9 regenerates Figure 9 and reports the headline SSS vs
// Global max-APL reduction (paper: 10.42%).
func BenchmarkFig9(b *testing.B) {
	var redux float64
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig9")
		if err != nil {
			b.Fatal(err)
		}
		redux = seriesRedux(r.(*experiments.MapperSeries))
	}
	b.ReportMetric(redux, "maxAPL-redux-%")
}

// BenchmarkFig10 regenerates Figure 10 and reports SSS's g-APL overhead
// vs Global (paper: <3.82%).
func BenchmarkFig10(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig10")
		if err != nil {
			b.Fatal(err)
		}
		over = -seriesRedux(r.(*experiments.MapperSeries))
	}
	b.ReportMetric(over, "gAPL-overhead-%")
}

// BenchmarkFig11 regenerates Figure 11 (dynamic power via the
// flit-level simulator; the slowest exhibit) and reports SSS's power
// overhead vs Global (paper: <2.7%).
func BenchmarkFig11(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig11")
		if err != nil {
			b.Fatal(err)
		}
		over = -seriesRedux(r.(*experiments.MapperSeries))
	}
	b.ReportMetric(over, "power-overhead-%")
}

// BenchmarkFig12 regenerates Figure 12 (SA quality vs runtime).
func BenchmarkFig12(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "fig12")
		if err != nil {
			b.Fatal(err)
		}
		last = r.(*experiments.Fig12Result)
	}
	n := len(last.SAMaxAPL)
	b.ReportMetric(100*(last.SAMaxAPL[n-1]-last.SSSMaxAPL)/last.SSSMaxAPL, "SA-gap-at-max-budget-%")
}

// BenchmarkValidate regenerates the model-vs-simulator validation and
// reports the mean absolute APL error in cycles.
func BenchmarkValidate(b *testing.B) {
	var mae float64
	for i := 0; i < b.N; i++ {
		r, err := mustRun(b, "validate")
		if err != nil {
			b.Fatal(err)
		}
		if vr, ok := r.(*experiments.ValidateResult); ok {
			mae = vr.MeanAbsErr
		}
	}
	b.ReportMetric(mae, "model-error-cycles")
}

func mustRun(b *testing.B, id string) (experiments.Result, error) {
	b.Helper()
	r, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	return r.Run(context.Background(), benchOpts())
}

// seriesRedux returns the percentage reduction of SSS's average vs
// Global's average in a MapperSeries.
func seriesRedux(s *experiments.MapperSeries) float64 {
	avg := func(mi int) float64 {
		var t float64
		for _, v := range s.Values[mi] {
			t += v
		}
		return t / float64(len(s.Values[mi]))
	}
	var g, ss float64
	for i, n := range s.Mappers {
		switch n {
		case "Global":
			g = avg(i)
		case "SSS":
			ss = avg(i)
		}
	}
	if g == 0 {
		return 0
	}
	return 100 * (g - ss) / g
}

// --- Ablation benchmarks (design-choice studies from DESIGN.md) ------

// BenchmarkAblationSwap isolates the contribution of the
// sliding-window swap phase (SSS step 3) by comparing the full
// algorithm, coarse tuning only, and smaller windows/steps.
func BenchmarkAblationSwap(b *testing.B) {
	variants := []mapping.Mapper{
		mapping.SortSelectSwap{},
		mapping.SortSelectSwap{DisableSwap: true},
		mapping.SortSelectSwap{WindowSize: 2},
		mapping.SortSelectSwap{WindowSize: 3},
		mapping.SortSelectSwap{MaxStep: 1},
	}
	for _, m := range variants {
		b.Run(m.Name(), func(b *testing.B) {
			p := paperProblem(b, "C1")
			var obj float64
			for i := 0; i < b.N; i++ {
				mp, err := m.Map(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				obj = p.MaxAPL(mp)
			}
			b.ReportMetric(obj, "maxAPL")
		})
	}
}

// BenchmarkAblationSelect compares the middle-of-section tile selection
// (the paper's choice) against first-of-section and random-in-section.
func BenchmarkAblationSelect(b *testing.B) {
	for _, sel := range []mapping.SelectStrategy{mapping.SelectMiddle, mapping.SelectFirst, mapping.SelectRandom} {
		b.Run(sel.String(), func(b *testing.B) {
			p := paperProblem(b, "C3")
			m := mapping.SortSelectSwap{Select: sel, Seed: 9}
			var obj float64
			for i := 0; i < b.N; i++ {
				mp, err := m.Map(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				obj = p.MaxAPL(mp)
			}
			b.ReportMetric(obj, "maxAPL")
		})
	}
}

// BenchmarkAblationFinalSAM measures the effect of the final
// per-application Hungarian polish.
func BenchmarkAblationFinalSAM(b *testing.B) {
	for _, m := range []mapping.Mapper{
		mapping.SortSelectSwap{},
		mapping.SortSelectSwap{DisableFinalSAM: true},
	} {
		b.Run(m.Name(), func(b *testing.B) {
			p := paperProblem(b, "C5")
			var obj float64
			for i := 0; i < b.N; i++ {
				mp, err := m.Map(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				obj = p.MaxAPL(mp)
			}
			b.ReportMetric(obj, "maxAPL")
		})
	}
}

// BenchmarkAblationSACooling sweeps the SA geometric cooling factor
// backing Figure 12's runtime/quality tradeoff.
func BenchmarkAblationSACooling(b *testing.B) {
	for _, cooling := range []float64{0.999, 0.9995, 0.9999} {
		b.Run(fmt.Sprintf("cooling=%v", cooling), func(b *testing.B) {
			p := paperProblem(b, "C4")
			m := mapping.Annealing{Iters: 18_000, Cooling: cooling, Seed: 3}
			var obj float64
			for i := 0; i < b.N; i++ {
				mp, err := m.Map(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				obj = p.MaxAPL(mp)
			}
			b.ReportMetric(obj, "maxAPL")
		})
	}
}

// --- Microbenchmarks of the substrates -------------------------------

// BenchmarkSSSMap times one full sort-select-swap solve (64 tiles).
func BenchmarkSSSMap(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.SortSelectSwap{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalMap times the chip-wide Hungarian solve.
func BenchmarkGlobalMap(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.Global{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHungarian64 times the assignment solver on a dense 64x64
// instance (the paper's N).
func BenchmarkHungarian64(b *testing.B) {
	rng := stats.NewRand(17)
	cost := make([][]float64, 64)
	for i := range cost {
		cost[i] = make([]float64, 64)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hungarian.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate times one full mapping evaluation (eq. 5 over all
// applications).
func BenchmarkEvaluate(b *testing.B) {
	p := paperProblem(b, "C1")
	m := core.IdentityMapping(p.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Evaluate(m)
	}
}

// BenchmarkNoCCycle times one simulated network cycle at paper-scale
// load on the 8x8 mesh.
func BenchmarkNoCCycle(b *testing.B) {
	net := noc.MustNew(noc.DefaultConfig())
	rng := stats.NewRand(23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~0.25 packets/cycle chip-wide, as the paper's workloads inject.
		if rng.Float64() < 0.25 {
			_ = net.Inject(&noc.Packet{
				Src:  mesh.Tile(rng.Intn(64)),
				Dst:  mesh.Tile(rng.Intn(64)),
				Type: noc.CacheRequest,
				App:  0,
			})
		}
		net.Step()
	}
}

// BenchmarkNoCStep measures the hot Step loop itself at two operating
// points. "idle" is an empty network (pure worklist overhead per
// cycle); "loaded" keeps a steady packet population flowing by
// re-injecting on every delivery, reporting sustained flits/s and the
// steady-state allocation count (the overhaul's target is zero).
func BenchmarkNoCStep(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		net := noc.MustNew(noc.DefaultConfig())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Step()
		}
	})
	b.Run("loaded", func(b *testing.B) {
		net := noc.MustNew(noc.DefaultConfig())
		rng := stats.NewRand(23)
		var flits int64
		launch := func(src, dst mesh.Tile) {
			p := net.AllocPacket()
			p.Src, p.Dst, p.Type, p.App = src, dst, noc.CacheReply, 0
			if err := net.Inject(p); err != nil {
				b.Fatal(err)
			}
		}
		// Every delivery immediately launches a successor between two
		// fresh random tiles, holding the in-flight population constant
		// without the driver allocating anything per cycle.
		net.SetDeliveryHandler(func(p *noc.Packet) {
			flits += int64(p.Type.Flits())
			src := mesh.Tile(rng.Intn(64))
			dst := mesh.Tile((int(src) + 1 + rng.Intn(63)) % 64)
			launch(src, dst)
		})
		for k := 0; k < 16; k++ { // steady population: 16 packets in flight
			launch(mesh.Tile(4*k), mesh.Tile((4*k+13)%64))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Step()
		}
		b.ReportMetric(float64(flits)/b.Elapsed().Seconds(), "flits/s")
	})
}

// BenchmarkNoCStepParallel measures the sharded step engine against the
// serial one on the same loaded 8x8 traffic as BenchmarkNoCStep/loaded.
// Statistics are bit-identical across the sweep (the golden tests
// enforce it); only wall clock may differ. Speedup requires real cores:
// on a single-CPU host the wavefront's cross-row handoffs make the
// sweep a worst case, so treat these numbers as an upper bound on
// coordination overhead, not as the scaling result.
func BenchmarkNoCStepParallel(b *testing.B) {
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := noc.DefaultConfig()
			cfg.Workers = workers
			net := noc.MustNew(cfg)
			defer net.Close()
			rng := stats.NewRand(23)
			var flits int64
			launch := func(src, dst mesh.Tile) {
				p := net.AllocPacket()
				p.Src, p.Dst, p.Type, p.App = src, dst, noc.CacheReply, 0
				if err := net.Inject(p); err != nil {
					b.Fatal(err)
				}
			}
			net.SetDeliveryHandler(func(p *noc.Packet) {
				flits += int64(p.Type.Flits())
				src := mesh.Tile(rng.Intn(64))
				dst := mesh.Tile((int(src) + 1 + rng.Intn(63)) % 64)
				launch(src, dst)
			})
			for k := 0; k < 16; k++ {
				launch(mesh.Tile(4*k), mesh.Tile((4*k+13)%64))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
			b.ReportMetric(float64(flits)/b.Elapsed().Seconds(), "flits/s")
		})
	}
}

// BenchmarkNoCLoadSweep times one latency-vs-load measurement point at
// a moderate uniform-random load, the unit of work the loadsweep
// experiment fans out across cores.
func BenchmarkNoCLoadSweep(b *testing.B) {
	cfg := noc.DefaultConfig()
	sw := noc.DefaultSweepConfig()
	sw.Cycles = 2_000
	var flits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := noc.MeasureLoadPoint(cfg, noc.UniformRandom{}, 0.04, sw)
		if err != nil {
			b.Fatal(err)
		}
		flits += int64(pt.Throughput * float64(sw.Cycles) * 64)
	}
	b.ReportMetric(float64(flits)/b.Elapsed().Seconds(), "flits/s")
}

// BenchmarkRateDrivenSim times the full open-loop simulation used by
// Figure 11, per simulated kilocycle.
func BenchmarkRateDrivenSim(b *testing.B) {
	p := paperProblem(b, "C1")
	mp, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultRateDrivenConfig()
	cfg.MeasureCycles = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RateDriven(context.Background(), p, mp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGen times synthesizing one Table 3 configuration.
func BenchmarkWorkloadGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Config("C1"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension-experiment benchmarks ---------------------------------

// benchExt runs one extension experiment per iteration.
func benchExt(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		if _, err := mustRun(b, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtGap regenerates the optimality-gap study.
func BenchmarkExtGap(b *testing.B) { benchExt(b, "gap") }

// BenchmarkExtAblation regenerates the SSS ablation study.
func BenchmarkExtAblation(b *testing.B) { benchExt(b, "ablation") }

// BenchmarkExtScaling regenerates the mesh-size scaling study.
func BenchmarkExtScaling(b *testing.B) { benchExt(b, "scaling") }

// BenchmarkExtPlacement regenerates the controller-placement study.
func BenchmarkExtPlacement(b *testing.B) { benchExt(b, "placement") }

// BenchmarkExtDynamic regenerates the churn/remapping-policy study.
func BenchmarkExtDynamic(b *testing.B) { benchExt(b, "dynamic") }

// BenchmarkExtLoadSweep regenerates the NoC load characterization.
func BenchmarkExtLoadSweep(b *testing.B) { benchExt(b, "loadsweep") }

// BenchmarkExtTail regenerates the tail-latency study.
func BenchmarkExtTail(b *testing.B) { benchExt(b, "tail") }

// --- Additional microbenchmarks --------------------------------------

// BenchmarkSSSMultiPass times the iterate-to-convergence extension.
func BenchmarkSSSMultiPass(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.SortSelectSwap{Passes: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound times the Hungarian-relaxation bound at N=64.
func BenchmarkLowerBound(b *testing.B) {
	p := paperProblem(b, "C1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.LowerBound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo times the serial draw at the paper's 10^4-sample
// budget. Allocations are reported: the sampler draws every trial into
// one scratch mapping and scores it with a reusable Scorer, so
// allocs/op stays a small constant (clones of improving samples) rather
// than growing with the sample count.
func BenchmarkMonteCarlo(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.MonteCarlo{Samples: 10_000, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBatch compares the SoA batch evaluator against the
// per-mapping Scorer loop it replaces on Monte-Carlo's hot path: 256
// random mappings scored per op, either one at a time or in one
// EvaluateBatch pass over the flattened cost table. Both paths produce
// bit-identical costs (quick.Check-enforced); the batch path trades
// repeated cost-table gathers for a single thread-major stream.
func BenchmarkEvaluateBatch(b *testing.B) {
	p := paperProblem(b, "C1")
	n := p.N()
	const batch = 256
	rng := stats.NewRand(7)
	flat := make(core.Mapping, batch*n)
	ms := make([]core.Mapping, batch)
	for k := range ms {
		ms[k] = flat[k*n : (k+1)*n]
		core.RandomMappingInto(ms[k], rng)
	}
	out := make([]float64, batch)
	b.Run("scorer", func(b *testing.B) {
		sc := p.Scorer(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := range ms {
				out[k] = sc.Score(ms[k])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		be := p.BatchEvaluator(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.EvaluateBatch(ms, out)
		}
	})
}

// BenchmarkAnnealingMap times one simulated-annealing solve at the
// SSS-equivalent 18k-iteration budget (the delta-tracker hot path).
func BenchmarkAnnealingMap(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.Annealing{Iters: 18_000, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloParallel compares the share-nothing fan-out
// against the serial draw at the paper's 10^4-sample budget.
func BenchmarkMonteCarloParallel(b *testing.B) {
	p := paperProblem(b, "C1")
	for _, workers := range []int{1, 4, -1} {
		name := fmt.Sprintf("workers=%d", workers)
		b.Run(name, func(b *testing.B) {
			m := mapping.MonteCarlo{Samples: 10_000, Seed: 1, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Map(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheDrivenSim times the closed-loop hierarchy per simulated
// 10k cycles.
func BenchmarkCacheDrivenSim(b *testing.B) {
	p := paperProblem(b, "C1")
	mp, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultCacheDrivenConfig()
	cfg.Cycles = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.CacheDriven(context.Background(), p, mp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSolve12 times branch and bound on a 12-tile instance.
func BenchmarkExactSolve12(b *testing.B) {
	lm := model.MustNew(mesh.MustNew(3, 4), model.DefaultParams())
	rng := stats.NewRand(5)
	w := &workload.Workload{Name: "bb"}
	for a := 0; a < 2; a++ {
		app := workload.Application{Name: "a"}
		for t := 0; t < 6; t++ {
			c := 1 + rng.Float64()*10
			app.Threads = append(app.Threads, workload.Thread{CacheRate: c, MemRate: 0.2 * c})
		}
		w.Apps = append(w.Apps, app)
	}
	p, err := core.NewProblem(lm, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (mapping.Exact{}).Map(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSeeds regenerates the seed-robustness study.
func BenchmarkExtSeeds(b *testing.B) { benchExt(b, "seeds") }

// BenchmarkExtTopology regenerates the mesh-vs-torus study.
func BenchmarkExtTopology(b *testing.B) { benchExt(b, "topology") }

// BenchmarkExtCapacity regenerates the threads-per-tile study.
func BenchmarkExtCapacity(b *testing.B) { benchExt(b, "capacity") }

// BenchmarkExtBurst regenerates the bursty-traffic robustness study.
func BenchmarkExtBurst(b *testing.B) { benchExt(b, "burst") }

// BenchmarkExtCongestion regenerates the link-load profile study.
func BenchmarkExtCongestion(b *testing.B) { benchExt(b, "congestion") }

// BenchmarkImproveWithBudget times best-first budgeted refinement at a
// 16-migration budget on the 64-tile instance.
func BenchmarkImproveWithBudget(b *testing.B) {
	p := paperProblem(b, "C1")
	base := core.IdentityMapping(p.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapping.ImproveWithBudget(context.Background(), p, base, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicStream times the streaming scheduler end to end on a
// generated 20k-event churn timeline (64 tiles). Each iteration drains
// the whole timeline; the reported dev-APL is the time-weighted
// balance the scheme sustains. The warm row runs warm-started SSS at
// twice the full re-solve's cadence — warm-starting cuts the
// per-attempt cost by ~2.5x, and spending that dividend on density is
// how it beats the full re-solve on both wall-clock and balance (the
// dynstream experiment uses the same pairing).
func BenchmarkDynamicStream(b *testing.B) {
	const events = 20_000
	obj := core.Weighted{Max: 1, Dev: 2}
	cost := sched.CompositeCost{Objective: obj, PerMigration: 0.01}
	schemes := []struct {
		name     string
		rm       sched.Remapper
		interval int64
	}{
		{"place-only", nil, 0},
		{"warm", sched.WarmRemap{SSS: mapping.SortSelectSwap{Objective: obj, MaxStep: 4, Passes: 1}}, 2_500},
		{"full", sched.FullRemap{Mapper: mapping.SortSelectSwap{Objective: obj}}, 5_000},
	}
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			cfg := sched.StreamConfig{
				Placement: &sched.SpiralPlacement{},
				Registry:  obs.NewRegistry(),
			}
			if s.rm != nil {
				cfg.Policy = sched.Every{Interval: s.interval}
				cfg.Remapper = s.rm
				cfg.Cost = cost
			}
			var met sched.StreamMetrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := sched.NewGenerator(sched.GenConfig{Events: events, Tiles: lm.NumTiles(), Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				r, err := sched.NewStreamRunner(lm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				met, err = r.Run(context.Background(), src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(met.TimeWeightedDevAPL, "devAPL")
			b.ReportMetric(float64(met.Remaps), "remaps")
		})
	}
}

// BenchmarkNSGAII times one multi-objective NSGA-II solve over
// {max-APL, dev-APL, energy} at the quick Pareto budget (population 24,
// 20 generations on the 64-tile C1 instance) and reports the front
// size. The solver is strictly sequential — there is no Workers knob —
// so this is also the per-configuration cost the pareto experiment
// pays per cache miss.
func BenchmarkNSGAII(b *testing.B) {
	p := paperProblem(b, "C1")
	m := mapping.NSGAII{Population: 24, Generations: 20, Seed: 1}
	var set core.ParetoSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mapping.MapSetAndCheck(context.Background(), m, p)
		if err != nil {
			b.Fatal(err)
		}
		set = s
	}
	b.ReportMetric(float64(set.Len()), "front-size")
}

// BenchmarkExtPareto regenerates the NSGA-II Pareto-front study.
func BenchmarkExtPareto(b *testing.B) { benchExt(b, "pareto") }
