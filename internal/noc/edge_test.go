package noc

import (
	"testing"
)

// TestDrainDeadlineWithFlitsInRing checks that Drain reports failure
// (rather than hanging or losing events) when its budget expires while
// flits are still sitting in calendar-ring slots: long links keep a
// packet on the wire for many cycles, so a one-cycle budget must trip.
func TestDrainDeadlineWithFlitsInRing(t *testing.T) {
	cfg := testConfig()
	cfg.LinkLatency = 8
	n := MustNew(cfg)
	if err := n.Inject(&Packet{Src: 0, Dst: 15, Type: CacheRequest, App: -1}); err != nil {
		t.Fatal(err)
	}
	// Step until the head flit is actually in flight on a link.
	for i := 0; i < 3 && n.inFlight == 0; i++ {
		n.Step()
	}
	if n.inFlight == 0 {
		t.Fatal("flit never reached a link")
	}
	if err := n.Drain(1); err == nil {
		t.Fatal("Drain(1) succeeded with flits in flight")
	}
	// The network must still be intact: a generous budget finishes the
	// delivery the failed drain left behind.
	if err := n.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().DeliveredPackets; got != 1 {
		t.Fatalf("DeliveredPackets = %d, want 1", got)
	}
}

// TestRingWrapAround runs the cycle counter far past the calendar-ring
// size before injecting, so every ring index involved has wrapped many
// times; scheduling and delivery must be unaffected.
func TestRingWrapAround(t *testing.T) {
	cfg := testConfig()
	cfg.CreditDelay = 2 // exercise the credit ring too
	n := MustNew(cfg)
	if n.arrMask >= 1<<10 {
		t.Fatalf("arrMask = %d; test assumes a small ring", n.arrMask)
	}
	for i := 0; i < 5000; i++ { // >> both ring sizes
		n.Step()
	}
	start := n.Cycle()
	if err := n.Inject(&Packet{Src: 0, Dst: 15, Type: CacheReply, App: -1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.DeliveredPackets != 1 || st.DeliveredFlits != int64(CacheReply.Flits()) {
		t.Fatalf("delivered %d packets / %d flits, want 1 / %d",
			st.DeliveredPackets, st.DeliveredFlits, CacheReply.Flits())
	}
	// 6 hops on the 4x4 mesh: latency must match the uncontended ideal
	// regardless of how late the run started.
	wantLat := int64(6*cfg.PerHopLatency() + CacheReply.Flits() - 1)
	if got := st.ByType[CacheReply].LatencySum; got != wantLat {
		t.Fatalf("latency = %d at start cycle %d, want %d", got, start, wantLat)
	}
}

// TestInjectAfterResetStats checks that a warm-measurement reset starts
// counting from zero and that traffic injected afterwards is fully
// accounted.
func TestInjectAfterResetStats(t *testing.T) {
	n := MustNew(testConfig())
	if err := n.Inject(&Packet{Src: 0, Dst: 5, Type: CacheRequest, App: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	n.ResetStats()
	if st := n.Stats(); st.InjectedPackets != 0 || st.DeliveredPackets != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if err := n.Inject(&Packet{Src: 3, Dst: 12, Type: MemRequest, App: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.InjectedPackets != 1 || st.DeliveredPackets != 1 {
		t.Fatalf("post-reset counts = %d injected / %d delivered, want 1 / 1",
			st.InjectedPackets, st.DeliveredPackets)
	}
	if st.ByType[MemRequest].Packets != 1 || st.ByType[CacheRequest].Packets != 0 {
		t.Fatalf("per-type stats leaked across reset: %+v", st.ByType)
	}
}

// TestPacketPoolRecycling checks the AllocPacket contract: delivered
// pooled packets come back zeroed on the free list, and callers'
// &Packet{} packets never enter the pool.
func TestPacketPoolRecycling(t *testing.T) {
	n := MustNew(testConfig())
	p := n.AllocPacket()
	p.Src, p.Dst, p.Type, p.App = 0, 15, CacheRequest, -1
	if err := n.Inject(p); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	if len(n.pool) != 1 {
		t.Fatalf("pool holds %d packets after delivery, want 1", len(n.pool))
	}
	q := n.AllocPacket()
	if q != p {
		t.Error("AllocPacket did not reuse the recycled packet")
	}
	if q.ID != 0 || q.Src != 0 || q.Dst != 0 || q.Hops != 0 || q.UserData != nil {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}

	n2 := MustNew(testConfig())
	manual := &Packet{Src: 0, Dst: 15, Type: CacheRequest, App: -1}
	if err := n2.Inject(manual); err != nil {
		t.Fatal(err)
	}
	if err := n2.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	if len(n2.pool) != 0 {
		t.Fatal("caller-owned packet was captured by the pool")
	}
	if manual.Latency() <= 0 {
		t.Fatal("caller-owned packet lost its delivery record")
	}
}

// TestVCBufferWrap streams multi-flit packets through BufDepth-2
// buffers so every circular buffer wraps repeatedly; flit conservation
// and in-order delivery must hold.
func TestVCBufferWrap(t *testing.T) {
	cfg := testConfig()
	cfg.BufDepth = 2
	n := MustNew(cfg)
	var order []uint64
	n.SetDeliveryHandler(func(p *Packet) { order = append(order, p.ID) })
	const packets = 8
	for i := 0; i < packets; i++ {
		if err := n.Inject(&Packet{Src: 1, Dst: 14, Type: CacheReply, App: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(50_000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.DeliveredFlits != int64(packets*CacheReply.Flits()) {
		t.Fatalf("DeliveredFlits = %d, want %d", st.DeliveredFlits, packets*CacheReply.Flits())
	}
	if len(order) != packets {
		t.Fatalf("delivered %d packets, want %d", len(order), packets)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("same-flow packets reordered: %v", order)
		}
	}
	if got := n.Occupancy(); got != 0 {
		t.Fatalf("occupancy after drain = %d, want 0", got)
	}
}

// TestStatsSnapshotIndependence checks Network.Stats deep-copies the
// histogram storage: a snapshot's percentiles must not move when the
// simulation keeps running.
func TestStatsSnapshotIndependence(t *testing.T) {
	n := MustNew(testConfig())
	inject := func() {
		if err := n.Inject(&Packet{Src: 0, Dst: 15, Type: CacheRequest, App: 0}); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(10_000); err != nil {
			t.Fatal(err)
		}
	}
	inject()
	snap := n.Stats()
	before := snap.AppPercentile(0, 99)
	count := snap.HistByApp[0].Count()
	for i := 0; i < 50; i++ {
		inject()
	}
	if got := snap.AppPercentile(0, 99); got != before {
		t.Fatalf("snapshot percentile moved: %v -> %v", before, got)
	}
	if got := snap.HistByApp[0].Count(); got != count {
		t.Fatalf("snapshot histogram count moved: %d -> %d", count, got)
	}
	if live := n.Stats().HistByApp[0].Count(); live != count+50 {
		t.Fatalf("live histogram count = %d, want %d", live, count+50)
	}
}
