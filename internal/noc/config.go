// Package noc is a flit-level simulator of the paper's evaluation
// network (Table 2): a 2D mesh of canonical 3-stage credit-based
// wormhole routers with virtual channels, XY dimension-order routing and
// look-ahead routing optimization. It substitutes for the Garnet
// simulator used by the paper (see DESIGN.md, substitution 2).
//
// # Timing model
//
// A flit arriving at a router over a link becomes eligible for switch
// allocation RouterLatency-1 cycles later (buffer write plus VC/switch
// allocation stages; route computation is folded into the previous hop's
// pipeline, the look-ahead optimization), then spends one cycle in
// switch traversal and LinkLatency cycles on the wire. An uncontended
// hop therefore costs exactly RouterLatency + LinkLatency cycles.
// Source injection bypasses the source router's pipeline (the NI writes
// directly into the local input stage), and ejection consumes the flit
// at its switch-allocation grant, so an uncontended H-hop single-flit
// packet takes H*(RouterLatency+LinkLatency) cycles end to end — the
// exact per-hop form of the paper's eq. (2) — and an L-flit packet adds
// L-1 cycles of serialization.
//
// # Simplifications (documented)
//
// Credits are returned instantaneously rather than after a wire delay;
// this only matters within a couple of cycles of saturation, far beyond
// the loads the paper evaluates. Routers arbitrate round-robin. A
// virtual channel is considered free for allocation when it has no
// owner and its buffer has drained.
package noc

import (
	"fmt"
	"runtime"

	"obm/internal/mesh"
)

// Class partitions virtual channels by protocol message class to break
// protocol deadlock cycles (requests must not block replies).
type Class int

// Protocol classes used by the CMP traffic model.
const (
	// ClassRequest carries cache and memory request packets.
	ClassRequest Class = iota
	// ClassResponse carries data reply packets.
	ClassResponse
	// ClassCoherence carries forwarding/invalidation traffic.
	ClassCoherence

	// NumClasses is the number of protocol classes.
	NumClasses = 3
)

// Config holds the microarchitectural parameters of the network.
type Config struct {
	// Rows and Cols give the mesh dimensions.
	Rows, Cols int
	// VCsPerClass is the number of virtual channels per protocol class on
	// every input port (Table 2: 3 VCs per protocol class).
	VCsPerClass int
	// BufDepth is the per-VC input buffer depth in flits (Table 2: 5).
	BufDepth int
	// RouterLatency is the router pipeline depth in cycles (Table 2:
	// 3-stage).
	RouterLatency int
	// LinkLatency is the wire traversal latency in cycles.
	LinkLatency int
	// Routing selects the dimension order (default RoutingXY, the
	// paper's choice).
	Routing Routing
	// Torus adds wrap-around links in both dimensions. Deadlock freedom
	// on the rings uses dateline virtual-channel layers, so torus mode
	// requires VCsPerClass >= 2 (the class's VCs split into a
	// pre-dateline and a post-dateline layer).
	Torus bool
	// CreditDelay is the wire delay in cycles before a freed buffer slot
	// becomes visible upstream. 0 models instantaneous credits (the
	// documented default simplification); realistic routers see 1-2
	// cycles, which only matters near saturation.
	CreditDelay int
	// Workers selects the intra-simulation step engine: 0 or 1 keeps the
	// single-threaded path (the preserved default), >= 2 shards the
	// per-cycle phases of Step across that many worker goroutines, and a
	// negative value selects GOMAXPROCS. The worker count is capped at
	// Rows (rows are the sharding unit). Results are bit-identical to the
	// serial engine for every worker count — Workers is a throughput
	// knob, never a model parameter — and it is deliberately excluded
	// from fingerprints and cache keys. Networks built with Workers >= 2
	// own a goroutine pool; call Close when done with them.
	Workers int
}

// Routing selects the deterministic dimension-order variant. Both are
// minimal and deadlock-free on a mesh with class-partitioned VCs.
type Routing int

// Routing algorithms.
const (
	// RoutingXY resolves the X (column) dimension first — the paper's
	// dimension-order routing.
	RoutingXY Routing = iota
	// RoutingYX resolves the Y (row) dimension first.
	RoutingYX
)

func (r Routing) String() string {
	switch r {
	case RoutingXY:
		return "XY"
	case RoutingYX:
		return "YX"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// DefaultConfig returns the paper's Table 2 network: 8x8 mesh, 3-stage
// routers, 5-flit buffers, 3 VCs per class, single-cycle links.
func DefaultConfig() Config {
	return Config{
		Rows:          8,
		Cols:          8,
		VCsPerClass:   3,
		BufDepth:      5,
		RouterLatency: 3,
		LinkLatency:   1,
	}
}

// Validate reports an error for configurations the simulator cannot run.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Rows, c.Cols)
	case c.VCsPerClass <= 0:
		return fmt.Errorf("noc: need at least one VC per class, got %d", c.VCsPerClass)
	case c.VCsPerClass*int(NumClasses) > 64:
		// The router tracks per-port VC occupancy in a 64-bit mask.
		return fmt.Errorf("noc: at most 64 VCs per port, got %d", c.VCsPerClass*int(NumClasses))
	case c.BufDepth <= 0:
		return fmt.Errorf("noc: need positive buffer depth, got %d", c.BufDepth)
	case c.RouterLatency < 1:
		return fmt.Errorf("noc: router latency must be >= 1, got %d", c.RouterLatency)
	case c.LinkLatency < 1:
		return fmt.Errorf("noc: link latency must be >= 1, got %d", c.LinkLatency)
	case c.Routing != RoutingXY && c.Routing != RoutingYX:
		return fmt.Errorf("noc: unknown routing %d", int(c.Routing))
	case c.Torus && c.VCsPerClass < 2:
		return fmt.Errorf("noc: torus needs >= 2 VCs per class for dateline layers, got %d", c.VCsPerClass)
	case c.Torus && (c.Rows < 2 || c.Cols < 2):
		return fmt.Errorf("noc: torus needs both dimensions >= 2, got %dx%d", c.Rows, c.Cols)
	case c.CreditDelay < 0:
		return fmt.Errorf("noc: negative credit delay %d", c.CreditDelay)
	}
	return nil
}

// VCs returns the total number of virtual channels per input port.
func (c Config) VCs() int { return c.VCsPerClass * int(NumClasses) }

// workerCount resolves Workers to an effective worker count: 0/1 →
// serial, negative → GOMAXPROCS, always capped at Rows (a worker owns
// whole rows, so extra workers would idle).
func (c Config) workerCount() int {
	w := c.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Rows {
		w = c.Rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PerHopLatency returns the uncontended per-hop latency in cycles.
func (c Config) PerHopLatency() int { return c.RouterLatency + c.LinkLatency }

// vcRange returns the half-open VC index range [lo, hi) owned by class
// cl.
func (c Config) vcRange(cl Class) (lo, hi int) {
	lo = int(cl) * c.VCsPerClass
	return lo, lo + c.VCsPerClass
}

// Port identifies one of a router's five ports.
type Port int

// Router ports. Local connects the router to its tile's network
// interface.
const (
	Local Port = iota
	North
	East
	South
	West
	numPorts
)

func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// opposite returns the port on the neighbouring router that a flit
// leaving through p arrives on.
func (p Port) opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// xyRoute computes the output port for a packet at router cur heading to
// dst under XY dimension-order routing (X/column first).
func xyRoute(m *mesh.Mesh, cur, dst mesh.Tile) Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.Col > cc.Col:
		return East
	case cd.Col < cc.Col:
		return West
	case cd.Row > cc.Row:
		return South
	case cd.Row < cc.Row:
		return North
	default:
		return Local
	}
}

// yxRoute resolves the row dimension first.
func yxRoute(m *mesh.Mesh, cur, dst mesh.Tile) Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.Row > cc.Row:
		return South
	case cd.Row < cc.Row:
		return North
	case cd.Col > cc.Col:
		return East
	case cd.Col < cc.Col:
		return West
	default:
		return Local
	}
}

// route dispatches on the configured algorithm and topology.
func (c Config) route(m *mesh.Mesh, cur, dst mesh.Tile) Port {
	if c.Torus {
		return torusRoute(m, cur, dst, c.Routing == RoutingYX)
	}
	if c.Routing == RoutingYX {
		return yxRoute(m, cur, dst)
	}
	return xyRoute(m, cur, dst)
}

// torusDir picks the direction along one ring: the shorter way around,
// ties to the positive direction (deterministic minimal routing).
// Returns 0 when already aligned, +1 for the positive direction, -1 for
// the negative.
func torusDir(cur, dst, size int) int {
	if cur == dst {
		return 0
	}
	forward := ((dst - cur) + size) % size
	backward := size - forward
	if forward <= backward {
		return 1
	}
	return -1
}

// torusRoute is dimension-order routing on the torus: resolve one
// dimension completely (shorter way around its ring), then the other.
func torusRoute(m *mesh.Mesh, cur, dst mesh.Tile, yxOrder bool) Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	colPort := func() Port {
		switch torusDir(cc.Col, cd.Col, m.Cols()) {
		case 1:
			return East
		case -1:
			return West
		}
		return Local
	}
	rowPort := func() Port {
		switch torusDir(cc.Row, cd.Row, m.Rows()) {
		case 1:
			return South
		case -1:
			return North
		}
		return Local
	}
	first, second := colPort, rowPort
	if yxOrder {
		first, second = rowPort, colPort
	}
	if p := first(); p != Local {
		return p
	}
	return second()
}

// dimOf returns the dimension a port moves in: 0 for X (E/W), 1 for Y
// (N/S), -1 for Local.
func dimOf(p Port) int {
	switch p {
	case East, West:
		return 0
	case North, South:
		return 1
	default:
		return -1
	}
}
