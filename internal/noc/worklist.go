package noc

import "math/bits"

// rowWorklist tracks the set of active tiles (routers with buffered
// flits, NIs with injection backlog) as one bitmap per mesh row plus a
// per-row population count. It replaces the old sorted-slice worklists
// whose insertSorted cost O(n) copies per activation: add and clear are
// now a single masked OR/AND-NOT, and iteration via TrailingZeros64
// still visits tiles in exactly ascending id order (row-major words,
// ascending bits), which is what keeps fixed-seed runs bit-identical.
//
// The row-major layout is deliberate: every row owns a disjoint word
// range and counter, so the parallel step engine can mark and compact
// rows from different workers without sharing a cache line of bitmap
// state (each worker only touches the rows it owns).
type rowWorklist struct {
	cols int
	wpr  int      // words per row: ceil(cols/64)
	bits []uint64 // rows * wpr words, row-major
	cnt  []int32  // active tiles per row
}

func newRowWorklist(rows, cols int) *rowWorklist {
	wpr := (cols + 63) >> 6
	return &rowWorklist{
		cols: cols,
		wpr:  wpr,
		bits: make([]uint64, rows*wpr),
		cnt:  make([]int32, rows),
	}
}

// add marks tile (row, col) active. Callers guard with a queued flag,
// so a tile is never added twice.
func (w *rowWorklist) add(row, col int) {
	w.bits[row*w.wpr+(col>>6)] |= 1 << uint(col&63)
	w.cnt[row]++
}

// clear removes tile (row, col).
func (w *rowWorklist) clear(row, col int) {
	w.bits[row*w.wpr+(col>>6)] &^= 1 << uint(col&63)
	w.cnt[row]--
}

// rowCount returns the number of active tiles in row.
func (w *rowWorklist) rowCount(row int) int32 { return w.cnt[row] }

// total returns the number of active tiles. The per-row counters are a
// short array (one int32 per mesh row), so this is a handful of adds —
// cheap enough for the idle-cycle early-out.
func (w *rowWorklist) total() int {
	var t int32
	for _, c := range w.cnt {
		t += c
	}
	return int(t)
}

// appendRow appends the active tile ids of row to dst in ascending
// order and returns the extended slice.
func (w *rowWorklist) appendRow(dst []int32, row int) []int32 {
	base := int32(row * w.cols)
	off := row * w.wpr
	for wi := 0; wi < w.wpr; wi++ {
		word := w.bits[off+wi]
		wb := base + int32(wi<<6)
		for word != 0 {
			dst = append(dst, wb+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// anyID calls f on active tile ids in ascending order until f reports
// done, and returns whether it did. Used by Busy-style probes that
// want early exit without materializing the id list.
func (w *rowWorklist) anyID(f func(id int32) bool) bool {
	for row := range w.cnt {
		if w.cnt[row] == 0 {
			continue
		}
		base := int32(row * w.cols)
		off := row * w.wpr
		for wi := 0; wi < w.wpr; wi++ {
			word := w.bits[off+wi]
			wb := base + int32(wi<<6)
			for word != 0 {
				if f(wb + int32(bits.TrailingZeros64(word))) {
					return true
				}
				word &= word - 1
			}
		}
	}
	return false
}
