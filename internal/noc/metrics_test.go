package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/obs"
	"obm/internal/stats"
)

// TestMetricsMatchStats pins the flush invariant: after a simulation's
// final Stats snapshot, the registry deltas for cycles and flits equal
// the snapshot's own totals exactly — the obs view and the simulator's
// existing Stats view can never disagree.
func TestMetricsMatchStats(t *testing.T) {
	before := obs.Default().Snapshot()
	bNets, _ := before.Counter("noc.networks.created")
	bCycles, _ := before.Counter("noc.cycles.stepped")
	bInj, _ := before.Counter("noc.flits.injected")
	bDel, _ := before.Counter("noc.flits.delivered")

	n := MustNew(testConfig())
	rng := stats.NewRand(7)
	tiles := n.Mesh().NumTiles()
	for i := 0; i < 200; i++ {
		pt := CacheRequest
		if i%3 == 0 {
			pt = CacheReply
		}
		p := &Packet{Src: mesh.Tile(rng.Intn(tiles)), Dst: mesh.Tile(rng.Intn(tiles)), Type: pt, App: 0}
		if err := n.Inject(p); err != nil {
			t.Fatal(err)
		}
		n.Step()
	}
	if err := n.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	s := n.Stats() // flushes

	after := obs.Default().Snapshot()
	aNets, _ := after.Counter("noc.networks.created")
	aCycles, _ := after.Counter("noc.cycles.stepped")
	aInj, _ := after.Counter("noc.flits.injected")
	aDel, _ := after.Counter("noc.flits.delivered")
	if got := aNets - bNets; got != 1 {
		t.Errorf("networks.created delta = %d, want 1", got)
	}
	if got, want := aCycles-bCycles, uint64(s.Cycles); got != want {
		t.Errorf("cycles delta = %d, want Stats total %d", got, want)
	}
	if got, want := aInj-bInj, uint64(s.InjectedFlits); got != want {
		t.Errorf("injected-flit delta = %d, want Stats total %d", got, want)
	}
	if got, want := aDel-bDel, uint64(s.DeliveredFlits); got != want {
		t.Errorf("delivered-flit delta = %d, want Stats total %d", got, want)
	}
	if peak, ok := after.Gauge("noc.eventring.peak_inflight"); !ok || peak <= 0 {
		t.Errorf("eventring peak = %d,%v; traffic flowed, want > 0", peak, ok)
	}

	// Repeated snapshots flush only deltas: an immediate second Stats
	// adds nothing.
	_ = n.Stats()
	again := obs.Default().Snapshot()
	if v, _ := again.Counter("noc.flits.injected"); v != aInj {
		t.Errorf("idle re-snapshot moved injected counter %d -> %d", aInj, v)
	}
}

// TestMetricsResetStatsDiscardsWarmup checks the ResetStats contract:
// the warmup window disappears from the registry totals just as it
// does from Stats, so the two views stay equal, while cycle counting
// (which ResetStats does not rewind) keeps the full span.
func TestMetricsResetStatsDiscardsWarmup(t *testing.T) {
	before := obs.Default().Snapshot()
	bInj, _ := before.Counter("noc.flits.injected")
	bCycles, _ := before.Counter("noc.cycles.stepped")

	n := MustNew(testConfig())
	inject := func(k int) {
		for i := 0; i < k; i++ {
			if err := n.Inject(&Packet{Src: 0, Dst: 15, Type: CacheRequest, App: 0}); err != nil {
				t.Fatal(err)
			}
			n.Step()
		}
	}
	inject(50) // warmup traffic, never flushed
	if err := n.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	n.ResetStats()
	inject(30) // measured window
	if err := n.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()

	after := obs.Default().Snapshot()
	aInj, _ := after.Counter("noc.flits.injected")
	aCycles, _ := after.Counter("noc.cycles.stepped")
	if got, want := aInj-bInj, uint64(s.InjectedFlits); got != want {
		t.Errorf("injected delta = %d, want measured-window total %d (warmup discarded)", got, want)
	}
	if got, want := aCycles-bCycles, uint64(s.Cycles); got != want {
		t.Errorf("cycles delta = %d, want full span %d", got, want)
	}
}
