package noc

import (
	"math/bits"

	"obm/internal/mesh"
)

// vcBuffer is one virtual-channel input buffer and its wormhole state.
// The flit queue is a fixed-capacity circular buffer sized by
// Config.BufDepth (credit flow control guarantees it never overflows),
// so steady-state push/pop never allocates, shifts, or grows.
type vcBuffer struct {
	buf  []flit
	head int
	n    int
	// outPort is the routed output port of the packet currently flowing
	// through this VC; -1 when idle.
	outPort Port
	// outVC is the downstream VC allocated to that packet; -1 until VC
	// allocation succeeds (and meaningless for Local ejection).
	outVC int
	// routed reports whether outPort is valid.
	routed bool
}

func (v *vcBuffer) empty() bool { return v.n == 0 }

func (v *vcBuffer) front() *flit {
	if v.n == 0 {
		return nil
	}
	return &v.buf[v.head]
}

func (v *vcBuffer) push(f flit) {
	if v.n == len(v.buf) {
		panic("noc: VC buffer overflow (credit accounting broken)")
	}
	i := v.head + v.n
	if i >= len(v.buf) {
		i -= len(v.buf)
	}
	v.buf[i] = f
	v.n++
}

func (v *vcBuffer) pop() flit {
	f := v.buf[v.head]
	// Drop the packet reference so the recycled slot cannot alias a
	// pooled packet's next life.
	v.buf[v.head].pkt = nil
	v.head++
	if v.head == len(v.buf) {
		v.head = 0
	}
	v.n--
	return f
}

// router is one mesh router: five input ports of VCs, per-output credit
// and ownership tracking toward each neighbour, and round-robin
// arbitration state.
type router struct {
	id mesh.Tile
	n  *Network
	// row, col cache the mesh coordinates: the worklist bitmaps and the
	// parallel engine's row ownership are keyed by them.
	row, col int
	in       [numPorts][]vcBuffer
	// occ counts buffered flits across all input VCs; idle routers
	// (occ == 0) skip the per-cycle allocation scans entirely, which is
	// what makes paper-scale loads (~0.25 packets/cycle chip-wide)
	// simulate quickly. portOcc breaks the count down by input port so
	// the allocation scans skip empty ports.
	occ     int
	portOcc [numPorts]int
	// occMask[p] has bit v set when input VC v of port p holds flits,
	// letting gather enumerate occupied VCs with one bit-scan per VC
	// instead of probing every buffer (Config.Validate caps VCs at 64).
	occMask [numPorts]uint64
	// cand is scratch space listing the occupied (port, vc) flattened
	// indices, rebuilt once per cycle so the allocation stages scan only
	// real work instead of every buffer.
	cand []int
	// outReq[p] counts candidate VCs routed toward output port p this
	// cycle and vaNeed[p] flags ports where some ready head still lacks
	// a downstream VC — both rebuilt by routeHeads so the allocation and
	// arbitration stages skip ports nobody is requesting (at paper-scale
	// loads a busy router usually feeds exactly one output).
	outReq [numPorts]uint8
	vaNeed [numPorts]bool
	// vcs and total cache cfg.VCs() and numPorts*vcs.
	vcs, total int
	// queued reports whether this router is on the network's active
	// worklist (set on the first accepted flit, cleared when the
	// worklist compaction sees occ == 0).
	queued bool
	// credits[p][v] is the number of free slots in neighbour(p)'s input
	// VC v (the port facing us). Meaningless for Local.
	credits [numPorts][]int
	// owned[p][v] reports whether we currently hold downstream VC v on
	// output port p for an in-flight packet.
	owned [numPorts][]bool
	// neighbors[p] is the router reached through output port p, nil at
	// mesh edges and for Local.
	neighbors [numPorts]*router
	// saPtr[p] is the round-robin pointer (over input port*VCs+vc) for
	// switch allocation on output port p.
	saPtr [numPorts]int
	// vaPtr[p] is the round-robin pointer for VC allocation on output
	// port p.
	vaPtr [numPorts]int
}

// linkWraps reports whether output port p of this router is a
// wrap-around (dateline) link of its ring.
func (r *router) linkWraps(p Port) bool {
	if !r.n.cfg.Torus {
		return false
	}
	c := r.n.mesh.Coord(r.id)
	switch p {
	case East:
		return c.Col == r.n.cfg.Cols-1
	case West:
		return c.Col == 0
	case South:
		return c.Row == r.n.cfg.Rows-1
	case North:
		return c.Row == 0
	default:
		return false
	}
}

// vcLayerFor returns the dateline layer a packet must use on output
// port p: its current layer while continuing in the same dimension
// (reset on a dimension switch), promoted to the post-dateline layer
// when the link itself crosses the dateline.
func (r *router) vcLayerFor(p Port, pkt *Packet) int {
	layer := 0
	if int8(dimOf(p)) == pkt.curDim {
		layer = int(pkt.layer)
	}
	if r.linkWraps(p) {
		layer = 1
	}
	return layer
}

// allowedVCs returns the downstream VC index range a packet may be
// allocated on output port p: its protocol class's range, halved into
// dateline layers in torus mode.
func (r *router) allowedVCs(p Port, pkt *Packet) (lo, hi int) {
	lo, hi = r.n.cfg.vcRange(pkt.Type.Class())
	if !r.n.cfg.Torus {
		return lo, hi
	}
	mid := lo + (hi-lo)/2
	if r.vcLayerFor(p, pkt) == 0 {
		return lo, mid
	}
	return mid, hi
}

func newRouter(id mesh.Tile, n *Network) *router {
	r := &router{id: id, n: n, row: int(id) / n.cfg.Cols, col: int(id) % n.cfg.Cols}
	vcs := n.cfg.VCs()
	r.vcs = vcs
	r.total = int(numPorts) * vcs
	for p := Port(0); p < numPorts; p++ {
		r.in[p] = make([]vcBuffer, vcs)
		for v := range r.in[p] {
			r.in[p][v].buf = make([]flit, n.cfg.BufDepth)
			r.in[p][v].outPort = -1
			r.in[p][v].outVC = -1
		}
		r.credits[p] = make([]int, vcs)
		r.owned[p] = make([]bool, vcs)
		for v := range r.credits[p] {
			r.credits[p][v] = n.cfg.BufDepth
		}
	}
	return r
}

// accept places a flit arriving over a link (or from the NI) into input
// VC (port, vc), putting the router on the active worklist if idle.
func (r *router) accept(p Port, vc int, f flit) {
	r.in[p][vc].push(f)
	r.occ++
	r.portOcc[p]++
	r.occMask[p] |= 1 << uint(vc)
	if !r.queued {
		r.queued = true
		r.n.markRouterActive(r)
	}
}

// vcFree reports whether downstream VC v on output port p can be
// allocated to a new packet: nobody owns it and its buffer has fully
// drained (all credits returned).
func (r *router) vcFree(p Port, v int) bool {
	return !r.owned[p][v] && r.credits[p][v] == r.n.cfg.BufDepth
}

// gather rebuilds the occupied-VC candidate list for this cycle by
// scanning the occupancy bitmasks, routes any newly exposed heads (the
// look-ahead route step), and rebuilds the per-output demand counters
// the allocation and arbitration stages use to skip idle ports.
func (r *router) gather(now int64) {
	r.cand = r.cand[:0]
	r.outReq = [numPorts]uint8{}
	r.vaNeed = [numPorts]bool{}
	for p := Port(0); p < numPorts; p++ {
		occ := r.occMask[p]
		if occ == 0 {
			continue
		}
		base := int(p) * r.vcs
		for occ != 0 {
			v := bits.TrailingZeros64(occ)
			occ &= occ - 1
			r.cand = append(r.cand, base+v)
			b := &r.in[p][v]
			f := b.front()
			if !b.routed {
				if !f.isHead() {
					continue
				}
				b.outPort = r.n.cfg.route(r.n.mesh, r.id, f.pkt.Dst)
				b.routed = true
			}
			r.outReq[b.outPort]++
			if b.outVC < 0 && b.outPort != Local && f.isHead() && f.ready <= now {
				r.vaNeed[b.outPort] = true
			}
		}
	}
}

// rotatedScan visits the candidate indices starting at the first one
// >= start (wrapping), calling f until it reports done. This preserves
// the round-robin pointer semantics over the sparse candidate list.
func rotatedScan(cand []int, start int, f func(idx int) (done bool)) {
	for _, idx := range cand {
		if idx >= start && f(idx) {
			return
		}
	}
	for _, idx := range cand {
		if idx < start && f(idx) {
			return
		}
	}
}

// allocateVCs performs VC allocation for head flits that are routed but
// lack a downstream VC; round-robin over requesting input VCs. Ports
// with no pending request (vaNeed, set by routeHeads) are skipped.
func (r *router) allocateVCs(now int64) {
	for p := Port(1); p < numPorts; p++ { // Local needs no VC
		if !r.vaNeed[p] || r.neighbors[p] == nil {
			continue
		}
		rotatedScan(r.cand, r.vaPtr[p], func(idx int) bool {
			inPort := Port(idx / r.vcs)
			inVC := idx % r.vcs
			b := &r.in[inPort][inVC]
			f := b.front()
			if f == nil || !f.isHead() || f.ready > now || !b.routed || b.outPort != p || b.outVC >= 0 {
				return false
			}
			lo, hi := r.allowedVCs(p, f.pkt)
			for v := lo; v < hi; v++ {
				if r.vcFree(p, v) {
					b.outVC = v
					r.owned[p][v] = true
					r.vaPtr[p] = (idx + 1) % r.total
					break
				}
			}
			return false
		})
	}
}

// arbitrate performs switch allocation and traversal for one output
// port: at most one flit crosses per output per cycle and at most one
// leaves each input port (crossbar constraint). inputUsed is shared
// across the router's output ports for the cycle.
func (r *router) arbitrate(now int64, p Port, inputUsed *[numPorts]bool) {
	if r.outReq[p] == 0 {
		return // nobody routed toward this output this cycle
	}
	rotatedScan(r.cand, r.saPtr[p], func(idx int) bool {
		inPort := Port(idx / r.vcs)
		if inputUsed[inPort] {
			return false
		}
		inVC := idx % r.vcs
		b := &r.in[inPort][inVC]
		f := b.front()
		if f == nil || f.ready > now || !b.routed || b.outPort != p {
			return false
		}
		if p == Local {
			// Ejection: consume the flit now. dequeue returns the popped
			// flit by value; the front pointer is invalidated by the pop.
			granted := r.dequeue(inPort, inVC)
			inputUsed[inPort] = true
			r.saPtr[p] = (idx + 1) % r.total
			r.n.ejectArb(r, now, granted.pkt, granted.seq)
			return true
		}
		if b.outVC < 0 || r.credits[p][b.outVC] == 0 {
			return false // head awaiting VC, or no credit downstream
		}
		outVC := b.outVC
		granted := r.dequeue(inPort, inVC)
		inputUsed[inPort] = true
		r.saPtr[p] = (idx + 1) % r.total
		r.credits[p][outVC]--
		if granted.isTail() {
			r.owned[p][outVC] = false
		}
		r.n.sendFlit(now, r, p, outVC, granted)
		return true
	})
}

// dequeue removes and returns the front flit of input VC (port, vc),
// returns a credit upstream, and resets the VC's wormhole state after a
// tail.
func (r *router) dequeue(p Port, vc int) flit {
	b := &r.in[p][vc]
	f := b.pop()
	r.occ--
	r.portOcc[p]--
	if b.n == 0 {
		r.occMask[p] &^= 1 << uint(vc)
	}
	if p != Local {
		if up := r.neighbors[p]; up != nil {
			r.n.returnCredit(r, up, p.opposite(), vc)
		}
	} else {
		r.n.nis[r.id].creditReturn(vc)
	}
	if f.isTail() {
		b.outPort = -1
		b.outVC = -1
		b.routed = false
	}
	return f
}

// occupancy returns the number of buffered flits across all input VCs,
// used by the conservation tests.
func (r *router) occupancy() int { return r.occ }
