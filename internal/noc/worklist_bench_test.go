package noc

import (
	"fmt"
	"sort"
	"testing"

	"obm/internal/stats"
)

// insertSortedIDs is the O(n) sorted-insert the active worklists used
// before the bitmap rowWorklist replaced it, kept here as the benchmark
// baseline. Duplicates are skipped, matching the old mark-if-absent
// semantics.
func insertSortedIDs(list []int32, id int32) []int32 {
	i := sort.Search(len(list), func(k int) bool { return list[k] >= id })
	if i < len(list) && list[i] == id {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// BenchmarkWorklist compares the bitmap rowWorklist against the sorted
// slice it replaced, across fan-in levels: each op marks fanin distinct
// ids of an 8x8 mesh in shuffled order (worst case for sorted insert,
// which pays O(n) memmove per out-of-order arrival) and then drains
// them in ascending id order, exactly the per-cycle pattern of the step
// loop. The bitmap's add is O(1) and its drain a TrailingZeros64 scan,
// so it must not regress at high fan-in — the regime the sorted insert
// degraded in — while staying comparable at low fan-in.
func BenchmarkWorklist(b *testing.B) {
	const rows, cols = 8, 8
	rng := stats.NewRand(99)
	for _, fanin := range []int{4, 16, 64} {
		ids := make([]int32, rows*cols)
		for i := range ids {
			ids[i] = int32(i)
		}
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		ids = ids[:fanin]

		b.Run(fmt.Sprintf("bitmap/fanin=%d", fanin), func(b *testing.B) {
			wl := newRowWorklist(rows, cols)
			scratch := make([]int32, 0, cols)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					wl.add(int(id)/cols, int(id)%cols)
				}
				var sink int32
				for r := 0; r < rows; r++ {
					scratch = wl.appendRow(scratch[:0], r)
					for _, id := range scratch {
						sink += id
						wl.clear(int(id)/cols, int(id)%cols)
					}
				}
				if sink < 0 {
					b.Fatal("impossible")
				}
			}
		})
		b.Run(fmt.Sprintf("sorted/fanin=%d", fanin), func(b *testing.B) {
			list := make([]int32, 0, rows*cols)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				list = list[:0]
				for _, id := range ids {
					list = insertSortedIDs(list, id)
				}
				var sink int32
				for _, id := range list {
					sink += id
				}
				if sink < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}
