package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

// fingerprintStats folds every observable statistic of a simulation —
// counters, per-type and per-app aggregates, link flit counts, and
// histogram shape — into one FNV-1a style hash. The golden tests pin
// these hashes so hot-path refactors (calendar queues, circular flit
// buffers, active-router worklists, packet pooling) provably do not
// change simulated behaviour bit-for-bit.
func fingerprintStats(st Stats) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	mix(st.Cycles)
	mix(st.InjectedPackets)
	mix(st.DeliveredPackets)
	mix(st.InjectedFlits)
	mix(st.DeliveredFlits)
	mix(st.FlitHops)
	mix(st.QueuingSum)
	mix(st.LocalDeliveries)
	for _, ts := range st.ByType {
		mix(ts.Packets)
		mix(ts.LatencySum)
		mix(ts.HopSum)
	}
	for _, row := range st.LinkFlits {
		for _, f := range row {
			mix(f)
		}
	}
	for _, ts := range st.ByApp {
		mix(ts.Packets)
		mix(ts.LatencySum)
		mix(ts.HopSum)
	}
	for i := range st.HistByApp {
		hg := &st.HistByApp[i]
		mix(hg.Count())
		mix(int64(hg.Percentile(50)))
		mix(int64(hg.Percentile(95)))
		mix(int64(hg.Percentile(99)))
	}
	return h
}

// goldenRun drives cfg with a seeded Bernoulli workload for cycles
// cycles, drains, and returns the stats fingerprint.
func goldenRun(t *testing.T, cfg Config, seed uint64, rate float64, cycles int) uint64 {
	t.Helper()
	n := MustNew(cfg)
	defer n.Close()
	m := n.Mesh()
	rng := stats.NewRand(seed)
	types := []PacketType{CacheRequest, CacheReply, CacheForward, MemRequest, MemReply, Writeback}
	for cyc := 0; cyc < cycles; cyc++ {
		for _, src := range m.Tiles() {
			if rng.Float64() < rate {
				dst := mesh.Tile(rng.Intn(m.NumTiles()))
				pt := types[rng.Intn(len(types))]
				app := rng.Intn(3)
				if err := n.Inject(&Packet{Src: src, Dst: dst, Type: pt, App: app}); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	if err := n.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	return fingerprintStats(n.Stats())
}

// TestGoldenDeterminism pins fixed-seed statistics fingerprints captured
// from the pre-calendar-queue simulator (map-bucketed events, slice
// shifting flit queues, full-router scans). Any divergence means the
// hot-path rework changed simulated behaviour, not just its speed.
func TestGoldenDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		cfg    func() Config
		seed   uint64
		rate   float64
		cycles int
		want   uint64
	}{
		{
			name:   "mesh8x8-default",
			cfg:    DefaultConfig,
			seed:   12345,
			rate:   0.02,
			cycles: 4000,
			want:   15862206071943193983,
		},
		{
			name: "mesh4x4-creditdelay-yx",
			cfg: func() Config {
				c := DefaultConfig()
				c.Rows, c.Cols = 4, 4
				c.CreditDelay = 2
				c.Routing = RoutingYX
				return c
			},
			seed:   777,
			rate:   0.05,
			cycles: 3000,
			want:   18075458078137233062,
		},
		{
			name: "torus4x4-dateline",
			cfg: func() Config {
				c := DefaultConfig()
				c.Rows, c.Cols = 4, 4
				c.Torus = true
				c.CreditDelay = 1
				return c
			},
			seed:   31337,
			rate:   0.04,
			cycles: 3000,
			want:   8480573589452264423,
		},
		{
			name: "mesh4x4-deep-contention",
			cfg: func() Config {
				c := DefaultConfig()
				c.Rows, c.Cols = 4, 4
				c.VCsPerClass = 2
				c.BufDepth = 2
				c.LinkLatency = 3
				return c
			},
			seed:   99,
			rate:   0.10,
			cycles: 2500,
			want:   5253779206098163401,
		},
	}
	// Every pinned fingerprint must come out of both step engines at
	// every worker count: Workers is a throughput knob, never a model
	// parameter. 0 and 1 take the serial path; 2 and 8 shard (8 exceeds
	// the 4-row meshes' row count and exercises the Rows cap).
	workers := []int{0, 1, 2, 8}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range workers {
				cfg := tc.cfg()
				cfg.Workers = w
				got := goldenRun(t, cfg, tc.seed, tc.rate, tc.cycles)
				if got != tc.want {
					t.Errorf("workers=%d: stats fingerprint = %d, want %d (simulated behaviour changed)", w, got, tc.want)
				}
			}
			if again := goldenRun(t, tc.cfg(), tc.seed, tc.rate, tc.cycles); again != tc.want {
				t.Errorf("rerun fingerprint = %d, want %d (nondeterministic)", again, tc.want)
			}
		})
	}
}
