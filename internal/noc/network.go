package noc

import (
	"fmt"

	"obm/internal/mesh"
)

// arrival is a flit in flight on a link.
type arrival struct {
	router *router
	port   Port
	vc     int
	f      flit
}

// creditReturn is a freed buffer slot on its way back upstream.
type creditReturn struct {
	router *router
	port   Port
	vc     int
}

// Network is the whole on-chip network: routers, links, NIs, and the
// cycle loop. It is not safe for concurrent use; drive it from one
// goroutine (experiments parallelize across Network instances instead —
// see sim.RunReplicas — the idiomatic share-nothing decomposition for
// simulators).
//
// The cycle loop is engineered to be allocation-free in steady state:
// future link arrivals and credit returns live in fixed-size
// calendar-queue rings (delays are small bounded constants from Config,
// so a power-of-two ring indexed by cycle&mask replaces the old
// map[int64][]arrival with its per-cycle bucket churn), flit queues are
// fixed-capacity circular buffers, and Step visits only routers and NIs
// on the active worklists instead of scanning every tile.
type Network struct {
	cfg     Config
	mesh    *mesh.Mesh
	routers []*router
	nis     []*ni
	cycle   int64
	nextID  uint64
	stats   Stats

	// arrRing is the calendar queue of link arrivals: slot cycle&arrMask
	// holds the flits landing that cycle. Slot backing slices are
	// recycled (reset to length zero after processing), so steady-state
	// scheduling never allocates.
	arrRing  [][]arrival
	arrMask  int64
	inFlight int // flits currently on links

	// credRing is the calendar queue of delayed credit returns; nil when
	// CreditDelay is zero (credits return instantaneously).
	credRing [][]creditReturn
	credMask int64
	nCred    int

	// actR tracks routers with buffered flits and actNI tracks tiles
	// whose NI has injection backlog, as per-row bitmaps. Step sweeps
	// these instead of every tile, which is what makes paper-scale loads
	// (~0.25 packets/cycle chip-wide) cheap: almost all of a large mesh
	// is idle almost all of the time. Bitmap iteration is ascending by
	// construction, preserving the exact router-iteration order of the
	// old sorted worklists, keeping fixed-seed runs bit-identical (see
	// TestGoldenDeterminism). actScratch is the per-cycle compacted
	// active-router id list the serial step's phases share.
	actR       *rowWorklist
	actNI      *rowWorklist
	actScratch []int32

	// par is the sharded step engine, non-nil when cfg.Workers resolves
	// to two or more workers (see parallel.go). The serial path never
	// touches it.
	par *parEngine

	// pool recycles delivered packets handed out by AllocPacket, so a
	// long simulation reaches a high-water mark of live packets and then
	// stops allocating.
	pool []*Packet

	// flushed tracks what has already been exported to the obs registry
	// (see metrics.go); maxInFlight is the calendar-queue occupancy
	// high-water mark, maintained with a plain compare on the flit-send
	// path and exported at flush time.
	flushed struct {
		cycles, injectedFlits, deliveredFlits int64
	}
	maxInFlight int

	// onDeliver, when set, runs for every delivered packet (tail eject).
	onDeliver func(*Packet)
}

// ringSize returns the smallest power of two > delay, so that a slot is
// always drained before an event is scheduled into it again.
func ringSize(delay int) int64 {
	s := int64(1)
	for s <= int64(delay) {
		s <<= 1
	}
	return s
}

// New builds a network from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := mesh.New(cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, mesh: m}
	// Link arrivals land LinkLatency+1 cycles after the grant.
	n.arrMask = ringSize(cfg.LinkLatency+1) - 1
	n.arrRing = make([][]arrival, n.arrMask+1)
	if cfg.CreditDelay > 0 {
		n.credMask = ringSize(cfg.CreditDelay) - 1
		n.credRing = make([][]creditReturn, n.credMask+1)
	}
	n.routers = make([]*router, m.NumTiles())
	n.nis = make([]*ni, m.NumTiles())
	n.actR = newRowWorklist(cfg.Rows, cfg.Cols)
	n.actNI = newRowWorklist(cfg.Rows, cfg.Cols)
	n.actScratch = make([]int32, 0, m.NumTiles())
	// Link-utilization counters are allocated eagerly (and again on
	// ResetStats) rather than lazily on first send: the parallel engine
	// writes rows from different workers, and a lazy allocation in
	// sendFlit would be a data race. Zero-traffic runs gain an allocated
	// but all-zero matrix; fingerprints hash rows identically either way
	// because fingerprinting only reads values.
	n.stats.LinkFlits = newLinkFlits(m.NumTiles())
	for _, t := range m.Tiles() {
		n.routers[t] = newRouter(t, n)
		n.nis[t] = newNI(t, n)
	}
	mNetworks.Inc()
	// Wire up neighbours; torus mode wraps the edges.
	wrap := func(v, size int) (int, bool) {
		switch {
		case v >= 0 && v < size:
			return v, true
		case cfg.Torus:
			return (v + size) % size, true
		default:
			return 0, false
		}
	}
	for _, t := range m.Tiles() {
		c := m.Coord(t)
		r := n.routers[t]
		if row, ok := wrap(c.Row-1, cfg.Rows); ok {
			r.neighbors[North] = n.routers[m.TileAt(row, c.Col)]
		}
		if row, ok := wrap(c.Row+1, cfg.Rows); ok {
			r.neighbors[South] = n.routers[m.TileAt(row, c.Col)]
		}
		if col, ok := wrap(c.Col-1, cfg.Cols); ok {
			r.neighbors[West] = n.routers[m.TileAt(c.Row, col)]
		}
		if col, ok := wrap(c.Col+1, cfg.Cols); ok {
			r.neighbors[East] = n.routers[m.TileAt(c.Row, col)]
		}
	}
	if w := cfg.workerCount(); w > 1 {
		n.par = newParEngine(n, w)
	}
	return n, nil
}

// newLinkFlits allocates a zeroed tiles x ports flit-count matrix.
func newLinkFlits(tiles int) [][]int64 {
	lf := make([][]int64, tiles)
	for i := range lf {
		lf[i] = make([]int64, int(numPorts))
	}
	return lf
}

// Close releases the worker pool of a parallel network. It is a no-op
// for serial networks and safe to call multiple times; after Close the
// network must not be stepped again. Serial networks (Workers <= 1)
// need no Close at all.
func (n *Network) Close() {
	if n.par != nil {
		n.par.close()
	}
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Mesh returns the network's mesh geometry.
func (n *Network) Mesh() *mesh.Mesh { return n.mesh }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// Stats returns a snapshot of the accumulated statistics. Every nested
// container — per-type and per-app slices, link flit counts, and
// histogram bucket storage — is deep-copied, so the snapshot stays
// frozen while the simulation continues. Taking a snapshot also
// flushes the counter deltas since the previous one to the process
// metrics registry (obs) — the hot loop itself never pays for metrics.
func (n *Network) Stats() Stats {
	n.flushMetrics()
	s := n.stats
	s.Cycles = n.cycle
	s.ByApp = append([]TypeStats(nil), n.stats.ByApp...)
	s.HistByApp = make([]Histogram, len(n.stats.HistByApp))
	for i := range n.stats.HistByApp {
		s.HistByApp[i] = n.stats.HistByApp[i].Clone()
	}
	if n.stats.LinkFlits != nil {
		s.LinkFlits = make([][]int64, len(n.stats.LinkFlits))
		for i, row := range n.stats.LinkFlits {
			s.LinkFlits[i] = append([]int64(nil), row...)
		}
	}
	return s
}

// ResetStats zeroes the accumulated statistics without disturbing
// in-flight traffic, so measurement can start after a warmup phase.
// Packets already in flight still deliver (and run the delivery
// handler) but count toward the fresh statistics, slightly biasing the
// first few cycles — standard practice for warm measurement windows.
func (n *Network) ResetStats() {
	n.stats = Stats{}
	// Re-allocate the eagerly-managed link counters (see New): the
	// parallel send path writes them without a nil check.
	n.stats.LinkFlits = newLinkFlits(n.mesh.NumTiles())
	// Flit counts restart from zero with the fresh window; dropping the
	// flushed marks too keeps the registry totals equal to the sum of
	// final Stats snapshots (the warmup window is discarded from both).
	// Cycles keep running — n.cycle is not reset — so their flushed
	// mark stays.
	n.flushed.injectedFlits, n.flushed.deliveredFlits = 0, 0
}

// SetDeliveryHandler registers f to run whenever a packet's tail flit
// leaves the network (including zero-hop local deliveries). Traffic
// generators use it to issue replies.
func (n *Network) SetDeliveryHandler(f func(*Packet)) { n.onDeliver = f }

// AllocPacket returns a zeroed packet from the network's free list (or
// a fresh one). Packets obtained here are automatically recycled after
// delivery — the moment the delivery handler returns, the pointer is
// dead and must not be retained or re-injected by the caller. Traffic
// generators that inject millions of packets use this to keep the hot
// loop allocation-free; callers that hold on to packets after delivery
// must build them with &Packet{} instead.
func (n *Network) AllocPacket() *Packet {
	if k := len(n.pool); k > 0 {
		p := n.pool[k-1]
		n.pool = n.pool[:k-1]
		return p
	}
	return &Packet{pooled: true}
}

// Inject submits a packet for delivery. Src and Dst must be valid
// tiles; ID and InjectCycle are assigned here. A packet whose source
// equals its destination involves no network communication (paper
// Section II.C) and is delivered immediately with zero latency.
func (n *Network) Inject(p *Packet) error {
	if p == nil {
		return fmt.Errorf("noc: nil packet")
	}
	if !n.mesh.Contains(p.Src) || !n.mesh.Contains(p.Dst) {
		return fmt.Errorf("noc: packet %v -> %v outside %v", p.Src, p.Dst, n.mesh)
	}
	if p.Type < CacheRequest || p.Type > Writeback {
		return fmt.Errorf("noc: unknown packet type %d", int(p.Type))
	}
	p.ID = n.nextID
	n.nextID++
	p.InjectCycle = n.cycle
	p.curDim = -1
	p.layer = 0
	n.stats.InjectedPackets++
	n.stats.InjectedFlits += int64(p.Type.Flits())
	if p.Src == p.Dst {
		n.stats.LocalDeliveries++
		n.deliver(n.cycle, p)
		return nil
	}
	n.nis[p.Src].enqueue(p)
	return nil
}

// markRouterActive adds router r to the active bitmap.
func (n *Network) markRouterActive(r *router) {
	n.actR.add(r.row, r.col)
}

// markNIActive adds tile q's NI to the active bitmap.
func (n *Network) markNIActive(q *ni) {
	n.actNI.add(q.row, q.col)
}

// returnCredit makes a freed slot visible at router up (port, vc),
// immediately or after the configured credit delay. from is the router
// whose dequeue freed the slot — the parallel engine stages delayed
// credits into from's row buffer (single writer per row), and relies on
// the wavefront order to make the immediate (CreditDelay == 0) write
// race-free: up is always a neighbour of from whose arbitration is
// ordered against from's by the north-west wavefront.
func (n *Network) returnCredit(from, up *router, p Port, vc int) {
	if n.cfg.CreditDelay == 0 {
		up.credits[p][vc]++
		return
	}
	at := n.cycle + int64(n.cfg.CreditDelay)
	slot := at & n.credMask
	if n.par != nil && n.par.arbitrating {
		rs := &n.par.rows[from.row]
		rs.credRing[slot] = append(rs.credRing[slot], creditReturn{up, p, vc})
		rs.credQ++
		return
	}
	n.credRing[slot] = append(n.credRing[slot], creditReturn{up, p, vc})
	n.nCred++
}

// Step advances the simulation by one cycle, dispatching to the sharded
// engine when one is configured. Both paths produce bit-identical
// statistics (see TestGoldenDeterminism, which sweeps worker counts).
func (n *Network) Step() {
	if n.par != nil {
		n.par.step()
		return
	}
	n.stepSerial()
}

// stepSerial is the single-threaded cycle loop.
func (n *Network) stepSerial() {
	now := n.cycle
	// 0. Delayed credits become visible. The ring slot was drained the
	// last time this cycle index came around, so it holds exactly this
	// cycle's credits; resetting its length recycles the backing array.
	if n.nCred > 0 {
		slot := &n.credRing[now&n.credMask]
		for _, c := range *slot {
			c.router.credits[c.port][c.vc]++
		}
		n.nCred -= len(*slot)
		*slot = (*slot)[:0]
	}
	// 1. Link arrivals scheduled for this cycle enter input buffers.
	if n.inFlight > 0 {
		slot := &n.arrRing[now&n.arrMask]
		for _, a := range *slot {
			a.router.accept(a.port, a.vc, a.f)
		}
		n.inFlight -= len(*slot)
		*slot = (*slot)[:0]
	}
	// 2. NIs with backlog inject, in ascending tile order; drained NIs
	// drop off the worklist.
	if n.actNI.total() > 0 {
		for row := 0; row < n.cfg.Rows; row++ {
			if n.actNI.rowCount(row) == 0 {
				continue
			}
			n.actScratch = n.actNI.appendRow(n.actScratch[:0], row)
			for _, t := range n.actScratch {
				q := n.nis[t]
				q.inject(now)
				if q.pending() == 0 {
					q.queued = false
					n.actNI.clear(q.row, q.col)
				}
			}
		}
	}
	if n.actR.total() == 0 {
		n.cycle++
		return
	}
	// Compact the router worklist once per cycle: routers whose buffers
	// drained last cycle leave; the survivors — exactly the busy set, in
	// ascending id order — are shared by the three phases below via the
	// scratch list.
	act := n.actScratch[:0]
	for row := 0; row < n.cfg.Rows; row++ {
		if n.actR.rowCount(row) == 0 {
			continue
		}
		mark := len(act)
		act = n.actR.appendRow(act, row)
		keep := act[:mark]
		for _, id := range act[mark:] {
			r := n.routers[id]
			if r.occ == 0 {
				r.queued = false
				n.actR.clear(r.row, r.col)
				continue
			}
			keep = append(keep, id)
		}
		act = keep
	}
	n.actScratch = act
	// 3. Route computation for newly exposed heads, then VC allocation.
	// Each busy router first snapshots its occupied VCs once; the three
	// stages then scan only that candidate list.
	for _, id := range act {
		n.routers[id].gather(now)
	}
	for _, id := range act {
		n.routers[id].allocateVCs(now)
	}
	// 4. Switch allocation and traversal.
	for _, id := range act {
		r := n.routers[id]
		var inputUsed [numPorts]bool
		for p := Port(0); p < numPorts; p++ {
			if r.outReq[p] != 0 {
				r.arbitrate(now, p, &inputUsed)
			}
		}
	}
	n.cycle++
}

// sendFlit puts a granted flit on the wire toward r's neighbour through
// output port p, into downstream VC outVC.
func (n *Network) sendFlit(now int64, r *router, p Port, outVC int, f flit) {
	dest := r.neighbors[p]
	if dest == nil {
		panic(fmt.Sprintf("noc: flit routed off the mesh at tile %d port %v", r.id, p))
	}
	// Switch traversal this cycle plus the wire: the flit lands in the
	// downstream buffer LinkLatency+1 cycles from the grant and becomes
	// eligible for the downstream switch RouterLatency-1 cycles later.
	arr := now + int64(n.cfg.LinkLatency) + 1
	f.ready = arr + int64(n.cfg.RouterLatency-1)
	// LinkFlits rows are indexed by the sending router, and the parallel
	// engine partitions senders by row, so this write is single-writer in
	// both engines (the matrix is allocated eagerly in New/ResetStats).
	n.stats.LinkFlits[r.id][p]++
	if f.isHead() {
		f.pkt.Hops++
		if n.cfg.Torus {
			// Commit the dateline state the VC allocation was based on:
			// crossing into a new dimension resets the layer; traversing
			// the wrap link promotes it.
			layer := int8(r.vcLayerFor(p, f.pkt))
			f.pkt.curDim = int8(dimOf(p))
			f.pkt.layer = layer
		}
	}
	slot := arr & n.arrMask
	a := arrival{router: dest, port: p.opposite(), vc: outVC, f: f}
	if n.par != nil && n.par.arbitrating {
		// Stage into the sending router's row buffer: one writer per
		// row, merged by scanning rows in ascending order on the drain
		// side, which reproduces the serial append order exactly
		// (serial arbitration appends in ascending sender id order).
		rs := &n.par.rows[r.row]
		rs.arrRing[slot] = append(rs.arrRing[slot], a)
		rs.flitHops++
		rs.sent++
		return
	}
	n.stats.FlitHops++
	n.arrRing[slot] = append(n.arrRing[slot], a)
	n.inFlight++
	if n.inFlight > n.maxInFlight {
		n.maxInFlight = n.inFlight
	}
}

// ejectArb is the arbitration-time ejection path: serial engines eject
// immediately; the parallel engine stages the event into r's row buffer
// so the delivery handler (user code with its own RNG, packet pool and
// re-injection side effects) replays serially in exact serial order.
func (n *Network) ejectArb(r *router, now int64, p *Packet, seq int) {
	if n.par != nil && n.par.arbitrating {
		rs := &n.par.rows[r.row]
		rs.ej = append(rs.ej, ejection{pkt: p, seq: seq})
		return
	}
	n.eject(now, p, seq)
}

// eject consumes a flit at its destination's local port.
func (n *Network) eject(now int64, p *Packet, seq int) {
	n.stats.DeliveredFlits++
	if seq == p.Type.Flits()-1 {
		n.deliver(now, p)
	}
}

// deliver finalizes a packet: records statistics, runs the handler, and
// recycles pool-allocated packets.
func (n *Network) deliver(now int64, p *Packet) {
	p.EjectCycle = now
	if p.Src == p.Dst {
		n.stats.DeliveredFlits += int64(p.Type.Flits())
	}
	n.stats.DeliveredPackets++
	lat := p.Latency()
	ideal := int64(p.Hops*n.cfg.PerHopLatency() + p.Type.Flits() - 1)
	if p.Src == p.Dst {
		ideal = 0
	}
	n.stats.QueuingSum += lat - ideal
	ts := &n.stats.ByType[p.Type]
	ts.Packets++
	ts.LatencySum += lat
	ts.HopSum += int64(p.Hops)
	if p.App >= 0 {
		as := n.stats.appStats(p.App)
		as.Packets++
		as.LatencySum += lat
		as.HopSum += int64(p.Hops)
		n.stats.HistByApp[p.App].Add(lat)
	}
	if n.onDeliver != nil {
		n.onDeliver(p)
	}
	if p.pooled {
		*p = Packet{pooled: true}
		n.pool = append(n.pool, p)
	}
}

// Busy reports whether any packet is queued, in a buffer, or on a link.
// Pending credits also count: the network is not settled until every
// buffer slot is accounted for. The worklists make this O(busy tiles)
// rather than O(tiles).
func (n *Network) Busy() bool {
	if n.inFlight > 0 || n.nCred > 0 {
		return true
	}
	if n.actNI.anyID(func(id int32) bool { return n.nis[id].pending() > 0 }) {
		return true
	}
	return n.actR.anyID(func(id int32) bool { return n.routers[id].occ > 0 })
}

// Drain steps the network until it is empty or maxCycles additional
// cycles have elapsed, and returns an error in the latter case (which
// would indicate a routing deadlock or livelock — XY routing with
// class-partitioned VCs should never produce one).
func (n *Network) Drain(maxCycles int64) error {
	deadline := n.cycle + maxCycles
	for n.Busy() {
		if n.cycle >= deadline {
			return fmt.Errorf("noc: network failed to drain within %d cycles (%d flits in flight)", maxCycles, n.inFlight)
		}
		n.Step()
	}
	return nil
}

// Occupancy returns the total number of flits buffered in routers, for
// tests and load monitoring.
func (n *Network) Occupancy() int {
	var o int
	for _, r := range n.routers {
		o += r.occupancy()
	}
	return o
}
