package noc

import (
	"fmt"

	"obm/internal/mesh"
)

// arrival is a flit in flight on a link.
type arrival struct {
	router *router
	port   Port
	vc     int
	f      flit
}

// creditReturn is a freed buffer slot on its way back upstream.
type creditReturn struct {
	router *router
	port   Port
	vc     int
}

// Network is the whole on-chip network: routers, links, NIs, and the
// cycle loop. It is not safe for concurrent use; drive it from one
// goroutine (experiments parallelize across Network instances instead,
// the idiomatic share-nothing decomposition for simulators).
type Network struct {
	cfg     Config
	mesh    *mesh.Mesh
	routers []*router
	nis     []*ni
	cycle   int64
	nextID  uint64
	stats   Stats
	// inflight buckets link arrivals by delivery cycle.
	inflight map[int64][]arrival
	inFlight int // flits currently on links
	// credits buckets delayed credit returns by visibility cycle.
	credits map[int64][]creditReturn
	nCred   int
	// onDeliver, when set, runs for every delivered packet (tail eject).
	onDeliver func(*Packet)
}

// New builds a network from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := mesh.New(cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:      cfg,
		mesh:     m,
		inflight: make(map[int64][]arrival),
		credits:  make(map[int64][]creditReturn),
	}
	n.routers = make([]*router, m.NumTiles())
	n.nis = make([]*ni, m.NumTiles())
	for _, t := range m.Tiles() {
		n.routers[t] = newRouter(t, n)
		n.nis[t] = newNI(t, n)
	}
	// Wire up neighbours; torus mode wraps the edges.
	wrap := func(v, size int) (int, bool) {
		switch {
		case v >= 0 && v < size:
			return v, true
		case cfg.Torus:
			return (v + size) % size, true
		default:
			return 0, false
		}
	}
	for _, t := range m.Tiles() {
		c := m.Coord(t)
		r := n.routers[t]
		if row, ok := wrap(c.Row-1, cfg.Rows); ok {
			r.neighbors[North] = n.routers[m.TileAt(row, c.Col)]
		}
		if row, ok := wrap(c.Row+1, cfg.Rows); ok {
			r.neighbors[South] = n.routers[m.TileAt(row, c.Col)]
		}
		if col, ok := wrap(c.Col-1, cfg.Cols); ok {
			r.neighbors[West] = n.routers[m.TileAt(c.Row, col)]
		}
		if col, ok := wrap(c.Col+1, cfg.Cols); ok {
			r.neighbors[East] = n.routers[m.TileAt(c.Row, col)]
		}
	}
	return n, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Mesh returns the network's mesh geometry.
func (n *Network) Mesh() *mesh.Mesh { return n.mesh }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// Stats returns a snapshot of the accumulated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.Cycles = n.cycle
	s.ByApp = append([]TypeStats(nil), n.stats.ByApp...)
	s.HistByApp = append([]Histogram(nil), n.stats.HistByApp...)
	if n.stats.LinkFlits != nil {
		s.LinkFlits = make([][]int64, len(n.stats.LinkFlits))
		for i, row := range n.stats.LinkFlits {
			s.LinkFlits[i] = append([]int64(nil), row...)
		}
	}
	return s
}

// ResetStats zeroes the accumulated statistics without disturbing
// in-flight traffic, so measurement can start after a warmup phase.
// Packets already in flight still deliver (and run the delivery
// handler) but count toward the fresh statistics, slightly biasing the
// first few cycles — standard practice for warm measurement windows.
func (n *Network) ResetStats() {
	n.stats = Stats{}
}

// SetDeliveryHandler registers f to run whenever a packet's tail flit
// leaves the network (including zero-hop local deliveries). Traffic
// generators use it to issue replies.
func (n *Network) SetDeliveryHandler(f func(*Packet)) { n.onDeliver = f }

// Inject submits a packet for delivery. Src and Dst must be valid
// tiles; ID and InjectCycle are assigned here. A packet whose source
// equals its destination involves no network communication (paper
// Section II.C) and is delivered immediately with zero latency.
func (n *Network) Inject(p *Packet) error {
	if p == nil {
		return fmt.Errorf("noc: nil packet")
	}
	if !n.mesh.Contains(p.Src) || !n.mesh.Contains(p.Dst) {
		return fmt.Errorf("noc: packet %v -> %v outside %v", p.Src, p.Dst, n.mesh)
	}
	if p.Type < CacheRequest || p.Type > Writeback {
		return fmt.Errorf("noc: unknown packet type %d", int(p.Type))
	}
	p.ID = n.nextID
	n.nextID++
	p.InjectCycle = n.cycle
	p.curDim = -1
	p.layer = 0
	n.stats.InjectedPackets++
	n.stats.InjectedFlits += int64(p.Type.Flits())
	if p.Src == p.Dst {
		n.stats.LocalDeliveries++
		n.deliver(n.cycle, p)
		return nil
	}
	n.nis[p.Src].enqueue(p)
	return nil
}

// returnCredit makes a freed slot visible at router up (port, vc),
// immediately or after the configured credit delay.
func (n *Network) returnCredit(up *router, p Port, vc int) {
	if n.cfg.CreditDelay == 0 {
		up.credits[p][vc]++
		return
	}
	at := n.cycle + int64(n.cfg.CreditDelay)
	n.credits[at] = append(n.credits[at], creditReturn{up, p, vc})
	n.nCred++
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	now := n.cycle
	// 0. Delayed credits become visible.
	if cr, ok := n.credits[now]; ok {
		for _, c := range cr {
			c.router.credits[c.port][c.vc]++
		}
		n.nCred -= len(cr)
		delete(n.credits, now)
	}
	// 1. Link arrivals scheduled for this cycle enter input buffers.
	if arr, ok := n.inflight[now]; ok {
		for _, a := range arr {
			a.router.accept(a.port, a.vc, a.f)
		}
		n.inFlight -= len(arr)
		delete(n.inflight, now)
	}
	// 2. NIs inject.
	for _, q := range n.nis {
		q.inject(now)
	}
	// 3. Route computation for newly exposed heads, then VC allocation.
	// Each busy router first snapshots its occupied VCs once; the three
	// stages then scan only that candidate list.
	for _, r := range n.routers {
		if r.occ > 0 {
			r.gather()
			r.routeHeads()
		}
	}
	for _, r := range n.routers {
		if r.occ > 0 {
			r.allocateVCs(now)
		}
	}
	// 4. Switch allocation and traversal.
	for _, r := range n.routers {
		if r.occ == 0 {
			continue
		}
		var inputUsed [numPorts]bool
		for p := Port(0); p < numPorts; p++ {
			r.arbitrate(now, p, &inputUsed)
		}
	}
	n.cycle++
}

// sendFlit puts a granted flit on the wire toward r's neighbour through
// output port p, into downstream VC outVC.
func (n *Network) sendFlit(now int64, r *router, p Port, outVC int, f flit) {
	dest := r.neighbors[p]
	if dest == nil {
		panic(fmt.Sprintf("noc: flit routed off the mesh at tile %d port %v", r.id, p))
	}
	// Switch traversal this cycle plus the wire: the flit lands in the
	// downstream buffer LinkLatency+1 cycles from the grant and becomes
	// eligible for the downstream switch RouterLatency-1 cycles later.
	arr := now + int64(n.cfg.LinkLatency) + 1
	f.ready = arr + int64(n.cfg.RouterLatency-1)
	if n.stats.LinkFlits == nil {
		n.stats.LinkFlits = make([][]int64, n.mesh.NumTiles())
		for i := range n.stats.LinkFlits {
			n.stats.LinkFlits[i] = make([]int64, int(numPorts))
		}
	}
	n.stats.LinkFlits[r.id][p]++
	if f.isHead() {
		f.pkt.Hops++
		if n.cfg.Torus {
			// Commit the dateline state the VC allocation was based on:
			// crossing into a new dimension resets the layer; traversing
			// the wrap link promotes it.
			layer := int8(r.vcLayerFor(p, f.pkt))
			f.pkt.curDim = int8(dimOf(p))
			f.pkt.layer = layer
		}
	}
	n.stats.FlitHops++
	n.inflight[arr] = append(n.inflight[arr], arrival{
		router: dest,
		port:   p.opposite(),
		vc:     outVC,
		f:      f,
	})
	n.inFlight++
}

// eject consumes a flit at its destination's local port.
func (n *Network) eject(now int64, p *Packet, seq int) {
	n.stats.DeliveredFlits++
	if seq == p.Type.Flits()-1 {
		n.deliver(now, p)
	}
}

// deliver finalizes a packet: records statistics and runs the handler.
func (n *Network) deliver(now int64, p *Packet) {
	p.EjectCycle = now
	if p.Src == p.Dst {
		n.stats.DeliveredFlits += int64(p.Type.Flits())
	}
	n.stats.DeliveredPackets++
	lat := p.Latency()
	ideal := int64(p.Hops*n.cfg.PerHopLatency() + p.Type.Flits() - 1)
	if p.Src == p.Dst {
		ideal = 0
	}
	n.stats.QueuingSum += lat - ideal
	ts := &n.stats.ByType[p.Type]
	ts.Packets++
	ts.LatencySum += lat
	ts.HopSum += int64(p.Hops)
	if p.App >= 0 {
		as := n.stats.appStats(p.App)
		as.Packets++
		as.LatencySum += lat
		as.HopSum += int64(p.Hops)
		n.stats.HistByApp[p.App].Add(lat)
	}
	if n.onDeliver != nil {
		n.onDeliver(p)
	}
}

// Busy reports whether any packet is queued, in a buffer, or on a link.
// Pending credits also count: the network is not settled until every
// buffer slot is accounted for.
func (n *Network) Busy() bool {
	if n.inFlight > 0 || n.nCred > 0 {
		return true
	}
	for _, q := range n.nis {
		if q.pending() > 0 {
			return true
		}
	}
	for _, r := range n.routers {
		if r.occupancy() > 0 {
			return true
		}
	}
	return false
}

// Drain steps the network until it is empty or maxCycles additional
// cycles have elapsed, and returns an error in the latter case (which
// would indicate a routing deadlock or livelock — XY routing with
// class-partitioned VCs should never produce one).
func (n *Network) Drain(maxCycles int64) error {
	deadline := n.cycle + maxCycles
	for n.Busy() {
		if n.cycle >= deadline {
			return fmt.Errorf("noc: network failed to drain within %d cycles (%d flits in flight)", maxCycles, n.inFlight)
		}
		n.Step()
	}
	return nil
}

// Occupancy returns the total number of flits buffered in routers, for
// tests and load monitoring.
func (n *Network) Occupancy() int {
	var o int
	for _, r := range n.routers {
		o += r.occupancy()
	}
	return o
}
