package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Rows, c.Cols = 4, 4
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rows: 0, Cols: 4, VCsPerClass: 1, BufDepth: 1, RouterLatency: 1, LinkLatency: 1},
		{Rows: 4, Cols: 4, VCsPerClass: 0, BufDepth: 1, RouterLatency: 1, LinkLatency: 1},
		{Rows: 4, Cols: 4, VCsPerClass: 1, BufDepth: 0, RouterLatency: 1, LinkLatency: 1},
		{Rows: 4, Cols: 4, VCsPerClass: 1, BufDepth: 1, RouterLatency: 0, LinkLatency: 1},
		{Rows: 4, Cols: 4, VCsPerClass: 1, BufDepth: 1, RouterLatency: 1, LinkLatency: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := DefaultConfig()
	if c.VCs() != 9 {
		t.Errorf("VCs = %d, want 9 (3 classes x 3)", c.VCs())
	}
	if c.PerHopLatency() != 4 {
		t.Errorf("PerHopLatency = %d, want 4", c.PerHopLatency())
	}
	lo, hi := c.vcRange(ClassResponse)
	if lo != 3 || hi != 6 {
		t.Errorf("response vcRange = [%d,%d), want [3,6)", lo, hi)
	}
}

func TestPortOpposite(t *testing.T) {
	cases := map[Port]Port{North: South, South: North, East: West, West: East, Local: Local}
	for p, want := range cases {
		if got := p.opposite(); got != want {
			t.Errorf("%v.opposite() = %v, want %v", p, got, want)
		}
		if p.String() == "" {
			t.Error("empty port name")
		}
	}
}

func TestXYRoute(t *testing.T) {
	m := mesh.MustNew(4, 4)
	cases := []struct {
		cur, dst mesh.Tile
		want     Port
	}{
		{m.TileAt(1, 1), m.TileAt(1, 1), Local},
		{m.TileAt(1, 1), m.TileAt(1, 3), East},
		{m.TileAt(1, 1), m.TileAt(1, 0), West},
		{m.TileAt(1, 1), m.TileAt(3, 1), South},
		{m.TileAt(1, 1), m.TileAt(0, 1), North},
		// X before Y: destination south-east goes East first.
		{m.TileAt(1, 1), m.TileAt(3, 3), East},
		{m.TileAt(1, 1), m.TileAt(0, 0), West},
	}
	for _, c := range cases {
		if got := xyRoute(m, c.cur, c.dst); got != c.want {
			t.Errorf("xyRoute(%v,%v) = %v, want %v", c.cur, c.dst, got, c.want)
		}
	}
}

func TestPacketTypeProperties(t *testing.T) {
	for _, pt := range []PacketType{CacheRequest, CacheReply, CacheForward, MemRequest, MemReply} {
		if pt.Flits() < 1 {
			t.Errorf("%v has %d flits", pt, pt.Flits())
		}
		if pt.String() == "" {
			t.Errorf("%v has empty name", pt)
		}
		if cl := pt.Class(); cl < 0 || cl >= NumClasses {
			t.Errorf("%v class %d out of range", pt, cl)
		}
	}
	if CacheReply.Flits() != 5 || MemReply.Flits() != 5 {
		t.Error("data replies should be 5 flits (64B + head on 128-bit links)")
	}
	if CacheRequest.Flits() != 1 || MemRequest.Flits() != 1 || CacheForward.Flits() != 1 {
		t.Error("short packets should be single-flit")
	}
	if CacheRequest.Class() == CacheReply.Class() {
		t.Error("requests and replies must use different protocol classes")
	}
}

// TestUncontendedLatencyMatchesModel is the calibration contract: an
// isolated packet's latency must equal hops*(router+link) + (flits-1).
func TestUncontendedLatencyMatchesModel(t *testing.T) {
	cfg := testConfig()
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	for _, pt := range []PacketType{CacheRequest, CacheReply} {
		for _, dst := range []mesh.Tile{m.TileAt(0, 1), m.TileAt(0, 3), m.TileAt(3, 3), m.TileAt(2, 0)} {
			n := MustNew(cfg)
			var delivered *Packet
			n.SetDeliveryHandler(func(p *Packet) { delivered = p })
			src := m.TileAt(0, 0)
			if err := n.Inject(&Packet{Src: src, Dst: dst, Type: pt, App: 0}); err != nil {
				t.Fatal(err)
			}
			if err := n.Drain(10000); err != nil {
				t.Fatal(err)
			}
			if delivered == nil {
				t.Fatalf("%v to %v: not delivered", pt, dst)
			}
			hops := m.Hops(src, dst)
			want := int64(hops*cfg.PerHopLatency() + pt.Flits() - 1)
			if got := delivered.Latency(); got != want {
				t.Errorf("%v to %v (%d hops): latency %d, want %d", pt, dst, hops, got, want)
			}
			if delivered.Hops != hops {
				t.Errorf("%v to %v: counted %d hops, want %d", pt, dst, delivered.Hops, hops)
			}
		}
	}
}

func TestLocalDeliveryZeroLatency(t *testing.T) {
	n := MustNew(testConfig())
	var delivered *Packet
	n.SetDeliveryHandler(func(p *Packet) { delivered = p })
	if err := n.Inject(&Packet{Src: 5, Dst: 5, Type: CacheRequest, App: 0}); err != nil {
		t.Fatal(err)
	}
	if delivered == nil {
		t.Fatal("local packet not delivered immediately")
	}
	if delivered.Latency() != 0 || delivered.Hops != 0 {
		t.Errorf("local delivery latency=%d hops=%d, want 0/0", delivered.Latency(), delivered.Hops)
	}
	st := n.Stats()
	if st.LocalDeliveries != 1 {
		t.Errorf("LocalDeliveries = %d", st.LocalDeliveries)
	}
}

func TestInjectValidation(t *testing.T) {
	n := MustNew(testConfig())
	if err := n.Inject(nil); err == nil {
		t.Error("nil packet accepted")
	}
	if err := n.Inject(&Packet{Src: -1, Dst: 3, Type: CacheRequest}); err == nil {
		t.Error("bad src accepted")
	}
	if err := n.Inject(&Packet{Src: 0, Dst: 99, Type: CacheRequest}); err == nil {
		t.Error("bad dst accepted")
	}
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: PacketType(42)}); err == nil {
		t.Error("bad type accepted")
	}
}

// TestFlitConservation: everything injected is eventually delivered,
// and no flits remain anywhere.
func TestFlitConservation(t *testing.T) {
	cfg := testConfig()
	n := MustNew(cfg)
	rng := stats.NewRand(42)
	types := []PacketType{CacheRequest, CacheReply, CacheForward, MemRequest, MemReply}
	const packets = 500
	for i := 0; i < packets; i++ {
		src := mesh.Tile(rng.Intn(16))
		dst := mesh.Tile(rng.Intn(16))
		pt := types[rng.Intn(len(types))]
		if err := n.Inject(&Packet{Src: src, Dst: dst, Type: pt, App: rng.Intn(4)}); err != nil {
			t.Fatal(err)
		}
		// Interleave injection with simulation to create contention.
		if i%3 == 0 {
			n.Step()
		}
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.InjectedPackets != packets || st.DeliveredPackets != packets {
		t.Errorf("packets: injected %d delivered %d, want %d", st.InjectedPackets, st.DeliveredPackets, packets)
	}
	if st.InjectedFlits != st.DeliveredFlits {
		t.Errorf("flits: injected %d delivered %d", st.InjectedFlits, st.DeliveredFlits)
	}
	if n.Occupancy() != 0 || n.Busy() {
		t.Error("network not empty after drain")
	}
}

// TestContentionOnlyAddsLatency: with many packets, every measured
// latency is at least the uncontended ideal.
func TestContentionOnlyAddsLatency(t *testing.T) {
	cfg := testConfig()
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	n := MustNew(cfg)
	short := 0
	n.SetDeliveryHandler(func(p *Packet) {
		ideal := int64(m.Hops(p.Src, p.Dst)*cfg.PerHopLatency() + p.Type.Flits() - 1)
		if p.Src == p.Dst {
			ideal = 0
		}
		if p.Latency() < ideal {
			short++
		}
	})
	rng := stats.NewRand(7)
	for i := 0; i < 300; i++ {
		n.Inject(&Packet{
			Src:  mesh.Tile(rng.Intn(16)),
			Dst:  mesh.Tile(rng.Intn(16)),
			Type: CacheReply,
			App:  0,
		})
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if short > 0 {
		t.Errorf("%d packets beat the speed of light", short)
	}
	st := n.Stats()
	if st.QueuingSum < 0 {
		t.Errorf("negative total queuing %d", st.QueuingSum)
	}
}

// TestHotspotContention: all tiles hammering one destination must still
// drain, with positive queuing delay (the arbiter serializes them).
func TestHotspotContention(t *testing.T) {
	cfg := testConfig()
	n := MustNew(cfg)
	dst := mesh.Tile(5)
	for round := 0; round < 10; round++ {
		for s := 0; s < 16; s++ {
			if mesh.Tile(s) == dst {
				continue
			}
			n.Inject(&Packet{Src: mesh.Tile(s), Dst: dst, Type: CacheRequest, App: 0})
		}
		n.Step()
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.QueuingSum <= 0 {
		t.Error("hotspot traffic should experience queuing")
	}
	if st.DeliveredPackets != 150 {
		t.Errorf("delivered %d, want 150", st.DeliveredPackets)
	}
}

func TestStatsPerApp(t *testing.T) {
	n := MustNew(testConfig())
	n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheRequest, App: 1})
	n.Inject(&Packet{Src: 0, Dst: 12, Type: CacheRequest, App: 0})
	n.Inject(&Packet{Src: 1, Dst: 2, Type: CacheRequest, App: -1}) // unattributed
	if err := n.Drain(10000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if len(st.ByApp) != 2 {
		t.Fatalf("ByApp has %d entries, want 2", len(st.ByApp))
	}
	if st.ByApp[0].Packets != 1 || st.ByApp[1].Packets != 1 {
		t.Error("per-app packet counts wrong")
	}
	if st.AppAPL(0) <= 0 || st.AppAPL(1) <= 0 {
		t.Error("per-app APL should be positive")
	}
	if st.AppAPL(7) != 0 || st.AppAPL(-1) != 0 {
		t.Error("out-of-range app should give APL 0")
	}
}

func TestTypeStatsAverages(t *testing.T) {
	ts := TypeStats{Packets: 4, LatencySum: 40, HopSum: 8}
	if ts.AvgLatency() != 10 || ts.AvgHops() != 2 {
		t.Error("TypeStats averages wrong")
	}
	var zero TypeStats
	if zero.AvgLatency() != 0 || zero.AvgHops() != 0 {
		t.Error("zero TypeStats should average 0")
	}
}

// TestSerializationThroughput: a stream of packets between one pair is
// limited by the bottleneck link to roughly one flit per cycle.
func TestSerializationThroughput(t *testing.T) {
	cfg := testConfig()
	n := MustNew(cfg)
	const packets = 50
	for i := 0; i < packets; i++ {
		n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheReply, App: 0})
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	cycles := n.Cycle()
	// 50 packets x 5 flits over one path: at 1 flit/cycle the stream
	// needs at least 250 cycles and should finish within a small factor.
	if cycles < 250 {
		t.Errorf("finished impossibly fast: %d cycles for 250 flits over one link", cycles)
	}
	if cycles > 1000 {
		t.Errorf("throughput collapse: %d cycles for 250 flits", cycles)
	}
}

// TestVCClassIsolation: response-class packets keep flowing when the
// request class is congested (protocol deadlock avoidance).
func TestVCClassIsolation(t *testing.T) {
	cfg := testConfig()
	cfg.VCsPerClass = 1
	n := MustNew(cfg)
	// Saturate request VCs along row 0.
	for i := 0; i < 60; i++ {
		n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheRequest, App: 0})
	}
	// A response along the same path.
	n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheReply, App: 0})
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.DeliveredPackets != 61 {
		t.Errorf("delivered %d, want 61", st.DeliveredPackets)
	}
}

// TestDeterminism: two identical simulations produce identical stats.
func TestNetworkDeterminism(t *testing.T) {
	run := func() Stats {
		n := MustNew(testConfig())
		rng := stats.NewRand(99)
		for i := 0; i < 200; i++ {
			n.Inject(&Packet{
				Src:  mesh.Tile(rng.Intn(16)),
				Dst:  mesh.Tile(rng.Intn(16)),
				Type: []PacketType{CacheRequest, CacheReply}[rng.Intn(2)],
				App:  rng.Intn(4),
			})
			n.Step()
		}
		if err := n.Drain(100000); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	a, b := run(), run()
	if a.DeliveredPackets != b.DeliveredPackets || a.QueuingSum != b.QueuingSum ||
		a.FlitHops != b.FlitHops || a.Cycles != b.Cycles {
		t.Errorf("non-deterministic simulation: %+v vs %+v", a, b)
	}
}

// TestMinimalRouting: every packet takes exactly the Manhattan distance
// in hops (XY routing is minimal).
func TestMinimalRouting(t *testing.T) {
	cfg := testConfig()
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	n := MustNew(cfg)
	bad := 0
	n.SetDeliveryHandler(func(p *Packet) {
		if p.Hops != m.Hops(p.Src, p.Dst) {
			bad++
		}
	})
	rng := stats.NewRand(3)
	for i := 0; i < 400; i++ {
		n.Inject(&Packet{
			Src:  mesh.Tile(rng.Intn(16)),
			Dst:  mesh.Tile(rng.Intn(16)),
			Type: CacheRequest,
			App:  0,
		})
		if i%5 == 0 {
			n.Step()
		}
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d packets took non-minimal routes", bad)
	}
}

// TestYXRouting: under YX routing the first move changes the row, and
// all traffic still drains with minimal hop counts.
func TestYXRouting(t *testing.T) {
	cfg := testConfig()
	cfg.Routing = RoutingYX
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	if got := yxRoute(m, m.TileAt(1, 1), m.TileAt(3, 3)); got != South {
		t.Errorf("yxRoute should go South first, got %v", got)
	}
	n := MustNew(cfg)
	bad := 0
	n.SetDeliveryHandler(func(p *Packet) {
		if p.Hops != m.Hops(p.Src, p.Dst) {
			bad++
		}
	})
	rng := stats.NewRand(5)
	for i := 0; i < 300; i++ {
		n.Inject(&Packet{
			Src:  mesh.Tile(rng.Intn(16)),
			Dst:  mesh.Tile(rng.Intn(16)),
			Type: CacheReply,
			App:  0,
		})
		if i%4 == 0 {
			n.Step()
		}
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d packets took non-minimal YX routes", bad)
	}
	if st := n.Stats(); st.InjectedFlits != st.DeliveredFlits {
		t.Error("flits lost under YX routing")
	}
}

func TestRoutingValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Routing = Routing(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown routing accepted")
	}
	if Routing(9).String() == "" || RoutingXY.String() != "XY" || RoutingYX.String() != "YX" {
		t.Error("routing names wrong")
	}
}

// TestCreditDelay: a credit wire delay leaves uncontended latency
// untouched (nothing waits for credits on an idle network), reduces
// throughput on a saturated path, and conserves flits.
func TestCreditDelay(t *testing.T) {
	base := testConfig()
	delayed := base
	delayed.CreditDelay = 2
	if err := delayed.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.CreditDelay = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative credit delay accepted")
	}

	// Uncontended single packet: identical latency.
	for _, cfg := range []Config{base, delayed} {
		n := MustNew(cfg)
		var lat int64
		n.SetDeliveryHandler(func(p *Packet) { lat = p.Latency() })
		n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheRequest, App: 0})
		if err := n.Drain(10000); err != nil {
			t.Fatal(err)
		}
		if lat != int64(3*cfg.PerHopLatency()) {
			t.Errorf("CreditDelay=%d: latency %d, want %d", cfg.CreditDelay, lat, 3*cfg.PerHopLatency())
		}
	}

	// Saturated single path: delayed credits cannot finish sooner.
	finish := func(cfg Config) int64 {
		n := MustNew(cfg)
		for i := 0; i < 60; i++ {
			n.Inject(&Packet{Src: 0, Dst: 3, Type: CacheReply, App: 0})
		}
		if err := n.Drain(200000); err != nil {
			t.Fatal(err)
		}
		st := n.Stats()
		if st.InjectedFlits != st.DeliveredFlits {
			t.Fatal("flits lost under credit delay")
		}
		return n.Cycle()
	}
	fast := finish(base)
	slow := finish(delayed)
	if slow < fast {
		t.Errorf("credit delay finished sooner (%d) than instantaneous (%d)", slow, fast)
	}
}

// TestLinkUtilization: flit counts per link sum to the total flit-hops,
// and the hottest link of a hotspot workload points at the hotspot.
func TestLinkUtilization(t *testing.T) {
	cfg := testConfig()
	n := MustNew(cfg)
	dst := mesh.Tile(5)
	for i := 0; i < 100; i++ {
		for s := 0; s < 16; s++ {
			if mesh.Tile(s) != dst && s%3 == 0 {
				n.Inject(&Packet{Src: mesh.Tile(s), Dst: dst, Type: CacheRequest, App: 0})
			}
		}
		n.Step()
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	var sum int64
	for _, row := range st.LinkFlits {
		for _, f := range row {
			sum += f
		}
	}
	if sum != st.FlitHops {
		t.Errorf("link flits sum %d != FlitHops %d", sum, st.FlitHops)
	}
	hot := st.HottestLinks(3)
	if len(hot) == 0 {
		t.Fatal("no hot links")
	}
	// The top link must be adjacent to the hotspot tile (feeding it).
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	if d := m.Hops(mesh.Tile(hot[0].Tile), dst); d > 1 {
		t.Errorf("hottest link at tile %d is %d hops from the hotspot", hot[0].Tile, d)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Flits > hot[i-1].Flits {
			t.Error("hottest links not sorted")
		}
	}
}
