package noc

import (
	"fmt"

	"obm/internal/mesh"
)

// PacketType labels the CMP traffic kind a packet carries; it selects
// the protocol class and feeds the per-type statistics.
type PacketType int

// CMP packet types (Section II.B of the paper).
const (
	// CacheRequest is a core's request to a shared L2 bank (single flit:
	// address only).
	CacheRequest PacketType = iota
	// CacheReply carries a 64-byte data block from an L2 bank back to the
	// requesting core (head flit + 4 data flits).
	CacheReply
	// CacheForward is a checking/forwarding packet from an L2 bank to
	// another tile's private L1 (single flit).
	CacheForward
	// MemRequest is a request forwarded to a memory controller tile
	// (single flit).
	MemRequest
	// MemReply carries data returned by a memory controller (5 flits).
	MemReply
	// Writeback carries an evicted dirty block toward its home (L1 to
	// L2 bank, or L2 bank to memory controller); 5 flits of data.
	Writeback
)

func (t PacketType) String() string {
	switch t {
	case CacheRequest:
		return "cache-request"
	case CacheReply:
		return "cache-reply"
	case CacheForward:
		return "cache-forward"
	case MemRequest:
		return "mem-request"
	case MemReply:
		return "mem-reply"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("PacketType(%d)", int(t))
	}
}

// Class returns the protocol class that carries this packet type.
func (t PacketType) Class() Class {
	switch t {
	case CacheReply, MemReply:
		return ClassResponse
	case CacheForward, Writeback:
		// Writebacks ride the coherence network so evictions can never
		// block the request/response dependency chain.
		return ClassCoherence
	default:
		return ClassRequest
	}
}

// Flits returns the packet length in flits for this type under the
// paper's format: 128-bit links, 16-bit short packets in one flit,
// 64-byte data plus a head flit in five flits.
func (t PacketType) Flits() int {
	switch t {
	case CacheReply, MemReply, Writeback:
		return 5
	default:
		return 1
	}
}

// Packet is one network packet.
type Packet struct {
	// ID is unique within a Network instance.
	ID uint64
	// Src and Dst are the source and destination tiles.
	Src, Dst mesh.Tile
	// Type determines length and class.
	Type PacketType
	// App tags the application (0-based) that caused the packet, for the
	// per-application latency statistics; -1 if not attributed.
	App int
	// InjectCycle is when the packet entered its source NI queue.
	InjectCycle int64
	// EjectCycle is when the tail flit left the network (set on delivery).
	EjectCycle int64
	// Hops counts traversed links (set as the head advances).
	Hops int
	// UserData lets traffic generators attach context (e.g. the request a
	// reply answers). The simulator never touches it.
	UserData any

	// curDim and layer track torus-dateline state while the packet is in
	// flight: the dimension currently being traversed (-1 before the
	// first hop) and the virtual-channel layer within the packet's class
	// (0 before crossing the ring's dateline, 1 after).
	curDim int8
	layer  int8
	// pooled marks packets handed out by Network.AllocPacket; they are
	// recycled onto the free list as soon as delivery completes.
	pooled bool
}

// Latency returns the packet's measured network latency in cycles.
func (p *Packet) Latency() int64 { return p.EjectCycle - p.InjectCycle }

// flit is one flow-control unit of a packet.
type flit struct {
	pkt *Packet
	// seq is the flit index within the packet; 0 is the head.
	seq int
	// ready is the earliest cycle the flit may compete for the switch.
	ready int64
}

func (f flit) isHead() bool { return f.seq == 0 }
func (f flit) isTail() bool { return f.seq == f.pkt.Type.Flits()-1 }
