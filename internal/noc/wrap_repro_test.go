package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

// Repro: torus, traffic confined to the wrap-neighbour rows 0 and 3.
func wrapRun(t *testing.T, workers int) uint64 {
	t.Helper()
	c := DefaultConfig()
	c.Rows, c.Cols = 4, 4
	c.Torus = true
	c.VCsPerClass = 2
	c.Workers = workers
	n := MustNew(c)
	defer n.Close()
	rng := stats.NewRand(7)
	for cyc := 0; cyc < 5000; cyc++ {
		for col := 0; col < 4; col++ {
			if rng.Float64() < 0.4 {
				p := n.AllocPacket()
				p.Src = mesh.Tile(col)       // row 0
				p.Dst = mesh.Tile(3*4 + col) // row 3, same column (wrap hop)
				p.Type, p.App = CacheRequest, 0
				_ = n.Inject(p)
			}
			if rng.Float64() < 0.4 {
				p := n.AllocPacket()
				p.Src = mesh.Tile(3*4 + col)
				p.Dst = mesh.Tile(col)
				p.Type, p.App = CacheReply, 0
				_ = n.Inject(p)
			}
		}
		n.Step()
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	return fingerprintStats(n.Stats())
}

func TestWrapRowsOnly(t *testing.T) {
	serial := wrapRun(t, 0)
	for i := 0; i < 20; i++ {
		if got := wrapRun(t, 4); got != serial {
			t.Fatalf("iter %d: parallel fingerprint %d != serial %d", i, got, serial)
		}
	}
}
