package noc

import "obm/internal/obs"

// Process-wide NoC metrics. The simulator's per-cycle loop is engineered
// around a ~4ns idle Step, so nothing here touches that path: each
// Network accumulates into its own plain counters (it is single-
// goroutine by contract) and flushes deltas to the shared registry at
// snapshot boundaries — Stats() and ResetStats() — where one atomic add
// per counter is free. The flushed totals therefore always equal the
// sum of the final Stats snapshots across all networks, which is the
// invariant TestMetricsMatchStats pins.
var (
	mNetworks       = obs.Default().Counter("noc.networks.created")
	mCycles         = obs.Default().Counter("noc.cycles.stepped")
	mInjectedFlits  = obs.Default().Counter("noc.flits.injected")
	mDeliveredFlits = obs.Default().Counter("noc.flits.delivered")
	// mRingPeak is the high-water mark of calendar-queue occupancy
	// (flits simultaneously in flight on links) across all networks —
	// the load signal for sizing the arrival ring.
	mRingPeak = obs.Default().Gauge("noc.eventring.peak_inflight")
)

// flushMetrics exports the deltas accumulated since the previous flush.
// Callers hold no lock: the Network is single-goroutine, and the
// registry side is atomic.
func (n *Network) flushMetrics() {
	if d := n.cycle - n.flushed.cycles; d > 0 {
		mCycles.Add(uint64(d))
		n.flushed.cycles = n.cycle
	}
	if d := n.stats.InjectedFlits - n.flushed.injectedFlits; d > 0 {
		mInjectedFlits.Add(uint64(d))
		n.flushed.injectedFlits = n.stats.InjectedFlits
	}
	if d := n.stats.DeliveredFlits - n.flushed.deliveredFlits; d > 0 {
		mDeliveredFlits.Add(uint64(d))
		n.flushed.deliveredFlits = n.stats.DeliveredFlits
	}
	if n.maxInFlight > 0 {
		mRingPeak.SetMax(int64(n.maxInFlight))
	}
}
