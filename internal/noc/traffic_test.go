package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

func TestPatternsProduceValidDestinations(t *testing.T) {
	m := mesh.MustNew(4, 4)
	rng := stats.NewRand(1)
	pats := []Pattern{UniformRandom{}, Transpose{}, BitComplement{}, Hotspot{Hot: 5}}
	for _, pat := range pats {
		if pat.Name() == "" {
			t.Error("empty pattern name")
		}
		for _, src := range m.Tiles() {
			for i := 0; i < 10; i++ {
				dst := pat.Dst(m, src, rng)
				if !m.Contains(dst) {
					t.Fatalf("%s: dst %d out of range", pat.Name(), dst)
				}
			}
		}
	}
}

func TestTransposeAndBitComplement(t *testing.T) {
	m := mesh.MustNew(4, 4)
	if got := (Transpose{}).Dst(m, m.TileAt(1, 3), nil); got != m.TileAt(3, 1) {
		t.Errorf("transpose(1,3) = %v, want (3,1)", m.Coord(got))
	}
	if got := (BitComplement{}).Dst(m, m.TileAt(0, 1), nil); got != m.TileAt(3, 2) {
		t.Errorf("bit-complement(0,1) = %v, want (3,2)", m.Coord(got))
	}
	// Transpose on a rectangular mesh clamps rather than escaping.
	r := mesh.MustNew(2, 5)
	for _, src := range r.Tiles() {
		if dst := (Transpose{}).Dst(r, src, nil); !r.Contains(dst) {
			t.Fatalf("transpose escaped rectangular mesh at %d", src)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	m := mesh.MustNew(4, 4)
	rng := stats.NewRand(3)
	h := Hotspot{Hot: 7, Frac: 0.5}
	hot := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if h.Dst(m, 0, rng) == 7 {
			hot++
		}
	}
	frac := float64(hot) / trials
	// 0.5 hotspot fraction plus uniform traffic that also lands on 7.
	want := 0.5 + 0.5/16
	if frac < want-0.03 || frac > want+0.03 {
		t.Errorf("hotspot fraction %.3f, want ~%.3f", frac, want)
	}
}

func TestLoadSweepValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := LoadSweep(cfg, UniformRandom{}, SweepConfig{}); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := cfg
	bad.Rows = 0
	if _, err := LoadSweep(bad, UniformRandom{}, DefaultSweepConfig()); err == nil {
		t.Error("bad config accepted")
	}
}

// TestLoadSweepShape is the classic simulator validation: latency sits
// at the zero-load bound for light loads and rises monotonically (with
// slack for noise) toward saturation.
func TestLoadSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulates; skip under -short")
	}
	cfg := testConfig()
	sw := SweepConfig{
		Rates:       []float64{0.01, 0.05, 0.15, 0.30},
		Cycles:      5_000,
		Type:        CacheRequest,
		Seed:        2,
		DrainCycles: 300_000,
	}
	pts, err := LoadSweep(cfg, UniformRandom{}, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sw.Rates) {
		t.Fatalf("%d points", len(pts))
	}
	zero, err := ZeroLoadLatency(cfg, UniformRandom{}, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Light load: within ~15% of the zero-load bound and never below it
	// by more than sampling noise.
	if pts[0].AvgLatency < zero*0.9 || pts[0].AvgLatency > zero*1.15 {
		t.Errorf("light-load latency %.2f vs zero-load bound %.2f", pts[0].AvgLatency, zero)
	}
	// Heaviest load is strictly slower than lightest.
	last := pts[len(pts)-1]
	if last.AvgLatency <= pts[0].AvgLatency {
		t.Errorf("latency did not rise with load: %.2f -> %.2f", pts[0].AvgLatency, last.AvgLatency)
	}
	// Throughput tracks offered load before saturation.
	if !pts[0].Saturated {
		if pts[0].Throughput < pts[0].InjectionRate*0.9 {
			t.Errorf("throughput %.4f below offered %.4f pre-saturation", pts[0].Throughput, pts[0].InjectionRate)
		}
	}
}

func TestZeroLoadLatencyValidation(t *testing.T) {
	if _, err := ZeroLoadLatency(testConfig(), UniformRandom{}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should be zero")
	}
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 {
		t.Errorf("count %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean %v, want 50.5", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := h.Percentile(50); got < 49 || got > 52 {
		t.Errorf("P50 = %v, want ~50", got)
	}
	// Overflow clamps.
	h.Add(100000)
	h.Add(-5)
	if got := h.Percentile(100); got != maxBucket {
		t.Errorf("overflow P100 = %v, want %d", got, maxBucket)
	}
}

func TestPerAppHistogramsPopulated(t *testing.T) {
	n := MustNew(testConfig())
	for i := 0; i < 50; i++ {
		n.Inject(&Packet{Src: 0, Dst: 15, Type: CacheRequest, App: 1})
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if len(st.HistByApp) < 2 || st.HistByApp[1].Count() != 50 {
		t.Fatalf("histogram not populated: %+v", len(st.HistByApp))
	}
	if st.AppPercentile(1, 50) <= 0 {
		t.Error("P50 should be positive")
	}
	if st.AppPercentile(9, 50) != 0 || st.AppPercentile(-1, 50) != 0 {
		t.Error("out-of-range app should give 0")
	}
	// P99 >= P50 >= mean-ish sanity.
	if st.AppPercentile(1, 99) < st.AppPercentile(1, 50) {
		t.Error("percentiles not monotone")
	}
}
