package noc

import (
	"obm/internal/mesh"
)

// ni is a tile's network interface: an unbounded packet queue feeding
// the router's local input port at one flit per cycle. Injection
// bypasses the source router pipeline (flits are immediately eligible
// for switch allocation), which calibrates the uncontended end-to-end
// latency to exactly hops*(router+link) — see the package comment.
//
// The queue pops by advancing a head index instead of shifting, and the
// backing array is recycled whenever the queue fully drains, so
// steady-state injection does not allocate or copy.
type ni struct {
	tile mesh.Tile
	n    *Network
	// row, col cache the mesh coordinates for the worklist bitmaps.
	row, col int
	queue    []*Packet
	qhead    int
	// queued reports whether this NI is on the network's active
	// worklist (set on enqueue, cleared when the backlog drains).
	queued bool
	// cur is the packet currently being serialized into the router.
	cur     *Packet
	curFlit int
	curVC   int
	// space[v] is the free slot count of the router's local input VC v.
	space []int
	// owned[v] reports whether an in-flight packet holds local VC v.
	owned []bool
}

func newNI(tile mesh.Tile, n *Network) *ni {
	vcs := n.cfg.VCs()
	s := make([]int, vcs)
	for v := range s {
		s[v] = n.cfg.BufDepth
	}
	return &ni{
		tile: tile, n: n,
		row: int(tile) / n.cfg.Cols, col: int(tile) % n.cfg.Cols,
		space: s, owned: make([]bool, vcs), curVC: -1,
	}
}

// enqueue adds a packet to the injection queue, putting the NI on the
// active worklist if idle.
func (q *ni) enqueue(p *Packet) {
	q.queue = append(q.queue, p)
	if !q.queued {
		q.queued = true
		q.n.markNIActive(q)
	}
}

// creditReturn is called by the local router when it drains a flit from
// local input VC v.
func (q *ni) creditReturn(v int) {
	q.space[v]++
}

// vcFree mirrors router.vcFree for the local port.
func (q *ni) vcFree(v int) bool {
	return !q.owned[v] && q.space[v] == q.n.cfg.BufDepth
}

// inject writes up to one flit into the local router this cycle.
func (q *ni) inject(now int64) {
	if q.cur == nil {
		if q.qhead == len(q.queue) {
			return
		}
		head := q.queue[q.qhead]
		lo, hi := q.n.cfg.vcRange(head.Type.Class())
		vc := -1
		for v := lo; v < hi; v++ {
			if q.vcFree(v) {
				vc = v
				break
			}
		}
		if vc < 0 {
			return // all local VCs of this class busy
		}
		q.queue[q.qhead] = nil
		q.qhead++
		if q.qhead == len(q.queue) {
			q.queue = q.queue[:0]
			q.qhead = 0
		}
		q.cur = head
		q.curFlit = 0
		q.curVC = vc
		q.owned[vc] = true
	}
	if q.space[q.curVC] == 0 {
		return // local buffer full; retry next cycle
	}
	f := flit{pkt: q.cur, seq: q.curFlit, ready: now}
	q.n.routers[q.tile].accept(Local, q.curVC, f)
	q.space[q.curVC]--
	q.curFlit++
	if q.curFlit == q.cur.Type.Flits() {
		q.owned[q.curVC] = false
		q.cur = nil
		q.curVC = -1
	}
}

// pending returns the number of packets not yet fully injected.
func (q *ni) pending() int {
	n := len(q.queue) - q.qhead
	if q.cur != nil {
		n++
	}
	return n
}
