package noc_test

import (
	"fmt"

	"obm/internal/noc"
)

// Send one 5-flit data reply across an idle 8x8 mesh: latency is
// exactly hops * (router + link) plus serialization.
func ExampleNetwork() {
	net := noc.MustNew(noc.DefaultConfig())
	net.SetDeliveryHandler(func(p *noc.Packet) {
		fmt.Printf("delivered after %d cycles over %d hops\n", p.Latency(), p.Hops)
	})
	// Tile 0 is the top-left corner; tile 63 the bottom-right: 14 hops.
	if err := net.Inject(&noc.Packet{Src: 0, Dst: 63, Type: noc.CacheReply, App: 0}); err != nil {
		panic(err)
	}
	if err := net.Drain(1000); err != nil {
		panic(err)
	}
	// 14 hops x 4 cycles + 4 serialization cycles = 60.
	// Output:
	// delivered after 60 cycles over 14 hops
}

// Characterize the network under uniform random traffic.
func ExampleLoadSweep() {
	cfg := noc.DefaultConfig()
	pts, err := noc.LoadSweep(cfg, noc.UniformRandom{}, noc.SweepConfig{
		Rates:  []float64{0.02},
		Cycles: 2000,
		Type:   noc.CacheRequest,
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	zero, err := noc.ZeroLoadLatency(cfg, noc.UniformRandom{}, 100000, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("near zero-load bound: %v\n", pts[0].AvgLatency < zero*1.1)
	// Output:
	// near zero-load bound: true
}
