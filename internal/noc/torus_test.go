package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

func torusConfig() Config {
	c := DefaultConfig()
	c.Rows, c.Cols = 4, 4
	c.Torus = true
	return c
}

func TestTorusValidation(t *testing.T) {
	c := torusConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.VCsPerClass = 1
	if err := c.Validate(); err == nil {
		t.Error("torus with 1 VC per class accepted (no dateline layers)")
	}
	c = torusConfig()
	c.Rows = 1
	if err := c.Validate(); err == nil {
		t.Error("1-row torus accepted")
	}
}

func TestTorusRouteDirections(t *testing.T) {
	m := mesh.MustNew(4, 4)
	cases := []struct {
		cur, dst mesh.Tile
		want     Port
	}{
		{m.TileAt(0, 0), m.TileAt(0, 0), Local},
		{m.TileAt(0, 0), m.TileAt(0, 1), East},
		{m.TileAt(0, 0), m.TileAt(0, 3), West},  // 1 hop around the wrap
		{m.TileAt(0, 0), m.TileAt(0, 2), East},  // tie (2 either way): positive
		{m.TileAt(0, 0), m.TileAt(3, 0), North}, // 1 hop around the wrap
		{m.TileAt(0, 0), m.TileAt(1, 0), South},
		{m.TileAt(0, 1), m.TileAt(2, 3), East}, // X first
	}
	for _, c := range cases {
		if got := torusRoute(m, c.cur, c.dst, false); got != c.want {
			t.Errorf("torusRoute(%v,%v) = %v, want %v", m.Coord(c.cur), m.Coord(c.dst), got, c.want)
		}
	}
	// YX order resolves rows first.
	if got := torusRoute(m, m.TileAt(0, 1), m.TileAt(2, 3), true); got != South {
		t.Errorf("YX torus route = %v, want South", got)
	}
}

// TestTorusUncontendedLatency: latency equals wrapped hops * perHop +
// serialization, strictly less than the mesh distance for wrap pairs.
func TestTorusUncontendedLatency(t *testing.T) {
	cfg := torusConfig()
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	for _, dst := range []mesh.Tile{m.TileAt(0, 3), m.TileAt(3, 3), m.TileAt(3, 0), m.TileAt(2, 2)} {
		n := MustNew(cfg)
		var delivered *Packet
		n.SetDeliveryHandler(func(p *Packet) { delivered = p })
		src := m.TileAt(0, 0)
		if err := n.Inject(&Packet{Src: src, Dst: dst, Type: CacheReply, App: 0}); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(10000); err != nil {
			t.Fatal(err)
		}
		hops := m.TorusHops(src, dst)
		want := int64(hops*cfg.PerHopLatency() + CacheReply.Flits() - 1)
		if got := delivered.Latency(); got != want {
			t.Errorf("to %v: latency %d, want %d (%d torus hops)", m.Coord(dst), got, want, hops)
		}
		if delivered.Hops != hops {
			t.Errorf("to %v: %d hops, want %d", m.Coord(dst), delivered.Hops, hops)
		}
	}
}

// TestTorusMinimalRouting: every packet takes exactly the torus
// distance.
func TestTorusMinimalRouting(t *testing.T) {
	cfg := torusConfig()
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	n := MustNew(cfg)
	bad := 0
	n.SetDeliveryHandler(func(p *Packet) {
		if p.Hops != m.TorusHops(p.Src, p.Dst) {
			bad++
		}
	})
	rng := stats.NewRand(3)
	for i := 0; i < 400; i++ {
		n.Inject(&Packet{
			Src:  mesh.Tile(rng.Intn(16)),
			Dst:  mesh.Tile(rng.Intn(16)),
			Type: CacheRequest,
			App:  0,
		})
		if i%5 == 0 {
			n.Step()
		}
	}
	if err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d packets took non-minimal torus routes", bad)
	}
}

// TestTorusDeadlockStress: sustained all-to-all traffic around the
// rings (the pattern that deadlocks a torus without datelines) must
// drain completely.
func TestTorusDeadlockStress(t *testing.T) {
	cfg := torusConfig()
	cfg.VCsPerClass = 2 // minimum legal: exercises the tightest layering
	n := MustNew(cfg)
	rng := stats.NewRand(17)
	// Ring-hostile: every tile sends to the diametrically opposite tile,
	// saturating the wrap links, plus random background traffic.
	m := mesh.MustNew(cfg.Rows, cfg.Cols)
	for round := 0; round < 120; round++ {
		for _, src := range m.Tiles() {
			c := m.Coord(src)
			opposite := m.TileAt((c.Row+2)%4, (c.Col+2)%4)
			n.Inject(&Packet{Src: src, Dst: opposite, Type: CacheReply, App: 0})
			if rng.Float64() < 0.3 {
				n.Inject(&Packet{Src: src, Dst: mesh.Tile(rng.Intn(16)), Type: CacheRequest, App: 1})
			}
		}
		n.Step()
		n.Step()
	}
	if err := n.Drain(300000); err != nil {
		t.Fatalf("torus deadlocked or livelocked: %v", err)
	}
	st := n.Stats()
	if st.InjectedFlits != st.DeliveredFlits {
		t.Errorf("flits lost: %d vs %d", st.InjectedFlits, st.DeliveredFlits)
	}
}

// TestTorusBeatMeshLatency: under identical uniform traffic the torus
// averages fewer hops, hence lower latency.
func TestTorusBeatsMeshLatency(t *testing.T) {
	run := func(torus bool) float64 {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = 8, 8
		cfg.Torus = torus
		n := MustNew(cfg)
		rng := stats.NewRand(9)
		for i := 0; i < 2000; i++ {
			n.Inject(&Packet{
				Src:  mesh.Tile(rng.Intn(64)),
				Dst:  mesh.Tile(rng.Intn(64)),
				Type: CacheRequest,
				App:  0,
			})
			n.Step()
			n.Step()
		}
		if err := n.Drain(200000); err != nil {
			t.Fatal(err)
		}
		st := n.Stats()
		return st.AvgLatency()
	}
	meshLat := run(false)
	torusLat := run(true)
	if torusLat >= meshLat {
		t.Errorf("torus latency %.2f >= mesh %.2f under uniform traffic", torusLat, meshLat)
	}
	// 8x8: avg torus hops 4 vs mesh 5.25 — expect roughly that ratio in
	// the hop-dominated part.
	if torusLat < meshLat*0.5 {
		t.Errorf("torus %.2f implausibly below mesh %.2f", torusLat, meshLat)
	}
}
