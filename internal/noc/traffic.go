package noc

import (
	"fmt"

	"obm/internal/mesh"
	"obm/internal/stats"
)

// Pattern generates destinations for synthetic traffic — the standard
// kernels used to characterize an interconnect (uniform random,
// transpose, bit-complement, hotspot). They validate the simulator the
// way Garnet is usually validated: latency stays near the zero-load
// bound until the pattern's saturation throughput, then diverges.
type Pattern interface {
	// Name labels the pattern.
	Name() string
	// Dst returns the destination for a packet injected at src.
	Dst(m *mesh.Mesh, src mesh.Tile, rng *stats.Rand) mesh.Tile
}

// UniformRandom sends each packet to a uniformly random tile.
type UniformRandom struct{}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform" }

// Dst implements Pattern.
func (UniformRandom) Dst(m *mesh.Mesh, _ mesh.Tile, rng *stats.Rand) mesh.Tile {
	return mesh.Tile(rng.Intn(m.NumTiles()))
}

// Transpose sends (r, c) to (c, r) — adversarial for XY routing on the
// anti-diagonal links.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dst implements Pattern.
func (Transpose) Dst(m *mesh.Mesh, src mesh.Tile, _ *stats.Rand) mesh.Tile {
	c := m.Coord(src)
	row, col := c.Col, c.Row
	if row >= m.Rows() {
		row = m.Rows() - 1
	}
	if col >= m.Cols() {
		col = m.Cols() - 1
	}
	return m.TileAt(row, col)
}

// BitComplement sends (r, c) to (rows-1-r, cols-1-c): every packet
// crosses the chip center.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dst implements Pattern.
func (BitComplement) Dst(m *mesh.Mesh, src mesh.Tile, _ *stats.Rand) mesh.Tile {
	c := m.Coord(src)
	return m.TileAt(m.Rows()-1-c.Row, m.Cols()-1-c.Col)
}

// Hotspot sends a fraction of traffic to one hot tile and the rest
// uniformly.
type Hotspot struct {
	// Hot is the hotspot tile.
	Hot mesh.Tile
	// Frac is the probability of targeting the hotspot (default 0.2).
	Frac float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d)", h.Hot) }

// Dst implements Pattern.
func (h Hotspot) Dst(m *mesh.Mesh, _ mesh.Tile, rng *stats.Rand) mesh.Tile {
	frac := h.Frac
	if frac <= 0 {
		frac = 0.2
	}
	if rng.Float64() < frac {
		return h.Hot
	}
	return mesh.Tile(rng.Intn(m.NumTiles()))
}

// LoadPoint is one measurement of a load sweep.
type LoadPoint struct {
	// InjectionRate is packets per tile per cycle offered.
	InjectionRate float64
	// AvgLatency is the measured mean packet latency in cycles.
	AvgLatency float64
	// Throughput is delivered packets per tile per cycle.
	Throughput float64
	// Saturated reports that the network failed to keep up (packets
	// still queued when the window closed grew beyond bound).
	Saturated bool
}

// SweepConfig controls a load-latency sweep.
type SweepConfig struct {
	// Rates lists the offered loads (packets/tile/cycle).
	Rates []float64
	// Cycles is the injection window per point.
	Cycles int64
	// Type is the packet type injected (sets flit count and class).
	Type PacketType
	// Seed drives the injectors.
	Seed uint64
	// DrainCycles bounds the post-injection drain; a point that cannot
	// drain is marked Saturated.
	DrainCycles int64
}

// DefaultSweepConfig returns a standard characterization sweep.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Rates:       []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.20},
		Cycles:      20_000,
		Type:        CacheRequest,
		Seed:        1,
		DrainCycles: 200_000,
	}
}

// LoadSweep measures average latency and throughput across offered
// loads for a traffic pattern on a fresh network per point. Each point
// is an independent MeasureLoadPoint call, so callers that want the
// sweep faster can fan the points out themselves (see the loadsweep
// experiment, which shards points over sim.RunReplicas).
func LoadSweep(cfg Config, pat Pattern, sw SweepConfig) ([]LoadPoint, error) {
	if len(sw.Rates) == 0 {
		return nil, fmt.Errorf("noc: sweep needs rates and a positive window")
	}
	var out []LoadPoint
	for _, rate := range sw.Rates {
		pt, err := MeasureLoadPoint(cfg, pat, rate, sw)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// MeasureLoadPoint measures one (pattern, offered-load) point on a
// fresh seeded network: sw.Cycles of Bernoulli injection at the given
// per-tile rate, then a bounded drain. Every point of a sweep is
// independent and deterministic in (cfg, pat, rate, sw), which is what
// lets experiments spread the points across workers.
func MeasureLoadPoint(cfg Config, pat Pattern, rate float64, sw SweepConfig) (LoadPoint, error) {
	if err := cfg.Validate(); err != nil {
		return LoadPoint{}, err
	}
	if sw.Cycles <= 0 {
		return LoadPoint{}, fmt.Errorf("noc: sweep needs rates and a positive window")
	}
	if sw.DrainCycles <= 0 {
		sw.DrainCycles = 200_000
	}
	n, err := New(cfg)
	if err != nil {
		return LoadPoint{}, err
	}
	m := n.Mesh()
	rng := stats.NewRand(sw.Seed)
	for cyc := int64(0); cyc < sw.Cycles; cyc++ {
		for _, src := range m.Tiles() {
			if rng.Float64() < rate {
				pkt := n.AllocPacket()
				pkt.Src, pkt.Dst, pkt.Type = src, pat.Dst(m, src, rng), sw.Type
				if err := n.Inject(pkt); err != nil {
					return LoadPoint{}, err
				}
			}
		}
		n.Step()
	}
	pt := LoadPoint{InjectionRate: rate}
	if err := n.Drain(sw.DrainCycles); err != nil {
		pt.Saturated = true
	}
	st := n.Stats()
	pt.AvgLatency = st.AvgLatency()
	if st.Cycles > 0 {
		pt.Throughput = float64(st.DeliveredPackets) / float64(st.Cycles) / float64(m.NumTiles())
	}
	return pt, nil
}

// ZeroLoadLatency returns the analytic zero-load average latency of a
// pattern: mean hops times per-hop latency plus serialization.
func ZeroLoadLatency(cfg Config, pat Pattern, samples int, seed uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if samples <= 0 {
		return 0, fmt.Errorf("noc: need positive sample count")
	}
	m, err := mesh.New(cfg.Rows, cfg.Cols)
	if err != nil {
		return 0, err
	}
	rng := stats.NewRand(seed)
	var sum float64
	for i := 0; i < samples; i++ {
		src := mesh.Tile(rng.Intn(m.NumTiles()))
		dst := pat.Dst(m, src, rng)
		h := m.Hops(src, dst)
		if h > 0 {
			sum += float64(h*cfg.PerHopLatency()) + float64(CacheRequest.Flits()-1)
		}
	}
	return sum / float64(samples), nil
}
