package noc

import (
	"runtime"
	"sync/atomic"
)

// This file implements the sharded step engine selected by
// Config.Workers >= 2. The design goal is stronger than "parallel and
// statistically equivalent": every run is bit-identical to the serial
// engine — same Stats, same delivery-handler invocation order, same
// packet-pool reuse, same golden fingerprints (TestGoldenDeterminism
// sweeps worker counts over the same pinned hashes).
//
// # Decomposition
//
// The sharding unit is a mesh row. Worker w owns rows w, w+W, w+2W, …
// (round-robin), and a cycle runs as three phases:
//
//	P1 (parallel)  drain staged credits and link arrivals addressed to
//	               own rows, inject from own-row NIs, compact own-row
//	               worklists, gather + allocate VCs for own routers.
//	-- barrier --
//	P2 (parallel)  switch allocation and traversal for own rows, in a
//	               north-west wavefront (below); sends, delayed credits
//	               and ejections are staged into per-row buffers.
//	-- barrier --
//	P3 (serial)    the caller replays staged ejections in ascending
//	               router order, merges staged counters, and recycles
//	               the drained ring slots.
//
// P1 is race-free by ownership: every mutation targets a router, NI, or
// worklist row owned by the executing worker (staged arrival/credit
// entries are applied by the *target's* owner, which scans all source
// rows' rings in ascending row order — exactly the serial drain order).
//
// # The north-west wavefront (P2)
//
// With CreditDelay == 0 (the default), a credit freed by a router's
// dequeue is visible *immediately*, so serial arbitration order leaks
// into results: router (i,j) observes credits freed this cycle by
// routers with smaller ids and not by larger ones. The only cross-
// router writes during arbitration are exactly these credit returns,
// and they only flow between *neighbours*. So it suffices to order
// every neighbouring pair like the serial engine does: row-major
// ascending. Each worker walks its rows top-to-bottom and each row
// left-to-right, and router (i,j) additionally waits until its north
// neighbour's row has arbitrated past column j (published through a
// per-row atomic progress counter). That orders (i-1,j) before (i,j)
// and, symmetrically, (i,j) before (i+1,j); (i,j-1) precedes (i,j) on
// the same worker. Every neighbour pair is therefore ordered exactly as
// in the serial engine, the progress atomics carry the happens-before
// edges, and the wavefront is a linear extension of serial order — so
// the immediate credit writes are both race-free and value-identical.
// Inactive routers neither produce nor consume credits, so on a mesh
// progress skips past them without waiting (an idle row publishes
// completion immediately and costs nothing). On a torus the wrap rows
// are neighbours ordered only by the transitive row chain, so idle
// columns still wait for the row above before publishing — see arbRow.
// Rows form a DAG (row i only ever waits on row i-1), so the wavefront
// cannot deadlock.
//
// # Why P3 is serial
//
// Ejection runs the user's delivery handler, which may draw from its
// own RNG, allocate from the packet pool, and re-inject replies; all of
// that is ordering-sensitive observable state. Serial arbitration
// performs at most one local ejection per router per cycle, in
// ascending router order, so replaying the per-row ejection lists in
// row order reproduces the handler call sequence exactly. Deferring
// ejections past the barrier is safe because nothing in arbitration
// reads delivery state.
type parEngine struct {
	n *Network
	w int // effective worker count, >= 2, <= rows

	rows []rowState
	prog []progSlot

	// arrDrained/credDrained count ring entries each worker applied in
	// P1 (padded to avoid false sharing); P3 subtracts them from the
	// network's inFlight/nCred totals.
	arrDrained  []padCount
	credDrained []padCount

	// niScratch is per-worker scratch for materializing NI worklist rows.
	niScratch [][]int32

	b1, b2 spinBarrier

	// start wakes the auxiliary workers (ids 1..w-1) once per cycle; the
	// caller is worker 0. Buffered to w-1 so dispatch never blocks.
	start chan struct{}

	// arbitrating is true exactly while P2 runs; sendFlit, returnCredit
	// and ejectArb branch on it to stage instead of mutating shared
	// state. Synchronized by the start channel (set before dispatch) and
	// barrier b2 (cleared after).
	arbitrating bool

	spawned bool
	closed  bool
}

// ejection is a staged arbitration-time ejection, replayed in P3.
type ejection struct {
	pkt *Packet
	seq int
}

// rowState is the staging area for one mesh row. Exactly one worker
// writes it during a cycle (the row's owner), and the coordinator
// drains the counters in P3.
type rowState struct {
	// act is the row's compacted active-router list for this cycle.
	act []int32
	// arrRing stages link arrivals sent by this row's routers, same
	// slot indexing as Network.arrRing. Entries are applied in P1 of
	// the arrival cycle by the destination row's owner.
	arrRing [][]arrival
	// credRing stages delayed credit returns freed by this row's
	// routers (nil when CreditDelay == 0).
	credRing [][]creditReturn
	// ej stages local ejections for the serial P3 replay.
	ej []ejection
	// flitHops / sent / credQ accumulate this row's contributions to
	// stats.FlitHops, inFlight and nCred, merged in P3.
	flitHops int64
	sent     int
	credQ    int
	_        [40]byte // pad to a cache-line multiple
}

// progSlot is a padded per-row arbitration progress counter: the number
// of columns of the row that have completed switch allocation.
type progSlot struct {
	v atomic.Int32
	_ [60]byte
}

// padCount is a cache-line-padded counter.
type padCount struct {
	v int
	_ [56]byte
}

// spinBarrier is a reusable counter barrier. Waiters spin briefly and
// then yield, which keeps barrier latency low on idle cores without
// burning an oversubscribed machine.
type spinBarrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
	total   int32
}

const barrierSpins = 128

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.total {
		b.arrived.Store(0)
		b.gen.Add(1)
		return
	}
	for i := 0; b.gen.Load() == g; i++ {
		if i > barrierSpins {
			runtime.Gosched()
		}
	}
}

func newParEngine(n *Network, w int) *parEngine {
	rows := n.cfg.Rows
	e := &parEngine{
		n:           n,
		w:           w,
		rows:        make([]rowState, rows),
		prog:        make([]progSlot, rows),
		arrDrained:  make([]padCount, w),
		credDrained: make([]padCount, w),
		niScratch:   make([][]int32, w),
		start:       make(chan struct{}, w-1),
	}
	for i := range e.rows {
		e.rows[i].arrRing = make([][]arrival, n.arrMask+1)
		if n.cfg.CreditDelay > 0 {
			e.rows[i].credRing = make([][]creditReturn, n.credMask+1)
		}
	}
	e.b1.total = int32(w)
	e.b2.total = int32(w)
	return e
}

// close shuts the worker pool down. Idempotent.
func (e *parEngine) close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.spawned {
		close(e.start)
	}
}

// step advances one cycle through the three-phase schedule. The calling
// goroutine acts as worker 0, so a W-worker network runs W-1 extra
// goroutines.
func (e *parEngine) step() {
	n := e.n
	// Idle fast path: nothing buffered, nothing in flight, nothing
	// staged (staged work is reflected in inFlight/nCred at the end of
	// every cycle). No worker wakeup, no allocation.
	if n.inFlight == 0 && n.nCred == 0 && n.actNI.total() == 0 && n.actR.total() == 0 {
		n.cycle++
		return
	}
	if !e.spawned {
		e.spawned = true
		for id := 1; id < e.w; id++ {
			go func(id int) {
				for range e.start {
					e.runWorker(id)
				}
			}(id)
		}
	}
	e.arbitrating = true
	for i := 1; i < e.w; i++ {
		e.start <- struct{}{}
	}
	e.runWorker(0)
	e.arbitrating = false
	e.runP3()
	n.cycle++
}

// runWorker executes P1 and P2 for worker id's rows.
func (e *parEngine) runWorker(id int) {
	n := e.n
	now := n.cycle
	rows := n.cfg.Rows

	// --- P1: drain, inject, compact, gather, allocate. ---
	e.arrDrained[id].v = 0
	e.credDrained[id].v = 0
	for i := id; i < rows; i += e.w {
		e.prog[i].v.Store(0)
	}
	if n.nCred > 0 {
		slot := now & n.credMask
		for src := 0; src < rows; src++ {
			for _, c := range e.rows[src].credRing[slot] {
				if c.router.row%e.w == id {
					c.router.credits[c.port][c.vc]++
					e.credDrained[id].v++
				}
			}
		}
	}
	if n.inFlight > 0 {
		slot := now & n.arrMask
		for src := 0; src < rows; src++ {
			for _, a := range e.rows[src].arrRing[slot] {
				if a.router.row%e.w == id {
					a.router.accept(a.port, a.vc, a.f)
					e.arrDrained[id].v++
				}
			}
		}
	}
	for i := id; i < rows; i += e.w {
		if n.actNI.rowCount(i) == 0 {
			continue
		}
		sc := n.actNI.appendRow(e.niScratch[id][:0], i)
		e.niScratch[id] = sc
		for _, t := range sc {
			q := n.nis[t]
			q.inject(now)
			if q.pending() == 0 {
				q.queued = false
				n.actNI.clear(q.row, q.col)
			}
		}
	}
	for i := id; i < rows; i += e.w {
		rs := &e.rows[i]
		rs.act = rs.act[:0]
		if n.actR.rowCount(i) == 0 {
			continue
		}
		rs.act = n.actR.appendRow(rs.act, i)
		keep := rs.act[:0]
		for _, rid := range rs.act {
			r := n.routers[rid]
			if r.occ == 0 {
				r.queued = false
				n.actR.clear(r.row, r.col)
				continue
			}
			keep = append(keep, rid)
		}
		rs.act = keep
	}
	for i := id; i < rows; i += e.w {
		for _, rid := range e.rows[i].act {
			n.routers[rid].gather(now)
		}
	}
	for i := id; i < rows; i += e.w {
		for _, rid := range e.rows[i].act {
			n.routers[rid].allocateVCs(now)
		}
	}

	e.b1.wait()

	// --- P2: wavefront arbitration, top row first. ---
	for i := id; i < rows; i += e.w {
		e.arbRow(i, now)
	}

	e.b2.wait()
}

// arbRow arbitrates one row's active routers left-to-right, publishing
// column progress and honouring the north-neighbour wavefront wait.
//
// On a torus the wrap rows (0 and rows-1) are neighbours whose only
// ordering is the transitive chain prog[0] -> prog[1] -> … ->
// prog[rows-2], so every row — idle columns included — must keep the
// chain monotone: publish progress past column j only after the north
// row has passed j. Skipping ahead through an idle row (fine on a mesh,
// where that row neither reads nor writes credits) would let the two
// wrap rows arbitrate concurrently while exchanging credit returns over
// the wrap links (caught by TestWrapRowsOnly under -race).
func (e *parEngine) arbRow(i int, now int64) {
	n := e.n
	rs := &e.rows[i]
	cols := int32(n.cfg.Cols)
	my := &e.prog[i].v
	var north *atomic.Int32
	if i > 0 {
		north = &e.prog[i-1].v
	}
	var chain *atomic.Int32 // wait target before publishing skipped columns
	if n.cfg.Torus {
		chain = north
	}
	done := int32(0)
	for _, rid := range rs.act {
		r := n.routers[rid]
		j := int32(r.col)
		if j > done {
			// Columns done..j-1 are inactive: publish them so the row
			// below never waits on routers that do nothing (after the
			// torus chain wait above keeps prog monotone across rows).
			waitProg(chain, j)
			my.Store(j)
		}
		if north != nil {
			waitProg(north, j+1)
		}
		var inputUsed [numPorts]bool
		for p := Port(0); p < numPorts; p++ {
			if r.outReq[p] != 0 {
				r.arbitrate(now, p, &inputUsed)
			}
		}
		done = j + 1
		my.Store(done)
	}
	if done < cols {
		waitProg(chain, cols)
		my.Store(cols)
	}
}

// waitProg spins until p (a row progress counter) reaches at least v;
// nil means no ordering is required.
func waitProg(p *atomic.Int32, v int32) {
	if p == nil {
		return
	}
	for spins := 0; p.Load() < v; spins++ {
		if spins > barrierSpins {
			runtime.Gosched()
		}
	}
}

// runP3 is the serial epilogue: replay staged ejections in ascending
// router order (exactly the serial handler sequence), merge staged
// counters, and recycle the ring slots drained in P1.
func (e *parEngine) runP3() {
	n := e.n
	now := n.cycle
	slotA := now & n.arrMask
	slotC := now & n.credMask
	for i := range e.rows {
		rs := &e.rows[i]
		for k := range rs.ej {
			n.eject(now, rs.ej[k].pkt, rs.ej[k].seq)
			rs.ej[k].pkt = nil
		}
		rs.ej = rs.ej[:0]
		n.stats.FlitHops += rs.flitHops
		n.inFlight += rs.sent
		n.nCred += rs.credQ
		rs.flitHops, rs.sent, rs.credQ = 0, 0, 0
		rs.arrRing[slotA] = rs.arrRing[slotA][:0]
		if rs.credRing != nil {
			rs.credRing[slotC] = rs.credRing[slotC][:0]
		}
	}
	for w := 0; w < e.w; w++ {
		n.inFlight -= e.arrDrained[w].v
		n.nCred -= e.credDrained[w].v
	}
	// Serial arbitration updates the in-flight high-water mark per send,
	// but within a cycle the count only rises after the drain, so the
	// running maximum equals the maximum over end-of-cycle values —
	// updating once here is exact.
	if n.inFlight > n.maxInFlight {
		n.maxInFlight = n.inFlight
	}
}
