package noc

// TypeStats aggregates latency statistics for one packet type or one
// application.
type TypeStats struct {
	// Packets is the number of delivered packets.
	Packets int64
	// LatencySum is the total measured latency in cycles.
	LatencySum int64
	// HopSum is the total number of link traversals.
	HopSum int64
}

// AvgLatency returns the average packet latency in cycles (0 when no
// packets were delivered).
func (s TypeStats) AvgLatency() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Packets)
}

// AvgHops returns the average hop count per packet.
func (s TypeStats) AvgHops() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.Packets)
}

// Stats aggregates everything the experiments read from a simulation.
type Stats struct {
	// Cycles simulated so far.
	Cycles int64
	// InjectedPackets / DeliveredPackets count whole packets.
	InjectedPackets  int64
	DeliveredPackets int64
	// InjectedFlits / DeliveredFlits count flits (conservation checks).
	InjectedFlits  int64
	DeliveredFlits int64
	// FlitHops counts flit-link traversals; the dynamic power model is
	// proportional to this plus per-router activity.
	FlitHops int64
	// QueuingSum accumulates measured latency minus the uncontended
	// ideal (hops*perHop + flits-1), i.e. total queuing cycles.
	QueuingSum int64
	// LocalDeliveries counts packets whose source equals their
	// destination (no network traversal; latency 0).
	LocalDeliveries int64

	// ByType indexes statistics by PacketType.
	ByType [Writeback + 1]TypeStats
	// LinkFlits[t][p] counts flits sent from tile t's router out of port
	// p (indexed by Port; Local is always zero). Divide by Cycles for
	// utilization; the hottest entries locate congestion.
	LinkFlits [][]int64
	// ByApp indexes statistics by application tag (packets with App < 0
	// are not recorded here).
	ByApp []TypeStats
	// HistByApp holds per-application latency histograms, parallel to
	// ByApp, for tail-latency analysis.
	HistByApp []Histogram
}

// AvgLatency returns the global average packet latency.
func (s *Stats) AvgLatency() float64 {
	if s.DeliveredPackets == 0 {
		return 0
	}
	var sum int64
	for _, t := range s.ByType {
		sum += t.LatencySum
	}
	return float64(sum) / float64(s.DeliveredPackets)
}

// AvgQueuingPerHop returns the average queuing latency per hop, the
// quantity the paper's td_q stands for. Packets with zero hops are
// excluded by construction (they accumulate neither hops nor queuing).
func (s *Stats) AvgQueuingPerHop() float64 {
	if s.FlitHops == 0 {
		return 0
	}
	var hops int64
	for _, t := range s.ByType {
		hops += t.HopSum
	}
	if hops == 0 {
		return 0
	}
	return float64(s.QueuingSum) / float64(hops)
}

// appStats returns the per-application entry, growing the slices as
// needed.
func (s *Stats) appStats(app int) *TypeStats {
	for len(s.ByApp) <= app {
		s.ByApp = append(s.ByApp, TypeStats{})
		s.HistByApp = append(s.HistByApp, Histogram{})
	}
	return &s.ByApp[app]
}

// HottestLinks returns the k busiest (tile, port, flits) triples in
// descending flit count.
func (s *Stats) HottestLinks(k int) []LinkLoad {
	var out []LinkLoad
	for t, row := range s.LinkFlits {
		for p, f := range row {
			if f > 0 {
				out = append(out, LinkLoad{Tile: t, Port: Port(p), Flits: f})
			}
		}
	}
	// Insertion sort by flits descending (small lists).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Flits < out[j].Flits; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// LinkLoad is one outgoing link's flit count.
type LinkLoad struct {
	Tile  int
	Port  Port
	Flits int64
}

// AppPercentile returns application app's p-th percentile latency.
func (s *Stats) AppPercentile(app int, p float64) float64 {
	if app < 0 || app >= len(s.HistByApp) {
		return 0
	}
	return s.HistByApp[app].Percentile(p)
}

// AppAPL returns application app's measured average packet latency.
func (s *Stats) AppAPL(app int) float64 {
	if app < 0 || app >= len(s.ByApp) {
		return 0
	}
	return s.ByApp[app].AvgLatency()
}

// Histogram is a fixed-bucket latency histogram: one bucket per cycle
// up to maxBucket-1, with a final overflow bucket. It supports the
// tail-latency experiments (QoS is about P99, not just the mean).
//
// Bucket storage is a lazily allocated slice, so value copies of a
// Histogram share it; use Clone for an independent snapshot
// (Network.Stats does this for every row of HistByApp).
type Histogram struct {
	buckets []int64
	count   int64
	sum     int64
}

// maxBucket is the largest exactly-tracked latency in cycles.
const maxBucket = 512

// Add records one latency sample.
func (h *Histogram) Add(v int64) {
	if h.buckets == nil {
		h.buckets = make([]int64, maxBucket+1)
	}
	if v < 0 {
		v = 0
	}
	if v > maxBucket {
		v = maxBucket
	}
	h.buckets[v]++
	h.count++
	h.sum += v
}

// Clone returns a deep copy whose bucket storage is independent of the
// live histogram.
func (h Histogram) Clone() Histogram {
	c := h
	c.buckets = append([]int64(nil), h.buckets...)
	return c
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean of recorded samples (overflow clamped).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the p-th percentile latency (0..100). Overflowed
// samples report maxBucket.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := int64(p / 100 * float64(h.count-1))
	var seen int64
	for v, c := range h.buckets {
		seen += c
		if seen > target {
			return float64(v)
		}
	}
	return float64(maxBucket)
}
