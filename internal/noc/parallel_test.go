package noc

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

// handlerRun drives a network whose delivery handler re-injects replies
// from its own random stream — the ordering-sensitive path the sharded
// engine must replay serially (handler RNG draws, packet-pool reuse and
// packet ids all depend on the exact delivery order).
func handlerRun(t *testing.T, cfg Config, seed uint64, rate float64, cycles int) uint64 {
	t.Helper()
	n := MustNew(cfg)
	defer n.Close()
	m := n.Mesh()
	hrng := stats.NewRand(seed ^ 0xabcdef)
	n.SetDeliveryHandler(func(p *Packet) {
		// Half of the requests get a pooled reply to a random tile.
		if p.Type == CacheRequest && hrng.Float64() < 0.5 {
			r := n.AllocPacket()
			r.Src, r.Dst = p.Dst, mesh.Tile(hrng.Intn(m.NumTiles()))
			r.Type, r.App = CacheReply, p.App
			if err := n.Inject(r); err != nil {
				t.Error(err)
			}
		}
	})
	rng := stats.NewRand(seed)
	for cyc := 0; cyc < cycles; cyc++ {
		for _, src := range m.Tiles() {
			if rng.Float64() < rate {
				p := n.AllocPacket()
				p.Src = src
				p.Dst = mesh.Tile(rng.Intn(m.NumTiles()))
				p.Type, p.App = CacheRequest, rng.Intn(2)
				if err := n.Inject(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	if err := n.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	return fingerprintStats(n.Stats())
}

// TestParallelHandlerDeterminism pins the sharded engine against the
// serial one on a workload where the delivery handler itself injects
// traffic: the staged-ejection replay must reproduce the serial handler
// call order exactly, or the reply stream (and thus every statistic)
// diverges.
func TestParallelHandlerDeterminism(t *testing.T) {
	cfgs := map[string]func() Config{
		"mesh6x6": func() Config {
			c := DefaultConfig()
			c.Rows, c.Cols = 6, 6
			return c
		},
		"mesh6x6-creditdelay": func() Config {
			c := DefaultConfig()
			c.Rows, c.Cols = 6, 6
			c.CreditDelay = 2
			return c
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			base := handlerRun(t, mk(), 4242, 0.06, 2000)
			for _, w := range []int{2, 3, -1} {
				cfg := mk()
				cfg.Workers = w
				if got := handlerRun(t, cfg, 4242, 0.06, 2000); got != base {
					t.Errorf("workers=%d: fingerprint %d != serial %d", w, got, base)
				}
			}
		})
	}
}

// TestWorkerCountResolution checks the Workers knob's resolution rules.
func TestWorkerCountResolution(t *testing.T) {
	cfg := DefaultConfig() // 8 rows
	for _, tc := range []struct{ workers, rows, want int }{
		{0, 8, 1},
		{1, 8, 1},
		{4, 8, 4},
		{100, 8, 8}, // capped at rows
		{3, 2, 2},   // capped at rows
	} {
		c := cfg
		c.Workers, c.Rows = tc.workers, tc.rows
		if got := c.workerCount(); got != tc.want {
			t.Errorf("workerCount(Workers=%d, Rows=%d) = %d, want %d", tc.workers, tc.rows, got, tc.want)
		}
	}
	c := cfg
	c.Workers = -1
	if got := c.workerCount(); got < 1 {
		t.Errorf("negative Workers resolved to %d", got)
	}
}

// TestCloseIdempotent ensures Close is safe on serial networks, safe
// before any step, and safe to repeat.
func TestCloseIdempotent(t *testing.T) {
	serial := MustNew(DefaultConfig())
	serial.Close()
	serial.Close()

	cfg := DefaultConfig()
	cfg.Workers = 2
	par := MustNew(cfg)
	par.Close() // never stepped: pool not spawned yet
	par.Close()

	par2 := MustNew(cfg)
	par2.Step()
	if err := par2.Inject(&Packet{Src: 0, Dst: 63, Type: CacheRequest, App: 0}); err != nil {
		t.Fatal(err)
	}
	par2.Step()
	if err := par2.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	par2.Close()
	par2.Close()
}
