package sim

import (
	"context"
	"fmt"

	"obm/internal/cache"
	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/noc"
	"obm/internal/stats"
)

// CacheDrivenConfig configures a closed-loop full-hierarchy simulation.
type CacheDrivenConfig struct {
	// Noc configures the network; zero selects the default resized to
	// the problem's mesh.
	Noc noc.Config
	// Cache configures the memory system; zero selects
	// cache.DefaultConfig for the problem size.
	Cache cache.Config
	// Stream shapes the synthetic address streams; zero selects
	// cache.DefaultStreamConfig.
	Stream cache.StreamConfig
	// Cycles is the simulated duration (injection stops, then drains).
	Cycles int64
	// MSHRs bounds each thread's outstanding misses (default 4).
	MSHRs int
	// BaseIssueProb scales how often a thread attempts an access per
	// cycle before rate weighting (default 0.5).
	BaseIssueProb float64
	// Seed drives streams and issue timing.
	Seed uint64
}

// DefaultCacheDrivenConfig returns a window that exercises all traffic
// kinds within a second of host time.
func DefaultCacheDrivenConfig() CacheDrivenConfig {
	return CacheDrivenConfig{
		Cycles:        100_000,
		MSHRs:         4,
		BaseIssueProb: 0.5,
		Seed:          1,
	}
}

// CacheStats reports closed-loop memory-system behaviour.
type CacheStats struct {
	// Accesses and L1Misses count thread references.
	Accesses, L1Misses uint64
	// L2Hits and L2Misses count bank lookups.
	L2Hits, L2Misses uint64
	// Forwards counts coherence forward/invalidate packets.
	Forwards uint64
	// MemRequests counts controller fetches.
	MemRequests uint64
	// L1Writebacks counts dirty L1 evictions sent to their bank;
	// L2Writebacks counts dirty data leaving the chip (bank eviction or
	// a writeback arriving for a block the bank no longer holds).
	L1Writebacks, L2Writebacks uint64
}

// L1MissRate returns the fraction of accesses missing in L1.
func (s CacheStats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// CacheDrivenResult extends Result with memory-system statistics.
type CacheDrivenResult struct {
	Result
	Cache CacheStats
}

// request context attached to packets via UserData.
type reqCtx struct {
	thread int
	addr   uint64
	write  bool
}

// CacheDriven runs the closed-loop simulation of problem p's workload
// under mapping m: every thread walks a synthetic address stream through
// a private L1; misses travel the network to the address-hashed L2 bank;
// bank misses travel on to the nearest memory controller; replies and
// coherence forwards flow back. Thread issue rates are weighted by the
// workload's cache rates so heavy applications stay heavy.
// Cancellation: the cycle and drain loops poll ctx every
// simPollMask+1 cycles and return a wrapped ctx.Err() when it fires
// without perturbing the streams of an uncancelled run.
func CacheDriven(ctx context.Context, p *core.Problem, m core.Mapping, cfg CacheDrivenConfig) (CacheDrivenResult, error) {
	if err := m.Validate(p.N()); err != nil {
		return CacheDrivenResult{}, fmt.Errorf("sim: %w", err)
	}
	if cfg.Cycles <= 0 {
		return CacheDrivenResult{}, fmt.Errorf("sim: need positive cycle count")
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 4
	}
	if cfg.BaseIssueProb <= 0 {
		cfg.BaseIssueProb = 0.5
	}
	if p.Capacity() != 1 {
		return CacheDrivenResult{}, fmt.Errorf("sim: closed-loop mode models one thread per tile (capacity %d unsupported)", p.Capacity())
	}
	msh := p.Model().Mesh()
	n := p.N()
	ncfg := cfg.Noc
	if ncfg == (noc.Config{}) {
		ncfg = noc.DefaultConfig()
		ncfg.Rows, ncfg.Cols = msh.Rows(), msh.Cols()
		ncfg.Torus = p.Model().Topology() == model.TopologyTorus
	}
	ccfg := cfg.Cache
	if ccfg == (cache.Config{}) {
		ccfg = cache.DefaultConfig(n)
	}
	scfg := cfg.Stream
	if scfg == (cache.StreamConfig{}) {
		scfg = cache.DefaultStreamConfig()
	}
	net, err := noc.New(ncfg)
	if err != nil {
		return CacheDrivenResult{}, err
	}
	defer net.Close()
	if err := ccfg.Validate(); err != nil {
		return CacheDrivenResult{}, err
	}

	// Build the hierarchy.
	rng := stats.NewRand(cfg.Seed)
	l1s := make([]*cache.SetAssoc, n)   // per tile
	banks := make([]*cache.Bank, n)     // per tile
	streams := make([]*cache.Stream, n) // per thread
	outstanding := make([]int, n)       // per thread
	issueProb := make([]float64, n)
	placement := p.Model().Placement()
	mcs := make(map[mesh.Tile]*cache.MemoryController)
	for _, c := range placement.Tiles() {
		mcs[c] = cache.NewMemoryController(ccfg, int(c))
	}
	var maxRate float64
	for j := 0; j < n; j++ {
		if r := p.CacheRate(j); r > maxRate {
			maxRate = r
		}
	}
	for t := 0; t < n; t++ {
		l1, err := cache.NewSetAssoc(ccfg.L1Size, ccfg.L1Ways, ccfg.BlockSize)
		if err != nil {
			// The L1 geometry comes from the caller's CacheDrivenConfig, so
			// a bad shape is an input error, not an invariant violation.
			return CacheDrivenResult{}, fmt.Errorf("sim: l1 config: %w", err)
		}
		l1s[t] = l1
		b, err := cache.NewBank(ccfg, t)
		if err != nil {
			return CacheDrivenResult{}, err
		}
		banks[t] = b
	}
	for j := 0; j < n; j++ {
		app := p.AppOfThread(j)
		// Threads of one application share a region; private regions are
		// disjoint per thread.
		privBase := uint64(1+j) << 32
		sharedBase := uint64(1+n+app) << 32
		s, err := cache.NewStream(scfg, ccfg.BlockSize, privBase, sharedBase, rng.Split())
		if err != nil {
			return CacheDrivenResult{}, err
		}
		streams[j] = s
		if maxRate > 0 {
			issueProb[j] = cfg.BaseIssueProb * p.CacheRate(j) / maxRate
		} else {
			issueProb[j] = cfg.BaseIssueProb
		}
	}

	var cs CacheStats
	type pendingSend struct {
		pkt *noc.Packet
	}
	sendAt := make(map[int64][]pendingSend)
	schedule := func(at int64, pkt *noc.Packet) {
		// The flush for the current cycle has already run by the time a
		// delivery handler executes, so anything due now (or earlier)
		// must land in the next cycle's bucket or it would be orphaned.
		if at <= net.Cycle() {
			at = net.Cycle() + 1
		}
		sendAt[at] = append(sendAt[at], pendingSend{pkt})
	}
	tileOfThread := m // mapping: thread -> tile
	threadOfTile := m.InverseOn(n)

	// MSHR merging. threadMiss[j] holds the blocks thread j is already
	// waiting on — a re-reference merges instead of issuing a duplicate
	// request. bankMiss[t] holds each bank's outstanding fetches with the
	// contexts waiting on them, so concurrent misses to one block fetch
	// from memory once.
	threadMiss := make([]map[uint64]bool, n)
	for j := range threadMiss {
		threadMiss[j] = make(map[uint64]bool)
	}
	bankMiss := make([]map[uint64][]reqCtx, n)
	for t := range bankMiss {
		bankMiss[t] = make(map[uint64][]reqCtx)
	}

	net.SetDeliveryHandler(func(pkt *noc.Packet) {
		now := net.Cycle()
		switch pkt.Type {
		case noc.CacheRequest:
			ctx := pkt.UserData.(reqCtx)
			bank := banks[pkt.Dst]
			res := bank.Access(ctx.addr, int(pkt.Src), ctx.write)
			for _, fwd := range res.Forwards {
				cs.Forwards++
				schedule(now+int64(ccfg.L2Latency), &noc.Packet{
					Src: pkt.Dst, Dst: mesh.Tile(fwd), Type: noc.CacheForward,
					App: pkt.App, UserData: ctx,
				})
			}
			if res.Hit {
				cs.L2Hits++
				schedule(now+int64(ccfg.L2Latency), &noc.Packet{
					Src: pkt.Dst, Dst: pkt.Src, Type: noc.CacheReply,
					App: pkt.App, UserData: ctx,
				})
			} else {
				cs.L2Misses++
				block := ccfg.BlockAddr(ctx.addr)
				waiting := bankMiss[pkt.Dst][block]
				bankMiss[pkt.Dst][block] = append(waiting, ctx)
				if len(waiting) > 0 {
					break // fetch already in flight; merge
				}
				cs.MemRequests++
				mcTile, _ := placement.Nearest(msh, pkt.Dst)
				schedule(now+int64(ccfg.L2Latency), &noc.Packet{
					Src: pkt.Dst, Dst: mcTile, Type: noc.MemRequest,
					App: pkt.App, UserData: reqCtx{thread: ctx.thread, addr: ctx.addr, write: ctx.write},
				})
			}
		case noc.MemRequest:
			ctx := pkt.UserData.(reqCtx)
			mc := mcs[pkt.Dst]
			ready := mc.Submit(now)
			// Data returns to the bank that asked.
			schedule(ready, &noc.Packet{
				Src: pkt.Dst, Dst: pkt.Src, Type: noc.MemReply,
				App: pkt.App, UserData: ctx,
			})
		case noc.MemReply:
			ctx := pkt.UserData.(reqCtx)
			bank := banks[pkt.Dst]
			block := ccfg.BlockAddr(ctx.addr)
			// Answer every context merged onto this fetch.
			waiters := bankMiss[pkt.Dst][block]
			delete(bankMiss[pkt.Dst], block)
			if len(waiters) == 0 {
				waiters = []reqCtx{ctx}
			}
			for _, w := range waiters {
				origTile := tileOfThread[w.thread]
				_, evDirty, wasEv := bank.Fill(w.addr, int(origTile))
				if wasEv && evDirty {
					// Dirty L2 victim leaves the chip.
					cs.L2Writebacks++
					mcTile, _ := placement.Nearest(msh, pkt.Dst)
					schedule(now+int64(ccfg.L2Latency), &noc.Packet{
						Src: pkt.Dst, Dst: mcTile, Type: noc.Writeback,
						App: pkt.App, UserData: w,
					})
				}
				schedule(now+int64(ccfg.L2Latency), &noc.Packet{
					Src: pkt.Dst, Dst: origTile, Type: noc.CacheReply,
					App: p.AppOfThread(w.thread), UserData: w,
				})
			}
		case noc.CacheReply:
			ctx := pkt.UserData.(reqCtx)
			tile := tileOfThread[ctx.thread]
			if pkt.Dst == tile {
				evicted, evDirty, wasEv := l1s[tile].InsertDirty(ctx.addr, ctx.write)
				if wasEv && evDirty {
					// Dirty L1 victim returns to its home bank.
					cs.L1Writebacks++
					bankTile := mesh.Tile(ccfg.BankOf(evicted))
					schedule(now, &noc.Packet{
						Src: tile, Dst: bankTile, Type: noc.Writeback,
						App: pkt.App, UserData: reqCtx{thread: ctx.thread, addr: evicted, write: true},
					})
				}
				delete(threadMiss[ctx.thread], ccfg.BlockAddr(ctx.addr))
				outstanding[ctx.thread]--
			}
		case noc.CacheForward:
			// A forward invalidates or downgrades the L1 copy it reaches.
			ctx := pkt.UserData.(reqCtx)
			if th := threadOfTile[pkt.Dst]; th >= 0 && ctx.write {
				l1s[pkt.Dst].Invalidate(ctx.addr)
			}
		case noc.Writeback:
			ctx := pkt.UserData.(reqCtx)
			if _, isMC := mcs[pkt.Dst]; isMC {
				break // data left the chip; nothing more to do
			}
			bank := banks[pkt.Dst]
			if !bank.ReceiveWriteback(ctx.addr, int(pkt.Src)) {
				// Bank no longer holds the block: forward to memory.
				cs.L2Writebacks++
				mcTile, _ := placement.Nearest(msh, pkt.Dst)
				schedule(now+int64(ccfg.L2Latency), &noc.Packet{
					Src: pkt.Dst, Dst: mcTile, Type: noc.Writeback,
					App: pkt.App, UserData: ctx,
				})
			}
		}
	})
	flush := func(now int64) error {
		if due, ok := sendAt[now]; ok {
			for _, s := range due {
				if err := net.Inject(s.pkt); err != nil {
					return err
				}
			}
			delete(sendAt, now)
		}
		return nil
	}

	rep := engine.StartStage(ctx, "sim")
	for cyc := int64(0); cyc < cfg.Cycles; cyc++ {
		if cyc&simPollMask == simPollMask {
			if err := ctx.Err(); err != nil {
				return CacheDrivenResult{}, fmt.Errorf("sim: interrupted after %d/%d cycles: %w", cyc, cfg.Cycles, err)
			}
			rep.Report(int(cyc), int(cfg.Cycles))
		}
		now := net.Cycle()
		if err := flush(now); err != nil {
			return CacheDrivenResult{}, err
		}
		for j := 0; j < n; j++ {
			if outstanding[j] >= cfg.MSHRs {
				continue
			}
			if rng.Float64() >= issueProb[j] {
				continue
			}
			acc := streams[j].Next()
			tile := tileOfThread[j]
			cs.Accesses++
			if l1s[tile].Lookup(acc.Addr) {
				if acc.Write {
					l1s[tile].MarkDirty(acc.Addr)
				}
				continue // L1 hit: no network traffic
			}
			if threadMiss[j][ccfg.BlockAddr(acc.Addr)] {
				continue // miss already outstanding: MSHR merge
			}
			cs.L1Misses++
			threadMiss[j][ccfg.BlockAddr(acc.Addr)] = true
			outstanding[j]++
			bankTile := mesh.Tile(ccfg.BankOf(acc.Addr))
			pkt := &noc.Packet{
				Src: tile, Dst: bankTile, Type: noc.CacheRequest,
				App: p.AppOfThread(j), UserData: reqCtx{thread: j, addr: acc.Addr, write: acc.Write},
			}
			if err := net.Inject(pkt); err != nil {
				return CacheDrivenResult{}, err
			}
		}
		net.Step()
	}
	// Drain outstanding transactions.
	deadline := net.Cycle() + 500_000
	for net.Busy() || len(sendAt) > 0 {
		if net.Cycle()&simPollMask == simPollMask {
			if err := ctx.Err(); err != nil {
				return CacheDrivenResult{}, fmt.Errorf("sim: interrupted during drain at cycle %d: %w", net.Cycle(), err)
			}
		}
		if net.Cycle() >= deadline {
			return CacheDrivenResult{}, fmt.Errorf("sim: closed-loop drain exceeded %d cycles", 500_000)
		}
		if err := flush(net.Cycle()); err != nil {
			return CacheDrivenResult{}, err
		}
		net.Step()
	}
	return CacheDrivenResult{
		Result: summarize(net.Stats(), p.NumApps()),
		Cache:  cs,
	}, nil
}
