package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"obm/internal/engine"
	"obm/internal/obs"
)

// recordingSink captures every progress event for one stage.
type recordingSink struct {
	mu     sync.Mutex
	events []engine.Progress
}

func (s *recordingSink) Event(p engine.Progress) {
	s.mu.Lock()
	s.events = append(s.events, p)
	s.mu.Unlock()
}

func (s *recordingSink) last() (engine.Progress, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return engine.Progress{}, false
	}
	return s.events[len(s.events)-1], true
}

// TestReplicasCancelledProgressReportsDispatched is the regression test
// for the terminal-progress fix: when cancellation stops dispatch at
// k < n, the final event must report against the dispatched count (a
// closed k'/k' stage), never k'/n as if the undispatched replicas were
// still pending.
func TestReplicasCancelledProgressReportsDispatched(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sink := &recordingSink{}
			ctx, cancel := context.WithCancel(engine.WithSink(context.Background(), sink))
			defer cancel()
			const n = 16
			_, err := RunReplicas(ctx, n, workers, func(ctx context.Context, i int) (int, error) {
				if i == 2 {
					cancel() // stop dispatch mid-batch
				}
				return i, nil
			})
			if err == nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			last, ok := sink.last()
			if !ok {
				t.Fatal("no progress events recorded")
			}
			if last.Total >= n {
				t.Errorf("terminal event total = %d, want the dispatched count (< %d)", last.Total, n)
			}
			if last.Done != last.Total {
				t.Errorf("terminal event %d/%d leaves the stage open; every dispatched job had finished",
					last.Done, last.Total)
			}
		})
	}
}

// TestReplicasUncancelledProgressFinishesFull checks the happy path
// still closes at n/n.
func TestReplicasUncancelledProgressFinishesFull(t *testing.T) {
	sink := &recordingSink{}
	ctx := engine.WithSink(context.Background(), sink)
	if _, err := RunReplicas(ctx, 5, 2, func(ctx context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	last, ok := sink.last()
	if !ok {
		t.Fatal("no progress events recorded")
	}
	if last.Done != 5 || last.Total != 5 {
		t.Errorf("terminal event %d/%d, want 5/5", last.Done, last.Total)
	}
}

// TestReplicasMetrics checks the obs counters account for every job:
// completed + failed equals the jobs run, and each job contributed one
// busy-time sample. Parallel workers hammer the registry, so this also
// serves as the cross-subsystem race coverage for obs (make check runs
// this package under -race).
func TestReplicasMetrics(t *testing.T) {
	snapBefore := obs.Default().Snapshot()
	c0, _ := snapBefore.Counter("sim.replicas.jobs.completed")
	f0, _ := snapBefore.Counter("sim.replicas.jobs.failed")
	h0, _ := snapBefore.Histogram("sim.replicas.job.seconds")

	const n = 24
	_, err := RunReplicas(context.Background(), n, 8, func(ctx context.Context, i int) (int, error) {
		if i%6 == 5 {
			return 0, errors.New("synthetic failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected joined synthetic failures")
	}

	snap := obs.Default().Snapshot()
	c1, _ := snap.Counter("sim.replicas.jobs.completed")
	f1, _ := snap.Counter("sim.replicas.jobs.failed")
	h1, _ := snap.Histogram("sim.replicas.job.seconds")
	if got, want := c1-c0, uint64(20); got != want {
		t.Errorf("completed delta = %d, want %d", got, want)
	}
	if got, want := f1-f0, uint64(4); got != want {
		t.Errorf("failed delta = %d, want %d", got, want)
	}
	if got, want := h1.Count-h0.Count, uint64(n); got != want {
		t.Errorf("busy-time samples delta = %d, want %d", got, want)
	}
}
