package sim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// fpResult hashes the observable outcome of a simulation (FNV-1a over
// the counters and the per-application latencies' bit patterns), so the
// golden tests can assert bit-identical behaviour, not approximate
// agreement.
func fpResult(r Result) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) { h ^= uint64(v); h *= 1099511628211 }
	mix(r.Net.Cycles)
	mix(r.Net.InjectedPackets)
	mix(r.Net.DeliveredPackets)
	mix(r.Net.FlitHops)
	mix(r.Net.QueuingSum)
	for _, a := range r.AppAPL {
		mix(int64(math.Float64bits(a)))
	}
	mix(int64(math.Float64bits(r.GlobalAPL)))
	return h
}

func goldenProblem(t *testing.T) (*core.Problem, core.Mapping) {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	p, err := core.NewProblem(lm, workload.MustConfig("C1"))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	return p, mp
}

func goldenCfg() RateDrivenConfig {
	cfg := DefaultRateDrivenConfig()
	cfg.Seed = 7
	cfg.MeasureCycles = 20_000
	return cfg
}

// TestGoldenRateDriven pins the end-to-end simulation outcome for a
// fixed seed. The fingerprints were captured from the pre-overhaul
// simulator (map-based event scheduling, full router scans, per-packet
// allocation), so they certify that the calendar-queue rings, the
// active worklists, and the packet free list changed nothing
// observable.
func TestGoldenRateDriven(t *testing.T) {
	p, mp := goldenProblem(t)

	r, err := RateDriven(context.Background(), p, mp, goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fpResult(r), uint64(11149828048932253940); got != want {
		t.Errorf("rate-driven fingerprint = %d, want %d", got, want)
	}

	burst := goldenCfg()
	burst.BurstFactor = 4
	burst.WarmupCycles = 2000
	rb, err := RateDriven(context.Background(), p, mp, burst)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fpResult(rb), uint64(11480180334753020356); got != want {
		t.Errorf("burst fingerprint = %d, want %d", got, want)
	}
}

// TestReplicaSeed checks the contract RateDrivenReplicas relies on:
// replica 0 reuses the base seed and later replicas get distinct
// streams.
func TestReplicaSeed(t *testing.T) {
	if got := ReplicaSeed(42, 0); got != 42 {
		t.Fatalf("ReplicaSeed(42, 0) = %d, want the base seed", got)
	}
	seen := map[uint64]int{42: 0}
	for rep := 1; rep < 100; rep++ {
		s := ReplicaSeed(42, rep)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ReplicaSeed(42, %d) collides with replica %d", rep, prev)
		}
		seen[s] = rep
	}
}

// TestRunReplicasOrdering checks results come back in job order no
// matter how the workers interleave, and that every index is passed
// exactly once.
func TestRunReplicasOrdering(t *testing.T) {
	out, err := RunReplicas(context.Background(), 50, 8, func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if out, err := RunReplicas[int](context.Background(), 0, 4, nil); err != nil || out != nil {
		t.Fatalf("RunReplicas(0) = %v, %v, want nil, nil", out, err)
	}
}

// TestRunReplicasErrors checks failed jobs surface their errors while
// the rest still complete.
func TestRunReplicasErrors(t *testing.T) {
	bad := errors.New("job 3 failed")
	out, err := RunReplicas(context.Background(), 6, 2, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, bad
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 3 failed") {
		t.Fatalf("err = %v, want it to mention job 3", err)
	}
	if out[2] != 2 || out[4] != 4 {
		t.Fatalf("healthy jobs lost: %v", out)
	}
}

// TestRateDrivenReplicasDeterminism checks the two guarantees the
// experiments build on: one replica is bit-identical to the serial
// RateDriven call, and a parallel N-replica run equals N serial runs of
// the per-replica seeds.
func TestRateDrivenReplicasDeterminism(t *testing.T) {
	p, mp := goldenProblem(t)
	cfg := goldenCfg()
	cfg.MeasureCycles = 5_000

	serial, err := RateDriven(context.Background(), p, mp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RateDrivenReplicas(context.Background(), p, mp, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fpResult(one[0]), fpResult(serial); got != want {
		t.Errorf("1-replica run fingerprint = %d, serial = %d", got, want)
	}

	const n = 3
	par, err := RateDrivenReplicas(context.Background(), p, mp, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = ReplicaSeed(cfg.Seed, i)
		ref, err := RateDriven(context.Background(), p, mp, c)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fpResult(par[i]), fpResult(ref); got != want {
			t.Errorf("replica %d fingerprint = %d, serial reference = %d", i, got, want)
		}
		if !reflect.DeepEqual(par[i].AppAPL, ref.AppAPL) {
			t.Errorf("replica %d AppAPL = %v, want %v", i, par[i].AppAPL, ref.AppAPL)
		}
	}
	if fpResult(par[1]) == fpResult(par[0]) {
		t.Error("distinct replicas produced identical outcomes; seeds not propagating")
	}
}
