package sim

import (
	"context"
	"math"
	"testing"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func paperProblem(t testing.TB, cfg string) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	return core.MustNewProblem(lm, workload.MustConfig(cfg))
}

func shortRateConfig() RateDrivenConfig {
	c := DefaultRateDrivenConfig()
	c.MeasureCycles = 30_000
	return c
}

func TestRateDrivenValidation(t *testing.T) {
	p := paperProblem(t, "C1")
	bad := make(core.Mapping, 3)
	if _, err := RateDriven(context.Background(), p, bad, shortRateConfig()); err == nil {
		t.Error("invalid mapping accepted")
	}
	m := core.IdentityMapping(p.N())
	cfg := shortRateConfig()
	cfg.MeasureCycles = 0
	if _, err := RateDriven(context.Background(), p, m, cfg); err == nil {
		t.Error("zero window accepted")
	}
	cfg = shortRateConfig()
	cfg.Noc.Rows, cfg.Noc.Cols = 4, 4
	cfg.Noc.VCsPerClass, cfg.Noc.BufDepth = 1, 1
	cfg.Noc.RouterLatency, cfg.Noc.LinkLatency = 1, 1
	if _, err := RateDriven(context.Background(), p, m, cfg); err == nil {
		t.Error("mesh size mismatch accepted")
	}
}

// TestRateDrivenMatchesAnalyticModel is the Garnet-substitution
// validation: measured per-application APLs must track the analytic
// model's prediction within a couple of cycles at paper-scale loads.
func TestRateDrivenMatchesAnalyticModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C1")
	m, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RateDriven(context.Background(), p, m, DefaultRateDrivenConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Evaluate(m)
	for a := 0; a < p.NumApps(); a++ {
		if res.Net.ByApp[a].Packets == 0 {
			t.Fatalf("app %d sent no packets", a)
		}
		diff := math.Abs(res.AppAPL[a] - pred.APLs[a])
		if diff > 2.5 {
			t.Errorf("app %d: measured APL %.2f vs model %.2f (|diff| %.2f > 2.5 cycles)",
				a, res.AppAPL[a], pred.APLs[a], diff)
		}
	}
}

// TestRateDrivenQueuingSmall verifies the paper's Section II.C
// observation that queuing latency is ~0-1 cycles per hop at these
// loads.
func TestRateDrivenQueuingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C4") // the heaviest-rate configuration
	m, err := mapping.MapAndCheck(context.Background(), mapping.Global{}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RateDriven(context.Background(), p, m, shortRateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Net.AvgQueuingPerHop(); q < 0 || q > 1.0 {
		t.Errorf("avg queuing per hop = %.3f cycles, paper observes 0..1", q)
	}
}

// TestRateDrivenOrderingSSSvsGlobal: the measured max-APL under SSS
// must beat Global's, reproducing the paper's headline through the full
// flit-level substrate rather than the analytic model.
func TestRateDrivenOrderingSSSvsGlobal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C6")
	gm, err := mapping.MapAndCheck(context.Background(), mapping.Global{}, p)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRateDrivenConfig()
	gRes, err := RateDriven(context.Background(), p, gm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sRes, err := RateDriven(context.Background(), p, sm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.MaxAPL >= gRes.MaxAPL {
		t.Errorf("measured max-APL: SSS %.2f >= Global %.2f", sRes.MaxAPL, gRes.MaxAPL)
	}
	if sRes.DevAPL >= gRes.DevAPL {
		t.Errorf("measured dev-APL: SSS %.3f >= Global %.3f", sRes.DevAPL, gRes.DevAPL)
	}
}

func TestRateDrivenDeterminism(t *testing.T) {
	p := paperProblem(t, "C2")
	m := core.IdentityMapping(p.N())
	cfg := shortRateConfig()
	a, err := RateDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RateDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GlobalAPL != b.GlobalAPL || a.Net.FlitHops != b.Net.FlitHops || a.Cycles != b.Cycles {
		t.Error("rate-driven simulation not deterministic")
	}
}

func TestRateDrivenConservation(t *testing.T) {
	p := paperProblem(t, "C3")
	m := core.IdentityMapping(p.N())
	res, err := RateDriven(context.Background(), p, m, shortRateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.InjectedPackets != res.Net.DeliveredPackets {
		t.Errorf("packets lost: injected %d delivered %d",
			res.Net.InjectedPackets, res.Net.DeliveredPackets)
	}
	if res.Net.InjectedFlits != res.Net.DeliveredFlits {
		t.Errorf("flits lost: injected %d delivered %d",
			res.Net.InjectedFlits, res.Net.DeliveredFlits)
	}
	// Requests beget replies: roughly half the packets are replies.
	reqs := res.Net.ByType[int(0)].Packets + res.Net.ByType[3].Packets // CacheRequest + MemRequest
	reps := res.Net.ByType[1].Packets + res.Net.ByType[4].Packets      // CacheReply + MemReply
	if reqs != reps {
		t.Errorf("requests %d != replies %d", reqs, reps)
	}
}

func TestCacheDrivenValidation(t *testing.T) {
	p := paperProblem(t, "C1")
	bad := make(core.Mapping, 2)
	if _, err := CacheDriven(context.Background(), p, bad, DefaultCacheDrivenConfig()); err == nil {
		t.Error("invalid mapping accepted")
	}
	cfg := DefaultCacheDrivenConfig()
	cfg.Cycles = 0
	if _, err := CacheDriven(context.Background(), p, core.IdentityMapping(p.N()), cfg); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestCacheDrivenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C1")
	m, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCacheDrivenConfig()
	cfg.Cycles = 40_000
	res, err := CacheDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Accesses == 0 {
		t.Fatal("no accesses issued")
	}
	mr := res.Cache.L1MissRate()
	if mr <= 0 || mr >= 0.6 {
		t.Errorf("L1 miss rate %.3f outside plausible (0, 0.6)", mr)
	}
	if res.Cache.L2Hits+res.Cache.L2Misses == 0 {
		t.Error("no L2 traffic")
	}
	if res.Cache.MemRequests == 0 {
		t.Error("no memory traffic (working set should exceed L2 reach eventually)")
	}
	if res.Net.InjectedPackets != res.Net.DeliveredPackets {
		t.Error("closed-loop packets lost")
	}
	if res.GlobalAPL <= 0 {
		t.Error("no latency measured")
	}
	// MSHR merging and the L2 must remove some traffic: strictly fewer
	// memory fetches than L2 requests, and some warm blocks hit in L2.
	// (A cold-start window is cold-dominated — most distinct blocks are
	// first touches — so we assert structure, not a hit-rate target.)
	if res.Cache.MemRequests >= res.Cache.L1Misses {
		t.Errorf("memory requests (%d) not reduced vs L2 requests (%d)",
			res.Cache.MemRequests, res.Cache.L1Misses)
	}
	if res.Cache.L2Hits == 0 {
		t.Error("no L2 hits at all: revisited blocks should be resident")
	}
}

func TestCacheDrivenCoherenceTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C2")
	m := core.IdentityMapping(p.N())
	scfg := DefaultCacheDrivenConfig()
	scfg.Cycles = 40_000
	res, err := CacheDriven(context.Background(), p, m, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Forwards == 0 {
		t.Error("shared regions with writes should generate forward/invalidate packets")
	}
	if res.Net.ByType[2].Packets == 0 { // CacheForward
		t.Error("no forward packets crossed the network")
	}
}

func TestRateDrivenWarmupResetsStats(t *testing.T) {
	p := paperProblem(t, "C1")
	m := core.IdentityMapping(p.N())
	cold := shortRateConfig()
	warm := cold
	warm.WarmupCycles = 20_000
	a, err := RateDriven(context.Background(), p, m, cold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RateDriven(context.Background(), p, m, warm)
	if err != nil {
		t.Fatal(err)
	}
	// The warm run measures the same window length, so its packet count
	// must be in the same ballpark as the cold run, not the sum of
	// warmup+measure.
	ratio := float64(b.Net.DeliveredPackets) / float64(a.Net.DeliveredPackets)
	if ratio > 1.2 || ratio < 0.8 {
		t.Errorf("warmup did not reset stats: %d vs %d delivered", b.Net.DeliveredPackets, a.Net.DeliveredPackets)
	}
}

// TestCacheDrivenWritebacks: stores dirty L1 lines whose evictions
// return to their banks, and dirty data eventually leaves the chip.
func TestCacheDrivenWritebacks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C4")
	m := core.IdentityMapping(p.N())
	cfg := DefaultCacheDrivenConfig()
	cfg.Cycles = 40_000
	res, err := CacheDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.L1Writebacks == 0 {
		t.Error("no L1 writebacks despite 30% store mix and thrashing working sets")
	}
	if res.Net.ByType[5].Packets == 0 { // noc.Writeback
		t.Error("no writeback packets crossed the network")
	}
	if res.Net.InjectedPackets != res.Net.DeliveredPackets {
		t.Error("packets lost with writebacks enabled")
	}
}

// TestRateDrivenBursty: on/off modulation preserves the long-run mean
// packet count (within sampling noise) while increasing queuing.
func TestRateDrivenBursty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	p := paperProblem(t, "C4")
	m := core.IdentityMapping(p.N())
	cfg := DefaultRateDrivenConfig()
	cfg.MeasureCycles = 120_000
	smooth, err := RateDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BurstFactor = 8
	cfg.BurstLen = 300
	bursty, err := RateDriven(context.Background(), p, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bursty.Net.InjectedPackets) / float64(smooth.Net.InjectedPackets)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("bursty injected %.2fx the smooth packet count, want ~1.0", ratio)
	}
	if bursty.Net.AvgQueuingPerHop() <= smooth.Net.AvgQueuingPerHop() {
		t.Errorf("bursty queuing %.3f not above smooth %.3f",
			bursty.Net.AvgQueuingPerHop(), smooth.Net.AvgQueuingPerHop())
	}
	if bursty.Net.InjectedPackets != bursty.Net.DeliveredPackets {
		t.Error("bursty packets lost")
	}
}
