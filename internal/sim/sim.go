// Package sim drives the flit-level NoC with CMP traffic, closing the
// loop the paper closes with Simics+GEMS+Garnet: threads on tiles issue
// shared-cache and memory-controller requests, banks and controllers
// answer them, and per-application packet latency statistics come out.
//
// Two drivers are provided:
//
//   - RateDriven: threads inject requests as Bernoulli processes at
//     exactly the per-thread rates (c_j, m_j) of the OBM problem; L2
//     banks and memory controllers generate the replies. This is the
//     mode the mapping experiments use — it feeds the network the same
//     statistics the analytic model consumes, so measured APLs validate
//     the model and the power numbers (Figure 11) reflect each mapping.
//
//   - CacheDriven: threads run synthetic address streams through real
//     L1/L2/directory/memory-controller models; request rates emerge
//     from cache behaviour. This exercises the full substrate and backs
//     the coherence-traffic examples.
package sim

import (
	"context"
	"fmt"

	"obm/internal/cache"
	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/noc"
	"obm/internal/stats"
)

// simPollMask sets how often the cycle loops poll cancellation (every
// simPollMask+1 cycles — cheap relative to a network step, fine-grained
// enough that a cancelled simulation unwinds within microseconds).
const simPollMask = 4095

// CyclesPerRateUnit converts the paper's request rates (requests per
// microsecond at the 2 GHz clock of Table 2) into per-cycle injection
// probabilities: rate r means r/2000 requests per cycle.
const CyclesPerRateUnit = 2000

// Result carries everything an experiment reads from one simulation.
type Result struct {
	// Net is the final network statistics snapshot.
	Net noc.Stats
	// AppAPL is the measured average packet latency per application.
	AppAPL []float64
	// MaxAPL and DevAPL summarize AppAPL over applications that sent
	// packets.
	MaxAPL, DevAPL float64
	// GlobalAPL is the volume-weighted mean latency over all packets.
	GlobalAPL float64
	// Cycles is the simulated duration including drain.
	Cycles int64
}

func summarize(net noc.Stats, numApps int) Result {
	res := Result{Net: net, AppAPL: make([]float64, numApps)}
	var active []float64
	for a := 0; a < numApps; a++ {
		res.AppAPL[a] = net.AppAPL(a)
		if a < len(net.ByApp) && net.ByApp[a].Packets > 0 {
			active = append(active, res.AppAPL[a])
		}
	}
	if len(active) > 0 {
		res.MaxAPL = stats.MustMax(active)
		res.DevAPL = stats.StdDev(active)
	}
	res.GlobalAPL = net.AvgLatency()
	res.Cycles = net.Cycles
	return res
}

// RateDrivenConfig configures an open-loop simulation of a mapped
// problem.
type RateDrivenConfig struct {
	// Noc configures the network; zero value selects noc.DefaultConfig
	// resized to the problem's mesh.
	Noc noc.Config
	// WarmupCycles run before statistics collection starts (the
	// counters reset at the end of warmup). The network starts empty,
	// so paper-scale loads need no warmup; provided for steady-state
	// measurements at higher loads.
	WarmupCycles int64
	// MeasureCycles is the measured injection window.
	MeasureCycles int64
	// DrainCycles bounds the post-injection drain.
	DrainCycles int64
	// Seed drives the Bernoulli injectors.
	Seed uint64
	// BurstFactor switches injection from memoryless Bernoulli to a
	// two-state on/off (Markov-modulated) process: during ON phases a
	// thread injects at BurstFactor times its mean rate and is silent
	// otherwise, with the duty cycle chosen so the long-run rate is
	// unchanged. 0 or 1 keeps the Bernoulli default; real applications
	// burst, and burstiness stresses queuing without changing means.
	BurstFactor float64
	// BurstLen is the mean ON-phase length in cycles (default 200).
	BurstLen float64
	// NocWorkers selects the network's intra-step worker count
	// (noc.Config.Workers): 0 keeps the serial engine, >= 2 shards the
	// step, negative selects GOMAXPROCS. It overrides the Workers field
	// of Noc even when Noc is non-zero, so callers can thread one knob
	// through without building a full NoC config. Measured statistics
	// are bit-identical for every setting.
	NocWorkers int
}

// DefaultRateDrivenConfig returns a measurement window long enough for
// every application to deliver thousands of packets at Table 3 rates.
func DefaultRateDrivenConfig() RateDrivenConfig {
	return RateDrivenConfig{
		MeasureCycles: 200_000,
		DrainCycles:   100_000,
		Seed:          1,
	}
}

// RateDriven simulates problem p under mapping m and returns measured
// statistics.
//
// Traffic model per thread j on tile pi(j): with probability c_j/2000
// per cycle the thread issues a shared-cache transaction — a 1-flit
// request to a uniformly random L2 bank (the address-interleaving of
// Figure 2), answered by a 5-flit data reply after the bank's access
// latency; with probability m_j/2000 it issues a memory transaction — a
// 1-flit request to the nearest corner controller, answered by a 5-flit
// reply after the 128-cycle memory latency. Both directions are
// attributed to the thread's application, matching the paper's
// per-application APL accounting.
// Cancellation: the cycle and drain loops poll ctx every
// simPollMask+1 cycles and return a wrapped ctx.Err() when it fires;
// the polls never touch the injector's random stream, so an
// uncancelled run is bit-identical for any context.
func RateDriven(ctx context.Context, p *core.Problem, m core.Mapping, cfg RateDrivenConfig) (Result, error) {
	if err := m.Validate(p.N()); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	msh := p.Model().Mesh()
	ncfg := cfg.Noc
	if ncfg == (noc.Config{}) {
		ncfg = noc.DefaultConfig()
		ncfg.Rows = msh.Rows()
		ncfg.Cols = msh.Cols()
		ncfg.Torus = p.Model().Topology() == model.TopologyTorus
	}
	if ncfg.Rows != msh.Rows() || ncfg.Cols != msh.Cols() {
		return Result{}, fmt.Errorf("sim: NoC %dx%d does not match problem mesh %v", ncfg.Rows, ncfg.Cols, msh)
	}
	if cfg.MeasureCycles <= 0 {
		return Result{}, fmt.Errorf("sim: need positive measurement window")
	}
	if cfg.NocWorkers != 0 {
		ncfg.Workers = cfg.NocWorkers
	}
	net, err := noc.New(ncfg)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	ccfg := cache.DefaultConfig(p.N())

	// Reply generation: when a request arrives, schedule the reply after
	// the service latency.
	type pendingReply struct {
		at  int64
		pkt *noc.Packet
	}
	replies := make(map[int64][]pendingReply)
	placement := p.Model().Placement()
	mcs := make(map[mesh.Tile]*cache.MemoryController)
	for _, c := range placement.Tiles() {
		mcs[c] = cache.NewMemoryController(ccfg, int(c))
	}
	net.SetDeliveryHandler(func(pkt *noc.Packet) {
		switch pkt.Type {
		case noc.CacheRequest:
			at := net.Cycle() + int64(ccfg.L2Latency)
			reply := net.AllocPacket()
			reply.Src, reply.Dst, reply.Type, reply.App = pkt.Dst, pkt.Src, noc.CacheReply, pkt.App
			replies[at] = append(replies[at], pendingReply{at, reply})
		case noc.MemRequest:
			mc := mcs[pkt.Dst]
			at := mc.Submit(net.Cycle())
			reply := net.AllocPacket()
			reply.Src, reply.Dst, reply.Type, reply.App = pkt.Dst, pkt.Src, noc.MemReply, pkt.App
			replies[at] = append(replies[at], pendingReply{at, reply})
		}
	})
	flush := func(now int64) error {
		if due, ok := replies[now]; ok {
			for _, r := range due {
				if err := net.Inject(r.pkt); err != nil {
					return err
				}
			}
			delete(replies, now)
		}
		return nil
	}

	rng := stats.NewRand(cfg.Seed)
	n := p.N()
	// Per-thread per-cycle injection probabilities.
	pc := make([]float64, n)
	pm := make([]float64, n)
	for j := 0; j < n; j++ {
		pc[j] = p.CacheRate(j) / CyclesPerRateUnit
		pm[j] = p.MemRate(j) / CyclesPerRateUnit
	}
	// Optional on/off burst modulation: scale rates up during ON phases
	// and gate them off otherwise, preserving the long-run mean.
	burst := cfg.BurstFactor > 1
	var on []bool
	var pOffOn, pOnOff float64
	if burst {
		bl := cfg.BurstLen
		if bl <= 0 {
			bl = 200
		}
		pOnOff = 1 / bl
		// Duty cycle 1/BurstFactor: mean OFF length = bl*(factor-1).
		pOffOn = 1 / (bl * (cfg.BurstFactor - 1))
		on = make([]bool, n)
		for j := range on {
			on[j] = rng.Float64() < 1/cfg.BurstFactor
		}
		for j := 0; j < n; j++ {
			pc[j] *= cfg.BurstFactor
			pm[j] *= cfg.BurstFactor
		}
	}

	rep := engine.StartStage(ctx, "sim")
	total := cfg.WarmupCycles + cfg.MeasureCycles
	for cyc := int64(0); cyc < total; cyc++ {
		if cyc&simPollMask == simPollMask {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: interrupted after %d/%d cycles: %w", cyc, total, err)
			}
			rep.Report(int(cyc), int(total))
		}
		if cyc == cfg.WarmupCycles && cyc > 0 {
			net.ResetStats()
		}
		now := net.Cycle()
		if err := flush(now); err != nil {
			return Result{}, err
		}
		for j := 0; j < n; j++ {
			if burst {
				if on[j] {
					if rng.Float64() < pOnOff {
						on[j] = false
					}
				} else if rng.Float64() < pOffOn {
					on[j] = true
				}
				if !on[j] {
					continue
				}
			}
			src := p.TileOfSlot(m[j])
			if pc[j] > 0 && rng.Float64() < pc[j] {
				pkt := net.AllocPacket() // recycled after delivery; nothing retains it
				pkt.Src = src
				pkt.Dst = mesh.Tile(rng.Intn(msh.NumTiles())) // uniform bank hash
				pkt.Type, pkt.App = noc.CacheRequest, p.AppOfThread(j)
				if err := net.Inject(pkt); err != nil {
					return Result{}, err
				}
			}
			if pm[j] > 0 && rng.Float64() < pm[j] {
				pkt := net.AllocPacket()
				pkt.Src = src
				pkt.Dst, _ = placement.Nearest(msh, src)
				pkt.Type, pkt.App = noc.MemRequest, p.AppOfThread(j)
				if err := net.Inject(pkt); err != nil {
					return Result{}, err
				}
			}
		}
		net.Step()
	}
	// Drain: keep flushing replies until the network and reply queues are
	// empty.
	drain := cfg.DrainCycles
	if drain <= 0 {
		drain = 100_000
	}
	deadline := net.Cycle() + drain
	for net.Busy() || len(replies) > 0 {
		if net.Cycle()&simPollMask == simPollMask {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: interrupted during drain at cycle %d: %w", net.Cycle(), err)
			}
		}
		if net.Cycle() >= deadline {
			return Result{}, fmt.Errorf("sim: network failed to drain within %d cycles", drain)
		}
		if err := flush(net.Cycle()); err != nil {
			return Result{}, err
		}
		net.Step()
	}
	return summarize(net.Stats(), p.NumApps()), nil
}
