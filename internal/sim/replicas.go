package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/obs"
	"obm/internal/stats"
)

// Replica-runner metrics: completed/failed job counts and per-job busy
// time (the histogram's sum is total worker busy seconds; divide by
// wall time for utilization). Recording happens once per replica job —
// far off the simulator's per-cycle hot path.
var (
	mJobsCompleted = obs.Default().Counter("sim.replicas.jobs.completed")
	mJobsFailed    = obs.Default().Counter("sim.replicas.jobs.failed")
	mJobSeconds    = obs.Default().Timer("sim.replicas.job.seconds")
)

// runJob executes one replica job with metrics around it.
func runJob[T any](ctx context.Context, i int, job func(ctx context.Context, i int) (T, error)) (T, error) {
	start := time.Now()
	v, err := job(ctx, i)
	mJobSeconds.Since(start)
	if err != nil {
		mJobsFailed.Inc()
	} else {
		mJobsCompleted.Inc()
	}
	return v, err
}

// RunReplicas runs n independent jobs across at most workers goroutines
// and returns their results in job-index order. workers <= 0 selects
// GOMAXPROCS. Each job must be self-contained (build its own Network;
// the simulator types are not safe for concurrent use) — sharding whole
// seeded replicas is the share-nothing decomposition that keeps the
// parallel run bit-identical to running the same jobs serially. Jobs
// that fail contribute a zero result; the errors are joined.
//
// Cancellation: when ctx is done, no further jobs are dispatched and
// each in-flight job sees the same ctx (jobs are expected to poll it
// and unwind promptly). Completed replicas are still returned in their
// slots; the joined error then includes the ctx.Err() so callers can
// distinguish a cancelled batch from job failures while keeping the
// partial results. Progress (replicas completed / n) is reported to
// the context's engine sink, if any; after cancellation the terminal
// event reports against the dispatched count — completed/dispatched,
// not k/n with k < n — so no sink is left believing undispatched work
// is still pending.
func RunReplicas[T any](ctx context.Context, n, workers int, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	rep := engine.StartStage(ctx, "replicas")
	out := make([]T, n)
	errs := make([]error, n, n+1)
	dispatched := n
	completed := 0
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				dispatched = i
				break
			}
			out[i], errs[i] = runJob(ctx, i, job)
			completed = i + 1
			rep.Report(completed, n)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		var done sync.Mutex // guards completed under the progress report
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = runJob(ctx, i, job)
					done.Lock()
					completed++
					c := completed
					done.Unlock()
					rep.Report(c, n)
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				dispatched = i
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Every dispatched job has finished (workers drained the channel
		// before wg.Wait returned), so the terminal progress event is
		// completed/dispatched — a closed stage, not pending work.
		rep.Finish(completed, dispatched)
		errs = append(errs, fmt.Errorf("sim: replicas interrupted after dispatching %d/%d: %w", dispatched, n, err))
	} else {
		rep.Finish(n, n)
	}
	return out, errors.Join(errs...)
}

// ReplicaSeed derives the seed for replica rep from a base seed.
// Replica 0 uses the base seed unchanged, so a single-replica run
// reproduces the corresponding serial run exactly; later replicas get
// well-mixed distinct streams. It is stats.SplitSeed under its
// historical name — the derivation is shared with every other
// deterministic fan-out (Monte-Carlo chunks, annealing restarts).
func ReplicaSeed(base uint64, rep int) uint64 {
	return stats.SplitSeed(base, rep)
}

// RateDrivenReplicas runs replicas independent RateDriven simulations
// of (p, m), identical except for the injector seed (ReplicaSeed of
// cfg.Seed), spread over the machine's cores. Results come back in
// replica order regardless of completion order, so downstream
// aggregation is deterministic.
func RateDrivenReplicas(ctx context.Context, p *core.Problem, m core.Mapping, cfg RateDrivenConfig, replicas int) ([]Result, error) {
	return RunReplicas(ctx, replicas, 0, func(ctx context.Context, i int) (Result, error) {
		c := cfg
		c.Seed = ReplicaSeed(cfg.Seed, i)
		return RateDriven(ctx, p, m, c)
	})
}
