package npc_test

import (
	"context"
	"fmt"

	"obm/internal/npc"
)

// Decide a set-partition instance by reducing it to the paper's DOBM
// problem and running an exact OBM solver — the Section III.C proof,
// executed.
func ExampleDecide() {
	yes, a1, a2, err := npc.Decide(context.Background(), []float64{1, 2, 3, 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("partition exists:", yes)
	fmt.Println("valid:", npc.Verify([]float64{1, 2, 3, 4}, a1, a2) == nil)

	no, _, _, err := npc.Decide(context.Background(), []float64{10, 1, 1, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("dominated set partitions:", no)
	// Output:
	// partition exists: true
	// valid: true
	// dominated set partitions: false
}
