package npc

import (
	"context"
	"math"
	"testing"

	"obm/internal/mesh"
	"obm/internal/stats"
)

func TestReduceValidation(t *testing.T) {
	if _, err := Reduce(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Reduce([]float64{1, 2, 3}); err == nil {
		t.Error("odd set accepted")
	}
	if _, err := Reduce([]float64{1, -2}); err == nil {
		t.Error("negative element accepted")
	}
	if _, err := Reduce([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestReduceStructure(t *testing.T) {
	set := []float64{1, 2, 3, 4}
	inst, err := Reduce(set)
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	if p.N() != 4 || p.NumApps() != 2 {
		t.Fatalf("N=%d A=%d", p.N(), p.NumApps())
	}
	// TC(k) equals the set elements; TM is zero (the proof's setup).
	lm := p.Model()
	for k, s := range set {
		if lm.TC(mesh.Tile(k)) != s {
			t.Errorf("TC(%d) = %v, want %v", k, lm.TC(mesh.Tile(k)), s)
		}
		if lm.TM(mesh.Tile(k)) != 0 {
			t.Errorf("TM(%d) = %v, want 0", k, lm.TM(mesh.Tile(k)))
		}
	}
	if inst.Gamma != 2.5 {
		t.Errorf("gamma = %v, want 2.5", inst.Gamma)
	}
}

func TestDecideYesInstances(t *testing.T) {
	yes := [][]float64{
		{1, 2, 3, 4},              // {1,4} {2,3}
		{5, 5, 5, 5},              // any split
		{0, 0, 0, 0},              // degenerate
		{1, 1, 2, 2, 3, 3},        // {1,2,3} twice
		{10, 1, 9, 2, 8, 6, 7, 3}, // sum 46, half 23: e.g. {10,9,3,1}... sizes 4
		{2.5, 0.5, 1.5, 1.5},      // fractional rates
	}
	for _, set := range yes {
		ok, a1, a2, err := Decide(context.Background(), set)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("Decide(%v) = no, want yes", set)
			continue
		}
		if err := Verify(set, a1, a2); err != nil {
			t.Errorf("Decide(%v) returned invalid partition %v/%v: %v", set, a1, a2, err)
		}
	}
}

func TestDecideNoInstances(t *testing.T) {
	no := [][]float64{
		{1, 2},             // 1 != 2
		{1, 1, 1, 4},       // sum 7 odd-ish: halves can't match
		{10, 1, 1, 1},      // 10 dominates
		{3, 3, 3, 2},       // sum 11
		{8, 1, 1, 1, 1, 2}, // equal-size: {8,x,y} min 10 > half 7
	}
	for _, set := range no {
		ok, _, _, err := Decide(context.Background(), set)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("Decide(%v) = yes, want no", set)
		}
	}
}

// TestDecideMatchesBruteForce cross-checks the reduction against direct
// enumeration on random small sets.
func TestDecideMatchesBruteForce(t *testing.T) {
	rng := stats.NewRand(41)
	for trial := 0; trial < 20; trial++ {
		n := 4 + 2*rng.Intn(3) // 4, 6, 8
		set := make([]float64, n)
		for i := range set {
			set[i] = float64(rng.Intn(8))
		}
		want := bruteForcePartition(set)
		got, a1, a2, err := Decide(context.Background(), set)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Decide(%v) = %v, brute force %v", set, got, want)
		}
		if got {
			if err := Verify(set, a1, a2); err != nil {
				t.Fatalf("invalid partition for %v: %v", set, err)
			}
		}
	}
}

// bruteForcePartition enumerates all equal-size subsets.
func bruteForcePartition(set []float64) bool {
	n := len(set)
	var total float64
	for _, s := range set {
		total += s
	}
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != n/2 {
			continue
		}
		var sum float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += set[i]
			}
		}
		if math.Abs(sum-total/2) < 1e-9 {
			return true
		}
	}
	return false
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestVerify(t *testing.T) {
	set := []float64{1, 2, 3, 4}
	if err := Verify(set, []int{0, 3}, []int{1, 2}); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := Verify(set, []int{0}, []int{1, 2}); err == nil {
		t.Error("wrong sizes accepted")
	}
	if err := Verify(set, []int{0, 0}, []int{1, 2}); err == nil {
		t.Error("repeated index accepted")
	}
	if err := Verify(set, []int{0, 1}, []int{2, 3}); err == nil {
		t.Error("unequal sums accepted")
	}
	if err := Verify(set, []int{0, 9}, []int{1, 2}); err == nil {
		t.Error("out-of-range index accepted")
	}
}
