// Package npc makes the paper's NP-completeness argument (Section
// III.C) executable: it implements the polynomial reduction from the
// set-partition problem to the decision version of the On-chip latency
// Balanced Mapping problem (DOBM), and decides set-partition by calling
// an OBM solver on the constructed instance — exactly the subroutine-Y
// construction of the proof.
//
// Set-partition (the variant used in the proof): given a multiset
// S = {s_1..s_N} with N even, do two subsets of size N/2 exist with
// equal sums? The reduction builds an N-tile chip with TC(k) = s_k,
// TM = 0, and two applications of N/2 unit-rate threads; a mapping with
// both APLs <= gamma = mean(S) exists iff the partition does, and the
// subsets read off the mapping (eq. 11).
package npc

import (
	"context"
	"fmt"
	"math"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// Instance is a constructed DOBM instance together with its threshold.
type Instance struct {
	// Problem is the two-application OBM instance with TC(k) = s_k.
	Problem *core.Problem
	// Gamma is the decision threshold: mean of the set (eq. 9).
	Gamma float64
	// Set is the original input.
	Set []float64
}

// Reduce builds the DOBM instance for a set-partition input. The set
// must have an even number of non-negative elements.
func Reduce(set []float64) (*Instance, error) {
	n := len(set)
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("npc: set size %d must be positive and even", n)
	}
	var sum float64
	for i, s := range set {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("npc: element %d = %v is not a non-negative real", i, s)
		}
		sum += s
	}
	// A 1xN chip whose cache latencies are the set elements and whose
	// memory latencies are zero.
	msh, err := mesh.New(1, n)
	if err != nil {
		return nil, err
	}
	tm := make([]float64, n)
	lm, err := model.NewTable(msh, model.Params{}, set, tm)
	if err != nil {
		return nil, err
	}
	// Two applications of N/2 threads, all with c_j = 1, m_j = 0.
	w := &workload.Workload{Name: "set-partition"}
	for a := 0; a < 2; a++ {
		app := workload.Application{Name: fmt.Sprintf("A%d", a+1)}
		for t := 0; t < n/2; t++ {
			app.Threads = append(app.Threads, workload.Thread{CacheRate: 1})
		}
		w.Apps = append(w.Apps, app)
	}
	p, err := core.NewProblem(lm, w)
	if err != nil {
		return nil, err
	}
	return &Instance{Problem: p, Gamma: sum / float64(n), Set: set}, nil
}

// Decide answers the set-partition question by solving the reduced
// DOBM instance with the exact OBM solver ("subroutine Y" of the
// proof). On a yes-instance it returns the two equal-sum index subsets
// recovered from the optimal mapping (eq. 11). Practical only for
// small sets — that is the point of an NP-completeness reduction run
// through an exponential solver; ctx bounds the exponential search.
func Decide(ctx context.Context, set []float64) (yes bool, a1, a2 []int, err error) {
	inst, err := Reduce(set)
	if err != nil {
		return false, nil, nil, err
	}
	m, err := mapping.MapAndCheck(ctx, mapping.Exact{}, inst.Problem)
	if err != nil {
		return false, nil, nil, err
	}
	// Y holds iff every application's APL is <= gamma.
	ev := inst.Problem.Evaluate(m)
	const eps = 1e-9
	if ev.MaxAPL > inst.Gamma+eps {
		return false, nil, nil, nil
	}
	half := len(set) / 2
	for j := 0; j < half; j++ {
		a1 = append(a1, int(m[j]))
	}
	for j := half; j < len(set); j++ {
		a2 = append(a2, int(m[j]))
	}
	return true, a1, a2, nil
}

// Verify checks a claimed partition: both subsets have size N/2,
// cover every index exactly once, and have equal sums.
func Verify(set []float64, a1, a2 []int) error {
	n := len(set)
	if len(a1) != n/2 || len(a2) != n/2 {
		return fmt.Errorf("npc: subset sizes %d/%d, want %d each", len(a1), len(a2), n/2)
	}
	seen := make([]bool, n)
	var s1, s2 float64
	for _, i := range a1 {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("npc: invalid or repeated index %d", i)
		}
		seen[i] = true
		s1 += set[i]
	}
	for _, i := range a2 {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("npc: invalid or repeated index %d", i)
		}
		seen[i] = true
		s2 += set[i]
	}
	if math.Abs(s1-s2) > 1e-9*math.Max(1, math.Abs(s1)) {
		return fmt.Errorf("npc: subset sums differ: %v vs %v", s1, s2)
	}
	return nil
}
