package cache

import "fmt"

// MemoryController models one corner memory controller: a FIFO of
// outstanding requests served at a fixed bandwidth, each completing
// MemLatency cycles after entering service (Table 2: 128 cycles).
type MemoryController struct {
	tile      int
	latency   int64
	gap       int64
	nextStart int64 // earliest cycle the next request may enter service
	served    uint64
	busySum   int64
}

// NewMemoryController builds the controller on the given tile.
func NewMemoryController(cfg Config, tile int) *MemoryController {
	return &MemoryController{
		tile:    tile,
		latency: int64(cfg.MemLatency),
		gap:     int64(cfg.MemBandwidth),
	}
}

// Tile returns the controller's tile.
func (mc *MemoryController) Tile() int { return mc.tile }

// Submit enqueues a request at cycle now and returns the cycle its data
// is ready to be sent back on-chip.
func (mc *MemoryController) Submit(now int64) (ready int64) {
	start := now
	if mc.nextStart > start {
		start = mc.nextStart
	}
	mc.nextStart = start + mc.gap
	mc.served++
	mc.busySum += start - now
	return start + mc.latency
}

// Served returns the number of requests handled.
func (mc *MemoryController) Served() uint64 { return mc.served }

// AvgQueueDelay returns the mean cycles requests waited before entering
// service.
func (mc *MemoryController) AvgQueueDelay() float64 {
	if mc.served == 0 {
		return 0
	}
	return float64(mc.busySum) / float64(mc.served)
}

func (mc *MemoryController) String() string {
	return fmt.Sprintf("MC@tile%d (lat=%d, gap=%d)", mc.tile, mc.latency, mc.gap)
}
