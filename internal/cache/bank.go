package cache

import "fmt"

// Sharers is a bitmask of tiles holding a block in their private L1
// (one bit per tile; supports up to 64 tiles, the paper's platform).
type Sharers uint64

// Add marks tile t as a sharer.
func (s Sharers) Add(t int) Sharers { return s | 1<<uint(t) }

// Remove clears tile t.
func (s Sharers) Remove(t int) Sharers { return s &^ (1 << uint(t)) }

// Has reports whether tile t shares the block.
func (s Sharers) Has(t int) bool { return s&(1<<uint(t)) != 0 }

// Count returns the number of sharers.
func (s Sharers) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Tiles returns the sharer tile indices in ascending order.
func (s Sharers) Tiles() []int {
	var out []int
	for t := 0; t < 64; t++ {
		if s.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// Bank is one shared-L2 slice plus its slice of the coherence
// directory: for every resident block it tracks which tiles' L1s hold a
// copy, so the protocol knows where to send forward/invalidate packets
// (the "checking/forwarding packets" of Section II.B).
type Bank struct {
	tile  int
	cache *SetAssoc
	dir   map[uint64]Sharers
	cfg   Config
}

// NewBank builds the L2 bank residing on the given tile.
func NewBank(cfg Config, tile int) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tile < 0 || tile >= cfg.NumBanks {
		return nil, fmt.Errorf("cache: bank tile %d out of range [0,%d)", tile, cfg.NumBanks)
	}
	sa, err := NewSetAssoc(cfg.L2BankSize, cfg.L2Ways, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	return &Bank{tile: tile, cache: sa, dir: make(map[uint64]Sharers), cfg: cfg}, nil
}

// Tile returns the tile hosting this bank.
func (b *Bank) Tile() int { return b.tile }

// localAddr translates a global block address to this bank's local
// address space. The blocks a bank holds are spaced NumBanks apart in
// the global block numbering (the interleave of Figure 2); indexing the
// bank's sets with the global number would alias every block into the
// handful of sets congruent to the bank index, wasting most of the
// capacity. Dividing the bank bits out first restores full utilization,
// exactly as hardware slices index with the bits above the bank field.
func (b *Bank) localAddr(addr uint64) uint64 {
	blockNum := addr / uint64(b.cfg.BlockSize)
	return (blockNum / uint64(b.cfg.NumBanks)) * uint64(b.cfg.BlockSize)
}

// globalAddr inverts localAddr.
func (b *Bank) globalAddr(local uint64) uint64 {
	blockNum := local / uint64(b.cfg.BlockSize)
	return (blockNum*uint64(b.cfg.NumBanks) + uint64(b.tile)) * uint64(b.cfg.BlockSize)
}

// AccessResult describes the bank's reaction to an L1 miss request.
type AccessResult struct {
	// Hit reports whether the block was resident in this L2 bank.
	Hit bool
	// Forwards lists tiles whose L1 copies must be notified (owner
	// forwarding on a read of a modified block, invalidations on a
	// write). A packet per tile models the coherence traffic.
	Forwards []int
	// Evicted is the block address displaced by the fill, when EvictedOK.
	Evicted   uint64
	EvictedOK bool
}

// Access handles an L1 miss for addr from the requesting tile. write
// distinguishes stores (which invalidate other sharers) from loads
// (which add a sharer, forwarding from the previous exclusive holder if
// any). On an L2 miss the caller is responsible for fetching the block
// from memory and calling Fill.
func (b *Bank) Access(addr uint64, fromTile int, write bool) AccessResult {
	if got, want := b.cfg.BankOf(addr), b.tile; got != want {
		panic(fmt.Sprintf("cache: address %#x hashes to bank %d, accessed bank %d", addr, got, want))
	}
	block := b.cfg.BlockAddr(addr)
	var res AccessResult
	res.Hit = b.cache.Lookup(b.localAddr(block))
	if !res.Hit {
		return res
	}
	if write {
		b.cache.MarkDirty(b.localAddr(block))
	}
	sharers := b.dir[block]
	if write {
		// Invalidate every other sharer.
		for _, t := range sharers.Tiles() {
			if t != fromTile {
				res.Forwards = append(res.Forwards, t)
			}
		}
		b.dir[block] = Sharers(0).Add(fromTile)
	} else {
		// A single existing sharer may hold the block modified; the
		// protocol forwards the request to it (MOESI owner forwarding).
		if sharers.Count() == 1 && !sharers.Has(fromTile) {
			res.Forwards = append(res.Forwards, sharers.Tiles()[0])
		}
		b.dir[block] = sharers.Add(fromTile)
	}
	return res
}

// Fill inserts a block fetched from memory and records the requester as
// its first sharer. It returns the eviction, if any, and whether the
// victim was dirty (requiring a writeback to memory); evicted blocks
// drop their directory state (back-invalidation of L1 copies is
// approximated by the forwards already reported).
func (b *Bank) Fill(addr uint64, fromTile int) (evicted uint64, evictedDirty, wasEvicted bool) {
	block := b.cfg.BlockAddr(addr)
	evictedLocal, evictedDirty, wasEvicted := b.cache.InsertDirty(b.localAddr(block), false)
	if wasEvicted {
		evicted = b.globalAddr(evictedLocal)
		delete(b.dir, evicted)
	}
	b.dir[block] = b.dir[block].Add(fromTile)
	return evicted, evictedDirty, wasEvicted
}

// ReceiveWriteback absorbs a dirty block evicted from an L1: if the
// block is still resident the bank takes ownership of the dirty data
// and reports true; otherwise the caller must forward the writeback to
// memory. Either way the evicting tile stops being a sharer.
func (b *Bank) ReceiveWriteback(addr uint64, fromTile int) (resident bool) {
	block := b.cfg.BlockAddr(addr)
	b.DropSharer(block, fromTile)
	local := b.localAddr(block)
	if b.cache.Contains(local) {
		b.cache.MarkDirty(local)
		return true
	}
	return false
}

// DropSharer removes fromTile from addr's sharer set (an L1 eviction
// notification).
func (b *Bank) DropSharer(addr uint64, fromTile int) {
	block := b.cfg.BlockAddr(addr)
	if s, ok := b.dir[block]; ok {
		s = s.Remove(fromTile)
		if s == 0 {
			delete(b.dir, block)
		} else {
			b.dir[block] = s
		}
	}
}

// Sharers returns the current sharer set of addr's block.
func (b *Bank) Sharers(addr uint64) Sharers {
	return b.dir[b.cfg.BlockAddr(addr)]
}

// HitRate exposes the underlying cache hit rate.
func (b *Bank) HitRate() float64 { return b.cache.HitRate() }
