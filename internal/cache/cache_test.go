package cache

import (
	"testing"

	"obm/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		func() Config { c := DefaultConfig(64); c.BlockSize = 48; return c }(),
		func() Config { c := DefaultConfig(64); c.L1Ways = 0; return c }(),
		func() Config { c := DefaultConfig(64); c.L2BankSize = 100; return c }(),
		func() Config { c := DefaultConfig(64); c.MemLatency = -1; return c }(),
		func() Config { c := DefaultConfig(64); c.MemBandwidth = 0; return c }(),
		func() Config { c := DefaultConfig(64); c.NumBanks = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBankOfUniform(t *testing.T) {
	cfg := DefaultConfig(64)
	counts := make([]int, 64)
	for b := uint64(0); b < 64*100; b++ {
		counts[cfg.BankOf(b*uint64(cfg.BlockSize))]++
	}
	for bank, c := range counts {
		if c != 100 {
			t.Errorf("bank %d got %d consecutive blocks, want 100 (uniform interleave)", bank, c)
		}
	}
	// Addresses within one block map to the same bank.
	if cfg.BankOf(64) != cfg.BankOf(65) || cfg.BankOf(64) != cfg.BankOf(127) {
		t.Error("addresses within a block must share a bank")
	}
}

func TestBlockAddr(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.BlockAddr(130) != 128 {
		t.Errorf("BlockAddr(130) = %d, want 128", cfg.BlockAddr(130))
	}
	if cfg.BlockAddr(128) != 128 {
		t.Error("block-aligned address should be unchanged")
	}
}

func TestSetAssocGeometry(t *testing.T) {
	if _, err := NewSetAssoc(0, 2, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewSetAssoc(100, 2, 64); err == nil {
		t.Error("indivisible size accepted")
	}
	c := MustNewSetAssoc(32*1024, 2, 64)
	if c.Sets() != 256 || c.Ways() != 2 {
		t.Errorf("32KB 2-way 64B: %d sets x %d ways, want 256x2", c.Sets(), c.Ways())
	}
}

func TestSetAssocHitMiss(t *testing.T) {
	c := MustNewSetAssoc(4*64, 2, 64) // 2 sets x 2 ways
	if c.Lookup(0) {
		t.Error("empty cache hit")
	}
	c.Insert(0)
	if !c.Lookup(0) {
		t.Error("inserted block missed")
	}
	if !c.Lookup(63) {
		t.Error("same-block offset missed")
	}
	if c.Lookup(64) {
		t.Error("different block hit")
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats hits=%d misses=%d, want 2/2", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %v, want 0.5", c.HitRate())
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 1 set x 2 ways of 64B blocks: blocks 0, 128, 256 all map to set 0
	// when sets=1... build 2 sets: blocks 0,128,256 map set 0; use
	// stride 2 blocks.
	c := MustNewSetAssoc(4*64, 2, 64) // 2 sets, 2 ways
	c.Insert(0)                       // set 0
	c.Insert(128)                     // set 0
	c.Lookup(0)                       // make 0 MRU
	ev, ok := c.Insert(256)           // set 0: evict LRU = 128
	if !ok || ev != 128 {
		t.Errorf("evicted %d (ok=%v), want 128", ev, ok)
	}
	if !c.Contains(0) || !c.Contains(256) || c.Contains(128) {
		t.Error("post-eviction contents wrong")
	}
}

func TestSetAssocInsertResident(t *testing.T) {
	c := MustNewSetAssoc(4*64, 2, 64)
	c.Insert(0)
	if _, ok := c.Insert(0); ok {
		t.Error("re-inserting resident block evicted something")
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := MustNewSetAssoc(4*64, 2, 64)
	c.Insert(0)
	if !c.Invalidate(0) {
		t.Error("invalidate of resident block failed")
	}
	if c.Invalidate(0) {
		t.Error("invalidate of absent block succeeded")
	}
	if c.Contains(0) {
		t.Error("block survived invalidation")
	}
}

func TestSharers(t *testing.T) {
	var s Sharers
	s = s.Add(3).Add(17).Add(63)
	if !s.Has(3) || !s.Has(17) || !s.Has(63) || s.Has(4) {
		t.Error("Has wrong")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	tiles := s.Tiles()
	if len(tiles) != 3 || tiles[0] != 3 || tiles[1] != 17 || tiles[2] != 63 {
		t.Errorf("Tiles = %v", tiles)
	}
	s = s.Remove(17)
	if s.Has(17) || s.Count() != 2 {
		t.Error("Remove wrong")
	}
}

func bankFor(t *testing.T, cfg Config, tile int) *Bank {
	t.Helper()
	b, err := NewBank(cfg, tile)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// addrForBank returns a block address hashing to the given bank.
func addrForBank(cfg Config, bank int, block int) uint64 {
	return uint64(block*cfg.NumBanks+bank) * uint64(cfg.BlockSize)
}

func TestBankValidation(t *testing.T) {
	cfg := DefaultConfig(16)
	if _, err := NewBank(cfg, -1); err == nil {
		t.Error("negative tile accepted")
	}
	if _, err := NewBank(cfg, 16); err == nil {
		t.Error("out-of-range tile accepted")
	}
}

func TestBankMissThenFill(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 5)
	addr := addrForBank(cfg, 5, 0)
	res := b.Access(addr, 2, false)
	if res.Hit {
		t.Error("cold access hit")
	}
	b.Fill(addr, 2)
	res = b.Access(addr, 2, false)
	if !res.Hit {
		t.Error("filled block missed")
	}
	if len(res.Forwards) != 0 {
		t.Errorf("self re-read forwarded to %v", res.Forwards)
	}
	if !b.Sharers(addr).Has(2) {
		t.Error("requester not recorded as sharer")
	}
}

func TestBankWrongBankPanics(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 5)
	defer func() {
		if recover() == nil {
			t.Error("wrong-bank access should panic (programming error)")
		}
	}()
	b.Access(addrForBank(cfg, 6, 0), 0, false)
}

func TestBankReadForwarding(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 0)
	addr := addrForBank(cfg, 0, 1)
	b.Fill(addr, 3) // tile 3 holds the only copy
	res := b.Access(addr, 7, false)
	if !res.Hit {
		t.Fatal("expected hit")
	}
	if len(res.Forwards) != 1 || res.Forwards[0] != 3 {
		t.Errorf("Forwards = %v, want [3] (owner forwarding)", res.Forwards)
	}
	s := b.Sharers(addr)
	if !s.Has(3) || !s.Has(7) {
		t.Error("both tiles should now share")
	}
}

func TestBankWriteInvalidation(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 0)
	addr := addrForBank(cfg, 0, 2)
	b.Fill(addr, 1)
	b.Access(addr, 2, false)
	b.Access(addr, 3, false)
	res := b.Access(addr, 2, true) // tile 2 writes
	if !res.Hit {
		t.Fatal("expected hit")
	}
	if len(res.Forwards) != 2 {
		t.Fatalf("Forwards = %v, want invalidations to tiles 1 and 3", res.Forwards)
	}
	s := b.Sharers(addr)
	if s.Count() != 1 || !s.Has(2) {
		t.Errorf("post-write sharers = %v, want {2}", s.Tiles())
	}
}

func TestBankDropSharer(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 0)
	addr := addrForBank(cfg, 0, 3)
	b.Fill(addr, 1)
	b.DropSharer(addr, 1)
	if b.Sharers(addr) != 0 {
		t.Error("sharer not dropped")
	}
	b.DropSharer(addr, 1) // absent: no-op
}

func TestBankEvictionDropsDirectory(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.L2BankSize = 2 * cfg.BlockSize * cfg.L2Ways // tiny: 2 sets
	b := bankFor(t, cfg, 0)
	// Fill one set (same set index, different tags) until eviction.
	var first uint64
	filled := 0
	for blk := 0; filled <= cfg.L2Ways; blk++ {
		addr := addrForBank(cfg, 0, blk*2) // stride keeps the set fixed
		if filled == 0 {
			first = addr
		}
		if _, _, ev := b.Fill(addr, 1); ev {
			break
		}
		filled++
	}
	if b.Sharers(first) != 0 {
		t.Error("evicted block kept directory state")
	}
}

func TestMemoryController(t *testing.T) {
	cfg := DefaultConfig(4)
	mc := NewMemoryController(cfg, 0)
	if mc.Tile() != 0 {
		t.Error("tile wrong")
	}
	r1 := mc.Submit(100)
	if r1 != 100+int64(cfg.MemLatency) {
		t.Errorf("first request ready at %d, want %d", r1, 100+cfg.MemLatency)
	}
	// Second request in the same cycle is delayed by the bandwidth gap.
	r2 := mc.Submit(100)
	if r2 != 100+int64(cfg.MemBandwidth)+int64(cfg.MemLatency) {
		t.Errorf("second request ready at %d, want %d", r2, 100+int64(cfg.MemBandwidth)+int64(cfg.MemLatency))
	}
	if mc.Served() != 2 {
		t.Error("served count wrong")
	}
	if mc.AvgQueueDelay() <= 0 {
		t.Error("queueing delay should be positive for back-to-back requests")
	}
	if mc.String() == "" {
		t.Error("empty String()")
	}
}

func TestStreamValidation(t *testing.T) {
	bad := []StreamConfig{
		{WorkingSetBlocks: 0},
		{WorkingSetBlocks: 8, SharedFrac: 1.5},
		{WorkingSetBlocks: 8, WriteFrac: -0.1},
		{WorkingSetBlocks: 8, ReuseFrac: 2},
		{WorkingSetBlocks: 8, ReuseWindow: -1},
		{WorkingSetBlocks: 8, SharedBlocks: -2},
	}
	for i, c := range bad {
		if _, err := NewStream(c, 64, 0, 1<<30, stats.NewRand(1)); err == nil {
			t.Errorf("bad stream config %d accepted", i)
		}
	}
	if _, err := NewStream(DefaultStreamConfig(), 0, 0, 1<<30, stats.NewRand(1)); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestStreamLocality(t *testing.T) {
	cfg := DefaultStreamConfig()
	s, err := NewStream(cfg, 64, 0, 1<<30, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	l1 := MustNewSetAssoc(32*1024, 2, 64)
	const accesses = 50000
	for i := 0; i < accesses; i++ {
		a := s.Next()
		if !l1.Lookup(a.Addr) {
			l1.Insert(a.Addr)
		}
	}
	hr := l1.HitRate()
	if hr < 0.5 || hr > 0.99 {
		t.Errorf("L1 hit rate %v outside the plausible PARSEC band [0.5, 0.99]", hr)
	}
}

func TestStreamDeterminism(t *testing.T) {
	mk := func() []Access {
		s, _ := NewStream(DefaultStreamConfig(), 64, 0, 1<<30, stats.NewRand(9))
		out := make([]Access, 100)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("streams with same seed differ")
		}
	}
}

func TestStreamSharedRegion(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.SharedFrac = 1.0
	cfg.ReuseFrac = 0
	s, _ := NewStream(cfg, 64, 0, 1<<30, stats.NewRand(11))
	for i := 0; i < 100; i++ {
		a := s.Next()
		if a.Addr < 1<<30 {
			t.Fatal("access fell outside the shared region")
		}
	}
}

func TestSetAssocDirtyBits(t *testing.T) {
	c := MustNewSetAssoc(4*64, 2, 64)
	c.Insert(0)
	if c.IsDirty(0) {
		t.Error("clean insert reported dirty")
	}
	if !c.MarkDirty(0) {
		t.Error("MarkDirty on resident block failed")
	}
	if !c.IsDirty(0) {
		t.Error("dirty bit not set")
	}
	if c.MarkDirty(999 * 64) {
		t.Error("MarkDirty on absent block succeeded")
	}
	if c.IsDirty(999 * 64) {
		t.Error("absent block reported dirty")
	}
	// Re-inserting clean must not clear an existing dirty bit.
	c.InsertDirty(0, false)
	if !c.IsDirty(0) {
		t.Error("re-insert cleared dirty bit")
	}
	// Invalidation clears dirtiness.
	c.Invalidate(0)
	c.Insert(0)
	if c.IsDirty(0) {
		t.Error("dirty bit survived invalidate+reinsert")
	}
}

func TestSetAssocDirtyEviction(t *testing.T) {
	c := MustNewSetAssoc(4*64, 2, 64) // 2 sets x 2 ways; set 0 blocks: 0,128,256
	c.InsertDirty(0, true)
	c.Insert(128)
	_, evDirty, ev := c.InsertDirty(256, false) // evicts LRU = 0 (dirty)
	if !ev || !evDirty {
		t.Errorf("eviction (ev=%v) should report the dirty victim (dirty=%v)", ev, evDirty)
	}
	_, evDirty, ev = c.InsertDirty(0, false) // evicts 128 (clean)
	if !ev || evDirty {
		t.Errorf("clean victim misreported: ev=%v dirty=%v", ev, evDirty)
	}
}

func TestBankWriteMarksDirty(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 0)
	addr := addrForBank(cfg, 0, 5)
	b.Fill(addr, 1)
	b.Access(addr, 1, true) // store hit dirties the line
	// Force the line out by filling its set and check the dirty victim.
	// Easier: writeback round trip below covers the observable effect;
	// here assert residency survived.
	if !b.Sharers(addr).Has(1) {
		t.Error("sharer lost after write")
	}
}

func TestBankReceiveWriteback(t *testing.T) {
	cfg := DefaultConfig(16)
	b := bankFor(t, cfg, 0)
	addr := addrForBank(cfg, 0, 6)
	b.Fill(addr, 3)
	if !b.ReceiveWriteback(addr, 3) {
		t.Error("resident writeback rejected")
	}
	if b.Sharers(addr).Has(3) {
		t.Error("writeback should drop the evicting sharer")
	}
	// A block the bank no longer holds must be forwarded to memory.
	other := addrForBank(cfg, 0, 7)
	if b.ReceiveWriteback(other, 2) {
		t.Error("non-resident writeback absorbed")
	}
}
