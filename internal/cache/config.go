// Package cache models the CMP memory system of the paper's evaluation
// platform (Table 2): private per-tile L1 caches, a shared L2 cache
// distributed across all tiles in address-interleaved banks (Figure 2),
// a directory of sharers kept with each L2 bank, and four memory
// controllers in the chip corners. It substitutes for the GEMS memory
// system the paper drives through Simics (DESIGN.md, substitution 4).
package cache

import "fmt"

// Config holds the memory-system parameters.
type Config struct {
	// BlockSize is the cache line size in bytes (Table 2: 64).
	BlockSize int
	// L1Size and L1Ways describe each private L1 (Table 2: 32KB 2-way).
	L1Size, L1Ways int
	// L2BankSize and L2Ways describe each tile's shared L2 slice
	// (Table 2: 256KB 16-way).
	L2BankSize, L2Ways int
	// L1Latency and L2Latency are access latencies in cycles (1 and 6).
	L1Latency, L2Latency int
	// MemLatency is the off-chip access latency in cycles (128).
	MemLatency int
	// MemBandwidth is the minimum gap in cycles between successive
	// requests entering service at one controller (1 = fully pipelined).
	MemBandwidth int
	// NumBanks is the number of L2 banks (= number of tiles).
	NumBanks int
}

// DefaultConfig returns the paper's Table 2 memory system for an N-tile
// chip.
func DefaultConfig(numBanks int) Config {
	return Config{
		BlockSize:    64,
		L1Size:       32 * 1024,
		L1Ways:       2,
		L2BankSize:   256 * 1024,
		L2Ways:       16,
		L1Latency:    1,
		L2Latency:    6,
		MemLatency:   128,
		MemBandwidth: 4,
		NumBanks:     numBanks,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockSize)
	case c.L1Size <= 0 || c.L1Ways <= 0 || c.L1Size%(c.BlockSize*c.L1Ways) != 0:
		return fmt.Errorf("cache: bad L1 geometry %dB %d-way", c.L1Size, c.L1Ways)
	case c.L2BankSize <= 0 || c.L2Ways <= 0 || c.L2BankSize%(c.BlockSize*c.L2Ways) != 0:
		return fmt.Errorf("cache: bad L2 geometry %dB %d-way", c.L2BankSize, c.L2Ways)
	case c.L1Latency < 0 || c.L2Latency < 0 || c.MemLatency < 0:
		return fmt.Errorf("cache: negative latency")
	case c.MemBandwidth < 1:
		return fmt.Errorf("cache: memory bandwidth gap must be >= 1 cycle")
	case c.NumBanks <= 0:
		return fmt.Errorf("cache: need at least one bank")
	}
	return nil
}

// BlockAddr returns the block-aligned address of addr.
func (c Config) BlockAddr(addr uint64) uint64 {
	return addr &^ uint64(c.BlockSize-1)
}

// BankOf returns the L2 bank (tile index) holding addr: the bank is
// selected by the lowest-order bits above the block offset (Figure 2 of
// the paper), so consecutive blocks are uniformly interleaved across all
// banks.
func (c Config) BankOf(addr uint64) int {
	return int((addr / uint64(c.BlockSize)) % uint64(c.NumBanks))
}
