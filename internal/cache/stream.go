package cache

import (
	"fmt"

	"obm/internal/stats"
)

// StreamConfig shapes a synthetic per-thread address stream. The
// defaults imitate a data-parallel PARSEC worker: a private working set
// it sweeps with high locality, plus occasional touches into a region
// shared with its application's other threads (which is what produces
// coherence forwards).
type StreamConfig struct {
	// WorkingSetBlocks is the number of distinct private blocks.
	WorkingSetBlocks int
	// SharedBlocks is the number of blocks in the application-shared
	// region.
	SharedBlocks int
	// SharedFrac is the probability an access targets the shared region.
	SharedFrac float64
	// WriteFrac is the probability an access is a store.
	WriteFrac float64
	// ReuseFrac is the probability an access revisits a recently used
	// block rather than striding onward (temporal locality).
	ReuseFrac float64
	// ReuseWindow bounds how far back reuse reaches.
	ReuseWindow int
}

// DefaultStreamConfig returns locality parameters that produce L1 hit
// rates in the 80-95% range typical of PARSEC workloads.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		WorkingSetBlocks: 2048,
		SharedBlocks:     512,
		SharedFrac:       0.15,
		WriteFrac:        0.3,
		ReuseFrac:        0.8,
		ReuseWindow:      64,
	}
}

// Validate reports an error for unusable stream parameters.
func (c StreamConfig) Validate() error {
	switch {
	case c.WorkingSetBlocks <= 0:
		return fmt.Errorf("cache: working set must be positive")
	case c.SharedBlocks < 0:
		return fmt.Errorf("cache: negative shared region")
	case c.SharedFrac < 0 || c.SharedFrac > 1:
		return fmt.Errorf("cache: SharedFrac %v outside [0,1]", c.SharedFrac)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("cache: WriteFrac %v outside [0,1]", c.WriteFrac)
	case c.ReuseFrac < 0 || c.ReuseFrac > 1:
		return fmt.Errorf("cache: ReuseFrac %v outside [0,1]", c.ReuseFrac)
	case c.ReuseWindow < 0:
		return fmt.Errorf("cache: negative reuse window")
	}
	return nil
}

// Access is one generated memory reference.
type Access struct {
	Addr  uint64
	Write bool
}

// Stream generates a deterministic synthetic address stream for one
// thread.
type Stream struct {
	cfg        StreamConfig
	rng        *stats.Rand
	privBase   uint64
	sharedBase uint64
	blockSize  uint64
	pos        uint64
	recent     []uint64
}

// NewStream builds a stream. privBase/sharedBase are byte addresses of
// the thread-private and application-shared regions; threads of one
// application pass the same sharedBase.
func NewStream(cfg StreamConfig, blockSize int, privBase, sharedBase uint64, rng *stats.Rand) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: bad block size %d", blockSize)
	}
	return &Stream{
		cfg:        cfg,
		rng:        rng,
		privBase:   privBase,
		sharedBase: sharedBase,
		blockSize:  uint64(blockSize),
	}, nil
}

// Next returns the next memory reference.
func (s *Stream) Next() Access {
	var addr uint64
	switch {
	case len(s.recent) > 0 && s.rng.Float64() < s.cfg.ReuseFrac:
		addr = s.recent[s.rng.Intn(len(s.recent))]
	case s.cfg.SharedBlocks > 0 && s.rng.Float64() < s.cfg.SharedFrac:
		addr = s.sharedBase + uint64(s.rng.Intn(s.cfg.SharedBlocks))*s.blockSize
	default:
		addr = s.privBase + (s.pos%uint64(s.cfg.WorkingSetBlocks))*s.blockSize
		s.pos++
	}
	if s.cfg.ReuseWindow > 0 {
		s.recent = append(s.recent, addr)
		if len(s.recent) > s.cfg.ReuseWindow {
			s.recent = s.recent[1:]
		}
	}
	return Access{Addr: addr, Write: s.rng.Float64() < s.cfg.WriteFrac}
}
