package cache

import "fmt"

// SetAssoc is a set-associative cache directory with true-LRU
// replacement. It tracks which block addresses are resident; data values
// are not modeled (the simulator cares about hits, misses and
// evictions, not contents).
type SetAssoc struct {
	sets      int
	ways      int
	blockSize int
	// lines[set*ways+way] holds the resident block address; valid bit
	// alongside. lru[set*ways+way] is a recency counter (higher = more
	// recent).
	lines []uint64
	valid []bool
	dirty []bool
	lru   []uint64
	tick  uint64

	hits, misses, evictions uint64
}

// NewSetAssoc builds a cache of the given total size in bytes.
func NewSetAssoc(size, ways, blockSize int) (*SetAssoc, error) {
	if size <= 0 || ways <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry size=%d ways=%d block=%d", size, ways, blockSize)
	}
	blocks := size / blockSize
	if blocks == 0 || blocks%ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %dB blocks", size, ways, blockSize)
	}
	sets := blocks / ways
	return &SetAssoc{
		sets:      sets,
		ways:      ways,
		blockSize: blockSize,
		lines:     make([]uint64, blocks),
		valid:     make([]bool, blocks),
		dirty:     make([]bool, blocks),
		lru:       make([]uint64, blocks),
	}, nil
}

// MustNewSetAssoc is NewSetAssoc but panics on error.
func MustNewSetAssoc(size, ways, blockSize int) *SetAssoc {
	c, err := NewSetAssoc(size, ways, blockSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

func (c *SetAssoc) setOf(block uint64) int {
	return int((block / uint64(c.blockSize)) % uint64(c.sets))
}

// Lookup reports whether the block containing addr is resident, updating
// recency and hit/miss counters.
func (c *SetAssoc) Lookup(addr uint64) bool {
	block := addr &^ uint64(c.blockSize-1)
	set := c.setOf(block)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			c.tick++
			c.lru[base+w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains is Lookup without statistics or recency side effects.
func (c *SetAssoc) Contains(addr uint64) bool {
	block := addr &^ uint64(c.blockSize-1)
	base := c.setOf(block) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			return true
		}
	}
	return false
}

// Insert fills the block containing addr clean, evicting the LRU way
// if the set is full. It returns the evicted block address and whether
// an eviction occurred. Inserting a resident block only refreshes
// recency.
func (c *SetAssoc) Insert(addr uint64) (evicted uint64, wasEvicted bool) {
	evicted, _, wasEvicted = c.InsertDirty(addr, false)
	return evicted, wasEvicted
}

// InsertDirty fills the block containing addr with the given dirty
// state, additionally reporting whether the evicted victim (if any) was
// dirty — a dirty victim must be written back toward its home.
// Re-inserting a resident block refreshes recency and ORs the dirty
// bit.
func (c *SetAssoc) InsertDirty(addr uint64, dirty bool) (evicted uint64, evictedDirty, wasEvicted bool) {
	block := addr &^ uint64(c.blockSize-1)
	set := c.setOf(block)
	base := set * c.ways
	c.tick++
	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			c.lru[base+w] = c.tick
			c.dirty[base+w] = c.dirty[base+w] || dirty
			return 0, false, false
		}
		if !c.valid[base+w] {
			if victim == -1 || c.valid[base+victim] {
				victim = w
				victimLRU = 0
			}
			continue
		}
		if c.lru[base+w] < victimLRU {
			victim = w
			victimLRU = c.lru[base+w]
		}
	}
	if c.valid[base+victim] {
		evicted = c.lines[base+victim]
		evictedDirty = c.dirty[base+victim]
		wasEvicted = true
		c.evictions++
	}
	c.lines[base+victim] = block
	c.valid[base+victim] = true
	c.dirty[base+victim] = dirty
	c.lru[base+victim] = c.tick
	return evicted, evictedDirty, wasEvicted
}

// MarkDirty sets the dirty bit of a resident block (a store hit),
// reporting whether the block was resident.
func (c *SetAssoc) MarkDirty(addr uint64) bool {
	block := addr &^ uint64(c.blockSize-1)
	base := c.setOf(block) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// IsDirty reports whether addr's block is resident and dirty.
func (c *SetAssoc) IsDirty(addr uint64) bool {
	block := addr &^ uint64(c.blockSize-1)
	base := c.setOf(block) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			return c.dirty[base+w]
		}
	}
	return false
}

// Invalidate removes the block containing addr if resident, reporting
// whether it was.
func (c *SetAssoc) Invalidate(addr uint64) bool {
	block := addr &^ uint64(c.blockSize-1)
	base := c.setOf(block) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == block {
			c.valid[base+w] = false
			c.dirty[base+w] = false
			return true
		}
	}
	return false
}

// Stats returns cumulative (hits, misses, evictions).
func (c *SetAssoc) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *SetAssoc) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
