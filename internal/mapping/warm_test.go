package mapping

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"obm/internal/core"
	"obm/internal/stats"
)

// warmObjectives spans the objective shapes the never-worse guarantee
// must hold under, including spread-sensitive ones where the SAM polish
// alone could regress.
func warmObjectives() []core.Objective {
	return []core.Objective{
		nil, // max-APL default
		core.DevAPL{},
		core.Weighted{Max: 1, Dev: 2},
		core.GAPL{},
	}
}

// TestWarmStartNeverWorse: for random instances, random incumbents, and
// every objective shape, the warm-started result never scores worse
// than the incumbent under the active objective.
func TestWarmStartNeverWorse(t *testing.T) {
	objs := warmObjectives()
	f := func(seed uint64, objBits uint8) bool {
		p := randomProblem(seed)
		obj := objs[int(objBits)%len(objs)]
		base := core.RandomMapping(p.N(), stats.NewRand(seed+1))
		s := SortSelectSwap{Objective: obj, Passes: 2}
		m, err := s.WarmStart(context.Background(), p, base)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := m.Validate(p.N()); err != nil {
			t.Logf("seed %d: invalid result: %v", seed, err)
			return false
		}
		sc := p.Scorer(obj)
		got, inc := sc.Score(m), sc.Score(base)
		if got > inc {
			t.Logf("seed %d obj %s: warm %.9f worse than incumbent %.9f", seed, objName(obj), got, inc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWarmStartDeterministicPerSeed pins warm-start determinism: the
// same incumbent and configuration always produce the identical
// mapping, and the golden fingerprints below pin the exact result so a
// behavioural change cannot slip through as an "equivalent" solution.
func TestWarmStartDeterministicPerSeed(t *testing.T) {
	golden := map[uint64]string{
		3:  "b1e06dac46aa1e59",
		17: "04eb82e556bbacb9",
		42: "92fde9be76e13906",
	}
	for seed, want := range golden {
		p := randomProblem(seed)
		base := core.RandomMapping(p.N(), stats.NewRand(seed))
		s := SortSelectSwap{Objective: core.Weighted{Max: 1, Dev: 2}, MaxStep: 4, Passes: 3}
		a, err := s.WarmStart(context.Background(), p, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.WarmStart(context.Background(), p, base)
		if err != nil {
			t.Fatal(err)
		}
		fpA, fpB := mappingFingerprint(a), mappingFingerprint(b)
		if fpA != fpB {
			t.Errorf("seed %d: warm start not deterministic: %s vs %s", seed, fpA, fpB)
		}
		if fpA != want {
			t.Errorf("seed %d: fingerprint %s, want golden %s (mapping %v)", seed, fpA, want, a)
		}
	}
}

// TestWarmStartDoesNotMutateIncumbent: the incumbent mapping must come
// back byte-identical — a streaming scheduler keeps using it while the
// candidate is evaluated.
func TestWarmStartDoesNotMutateIncumbent(t *testing.T) {
	p := randomProblem(7)
	base := core.RandomMapping(p.N(), stats.NewRand(7))
	snap := base.Clone()
	if _, err := (SortSelectSwap{}).WarmStart(context.Background(), p, base); err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != snap[i] {
			t.Fatalf("incumbent mutated at thread %d: %v -> %v", i, snap[i], base[i])
		}
	}
}

// TestWarmStartRejectsInvalidBase: a base that is not a permutation of
// the problem's tiles is a caller bug, reported not repaired.
func TestWarmStartRejectsInvalidBase(t *testing.T) {
	p := randomProblem(1)
	bad := make(core.Mapping, p.N())
	for i := range bad {
		bad[i] = 0 // all threads on tile 0
	}
	if _, err := (SortSelectSwap{}).WarmStart(context.Background(), p, bad); err == nil {
		t.Error("invalid base accepted")
	}
	if _, err := (SortSelectSwap{WindowSize: 9}).WarmStart(context.Background(), p, core.IdentityMapping(p.N())); err == nil {
		t.Error("bad window accepted")
	}
}

// TestWarmStartImprovesRandomIncumbent: from a random incumbent on a
// structured instance, warm starting should actually find improvements
// (not just not-regress).
func TestWarmStartImprovesRandomIncumbent(t *testing.T) {
	p := paperProblem(t, "C7")
	base := core.RandomMapping(p.N(), stats.NewRand(11))
	s := SortSelectSwap{Passes: 3}
	m, err := s.WarmStart(context.Background(), p, base)
	if err != nil {
		t.Fatal(err)
	}
	if got, inc := p.MaxAPL(m), p.MaxAPL(base); got >= inc {
		t.Errorf("warm start did not improve a random incumbent: %.4f >= %.4f", got, inc)
	}
}

// mappingFingerprint renders a mapping as a short stable hex digest
// (FNV-1a over the tile sequence).
func mappingFingerprint(m core.Mapping) string {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range m {
		h ^= uint64(t)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}
