package mapping

import (
	"context"
	"sort"

	"obm/internal/core"
	"obm/internal/mesh"
)

// Greedy is the classic list-scheduling heuristic for overall latency:
// threads are visited in descending order of total request rate, each
// taking the free tile with the lowest cost for it. It approximates
// Global at a fraction of the cost and inherits the same imbalance
// pathology, making it a useful extra baseline for the ablation
// benches.
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "Greedy" }

// Fingerprint implements Mapper.
func (Greedy) Fingerprint() string { return "greedy" }

// Map implements Mapper.
func (Greedy) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := p.N()
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := p.CacheRate(order[a]) + p.MemRate(order[a])
		rb := p.CacheRate(order[b]) + p.MemRate(order[b])
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	m := make(core.Mapping, n)
	used := make([]bool, n)
	for _, j := range order {
		bestK := -1
		bestCost := 0.0
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			c := p.ThreadCost(j, mesh.Tile(k))
			if bestK < 0 || c < bestCost {
				bestK, bestCost = k, c
			}
		}
		used[bestK] = true
		m[j] = mesh.Tile(bestK)
	}
	return m, nil
}

// BalancedGreedy is the objective-aware variant: at each step it picks
// the most urgent active application and gives its next thread the best
// remaining tile. Under the default max-APL objective "most urgent" is
// the application with the highest APL so far (serve the worst-off
// first, exactly the published heuristic); under any other objective it
// is the application whose accumulated latency contributes most to the
// objective — the one whose numerator, if forgiven, would lower the
// cost the most. It shows how far a simple greedy gets toward the OBM
// objective without SSS's swap machinery (one of the DESIGN.md
// ablations).
type BalancedGreedy struct {
	// Objective selects the urgency measure; nil is the paper's max-APL.
	Objective core.Objective
}

// Name implements Mapper.
func (bg BalancedGreedy) Name() string { return "BalancedGreedy" + objName(bg.Objective) }

// Fingerprint implements Mapper.
func (bg BalancedGreedy) Fingerprint() string {
	return "balanced-greedy" + objFingerprint(bg.Objective)
}

// Map implements Mapper.
func (bg BalancedGreedy) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := p.N()
	m := make(core.Mapping, n)
	used := make([]bool, n)

	// Per-application state: threads sorted descending by rate (heavy
	// first so they claim good tiles) and a cursor; numerators so far
	// live in num (the objective's input vector).
	type appState struct {
		order []int
		next  int
	}
	num := make([]float64, p.NumApps())
	apps := make([]appState, p.NumApps())
	for i := range apps {
		lo, hi := p.AppThreads(i)
		order := make([]int, hi-lo)
		for x := range order {
			order[x] = lo + x
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra := p.CacheRate(order[a]) + p.MemRate(order[a])
			rb := p.CacheRate(order[b]) + p.MemRate(order[b])
			if ra != rb {
				return ra > rb
			}
			return order[a] < order[b]
		})
		apps[i].order = order
	}

	objDefault := core.IsDefaultObjective(bg.Objective)
	var objv core.Objective
	var pickApp, pickTrial = []int{0}, []float64{0}
	var curCost float64
	if !objDefault {
		objv = core.ObjectiveOrDefault(bg.Objective)
	}
	for placed := 0; placed < n; placed++ {
		// Pick the most urgent unfinished application (first wins on
		// ties): highest APL so far under the default objective, largest
		// marginal objective contribution otherwise.
		if objv != nil {
			curCost = objv.Value(p, num)
		}
		pick := -1
		worst := 0.0
		for i := range apps {
			if apps[i].next >= len(apps[i].order) {
				continue
			}
			score := 0.0
			if objDefault {
				if w := p.AppWeight(i); w > 0 {
					score = num[i] / w
				}
			} else {
				pickApp[0], pickTrial[0] = i, 0
				score = curCost - objv.ValueWith(p, num, pickApp, pickTrial)
			}
			if pick < 0 || score > worst {
				pick, worst = i, score
			}
		}
		a := &apps[pick]
		j := a.order[a.next]
		a.next++
		bestK := -1
		bestCost := 0.0
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			c := p.ThreadCost(j, mesh.Tile(k))
			if bestK < 0 || c < bestCost {
				bestK, bestCost = k, c
			}
		}
		used[bestK] = true
		m[j] = mesh.Tile(bestK)
		num[pick] += bestCost
	}
	return m, nil
}
