package mapping

import (
	"context"
	"sort"

	"obm/internal/core"
	"obm/internal/mesh"
)

// Greedy is the classic list-scheduling heuristic for overall latency:
// threads are visited in descending order of total request rate, each
// taking the free tile with the lowest cost for it. It approximates
// Global at a fraction of the cost and inherits the same imbalance
// pathology, making it a useful extra baseline for the ablation
// benches.
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "Greedy" }

// Fingerprint implements Mapper.
func (Greedy) Fingerprint() string { return "greedy" }

// Map implements Mapper.
func (Greedy) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := p.N()
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := p.CacheRate(order[a]) + p.MemRate(order[a])
		rb := p.CacheRate(order[b]) + p.MemRate(order[b])
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	m := make(core.Mapping, n)
	used := make([]bool, n)
	for _, j := range order {
		bestK := -1
		bestCost := 0.0
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			c := p.ThreadCost(j, mesh.Tile(k))
			if bestK < 0 || c < bestCost {
				bestK, bestCost = k, c
			}
		}
		used[bestK] = true
		m[j] = mesh.Tile(bestK)
	}
	return m, nil
}

// BalancedGreedy is the max-APL-aware variant: at each step it maps the
// next thread of whichever active application currently has the highest
// projected APL, giving it the best remaining tile. It shows how far a
// simple greedy gets toward the OBM objective without SSS's swap
// machinery (one of the DESIGN.md ablations).
type BalancedGreedy struct{}

// Name implements Mapper.
func (BalancedGreedy) Name() string { return "BalancedGreedy" }

// Fingerprint implements Mapper.
func (BalancedGreedy) Fingerprint() string { return "balanced-greedy" }

// Map implements Mapper.
func (BalancedGreedy) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := p.N()
	m := make(core.Mapping, n)
	used := make([]bool, n)

	// Per-application state: threads sorted descending by rate (heavy
	// first so they claim good tiles), a cursor, and the numerator so
	// far.
	type appState struct {
		order []int
		next  int
		num   float64
	}
	apps := make([]appState, p.NumApps())
	for i := range apps {
		lo, hi := p.AppThreads(i)
		order := make([]int, hi-lo)
		for x := range order {
			order[x] = lo + x
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra := p.CacheRate(order[a]) + p.MemRate(order[a])
			rb := p.CacheRate(order[b]) + p.MemRate(order[b])
			if ra != rb {
				return ra > rb
			}
			return order[a] < order[b]
		})
		apps[i].order = order
	}

	for placed := 0; placed < n; placed++ {
		// Pick the unfinished application with the highest "APL so far
		// plus optimistic completion" — serving the worst-off first.
		pick := -1
		worst := -1.0
		for i := range apps {
			if apps[i].next >= len(apps[i].order) {
				continue
			}
			w := p.AppWeight(i)
			score := 0.0
			if w > 0 {
				score = apps[i].num / w
			}
			if pick < 0 || score > worst {
				pick, worst = i, score
			}
		}
		a := &apps[pick]
		j := a.order[a.next]
		a.next++
		bestK := -1
		bestCost := 0.0
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			c := p.ThreadCost(j, mesh.Tile(k))
			if bestK < 0 || c < bestCost {
				bestK, bestCost = k, c
			}
		}
		used[bestK] = true
		m[j] = mesh.Tile(bestK)
		a.num += bestCost
	}
	return m, nil
}
