package mapping

import (
	"context"
	"fmt"
	"time"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/obs"
	"obm/internal/stats"
)

// SetMapper is the set-valued counterpart of Mapper: instead of one
// mapping it returns a Pareto front over a vector objective. The same
// contracts apply — deterministic for a fixed configuration, all
// randomness from explicit seeds, context cancellation never perturbs
// the random streams — plus one more: the returned set is in canonical
// order and mutually non-dominated (ParetoSet.Validate), so equal
// fingerprints imply bit-identical fronts and set-valued artifacts are
// safe to content-address exactly like point-valued ones.
type SetMapper interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Fingerprint is the stable content key covering the algorithm,
	// every result-affecting parameter, and the vector objective.
	Fingerprint() string
	// Vector returns the vector objective the mapper optimizes, for
	// self-describing artifact descriptors.
	Vector() core.VectorObjective
	// MapSet solves the instance, returning a canonical Pareto front.
	MapSet(ctx context.Context, p *core.Problem) (core.ParetoSet, error)
}

// NSGAII is an NSGA-II-style multi-objective mapper over thread-to-
// tile permutations: fast non-dominated sorting with crowding-distance
// selection (Deb et al.), the genetic operators shared with Genetic
// (binary tournament, order crossover, swap mutation), a bounded
// elitist ParetoArchive accumulating the front across generations, and
// a final per-component polish phase that hill-climbs each extreme of
// the archive with the O(A) swap probes the scalar mappers use.
type NSGAII struct {
	// Population size (default 64).
	Population int
	// Generations to evolve (default 120).
	Generations int
	// MutationRate is the per-offspring swap-mutation probability
	// (default 0.3).
	MutationRate float64
	// ArchiveSize bounds the returned front (default 24).
	ArchiveSize int
	Seed        uint64
	// Objectives selects the vector objective; the zero value is
	// core.DefaultVectorObjective() — {max-APL, dev-APL, energy}.
	Objectives core.VectorObjective
}

func (g NSGAII) defaults() (pop, gens int, mut float64, arch int) {
	pop, gens, mut, arch = g.Population, g.Generations, g.MutationRate, g.ArchiveSize
	if pop <= 0 {
		pop = 64
	}
	if gens <= 0 {
		gens = 120
	}
	if mut <= 0 {
		mut = 0.3
	}
	if arch <= 0 {
		arch = 24
	}
	return pop, gens, mut, arch
}

// Name implements SetMapper.
func (g NSGAII) Name() string {
	pop, gens, _, _ := g.defaults()
	return fmt.Sprintf("NSGA-II(%dx%d)", pop, gens)
}

// Vector implements SetMapper.
func (g NSGAII) Vector() core.VectorObjective {
	return core.VectorOrDefault(g.Objectives)
}

// Fingerprint implements SetMapper, with defaults resolved so the zero
// value and explicit defaults share a key. Unlike the scalar mappers
// the vector objective is always printed: there is no pre-vector era
// to stay byte-compatible with.
func (g NSGAII) Fingerprint() string {
	pop, gens, mut, arch := g.defaults()
	return fmt.Sprintf("nsga2(pop=%d,gen=%d,mut=%g,arch=%d,seed=%d,vec=%s)",
		pop, gens, mut, arch, g.Seed, g.Vector().Fingerprint())
}

// setIndiv is one genome with its cached cost vector.
type setIndiv struct {
	m   core.Mapping
	vec []float64
}

// MapSet implements SetMapper. The generation loop polls cancellation
// once per generation. No worker knob exists: the evolve loop is
// strictly sequential, so the front is trivially identical whatever
// -workers setting the caller runs under.
func (g NSGAII) MapSet(ctx context.Context, p *core.Problem) (core.ParetoSet, error) {
	pop, gens, mut, arch := g.defaults()
	vec := g.Vector()
	n := p.N()
	sc := p.VectorScorer(vec)
	dim := sc.Dim()

	// Independent streams: initialization and variation never share
	// draws, so changing the generation count cannot reshuffle the
	// initial population.
	initRng := stats.NewRand(stats.SplitSeed(g.Seed, 0))
	evoRng := stats.NewRand(stats.SplitSeed(g.Seed, 1))

	archive := core.NewParetoArchive(arch)
	cur := make([]setIndiv, pop)
	for i := range cur {
		m := core.RandomMapping(n, initRng)
		cur[i] = setIndiv{m: m, vec: sc.Score(m, make([]float64, dim))}
		archive.Add(cur[i].m, cur[i].vec)
	}

	rep := engine.StartStage(ctx, g.Name())
	vectors := make([][]float64, 0, 2*pop)
	for gen := 0; gen < gens; gen++ {
		if err := ctx.Err(); err != nil {
			return core.ParetoSet{}, fmt.Errorf("nsga2: interrupted after %d/%d generations: %w", gen, gens, err)
		}
		rep.Report(gen, gens)

		// Rank the parents for tournament selection.
		vectors = vectors[:0]
		for i := range cur {
			vectors = append(vectors, cur[i].vec)
		}
		rank, crowd := rankAndCrowd(vectors)
		tournament := func() core.Mapping {
			a, b := evoRng.Intn(pop), evoRng.Intn(pop)
			if better(rank, crowd, a, b) {
				return cur[a].m
			}
			return cur[b].m
		}

		// Offspring via the shared permutation operators.
		combined := make([]setIndiv, 0, 2*pop)
		combined = append(combined, cur...)
		for i := 0; i < pop; i++ {
			child := orderCrossover(tournament(), tournament(), evoRng)
			if evoRng.Float64() < mut {
				a, b := evoRng.Intn(n), evoRng.Intn(n)
				child[a], child[b] = child[b], child[a]
			}
			ind := setIndiv{m: child, vec: sc.Score(child, make([]float64, dim))}
			combined = append(combined, ind)
			archive.Add(ind.m, ind.vec)
		}

		// Elitist environmental selection over parents+offspring.
		cur = selectByFrontsAndCrowding(combined, pop)
	}

	// Polish: hill-climb each component's best member with the O(A)
	// swap probes (deterministic full-pair sweeps, no randomness), and
	// offer the results back to the archive. This recovers scalar-
	// quality extremes that pure crowding selection tends to round off.
	g.polish(p, sc, archive)

	rep.Finish(gens, gens)
	set := archive.Set()
	if set.Len() == 0 {
		return core.ParetoSet{}, fmt.Errorf("nsga2: empty archive (population %d, generations %d)", pop, gens)
	}
	return set, nil
}

// polish hill-climbs the archive's per-component extremes under each
// component objective in turn, using tracker swap probes, and offers
// every improved mapping back to the archive.
func (g NSGAII) polish(p *core.Problem, sc *core.VectorScorer, archive *core.ParetoArchive) {
	const maxPasses = 4
	set := archive.Set()
	if set.Len() == 0 {
		return
	}
	comps := core.VectorOrDefault(g.Objectives).Components()
	n := p.N()
	out := make([]float64, sc.Dim())
	for ci, comp := range comps {
		// Canonical order makes the argmin deterministic under ties.
		best := 0
		for i := 1; i < set.Len(); i++ {
			if set.Members[i].Vector[ci] < set.Members[best].Vector[ci] {
				best = i
			}
		}
		t := newObjectiveTracker(p, set.Members[best].Mapping.Clone(), comp)
		cur := t.value()
		for pass := 0; pass < maxPasses; pass++ {
			improved := false
			for j1 := 0; j1 < n-1; j1++ {
				for j2 := j1 + 1; j2 < n; j2++ {
					if v := t.swapValue(j1, j2); v < cur {
						t.swap(j1, j2)
						cur = v
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		archive.Add(t.m, sc.Score(t.m, out))
	}
}

// better reports whether parent a beats parent b under the NSGA-II
// (rank, crowding) order, with index as the deterministic tie-break.
func better(rank []int, crowd []float64, a, b int) bool {
	if rank[a] != rank[b] {
		return rank[a] < rank[b]
	}
	if crowd[a] != crowd[b] {
		return crowd[a] > crowd[b]
	}
	return a <= b
}

// rankAndCrowd computes each vector's front rank and crowding distance
// within its front.
func rankAndCrowd(vectors [][]float64) (rank []int, crowd []float64) {
	rank = make([]int, len(vectors))
	crowd = make([]float64, len(vectors))
	for r, front := range core.NonDominatedFronts(vectors) {
		dist := core.CrowdingDistances(vectors, front)
		for x, i := range front {
			rank[i] = r
			crowd[i] = dist[x]
		}
	}
	return rank, crowd
}

// selectByFrontsAndCrowding keeps want individuals from pool by front
// rank, breaking the boundary front by descending crowding distance
// (ties by ascending pool index, so selection is deterministic).
func selectByFrontsAndCrowding(pool []setIndiv, want int) []setIndiv {
	vectors := make([][]float64, len(pool))
	for i := range pool {
		vectors[i] = pool[i].vec
	}
	next := make([]setIndiv, 0, want)
	for _, front := range core.NonDominatedFronts(vectors) {
		if len(next)+len(front) <= want {
			for _, i := range front {
				next = append(next, pool[i])
			}
			if len(next) == want {
				break
			}
			continue
		}
		dist := core.CrowdingDistances(vectors, front)
		order := make([]int, len(front))
		for i := range order {
			order[i] = i
		}
		// Descending crowding, ascending index.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := order[j-1], order[j]
				if dist[a] > dist[b] || (dist[a] == dist[b] && a < b) {
					break
				}
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
		for _, x := range order {
			if len(next) == want {
				break
			}
			next = append(next, pool[front[x]])
		}
		break
	}
	return next
}

// MapSetAndCheck runs sm on p and validates the returned front — every
// member a valid permutation, mutually non-dominated, canonically
// ordered — wrapping any violation with the mapper's name, and records
// the invocation in the process metrics registry exactly like
// MapAndCheck does for scalar mappers.
func MapSetAndCheck(ctx context.Context, sm SetMapper, p *core.Problem) (core.ParetoSet, error) {
	name := sm.Name()
	reg := obs.Default()
	reg.Counter("mapping." + name + ".calls").Inc()
	start := time.Now()
	set, err := sm.MapSet(ctx, p)
	reg.Timer("mapping." + name + ".seconds").Since(start)
	if err != nil {
		reg.Counter("mapping." + name + ".errors").Inc()
		return core.ParetoSet{}, fmt.Errorf("mapping: %s: %w", name, err)
	}
	if err := set.Validate(p.N()); err != nil {
		reg.Counter("mapping." + name + ".errors").Inc()
		return core.ParetoSet{}, fmt.Errorf("mapping: %s produced invalid pareto set: %w", name, err)
	}
	return set, nil
}
