package mapping

import (
	"obm/internal/core"
	"obm/internal/mesh"
)

// tracker maintains the per-application APL numerators of a mapping so
// that swap-style moves can be evaluated and applied in O(A) instead of
// O(N). Both the annealer and the sliding-window phase of
// sort-select-swap use it.
type tracker struct {
	p   *core.Problem
	m   core.Mapping
	num []float64 // per-application total packet latency (APL numerator)
}

func newTracker(p *core.Problem, m core.Mapping) *tracker {
	t := &tracker{p: p, m: m, num: make([]float64, p.NumApps())}
	for j, tile := range m {
		t.num[p.AppOfThread(j)] += p.ThreadCost(j, tile)
	}
	return t
}

// maxAPL returns the current objective value over active applications.
func (t *tracker) maxAPL() float64 {
	var mx float64
	for i, n := range t.num {
		if w := t.p.AppWeight(i); w > 0 {
			if apl := n / w; apl > mx {
				mx = apl
			}
		}
	}
	return mx
}

// maxAPLWith returns the objective if the numerators of the given
// applications were replaced by trial values; apps and trial are parallel
// slices and may list the same app more than once (later entries win).
func (t *tracker) maxAPLWith(apps []int, trial []float64) float64 {
	var mx float64
	for i, n := range t.num {
		for x := len(apps) - 1; x >= 0; x-- {
			if apps[x] == i {
				n = trial[x]
				break
			}
		}
		if w := t.p.AppWeight(i); w > 0 {
			if apl := n / w; apl > mx {
				mx = apl
			}
		}
	}
	return mx
}

// swapObjective returns the objective value after hypothetically swapping
// the tiles of threads j1 and j2, without mutating state.
func (t *tracker) swapObjective(j1, j2 int) float64 {
	a1, a2 := t.p.AppOfThread(j1), t.p.AppOfThread(j2)
	t1, t2 := t.m[j1], t.m[j2]
	d1 := t.p.ThreadCost(j1, t2) - t.p.ThreadCost(j1, t1)
	d2 := t.p.ThreadCost(j2, t1) - t.p.ThreadCost(j2, t2)
	if a1 == a2 {
		return t.maxAPLWith([]int{a1}, []float64{t.num[a1] + d1 + d2})
	}
	return t.maxAPLWith([]int{a1, a2}, []float64{t.num[a1] + d1, t.num[a2] + d2})
}

// swap applies the tile swap between threads j1 and j2.
func (t *tracker) swap(j1, j2 int) {
	a1, a2 := t.p.AppOfThread(j1), t.p.AppOfThread(j2)
	t1, t2 := t.m[j1], t.m[j2]
	t.num[a1] += t.p.ThreadCost(j1, t2) - t.p.ThreadCost(j1, t1)
	t.num[a2] += t.p.ThreadCost(j2, t1) - t.p.ThreadCost(j2, t2)
	t.m[j1], t.m[j2] = t2, t1
}

// assignObjective returns the objective after hypothetically re-assigning
// threads js to tiles ts (parallel slices; each thread currently occupies
// its own tile in t.m, and the multiset of tiles must be preserved by the
// caller — it is, since callers permute within a window).
func (t *tracker) assignObjective(js []int, ts []mesh.Tile) float64 {
	// Accumulate per-app deltas over the affected threads.
	var apps [4]int
	var trial [4]float64
	cnt := 0
	for x, j := range js {
		a := t.p.AppOfThread(j)
		d := t.p.ThreadCost(j, ts[x]) - t.p.ThreadCost(j, t.m[j])
		found := false
		for y := 0; y < cnt; y++ {
			if apps[y] == a {
				trial[y] += d
				found = true
				break
			}
		}
		if !found {
			if cnt == len(apps) {
				// More than 4 distinct apps cannot occur for 4-thread
				// windows; fall back to a full evaluation for safety.
				return t.fullAssignObjective(js, ts)
			}
			apps[cnt] = a
			trial[cnt] = t.num[a] + d
			cnt++
		}
	}
	return t.maxAPLWith(apps[:cnt], trial[:cnt])
}

// fullAssignObjective is the O(N) fallback used only if a window ever
// touches more than four applications.
func (t *tracker) fullAssignObjective(js []int, ts []mesh.Tile) float64 {
	saved := make([]mesh.Tile, len(js))
	for x, j := range js {
		saved[x] = t.m[j]
		t.m[j] = ts[x]
	}
	obj := t.p.MaxAPL(t.m)
	for x, j := range js {
		t.m[j] = saved[x]
	}
	return obj
}

// assign applies the re-assignment of threads js to tiles ts.
func (t *tracker) assign(js []int, ts []mesh.Tile) {
	for x, j := range js {
		a := t.p.AppOfThread(j)
		t.num[a] += t.p.ThreadCost(j, ts[x]) - t.p.ThreadCost(j, t.m[j])
		t.m[j] = ts[x]
	}
}
