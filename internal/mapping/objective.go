package mapping

import (
	"obm/internal/core"
	"obm/internal/mesh"
)

// tracker maintains the per-application APL numerators of a mapping so
// that swap-style moves can be evaluated and applied in O(A) instead of
// O(N). It carries the core.Objective being optimized (nil means the
// paper's max-APL): the numerators are objective-agnostic state, and
// every probe delegates scoring to the objective's incremental
// ValueWith path. The annealer, the sliding-window phase of
// sort-select-swap, and budgeted refinement all use it.
type tracker struct {
	p   *core.Problem
	obj core.Objective
	m   core.Mapping
	num []float64 // per-application total packet latency (APL numerator)

	// scratch backs fullAssignObjective's trial numerators (allocated
	// lazily; the fallback only triggers for windows spanning >4
	// applications).
	scratch []float64

	// probeApps/probeTrial back the slices handed to the objective's
	// ValueWith on every probe. Literal slices would escape through the
	// interface call and put one allocation on every annealing step and
	// window permutation; these fields keep probes allocation-free.
	probeApps  [4]int
	probeTrial [4]float64
}

func newTracker(p *core.Problem, m core.Mapping) *tracker {
	return newObjectiveTracker(p, m, nil)
}

func newObjectiveTracker(p *core.Problem, m core.Mapping, obj core.Objective) *tracker {
	t := &tracker{p: p, obj: core.ObjectiveOrDefault(obj), m: m, num: make([]float64, p.NumApps())}
	for j, tile := range m {
		t.num[p.AppOfThread(j)] += p.ThreadCost(j, tile)
	}
	return t
}

// value returns the current objective cost.
func (t *tracker) value() float64 {
	return t.obj.Value(t.p, t.num)
}

// valueWith returns the objective cost if the numerators of the given
// applications were replaced by trial values; apps and trial are parallel
// slices and may list the same app more than once (later entries win).
func (t *tracker) valueWith(apps []int, trial []float64) float64 {
	return t.obj.ValueWith(t.p, t.num, apps, trial)
}

// swapValue returns the objective cost after hypothetically swapping
// the tiles of threads j1 and j2, without mutating state.
func (t *tracker) swapValue(j1, j2 int) float64 {
	a1, a2 := t.p.AppOfThread(j1), t.p.AppOfThread(j2)
	t1, t2 := t.m[j1], t.m[j2]
	d1 := t.p.ThreadCost(j1, t2) - t.p.ThreadCost(j1, t1)
	d2 := t.p.ThreadCost(j2, t1) - t.p.ThreadCost(j2, t2)
	if a1 == a2 {
		t.probeApps[0] = a1
		t.probeTrial[0] = t.num[a1] + d1 + d2
		return t.valueWith(t.probeApps[:1], t.probeTrial[:1])
	}
	t.probeApps[0], t.probeApps[1] = a1, a2
	t.probeTrial[0], t.probeTrial[1] = t.num[a1]+d1, t.num[a2]+d2
	return t.valueWith(t.probeApps[:2], t.probeTrial[:2])
}

// swap applies the tile swap between threads j1 and j2.
func (t *tracker) swap(j1, j2 int) {
	a1, a2 := t.p.AppOfThread(j1), t.p.AppOfThread(j2)
	t1, t2 := t.m[j1], t.m[j2]
	t.num[a1] += t.p.ThreadCost(j1, t2) - t.p.ThreadCost(j1, t1)
	t.num[a2] += t.p.ThreadCost(j2, t1) - t.p.ThreadCost(j2, t2)
	t.m[j1], t.m[j2] = t2, t1
}

// assignValue returns the objective cost after hypothetically
// re-assigning threads js to tiles ts (parallel slices; each thread
// currently occupies its own tile in t.m, and the multiset of tiles must
// be preserved by the caller — it is, since callers permute within a
// window).
func (t *tracker) assignValue(js []int, ts []mesh.Tile) float64 {
	// Accumulate per-app deltas over the affected threads.
	cnt := 0
	for x, j := range js {
		a := t.p.AppOfThread(j)
		d := t.p.ThreadCost(j, ts[x]) - t.p.ThreadCost(j, t.m[j])
		found := false
		for y := 0; y < cnt; y++ {
			if t.probeApps[y] == a {
				t.probeTrial[y] += d
				found = true
				break
			}
		}
		if !found {
			if cnt == len(t.probeApps) {
				// More than 4 distinct apps cannot occur for 4-thread
				// windows; 5-thread windows can reach 5, so fall back to
				// the unbounded path.
				return t.fullAssignObjective(js, ts)
			}
			t.probeApps[cnt] = a
			t.probeTrial[cnt] = t.num[a] + d
			cnt++
		}
	}
	return t.valueWith(t.probeApps[:cnt], t.probeTrial[:cnt])
}

// fullAssignObjective is the fallback used only if a window touches
// more than four applications: it builds the full trial numerator
// vector (O(A + window)) and scores it directly, which is correct for
// any window size and any objective.
func (t *tracker) fullAssignObjective(js []int, ts []mesh.Tile) float64 {
	if t.scratch == nil {
		t.scratch = make([]float64, len(t.num))
	}
	copy(t.scratch, t.num)
	for x, j := range js {
		t.scratch[t.p.AppOfThread(j)] += t.p.ThreadCost(j, ts[x]) - t.p.ThreadCost(j, t.m[j])
	}
	return t.obj.Value(t.p, t.scratch)
}

// assign applies the re-assignment of threads js to tiles ts.
func (t *tracker) assign(js []int, ts []mesh.Tile) {
	for x, j := range js {
		a := t.p.AppOfThread(j)
		t.num[a] += t.p.ThreadCost(j, ts[x]) - t.p.ThreadCost(j, t.m[j])
		t.m[j] = ts[x]
	}
}

// objName returns the mapper-name suffix for a non-default objective
// ("" for the paper's max-APL, so published names are untouched).
func objName(o core.Objective) string {
	if core.IsDefaultObjective(o) {
		return ""
	}
	return "{" + o.Name() + "}"
}

// objFingerprint returns the fingerprint fragment for a mapper's
// objective: "" for the default max-APL (so every pre-objective
// fingerprint — and therefore every cached artifact key and golden
// test — is byte-identical), ",obj=<fp>" otherwise.
func objFingerprint(o core.Objective) string {
	if core.IsDefaultObjective(o) {
		return ""
	}
	return ",obj=" + o.Fingerprint()
}
