package mapping

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/stats"
)

// Annealing is the simulated-annealing baseline of Section V.A: a random
// "move" swaps the tile assignments of two randomly chosen threads, the
// objective is the max-APL, and acceptance follows the Metropolis rule
// under a geometric cooling schedule.
//
// With Restarts > 1 it runs a restart portfolio: that many independent
// chains, chain i seeded with stats.SplitSeed(Seed, i), keeping the
// best final mapping (ties resolve to the lowest chain index). Workers
// spreads the chains over goroutines; the outcome is identical for any
// worker count because chains share nothing and selection is by index.
type Annealing struct {
	// Iters is the number of proposed moves per chain. The paper gives SA
	// a runtime budget; iterations are the deterministic equivalent
	// (Figure 12 sweeps this knob).
	Iters int
	// T0 is the initial temperature in APL cycles. If 0, it is derived
	// from the spread of the initial random mapping's objective.
	T0 float64
	// Cooling is the per-step geometric factor; 0 means an automatic
	// schedule ending near 1e-4*T0 after Iters steps.
	Cooling float64
	Seed    uint64
	// Restarts is the portfolio size; 0 or 1 runs the single historical
	// chain (bit-identical to the pre-portfolio behavior).
	Restarts int
	// Workers fans restarts out over this many goroutines; 0 or 1 is
	// serial, negative selects GOMAXPROCS. Never part of the result.
	Workers int
	// Objective selects the cost the annealer minimizes; nil is the
	// paper's max-APL (published behavior, bit-identical).
	Objective core.Objective
}

// restarts resolves the portfolio size.
func (a Annealing) restarts() int {
	if a.Restarts < 1 {
		return 1
	}
	return a.Restarts
}

// Name implements Mapper.
func (a Annealing) Name() string {
	if r := a.restarts(); r > 1 {
		return fmt.Sprintf("SA(%dx%d)%s", a.Iters, r, objName(a.Objective))
	}
	return fmt.Sprintf("SA(%d)%s", a.Iters, objName(a.Objective))
}

// Fingerprint implements Mapper. T0 and Cooling are printed raw (0
// selects the automatic schedule, which is itself a deterministic
// function of the problem and seed). The restarts fragment appears only
// for portfolios, keeping single-chain fingerprints — and therefore the
// scenario artifact cache keys of every published configuration —
// byte-identical to the pre-portfolio era. Workers is excluded: the
// portfolio outcome is documented to be identical for any worker count.
func (a Annealing) Fingerprint() string {
	restarts := ""
	if r := a.restarts(); r > 1 {
		restarts = fmt.Sprintf(",restarts=%d", r)
	}
	return fmt.Sprintf("sa(iters=%d,t0=%g,cooling=%g,seed=%d%s%s)", a.Iters, a.T0, a.Cooling, a.Seed, restarts, objFingerprint(a.Objective))
}

// saPollMask sets how often the iteration loop polls cancellation and
// reports progress (every saPollMask+1 proposed moves).
const saPollMask = 63

// Map implements Mapper. The move loops poll ctx every saPollMask+1
// iterations and return a wrapped ctx.Err() when cancelled; the polls
// never touch the random streams.
func (a Annealing) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if a.Iters <= 0 {
		return nil, fmt.Errorf("annealing: need positive iteration count, got %d", a.Iters)
	}
	rep := engine.StartStage(ctx, a.Name())
	restarts := a.restarts()
	total := a.Iters * restarts
	if restarts == 1 {
		best, _, err := a.chain(ctx, rep, nil, p, a.Seed, total)
		if err != nil {
			return nil, err
		}
		rep.Finish(total, total)
		return best, nil
	}
	workers := a.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > restarts {
		workers = restarts
	}
	type chainResult struct {
		best core.Mapping
		obj  float64
		err  error
	}
	results := make([]chainResult, restarts)
	var done atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				best, obj, err := a.chain(ctx, rep, &done, p, stats.SplitSeed(a.Seed, i), total)
				results[i] = chainResult{best, obj, err}
			}
		}()
	}
	for i := 0; i < restarts; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var best chainResult
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		// Strict < keeps the lowest chain index on ties, so the winner is
		// a pure function of (problem, seed, restarts).
		if r.best != nil && (best.best == nil || r.obj < best.obj) {
			best = r
		}
	}
	rep.Finish(total, total)
	return best.best, nil
}

// chain runs one annealing chain from seed and returns its best mapping
// and cost. total is the portfolio-wide iteration budget (for
// progress); done, when non-nil, is the shared completion counter.
// With seed == Seed and done == nil this is byte-for-byte the historical
// single-chain algorithm.
func (a Annealing) chain(ctx context.Context, rep *engine.Reporter, done *atomic.Int64, p *core.Problem, seed uint64, total int) (core.Mapping, float64, error) {
	rng := stats.NewRand(seed)
	n := p.N()
	cur := core.RandomMapping(n, rng)
	tr := newObjectiveTracker(p, cur, a.Objective)

	t0 := a.T0
	if t0 <= 0 {
		// A move changes the objective by at most a few cycles; starting at
		// ~5% of the initial objective accepts most early uphill moves.
		t0 = 0.05 * tr.value()
		if t0 <= 0 {
			t0 = 1
		}
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Reach 1e-4 * T0 on the final iteration.
		cooling = math.Exp(math.Log(1e-4) / float64(a.Iters))
	}

	best := cur.Clone()
	bestObj := tr.value()
	curObj := bestObj
	temp := t0
	for it := 0; it < a.Iters; it++ {
		if it&saPollMask == saPollMask {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("annealing: interrupted after %d/%d iterations: %w", it, a.Iters, err)
			}
			if done != nil {
				rep.Report(int(done.Add(saPollMask+1)), total)
			} else {
				rep.Report(it, total)
			}
		}
		j1 := rng.Intn(n)
		j2 := rng.Intn(n - 1)
		if j2 >= j1 {
			j2++
		}
		obj := tr.swapValue(j1, j2)
		accept := obj <= curObj
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curObj-obj)/temp)
		}
		if accept {
			tr.swap(j1, j2)
			curObj = obj
			if obj < bestObj {
				bestObj = obj
				copy(best, tr.m)
			}
		}
		temp *= cooling
	}
	return best, bestObj, nil
}
