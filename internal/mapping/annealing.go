package mapping

import (
	"context"
	"fmt"
	"math"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/stats"
)

// Annealing is the simulated-annealing baseline of Section V.A: a random
// "move" swaps the tile assignments of two randomly chosen threads, the
// objective is the max-APL, and acceptance follows the Metropolis rule
// under a geometric cooling schedule.
type Annealing struct {
	// Iters is the number of proposed moves. The paper gives SA a runtime
	// budget; iterations are the deterministic equivalent (Figure 12 sweeps
	// this knob).
	Iters int
	// T0 is the initial temperature in APL cycles. If 0, it is derived
	// from the spread of the initial random mapping's objective.
	T0 float64
	// Cooling is the per-step geometric factor; 0 means an automatic
	// schedule ending near 1e-4*T0 after Iters steps.
	Cooling float64
	Seed    uint64
	// Objective selects the cost the annealer minimizes; nil is the
	// paper's max-APL (published behavior, bit-identical).
	Objective core.Objective
}

// Name implements Mapper.
func (a Annealing) Name() string {
	return fmt.Sprintf("SA(%d)%s", a.Iters, objName(a.Objective))
}

// Fingerprint implements Mapper. T0 and Cooling are printed raw (0
// selects the automatic schedule, which is itself a deterministic
// function of the problem and seed).
func (a Annealing) Fingerprint() string {
	return fmt.Sprintf("sa(iters=%d,t0=%g,cooling=%g,seed=%d%s)", a.Iters, a.T0, a.Cooling, a.Seed, objFingerprint(a.Objective))
}

// saPollMask sets how often the iteration loop polls cancellation and
// reports progress (every saPollMask+1 proposed moves).
const saPollMask = 63

// Map implements Mapper. The move loop polls ctx every saPollMask+1
// iterations and returns a wrapped ctx.Err() when cancelled; the polls
// never touch the random stream.
func (a Annealing) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if a.Iters <= 0 {
		return nil, fmt.Errorf("annealing: need positive iteration count, got %d", a.Iters)
	}
	rep := engine.StartStage(ctx, a.Name())
	rng := stats.NewRand(a.Seed)
	n := p.N()
	cur := core.RandomMapping(n, rng)
	tr := newObjectiveTracker(p, cur, a.Objective)

	t0 := a.T0
	if t0 <= 0 {
		// A move changes the objective by at most a few cycles; starting at
		// ~5% of the initial objective accepts most early uphill moves.
		t0 = 0.05 * tr.value()
		if t0 <= 0 {
			t0 = 1
		}
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Reach 1e-4 * T0 on the final iteration.
		cooling = math.Exp(math.Log(1e-4) / float64(a.Iters))
	}

	best := cur.Clone()
	bestObj := tr.value()
	curObj := bestObj
	temp := t0
	for it := 0; it < a.Iters; it++ {
		if it&saPollMask == saPollMask {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("annealing: interrupted after %d/%d iterations: %w", it, a.Iters, err)
			}
			rep.Report(it, a.Iters)
		}
		j1 := rng.Intn(n)
		j2 := rng.Intn(n - 1)
		if j2 >= j1 {
			j2++
		}
		obj := tr.swapValue(j1, j2)
		accept := obj <= curObj
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curObj-obj)/temp)
		}
		if accept {
			tr.swap(j1, j2)
			curObj = obj
			if obj < bestObj {
				bestObj = obj
				copy(best, tr.m)
			}
		}
		temp *= cooling
	}
	rep.Finish(a.Iters, a.Iters)
	return best, nil
}
