package mapping

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"obm/internal/core"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

// allObjectives is every objective the delta paths must agree with,
// including a composite (nil exercises the default resolution).
func allObjectives() []core.Objective {
	return append(append([]core.Objective{nil}, core.Objectives()...),
		core.Weighted{Max: 1, Dev: 2, Global: 0.5, Ratio: 3})
}

// fiveAppProblem builds a 3x3-mesh instance with five applications, the
// smallest shape where a 5-thread window can span more than four
// distinct applications and force the tracker's fullAssignObjective
// fallback.
func fiveAppProblem(t testing.TB) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(3, 3), model.DefaultParams())
	rng := stats.NewRand(5)
	w := &workload.Workload{Name: "five"}
	for _, size := range []int{2, 2, 2, 2, 1} {
		app := workload.Application{Name: "a"}
		for j := 0; j < size; j++ {
			c := 1 + rng.Float64()*10
			app.Threads = append(app.Threads, workload.Thread{CacheRate: c, MemRate: 0.4 * c})
		}
		w.Apps = append(w.Apps, app)
	}
	return core.MustNewProblem(lm, w)
}

// TestFullAssignObjectiveFiveApps pins the >4-distinct-apps fallback:
// a window of one thread from each of five applications must be scored
// by fullAssignObjective, and its prediction must match the brute-force
// evaluation of the permuted mapping for every objective.
func TestFullAssignObjectiveFiveApps(t *testing.T) {
	p := fiveAppProblem(t)
	rng := stats.NewRand(77)
	for _, obj := range allObjectives() {
		name := "default"
		if obj != nil {
			name = obj.Name()
		}
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				m := core.RandomMapping(p.N(), rng)
				tr := newObjectiveTracker(p, m.Clone(), obj)
				// One thread per application: 5 distinct apps in one window.
				js := []int{0, 2, 4, 6, 8}
				ts := make([]mesh.Tile, len(js))
				order := rng.Perm(len(js))
				for x := range js {
					ts[x] = tr.m[js[order[x]]]
				}
				want := func() float64 {
					m2 := tr.m.Clone()
					for x, j := range js {
						m2[j] = ts[x]
					}
					return p.ObjectiveValue(m2, obj)
				}()
				if got := tr.assignValue(js, ts); math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: assignValue %v != brute force %v", trial, got, want)
				}
				// The direct fallback must agree as well (assignValue may
				// reach it only after filling its 4-app fast path).
				if got := tr.fullAssignObjective(js, ts); math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: fullAssignObjective %v != brute force %v", trial, got, want)
				}
				// And applying the move must land on the predicted value.
				tr.assign(js, ts)
				if got := tr.value(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: value after assign %v != %v", trial, got, want)
				}
			}
		})
	}
}

// TestSSSWindow5FiveApps drives the fallback end-to-end: a 5-tile swap
// window over a 5-application instance produces a valid mapping whose
// tracker value matches a from-scratch evaluation.
func TestSSSWindow5FiveApps(t *testing.T) {
	p := fiveAppProblem(t)
	for _, obj := range []core.Objective{nil, core.DevAPL{}} {
		m, err := (SortSelectSwap{WindowSize: 5, Objective: obj}).Map(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(p.N()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropertyObjectiveDeltaConsistency is the cross-check `make check`
// rides on: on random problems and mappings, every objective's
// incremental swap/window probes must equal the from-scratch value of
// the mapping with the move applied.
func TestPropertyObjectiveDeltaConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProblem(seed)
		rng := stats.NewRand(seed ^ 0xdead)
		for _, obj := range allObjectives() {
			m := core.RandomMapping(p.N(), rng)
			tr := newObjectiveTracker(p, m, obj)
			for step := 0; step < 20; step++ {
				j1, j2 := rng.Intn(p.N()), rng.Intn(p.N())
				if j1 == j2 {
					continue
				}
				predicted := tr.swapValue(j1, j2)
				m2 := tr.m.Clone()
				m2[j1], m2[j2] = m2[j2], m2[j1]
				if want := p.ObjectiveValue(m2, obj); math.Abs(predicted-want) > 1e-9 {
					t.Logf("seed %d obj %v: swapValue %v != %v", seed, obj, predicted, want)
					return false
				}
				tr.swap(j1, j2)
			}
			// Window re-assignment probes (up to 4 threads).
			for step := 0; step < 10; step++ {
				k := 2 + rng.Intn(3)
				if k > p.N() {
					continue
				}
				js := rng.Perm(p.N())[:k]
				ts := make([]mesh.Tile, k)
				order := rng.Perm(k)
				for x := range js {
					ts[x] = tr.m[js[order[x]]]
				}
				predicted := tr.assignValue(js, ts)
				m2 := tr.m.Clone()
				for x, j := range js {
					m2[j] = ts[x]
				}
				if want := p.ObjectiveValue(m2, obj); math.Abs(predicted-want) > 1e-9 {
					t.Logf("seed %d obj %v: assignValue %v != %v", seed, obj, predicted, want)
					return false
				}
				tr.assign(js, ts)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
