package mapping

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
	"obm/internal/stats"
)

// ClusterSA is a two-level annealer in the spirit of Lu, Xia & Jantsch
// (cluster-based simulated annealing, cited as [17] by the paper):
// tiles are grouped into contiguous clusters of the sorted-by-TC list,
// annealing swaps whole clusters between applications, and each
// application's threads are placed within its clusters by a Hungarian
// SAM solve. The coarse move space converges much faster than flat SA
// but cannot fine-tune individual tiles — exactly the gap SSS's
// sliding-window phase closes.
type ClusterSA struct {
	// ClusterSize is the number of tiles per cluster (default 4; must
	// divide N and each application's thread count for the default
	// partitioning).
	ClusterSize int
	// Iters is the number of proposed cluster swaps (default 2000).
	Iters int
	Seed  uint64
	// Objective selects the cost the cluster annealer minimizes; nil is
	// the paper's max-APL. The within-cluster SAM placement stays
	// objective-agnostic (per-app total cost is what every objective is
	// built from).
	Objective core.Objective
}

// Name implements Mapper.
func (c ClusterSA) Name() string {
	cs := c.ClusterSize
	if cs == 0 {
		cs = 4
	}
	return fmt.Sprintf("ClusterSA(%d)%s", cs, objName(c.Objective))
}

// Fingerprint implements Mapper, with defaults resolved so the zero
// value and explicit defaults share a key.
func (c ClusterSA) Fingerprint() string {
	cs := c.ClusterSize
	if cs <= 0 {
		cs = 4
	}
	iters := c.Iters
	if iters <= 0 {
		iters = 2000
	}
	return fmt.Sprintf("clustersa(cs=%d,iters=%d,seed=%d%s)", cs, iters, c.Seed, objFingerprint(c.Objective))
}

// Map implements Mapper. Every iteration includes at least one
// Hungarian solve, so the loop polls cancellation each move.
func (c ClusterSA) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	cs := c.ClusterSize
	if cs <= 0 {
		cs = 4
	}
	iters := c.Iters
	if iters <= 0 {
		iters = 2000
	}
	n := p.N()
	if n%cs != 0 {
		return nil, fmt.Errorf("clustersa: cluster size %d does not divide %d tiles", cs, n)
	}
	numClusters := n / cs
	// Each application needs a whole number of clusters.
	clustersPer := make([]int, p.NumApps())
	total := 0
	for i := 0; i < p.NumApps(); i++ {
		lo, hi := p.AppThreads(i)
		if (hi-lo)%cs != 0 {
			return nil, fmt.Errorf("clustersa: app %d has %d threads, not a multiple of cluster size %d", i, hi-lo, cs)
		}
		clustersPer[i] = (hi - lo) / cs
		total += clustersPer[i]
	}
	if total != numClusters {
		return nil, fmt.Errorf("clustersa: %d clusters for %d cluster slots", total, numClusters)
	}

	// Clusters are contiguous runs of the TC-sorted slot list, like the
	// section structure of SSS.
	sorted := make([]mesh.Tile, n)
	for i := range sorted {
		sorted[i] = mesh.Tile(i)
	}
	sort.SliceStable(sorted, func(a, b int) bool {
		ta, tb := p.TC(sorted[a]), p.TC(sorted[b])
		if ta != tb {
			return ta < tb
		}
		return sorted[a] < sorted[b]
	})
	clusterTiles := make([][]mesh.Tile, numClusters)
	for ci := range clusterTiles {
		clusterTiles[ci] = sorted[ci*cs : (ci+1)*cs]
	}

	// owner[ci] = application owning cluster ci. Initial assignment:
	// round-robin through the sorted clusters so every application gets
	// a spread of latencies (the SSS "select" intuition at cluster
	// granularity).
	owner := make([]int, numClusters)
	{
		remaining := append([]int(nil), clustersPer...)
		app := 0
		for ci := range owner {
			for remaining[app%len(remaining)] == 0 {
				app++
			}
			owner[ci] = app % len(remaining)
			remaining[app%len(remaining)]--
			app++
		}
	}

	objv := core.ObjectiveOrDefault(c.Objective)
	num := make([]float64, p.NumApps())
	evaluate := func() (core.Mapping, float64, error) {
		m := make(core.Mapping, n)
		// Collect each app's tiles, then SAM. The raw SAM totals are the
		// per-app APL numerators, which every objective scores from (for
		// the default max-APL this is the same cost/weight division and
		// max as before, bit for bit).
		tilesOf := make([][]mesh.Tile, p.NumApps())
		for ci, a := range owner {
			tilesOf[a] = append(tilesOf[a], clusterTiles[ci]...)
		}
		for i := 0; i < p.NumApps(); i++ {
			num[i] = 0
			if len(tilesOf[i]) == 0 {
				continue
			}
			lo, hi := p.AppThreads(i)
			assign, cost, err := p.SolveSAM(lo, hi, tilesOf[i])
			if err != nil {
				return nil, 0, err
			}
			for x, t := range assign {
				m[lo+x] = t
			}
			num[i] = cost
		}
		return m, objv.Value(p, num), nil
	}

	rng := stats.NewRand(c.Seed)
	rep := engine.StartStage(ctx, c.Name())
	bestM, bestObj, err := evaluate()
	if err != nil {
		return nil, err
	}
	curObj := bestObj
	temp := 0.05 * bestObj
	cooling := math.Exp(math.Log(1e-3) / float64(iters))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("clustersa: interrupted after %d/%d iterations: %w", it, iters, err)
		}
		rep.Report(it, iters)
		// Swap ownership of two clusters with different owners.
		a := rng.Intn(numClusters)
		b := rng.Intn(numClusters)
		if owner[a] == owner[b] {
			temp *= cooling
			continue
		}
		owner[a], owner[b] = owner[b], owner[a]
		m, obj, err := evaluate()
		if err != nil {
			return nil, err
		}
		accept := obj <= curObj
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curObj-obj)/temp)
		}
		if accept {
			curObj = obj
			if obj < bestObj {
				bestObj = obj
				bestM = m
			}
		} else {
			owner[a], owner[b] = owner[b], owner[a]
		}
		temp *= cooling
	}
	rep.Finish(iters, iters)
	return bestM, nil
}
