// Package mapping implements the application-to-core mapping algorithms
// evaluated in the paper (Section V.A):
//
//   - Random — a uniformly random thread-to-tile permutation (the paper's
//     random-average baseline of Table 1);
//   - Global — overall-latency minimization via a single chip-wide
//     Hungarian assignment (the performance-oriented baseline whose
//     imbalance motivates the paper);
//   - MonteCarlo — best-of-R random mappings under the max-APL objective;
//   - Annealing — simulated annealing over 2-thread swap moves under the
//     max-APL objective;
//   - SortSelectSwap — the paper's proposed O(N^3) heuristic
//     (Algorithm 2), with switches for the ablation studies.
package mapping

import (
	"context"
	"fmt"
	"time"

	"obm/internal/core"
	"obm/internal/obs"
)

// Mapper produces a thread-to-tile mapping for an OBM problem instance.
// Implementations must return a valid permutation.
type Mapper interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Fingerprint returns a stable content key covering the algorithm
	// and every parameter that can affect the returned mapping (seeds
	// and budgets included; knobs that are documented not to change the
	// result, like worker counts, are excluded). Two mappers with equal
	// fingerprints must produce identical mappings on equal problems —
	// the scenario artifact cache relies on this to share one
	// computation per distinct invocation. Defaulted parameters are
	// resolved before printing, so the zero value and an explicit
	// default share a fingerprint.
	Fingerprint() string
	// Map solves the instance. Implementations must be deterministic for
	// a fixed configuration (all randomness comes from explicit seeds);
	// ctx carries cancellation, a deadline, and optionally a progress
	// sink (engine.WithSink), none of which may perturb the random
	// streams — a run that is never cancelled returns bit-identical
	// results whatever the context. Iterative mappers poll ctx and
	// return a ctx.Err()-wrapped error when interrupted.
	Map(ctx context.Context, p *core.Problem) (core.Mapping, error)
}

// ObjectiveFingerprint returns the content fingerprint of the
// objective mapper m optimizes, for artifact WorkUnit descriptors. By
// the Mapper contract a non-default objective is already folded into
// m.Fingerprint(); this surfaces it as a separate, self-describing
// field so stores and daemons can classify artifacts without
// instantiating the mapper. Mappers without a configurable objective
// report the cost they minimize by construction: the paper's max-APL
// for the heuristics, g-APL for Global (a chip-wide Hungarian
// assignment minimizes overall latency, not balance).
func ObjectiveFingerprint(m Mapper) string {
	var o core.Objective
	switch v := m.(type) {
	case Global:
		return core.GAPL{}.Fingerprint()
	case MonteCarlo:
		o = v.Objective
	case Annealing:
		o = v.Objective
	case SortSelectSwap:
		o = v.Objective
	case ClusterSA:
		o = v.Objective
	case Genetic:
		o = v.Objective
	case BalancedGreedy:
		o = v.Objective
	case Exact:
		o = v.Objective
	}
	return core.ObjectiveOrDefault(o).Fingerprint()
}

// MapAndCheck runs m on p and validates the returned permutation,
// wrapping any violation with the mapper's name. Experiment harnesses use
// this so a buggy mapper can never silently corrupt results. Each
// invocation is recorded in the process metrics registry — a per-
// algorithm call counter and wall-time histogram — so a run's mapper
// budget is visible without one-off timing code (the ablation/scaling
// experiments still measure their own wall time; these metrics observe,
// never replace, that).
func MapAndCheck(ctx context.Context, m Mapper, p *core.Problem) (core.Mapping, error) {
	name := m.Name()
	reg := obs.Default()
	reg.Counter("mapping." + name + ".calls").Inc()
	start := time.Now()
	mp, err := m.Map(ctx, p)
	reg.Timer("mapping." + name + ".seconds").Since(start)
	if err != nil {
		reg.Counter("mapping." + name + ".errors").Inc()
		return nil, fmt.Errorf("mapping: %s: %w", name, err)
	}
	if err := mp.Validate(p.N()); err != nil {
		reg.Counter("mapping." + name + ".errors").Inc()
		return nil, fmt.Errorf("mapping: %s produced invalid mapping: %w", name, err)
	}
	return mp, nil
}
