// Package mapping implements the application-to-core mapping algorithms
// evaluated in the paper (Section V.A):
//
//   - Random — a uniformly random thread-to-tile permutation (the paper's
//     random-average baseline of Table 1);
//   - Global — overall-latency minimization via a single chip-wide
//     Hungarian assignment (the performance-oriented baseline whose
//     imbalance motivates the paper);
//   - MonteCarlo — best-of-R random mappings under the max-APL objective;
//   - Annealing — simulated annealing over 2-thread swap moves under the
//     max-APL objective;
//   - SortSelectSwap — the paper's proposed O(N^3) heuristic
//     (Algorithm 2), with switches for the ablation studies.
package mapping

import (
	"context"
	"fmt"

	"obm/internal/core"
)

// Mapper produces a thread-to-tile mapping for an OBM problem instance.
// Implementations must return a valid permutation.
type Mapper interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Fingerprint returns a stable content key covering the algorithm
	// and every parameter that can affect the returned mapping (seeds
	// and budgets included; knobs that are documented not to change the
	// result, like worker counts, are excluded). Two mappers with equal
	// fingerprints must produce identical mappings on equal problems —
	// the scenario artifact cache relies on this to share one
	// computation per distinct invocation. Defaulted parameters are
	// resolved before printing, so the zero value and an explicit
	// default share a fingerprint.
	Fingerprint() string
	// Map solves the instance. Implementations must be deterministic for
	// a fixed configuration (all randomness comes from explicit seeds);
	// ctx carries cancellation, a deadline, and optionally a progress
	// sink (engine.WithSink), none of which may perturb the random
	// streams — a run that is never cancelled returns bit-identical
	// results whatever the context. Iterative mappers poll ctx and
	// return a ctx.Err()-wrapped error when interrupted.
	Map(ctx context.Context, p *core.Problem) (core.Mapping, error)
}

// MapAndCheck runs m on p and validates the returned permutation,
// wrapping any violation with the mapper's name. Experiment harnesses use
// this so a buggy mapper can never silently corrupt results.
func MapAndCheck(ctx context.Context, m Mapper, p *core.Problem) (core.Mapping, error) {
	mp, err := m.Map(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("mapping: %s: %w", m.Name(), err)
	}
	if err := mp.Validate(p.N()); err != nil {
		return nil, fmt.Errorf("mapping: %s produced invalid mapping: %w", m.Name(), err)
	}
	return mp, nil
}
