package mapping

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/stats"
)

// Genetic is a permutation genetic algorithm for the OBM objective —
// the neighbourhood-search family the paper cites (Jang & Pan [14], Lu
// et al. [17]) and dismisses as too slow for runtime use. It evolves a
// population of thread-to-tile permutations with tournament selection,
// order crossover (OX1) and swap mutation, under the max-APL fitness.
type Genetic struct {
	// Population size (default 64).
	Population int
	// Generations to evolve (default 200).
	Generations int
	// MutationRate is the per-offspring swap-mutation probability
	// (default 0.3).
	MutationRate float64
	// Elite is how many best individuals survive unchanged (default 2).
	Elite int
	Seed  uint64
	// Objective selects the fitness being minimized; nil is the paper's
	// max-APL.
	Objective core.Objective
}

// Name implements Mapper.
func (g Genetic) Name() string {
	pop, gen := g.Population, g.Generations
	if pop == 0 {
		pop = 64
	}
	if gen == 0 {
		gen = 200
	}
	return fmt.Sprintf("GA(%dx%d)%s", pop, gen, objName(g.Objective))
}

// Fingerprint implements Mapper, with defaults resolved so the zero
// value and explicit defaults share a key.
func (g Genetic) Fingerprint() string {
	pop, gens, mut, elite := g.Population, g.Generations, g.MutationRate, g.Elite
	if pop <= 0 {
		pop = 64
	}
	if gens <= 0 {
		gens = 200
	}
	if mut <= 0 {
		mut = 0.3
	}
	if elite <= 0 {
		elite = 2
	}
	return fmt.Sprintf("ga(pop=%d,gen=%d,mut=%g,elite=%d,seed=%d%s)", pop, gens, mut, elite, g.Seed, objFingerprint(g.Objective))
}

// Map implements Mapper. The generation loop polls cancellation once
// per generation (each generation evaluates a full population).
func (g Genetic) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	pop := g.Population
	if pop <= 0 {
		pop = 64
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 200
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.3
	}
	elite := g.Elite
	if elite <= 0 {
		elite = 2
	}
	if elite >= pop {
		return nil, fmt.Errorf("genetic: elite %d must be smaller than population %d", elite, pop)
	}
	rng := stats.NewRand(g.Seed)
	n := p.N()

	// One reusable Scorer keeps per-individual fitness allocation-free.
	sc := p.Scorer(g.Objective)
	evaluate := sc.Score

	cur := make([]indiv, pop)
	for i := range cur {
		m := core.RandomMapping(n, rng)
		cur[i] = indiv{m: m, fit: evaluate(m)}
	}
	bestOf := func(pool []indiv) indiv {
		best := pool[0]
		for _, ind := range pool[1:] {
			if ind.fit < best.fit {
				best = ind
			}
		}
		return best
	}
	tournament := func() core.Mapping {
		a, b := cur[rng.Intn(pop)], cur[rng.Intn(pop)]
		if a.fit <= b.fit {
			return a.m
		}
		return b.m
	}

	rep := engine.StartStage(ctx, g.Name())
	next := make([]indiv, pop)
	for gen := 0; gen < gens; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("genetic: interrupted after %d/%d generations: %w", gen, gens, err)
		}
		rep.Report(gen, gens)
		// Elitism: carry the best forward untouched.
		sortByFitness(cur)
		copy(next[:elite], cur[:elite])
		for i := elite; i < pop; i++ {
			child := orderCrossover(tournament(), tournament(), rng)
			if rng.Float64() < mut {
				a, b := rng.Intn(n), rng.Intn(n)
				child[a], child[b] = child[b], child[a]
			}
			next[i] = indiv{m: child, fit: evaluate(child)}
		}
		cur, next = next, cur
	}
	rep.Finish(gens, gens)
	return bestOf(cur).m.Clone(), nil
}

// indiv is one genome with its cached fitness.
type indiv struct {
	m   core.Mapping
	fit float64
}

// sortByFitness is a small insertion sort (populations are small and
// nearly sorted between generations).
func sortByFitness(pool []indiv) {
	for i := 1; i < len(pool); i++ {
		for j := i; j > 0 && pool[j-1].fit > pool[j].fit; j-- {
			pool[j-1], pool[j] = pool[j], pool[j-1]
		}
	}
}

// orderCrossover implements OX1 on permutations: copy a random slice of
// parent a, fill the rest in parent b's order.
func orderCrossover(a, b core.Mapping, rng *stats.Rand) core.Mapping {
	n := len(a)
	lo := rng.Intn(n)
	hi := lo + rng.Intn(n-lo)
	child := make(core.Mapping, n)
	taken := make([]bool, n)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		taken[a[i]] = true
	}
	pos := (hi + 1) % n
	for i := 0; i < n; i++ {
		v := b[(hi+1+i)%n]
		if taken[v] {
			continue
		}
		child[pos] = v
		taken[v] = true
		pos = (pos + 1) % n
	}
	return child
}
