package mapping

import (
	"context"
	"fmt"
	"math"

	"obm/internal/core"
)

// WarmStart refines an existing valid mapping with sort-select-swap's
// fine-tuning phases only: the sliding-window permutation search and
// the per-application SAM polish, iterated like Map's pass loop. The
// coarse sort/select/assign phases are skipped — the incumbent mapping
// *is* the coarse solution — which is what makes warm restarts cheap
// enough to run at every remap of a streaming scheduler: a full Map is
// O(sort + A·SAM + swap), a warm start just O(swap), and with a small
// MaxStep the swap sweep itself shrinks from O(N²/w) to O(N·MaxStep)
// windows.
//
// The result never scores worse than base under the configured
// objective: the window search only accepts improving permutations, and
// because the SAM polish minimizes per-app APL sums — which can
// *increase* spread-sensitive objectives like dev-APL — the final
// mapping is compared against base and base wins ties or regressions.
func (s SortSelectSwap) WarmStart(ctx context.Context, p *core.Problem, base core.Mapping) (core.Mapping, error) {
	window := s.WindowSize
	if window == 0 {
		window = 4
	}
	if window < 2 || window > 5 {
		return nil, fmt.Errorf("sss: window size %d out of range [2,5]", window)
	}
	if err := base.Validate(p.N()); err != nil {
		return nil, fmt.Errorf("sss: warm start: %w", err)
	}
	m := base.Clone()
	sorted := sortedSlotsByTC(p)
	sam := p.NewSAMSolver()

	passes := s.Passes
	if passes <= 0 {
		passes = 1
	}
	prevObj := math.Inf(1)
	sc := p.Scorer(s.Objective)
	var sw swapScratch
	for pass := 0; pass < passes; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sss: warm start interrupted in pass %d/%d: %w", pass+1, passes, err)
		}
		if !s.DisableSwap {
			if err := s.slideWindows(ctx, p, m, sorted, window, &sw); err != nil {
				return nil, err
			}
		}
		if !s.DisableFinalSAM {
			for i := 0; i < p.NumApps(); i++ {
				if err := sam.ReoptimizeApp(m, i); err != nil {
					return nil, err
				}
			}
		}
		if s.DisableSwap {
			break
		}
		if obj := sc.Score(m); obj < prevObj-1e-12 {
			prevObj = obj
		} else {
			break
		}
	}
	if sc.Score(m) > sc.Score(base) {
		return base.Clone(), nil
	}
	return m, nil
}
