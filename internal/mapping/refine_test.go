package mapping

import (
	"context"
	"testing"

	"obm/internal/core"
	"obm/internal/stats"
)

func TestImproveWithBudgetValidation(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, _, err := ImproveWithBudget(context.Background(), p, make(core.Mapping, 3), 5); err == nil {
		t.Error("invalid base accepted")
	}
	base := core.IdentityMapping(p.N())
	if _, _, err := ImproveWithBudget(context.Background(), p, base, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestImproveWithBudgetZero(t *testing.T) {
	p := paperProblem(t, "C1")
	base := core.IdentityMapping(p.N())
	m, n, err := ImproveWithBudget(context.Background(), p, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("moved %d with zero budget", n)
	}
	for j := range base {
		if m[j] != base[j] {
			t.Fatal("zero budget changed the mapping")
		}
	}
}

// TestImproveWithBudgetRespectsBudget: moved-thread count never exceeds
// the budget, the result is valid, and the objective never worsens.
func TestImproveWithBudgetRespectsBudget(t *testing.T) {
	p := paperProblem(t, "C4")
	rng := stats.NewRand(3)
	base := core.RandomMapping(p.N(), rng)
	baseObj := p.MaxAPL(base)
	for _, budget := range []int{4, 8, 16, 32, 64} {
		m, moved, err := ImproveWithBudget(context.Background(), p, base, budget)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(p.N()); err != nil {
			t.Fatal(err)
		}
		if moved > budget {
			t.Errorf("budget %d: moved %d", budget, moved)
		}
		// Recount independently.
		actual := 0
		for j := range base {
			if m[j] != base[j] {
				actual++
			}
		}
		if actual != moved {
			t.Errorf("budget %d: reported %d moves, actual %d", budget, moved, actual)
		}
		if obj := p.MaxAPL(m); obj > baseObj+1e-9 {
			t.Errorf("budget %d: objective worsened %.4f -> %.4f", budget, baseObj, obj)
		}
	}
}

// TestImproveWithBudgetMonotoneInBudget: more budget never hurts, and a
// full budget approaches fresh-SSS quality.
func TestImproveWithBudgetMonotone(t *testing.T) {
	p := paperProblem(t, "C6")
	rng := stats.NewRand(7)
	base := core.RandomMapping(p.N(), rng)
	prev := p.MaxAPL(base)
	objAt := map[int]float64{}
	for _, budget := range []int{4, 16, 64} {
		m, _, err := ImproveWithBudget(context.Background(), p, base, budget)
		if err != nil {
			t.Fatal(err)
		}
		obj := p.MaxAPL(m)
		objAt[budget] = obj
		if obj > prev+1e-9 {
			t.Errorf("budget %d worsened the trend: %.4f after %.4f", budget, obj, prev)
		}
		prev = obj
	}
	// Full budget should land within 3% of a fresh SSS solve.
	sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	fresh := p.MaxAPL(sm)
	if objAt[64] > fresh*1.03 {
		t.Errorf("full-budget refine %.4f not near fresh SSS %.4f", objAt[64], fresh)
	}
}

// TestImproveWithBudgetSmallBudgetBuysMost: a handful of migrations
// captures a large share of the improvement (why budgeted remapping is
// worth having).
func TestImproveSmallBudgetBuysMost(t *testing.T) {
	p := paperProblem(t, "C3")
	rng := stats.NewRand(11)
	base := core.RandomMapping(p.N(), rng)
	baseObj := p.MaxAPL(base)
	m64, _, err := ImproveWithBudget(context.Background(), p, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	full := baseObj - p.MaxAPL(m64)
	m8, _, err := ImproveWithBudget(context.Background(), p, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	part := baseObj - p.MaxAPL(m8)
	if full <= 0 {
		t.Skip("no improvement possible from this base")
	}
	if part < 0.3*full {
		t.Errorf("8 migrations captured only %.0f%% of the full improvement", 100*part/full)
	}
}
