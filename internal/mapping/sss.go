package mapping

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
	"obm/internal/stats"
)

// SelectStrategy chooses how the select step of sort-select-swap picks
// one tile per section of the sorted tile list for an application.
type SelectStrategy int

// Selection strategies. SelectMiddle is the paper's; the others exist for
// the ablation benchmarks.
const (
	// SelectMiddle picks the tile in the middle of each section
	// (Figure 6 of the paper).
	SelectMiddle SelectStrategy = iota
	// SelectFirst picks the first (smallest-TC) tile of each section.
	SelectFirst
	// SelectRandom picks a uniform random tile of each section.
	SelectRandom
)

func (s SelectStrategy) String() string {
	switch s {
	case SelectMiddle:
		return "middle"
	case SelectFirst:
		return "first"
	case SelectRandom:
		return "random"
	default:
		return fmt.Sprintf("SelectStrategy(%d)", int(s))
	}
}

// SortSelectSwap is the paper's proposed heuristic (Algorithm 2):
//
//  1. sort all tiles by their shared-cache APL TC(k);
//  2. for each application, divide the remaining sorted list into equal
//     sections, select the middle tile of each section, and assign the
//     selected tiles to the application's threads with a Hungarian SAM
//     solve (coarse tuning on the dominant cache traffic);
//  3. slide a 4-tile window over the sorted list with step sizes
//     1..N/4, trying all 24 permutations of each window's thread-to-tile
//     assignment and greedily keeping the one that minimizes the
//     max-APL (fine tuning that also accounts for memory traffic);
//     finally re-run SAM within each application.
//
// The zero value is the algorithm exactly as published. The exported
// fields switch individual phases off or vary them for the ablation
// studies in bench_test.go; they do not change the published defaults.
type SortSelectSwap struct {
	// DisableSwap skips step 3's sliding-window swaps (coarse tuning only).
	DisableSwap bool
	// DisableFinalSAM skips the final per-application Hungarian polish.
	DisableFinalSAM bool
	// Select overrides the section-selection strategy (default middle).
	Select SelectStrategy
	// WindowSize overrides the swap window size (default 4; 2..5 allowed —
	// cost grows as WindowSize! per window).
	WindowSize int
	// MaxStep caps the sliding-window step size; 0 means the paper's N/4.
	MaxStep int
	// Passes repeats the swap phase (each pass followed by the SAM
	// polish) until no pass improves the objective, up to this many
	// passes. 0 or 1 is the published single-pass algorithm; higher
	// values implement the iterate-to-convergence extension studied in
	// the ablation experiment.
	Passes int
	// Seed feeds SelectRandom; unused by the published configuration.
	Seed uint64
	// Objective selects the cost the swap phase minimizes and the
	// pass-convergence check monitors; nil is the paper's max-APL. The
	// coarse select/SAM phases are objective-agnostic (they tune the
	// dominant cache traffic, not the objective).
	Objective core.Objective
}

// Name implements Mapper.
func (s SortSelectSwap) Name() string {
	suffix := objName(s.Objective)
	s.Objective = nil
	if s == (SortSelectSwap{}) {
		return "SSS" + suffix
	}
	name := "SSS" + suffix + "["
	switch {
	case s.DisableSwap && s.DisableFinalSAM:
		name += "select-only"
	case s.DisableSwap:
		name += "no-swap"
	case s.DisableFinalSAM:
		name += "no-final-sam"
	default:
		name += "custom"
	}
	if s.Select != SelectMiddle {
		name += ",sel=" + s.Select.String()
	}
	if s.WindowSize != 0 && s.WindowSize != 4 {
		name += fmt.Sprintf(",w=%d", s.WindowSize)
	}
	if s.MaxStep != 0 {
		name += fmt.Sprintf(",maxstep=%d", s.MaxStep)
	}
	if s.Passes > 1 {
		name += fmt.Sprintf(",passes=%d", s.Passes)
	}
	return name + "]"
}

// Fingerprint implements Mapper, with the window default resolved.
// Passes 0 and 1 are both the published single-pass algorithm and the
// seed only feeds SelectRandom, so both normalize before printing.
func (s SortSelectSwap) Fingerprint() string {
	window := s.WindowSize
	if window == 0 {
		window = 4
	}
	passes := s.Passes
	if passes < 1 {
		passes = 1
	}
	seed := s.Seed
	if s.Select != SelectRandom {
		seed = 0
	}
	return fmt.Sprintf("sss(swap=%t,finalsam=%t,sel=%s,win=%d,step=%d,passes=%d,seed=%d%s)",
		!s.DisableSwap, !s.DisableFinalSAM, s.Select, window, s.MaxStep, passes, seed, objFingerprint(s.Objective))
}

// Map implements Mapper. The sliding-window phase (the only
// super-linear part) polls cancellation between window steps and
// reports step progress.
func (s SortSelectSwap) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	window := s.WindowSize
	if window == 0 {
		window = 4
	}
	if window < 2 || window > 5 {
		return nil, fmt.Errorf("sss: window size %d out of range [2,5]", window)
	}
	n := p.N()
	var rng *stats.Rand
	if s.Select == SelectRandom {
		rng = stats.NewRand(s.Seed)
	}

	// Step 1: sort slots ascending by TC.
	sorted := sortedSlotsByTC(p)

	// Step 2: select tiles per application from the shrinking list and
	// SAM-assign them. The SAM solver and the section-select scratch are
	// shared across applications and passes (scratch reuse is what keeps
	// a full solve down to a handful of allocations).
	sam := p.NewSAMSolver()
	var sel selectScratch
	m := make(core.Mapping, n)
	remaining := append([]mesh.Tile(nil), sorted...)
	for i := 0; i < p.NumApps(); i++ {
		lo, hi := p.AppThreads(i)
		need := hi - lo
		if need == 0 {
			continue
		}
		picked, rest, err := sel.selectFromSections(remaining, need, s.Select, rng)
		if err != nil {
			return nil, fmt.Errorf("sss: app %d: %w", i, err)
		}
		if _, err := sam.SolveInto(m, i, picked); err != nil {
			return nil, err
		}
		remaining = rest
	}

	// Step 3: greedy sliding-window swaps over the full sorted list,
	// followed by the per-application SAM polish; optionally repeated
	// while the objective keeps improving (Passes > 1 extension).
	passes := s.Passes
	if passes <= 0 {
		passes = 1
	}
	prevObj := math.Inf(1)
	sc := p.Scorer(s.Objective)
	var sw swapScratch
	for pass := 0; pass < passes; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sss: interrupted in pass %d/%d: %w", pass+1, passes, err)
		}
		if !s.DisableSwap {
			if err := s.slideWindows(ctx, p, m, sorted, window, &sw); err != nil {
				return nil, err
			}
		}
		if !s.DisableFinalSAM {
			for i := 0; i < p.NumApps(); i++ {
				if err := sam.ReoptimizeApp(m, i); err != nil {
					return nil, err
				}
			}
		}
		if s.DisableSwap {
			break // nothing to iterate
		}
		if obj := sc.Score(m); obj < prevObj-1e-12 {
			prevObj = obj
		} else {
			break
		}
	}
	return m, nil
}

// sortedSlotsByTC returns every slot of the problem sorted ascending by
// TC — the tile order of SSS step 1, shared by the swap phase, the
// budgeted refiner, and warm starts. Ties (mesh symmetry, and all slots
// of one tile) are broken by index for determinism.
func sortedSlotsByTC(p *core.Problem) []mesh.Tile {
	n := p.N()
	sorted := make([]mesh.Tile, n)
	for i := range sorted {
		sorted[i] = mesh.Tile(i)
	}
	sort.SliceStable(sorted, func(a, b int) bool {
		ta, tb := p.TC(sorted[a]), p.TC(sorted[b])
		if ta != tb {
			return ta < tb
		}
		return sorted[a] < sorted[b]
	})
	return sorted
}

// selectScratch holds the reusable buffers of selectFromSections. The
// zero value is ready; buffers grow to the largest application seen.
type selectScratch struct {
	picked  []mesh.Tile
	pickIdx []int
}

// selectFromSections divides list into need equal sections, picks one
// tile per section according to the strategy, and returns the picks plus
// the unpicked remainder (order preserved). The picks land in sc's
// reused buffer (valid until the next call) and the remainder is
// compacted into list in place — callers own list, a private copy of the
// sorted tile order. Sections are disjoint and scanned in order, so the
// picked indices are strictly ascending and the compaction is a
// two-pointer merge, no lookup structure needed.
func (sc *selectScratch) selectFromSections(list []mesh.Tile, need int, strat SelectStrategy, rng *stats.Rand) (picked, rest []mesh.Tile, err error) {
	l := len(list)
	if need > l {
		return nil, nil, fmt.Errorf("need %d tiles from list of %d", need, l)
	}
	picked = sc.picked[:0]
	pickIdx := sc.pickIdx[:0]
	for q := 0; q < need; q++ {
		start := q * l / need
		end := (q + 1) * l / need
		var idx int
		switch strat {
		case SelectFirst:
			idx = start
		case SelectRandom:
			idx = start + rng.Intn(end-start)
		default: // SelectMiddle
			idx = (start + end - 1) / 2
		}
		pickIdx = append(pickIdx, idx)
		picked = append(picked, list[idx])
	}
	sc.picked, sc.pickIdx = picked, pickIdx
	w, k := 0, 0
	for i, t := range list {
		if k < len(pickIdx) && i == pickIdx[k] {
			k++
			continue
		}
		list[w] = t
		w++
	}
	return picked, list[:w], nil
}

// swapScratch holds the buffers slideWindows reuses across passes: the
// tile-to-thread inverse (rebuilt each pass — the SAM polish between
// passes moves threads) and the per-window work arrays. The zero value
// is ready.
type swapScratch struct {
	inv          []int
	tiles, trial []mesh.Tile
	threads      []int
}

func (sw *swapScratch) ensure(n, window int) {
	if cap(sw.inv) < n {
		sw.inv = make([]int, n)
	}
	sw.inv = sw.inv[:n]
	if cap(sw.tiles) < window {
		sw.tiles = make([]mesh.Tile, window)
		sw.trial = make([]mesh.Tile, window)
		sw.threads = make([]int, window)
	}
	sw.tiles = sw.tiles[:window]
	sw.trial = sw.trial[:window]
	sw.threads = sw.threads[:window]
}

// slideWindows performs the greedy permutation search of step 3 in
// place, polling cancellation between window steps (each step is a full
// sweep of the sorted list, i.e. O(N * window!) objective probes).
func (s SortSelectSwap) slideWindows(ctx context.Context, p *core.Problem, m core.Mapping, sorted []mesh.Tile, window int, sw *swapScratch) error {
	n := p.N()
	tr := newObjectiveTracker(p, m, s.Objective)
	sw.ensure(n, window)
	inv := sw.inv // tile -> thread
	for i := range inv {
		inv[i] = -1
	}
	for j, t := range m {
		inv[t] = j
	}
	perms := permutations(window)

	maxStep := s.MaxStep
	if maxStep <= 0 {
		maxStep = n / window
	}
	rep := engine.StartStage(ctx, s.Name()+"/swap")
	tiles, threads, trial := sw.tiles, sw.threads, sw.trial
	for step := 1; step <= maxStep; step++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sss: interrupted at window step %d/%d: %w", step, maxStep, err)
		}
		rep.Report(step-1, maxStep)
		span := (window - 1) * step
		for i := 0; i+span < n; i++ {
			for x := 0; x < window; x++ {
				tiles[x] = sorted[i+x*step]
				threads[x] = inv[tiles[x]]
			}
			// Try every permutation; keep the best (identity included, so
			// the objective never worsens).
			bestObj := tr.value()
			bestPerm := -1
			for pi, perm := range perms {
				identity := true
				for x, y := range perm {
					trial[x] = tiles[y]
					if y != x {
						identity = false
					}
				}
				if identity {
					continue
				}
				if obj := tr.assignValue(threads, trial); obj < bestObj {
					bestObj = obj
					bestPerm = pi
				}
			}
			if bestPerm >= 0 {
				perm := perms[bestPerm]
				for x, y := range perm {
					trial[x] = tiles[y]
				}
				tr.assign(threads, trial)
				for x := range threads {
					inv[trial[x]] = threads[x]
				}
			}
		}
	}
	rep.Finish(maxStep, maxStep)
	return nil
}

// permTables memoizes the permutation lists for every legal window size
// (2..5), built once at init; a full sort-select-swap solve then reads
// them with zero allocations. Read-only after init, so safe to share
// between concurrent mappers.
var permTables [6][][]int

func init() {
	for k := 2; k < len(permTables); k++ {
		permTables[k] = buildPermutations(k)
	}
}

// permutations returns all k! permutations of [0,k) in a deterministic
// order (Heap's algorithm), from the memoized table for window-sized k.
// The result is shared — callers must not mutate it.
func permutations(k int) [][]int {
	if k >= 2 && k < len(permTables) {
		return permTables[k]
	}
	return buildPermutations(k)
}

func buildPermutations(k int) [][]int {
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(h int)
	rec = func(h int) {
		if h == 1 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < h; i++ {
			rec(h - 1)
			if h%2 == 0 {
				cur[i], cur[h-1] = cur[h-1], cur[i]
			} else {
				cur[0], cur[h-1] = cur[h-1], cur[0]
			}
		}
	}
	rec(k)
	return out
}
