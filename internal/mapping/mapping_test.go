package mapping

import (
	"context"
	"math"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

func paperProblem(t testing.TB, cfg string) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	return core.MustNewProblem(lm, workload.MustConfig(cfg))
}

func figure5Problem(t testing.TB) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(4, 4), model.Figure5Params())
	return core.MustNewProblem(lm, workload.Figure5Workload())
}

func allMappers() []Mapper {
	return []Mapper{
		Random{Seed: 1},
		Global{},
		MonteCarlo{Samples: 200, Seed: 2},
		Annealing{Iters: 2000, Seed: 3},
		SortSelectSwap{},
		SortSelectSwap{DisableSwap: true},
		SortSelectSwap{DisableFinalSAM: true},
		SortSelectSwap{Select: SelectFirst},
		SortSelectSwap{Select: SelectRandom, Seed: 4},
		SortSelectSwap{WindowSize: 2},
		SortSelectSwap{WindowSize: 3},
		SortSelectSwap{MaxStep: 1},
		SortSelectSwap{Passes: 5},
	}
}

// TestAllMappersProduceValidPermutations is the fundamental safety
// property: every algorithm returns a valid thread-to-tile permutation.
func TestAllMappersProduceValidPermutations(t *testing.T) {
	for _, cfg := range []string{"C1", "C5"} {
		p := paperProblem(t, cfg)
		for _, m := range allMappers() {
			got, err := MapAndCheck(context.Background(), m, p)
			if err != nil {
				t.Errorf("%s on %s: %v", m.Name(), cfg, err)
				continue
			}
			if err := got.Validate(p.N()); err != nil {
				t.Errorf("%s on %s: %v", m.Name(), cfg, err)
			}
		}
	}
}

func TestMappersDeterministic(t *testing.T) {
	p := paperProblem(t, "C2")
	for _, m := range allMappers() {
		a, err := m.Map(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Map(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("%s is not deterministic", m.Name())
				break
			}
		}
	}
}

func TestMapperNames(t *testing.T) {
	cases := []struct {
		m    Mapper
		want string
	}{
		{Random{}, "Random"},
		{Global{}, "Global"},
		{MonteCarlo{Samples: 100}, "MC(100)"},
		{Annealing{Iters: 50}, "SA(50)"},
		{SortSelectSwap{}, "SSS"},
		{SortSelectSwap{DisableSwap: true}, "SSS[no-swap]"},
		{SortSelectSwap{DisableSwap: true, DisableFinalSAM: true}, "SSS[select-only]"},
		{SortSelectSwap{DisableFinalSAM: true}, "SSS[no-final-sam]"},
	}
	for _, c := range cases {
		if got := c.m.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains((SortSelectSwap{WindowSize: 3}).Name(), "w=3") {
		t.Error("window size missing from name")
	}
	if !strings.Contains((SortSelectSwap{Select: SelectFirst}).Name(), "sel=first") {
		t.Error("selection strategy missing from name")
	}
	if !strings.Contains((SortSelectSwap{Passes: 5}).Name(), "passes=5") {
		t.Error("pass count missing from name")
	}
}

// TestSSSMultiPassMonotone: extra passes never worsen the objective and
// typically improve it toward SA parity.
func TestSSSMultiPassMonotone(t *testing.T) {
	for _, cfg := range []string{"C1", "C4", "C8"} {
		p := paperProblem(t, cfg)
		one, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		five, err := MapAndCheck(context.Background(), SortSelectSwap{Passes: 5}, p)
		if err != nil {
			t.Fatal(err)
		}
		if p.MaxAPL(five) > p.MaxAPL(one)+1e-9 {
			t.Errorf("%s: 5-pass SSS %.4f worse than 1-pass %.4f",
				cfg, p.MaxAPL(five), p.MaxAPL(one))
		}
	}
}

// TestGlobalIsOptimalForGAPL: no other mapper may achieve a lower g-APL
// than Global (it solves that objective exactly).
func TestGlobalIsOptimalForGAPL(t *testing.T) {
	for _, cfg := range workload.ConfigNames() {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		gAPL := p.GlobalAPL(gm)
		for _, m := range allMappers() {
			got, err := MapAndCheck(context.Background(), m, p)
			if err != nil {
				t.Fatal(err)
			}
			if other := p.GlobalAPL(got); other < gAPL-1e-9 {
				t.Errorf("%s: %s achieved g-APL %.6f < Global's %.6f", cfg, m.Name(), other, gAPL)
			}
		}
	}
}

// TestGlobalOptimalOnFigure5: on the Figure 5 instance the optimal g-APL
// is 10.3375 cycles and Global must find it.
func TestGlobalOptimalOnFigure5(t *testing.T) {
	p := figure5Problem(t)
	m, err := MapAndCheck(context.Background(), Global{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GlobalAPL(m); math.Abs(got-10.3375) > 1e-9 {
		t.Errorf("Global g-APL = %v, want 10.3375", got)
	}
}

// TestSSSNearOptimalOnFigure5: the Figure 5 instance admits a perfectly
// balanced optimal solution (every APL = 10.3375); SSS should find a
// mapping whose max-APL is within a whisker of it.
func TestSSSNearOptimalOnFigure5(t *testing.T) {
	p := figure5Problem(t)
	m, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Evaluate(m)
	if ev.MaxAPL > 10.3375+0.15 {
		t.Errorf("SSS max-APL = %v, want ~10.3375", ev.MaxAPL)
	}
	if ev.DevAPL > 0.1 {
		t.Errorf("SSS dev-APL = %v, want ~0", ev.DevAPL)
	}
}

// TestSSSBeatsGlobalOnMaxAPL is the paper's headline claim (Figure 9):
// SSS yields lower max-APL than Global on every configuration.
func TestSSSBeatsGlobalOnMaxAPL(t *testing.T) {
	for _, cfg := range workload.ConfigNames() {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		g, s := p.MaxAPL(gm), p.MaxAPL(sm)
		if s >= g {
			t.Errorf("%s: SSS max-APL %.3f >= Global %.3f", cfg, s, g)
		}
	}
}

// TestSSSCrushesDevAPL is the paper's Table 4 claim: SSS's dev-APL is a
// small fraction of Global's on every configuration.
func TestSSSCrushesDevAPL(t *testing.T) {
	for _, cfg := range workload.ConfigNames() {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		g, s := p.Evaluate(gm).DevAPL, p.Evaluate(sm).DevAPL
		if s > 0.25*g {
			t.Errorf("%s: SSS dev-APL %.4f not << Global %.4f", cfg, s, g)
		}
	}
}

// TestSSSSmallGAPLOverhead: the paper reports <4% g-APL loss vs Global;
// allow 8% for the synthetic workloads.
func TestSSSSmallGAPLOverhead(t *testing.T) {
	for _, cfg := range workload.ConfigNames() {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		g, s := p.GlobalAPL(gm), p.GlobalAPL(sm)
		if loss := (s - g) / g; loss > 0.08 {
			t.Errorf("%s: SSS g-APL overhead %.1f%% > 8%%", cfg, 100*loss)
		}
	}
}

// TestGlobalExacerbatesImbalance is the paper's Table 1 observation: the
// Global mapper's dev-APL exceeds the random-mapping average dev-APL.
func TestGlobalExacerbatesImbalance(t *testing.T) {
	for _, cfg := range workload.ConfigNames() {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		gdev := p.Evaluate(gm).DevAPL
		rng := stats.NewRand(5)
		var rdev float64
		const R = 300
		for i := 0; i < R; i++ {
			rdev += p.Evaluate(core.RandomMapping(p.N(), rng)).DevAPL
		}
		rdev /= R
		if gdev <= rdev {
			t.Errorf("%s: Global dev-APL %.3f <= random average %.3f", cfg, gdev, rdev)
		}
	}
}

func TestMonteCarloImprovesWithSamples(t *testing.T) {
	p := paperProblem(t, "C4")
	m1, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 10, Seed: 9}, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 3000, Seed: 9}, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAPL(m2) > p.MaxAPL(m1) {
		t.Error("MC with more samples should never be worse (same seed stream)")
	}
}

func TestMonteCarloRejectsBadSamples(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, err := (MonteCarlo{Samples: 0}).Map(context.Background(), p); err == nil {
		t.Error("MC with 0 samples accepted")
	}
}

func TestAnnealingRejectsBadIters(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, err := (Annealing{Iters: 0}).Map(context.Background(), p); err == nil {
		t.Error("SA with 0 iterations accepted")
	}
}

func TestAnnealingImprovesOverRandom(t *testing.T) {
	p := paperProblem(t, "C6")
	rm, err := MapAndCheck(context.Background(), Random{Seed: 11}, p)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := MapAndCheck(context.Background(), Annealing{Iters: 20000, Seed: 11}, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAPL(sa) >= p.MaxAPL(rm) {
		t.Errorf("SA max-APL %.3f >= random %.3f", p.MaxAPL(sa), p.MaxAPL(rm))
	}
}

func TestAnnealingMoreItersHelps(t *testing.T) {
	p := paperProblem(t, "C3")
	short, err := MapAndCheck(context.Background(), Annealing{Iters: 100, Seed: 7}, p)
	if err != nil {
		t.Fatal(err)
	}
	long, err := MapAndCheck(context.Background(), Annealing{Iters: 50000, Seed: 7}, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAPL(long) > p.MaxAPL(short)+1e-9 {
		t.Errorf("SA(50000) %.3f worse than SA(100) %.3f", p.MaxAPL(long), p.MaxAPL(short))
	}
}

func TestSSSWindowValidation(t *testing.T) {
	p := paperProblem(t, "C1")
	for _, w := range []int{1, 6, -2} {
		if _, err := (SortSelectSwap{WindowSize: w}).Map(context.Background(), p); err == nil {
			t.Errorf("window size %d accepted", w)
		}
	}
}

// TestSSSPhasesMonotone: enabling the swap phase and the final SAM must
// not hurt the objective relative to coarse tuning alone.
func TestSSSPhasesMonotone(t *testing.T) {
	for _, cfg := range []string{"C1", "C3", "C8"} {
		p := paperProblem(t, cfg)
		coarse, err := MapAndCheck(context.Background(), SortSelectSwap{DisableSwap: true, DisableFinalSAM: true}, p)
		if err != nil {
			t.Fatal(err)
		}
		full, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if p.MaxAPL(full) > p.MaxAPL(coarse)+1e-9 {
			t.Errorf("%s: full SSS %.4f worse than select-only %.4f",
				cfg, p.MaxAPL(full), p.MaxAPL(coarse))
		}
	}
}

func TestPermutations(t *testing.T) {
	for k := 1; k <= 5; k++ {
		perms := permutations(k)
		fact := 1
		for i := 2; i <= k; i++ {
			fact *= i
		}
		if len(perms) != fact {
			t.Fatalf("permutations(%d) returned %d, want %d", k, len(perms), fact)
		}
		seen := make(map[string]bool)
		for _, p := range perms {
			if len(p) != k {
				t.Fatal("wrong length permutation")
			}
			key := ""
			used := make([]bool, k)
			for _, v := range p {
				if v < 0 || v >= k || used[v] {
					t.Fatalf("invalid permutation %v", p)
				}
				used[v] = true
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
}

func TestSelectFromSections(t *testing.T) {
	list := make([]mesh.Tile, 16)
	for i := range list {
		list[i] = mesh.Tile(i)
	}
	var sel selectScratch
	picked, rest, err := sel.selectFromSections(list, 4, SelectMiddle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 4 || len(rest) != 12 {
		t.Fatalf("picked %d rest %d", len(picked), len(rest))
	}
	// Sections are [0,4) [4,8) [8,12) [12,16); middles are 1,5,9,13
	// ((start+end-1)/2).
	want := []mesh.Tile{1, 5, 9, 13}
	for i := range want {
		if picked[i] != want[i] {
			t.Errorf("picked = %v, want %v", picked, want)
			break
		}
	}
	// Picked + rest form the original set.
	all := map[mesh.Tile]bool{}
	for _, tl := range picked {
		all[tl] = true
	}
	for _, tl := range rest {
		if all[tl] {
			t.Fatal("tile in both picked and rest")
		}
		all[tl] = true
	}
	if len(all) != 16 {
		t.Fatal("tiles lost in selection")
	}
	if _, _, err := sel.selectFromSections(list[:2], 4, SelectMiddle, nil); err == nil {
		t.Error("over-selection accepted")
	}
}

func TestSelectStrategyString(t *testing.T) {
	if SelectMiddle.String() != "middle" || SelectFirst.String() != "first" || SelectRandom.String() != "random" {
		t.Error("strategy names wrong")
	}
	if SelectStrategy(9).String() == "" {
		t.Error("unknown strategy has empty name")
	}
}

// TestTrackerConsistency: the incremental tracker must agree with the
// full evaluation after arbitrary swap sequences.
func TestTrackerConsistency(t *testing.T) {
	p := paperProblem(t, "C5")
	rng := stats.NewRand(31)
	m := core.RandomMapping(p.N(), rng)
	tr := newTracker(p, m)
	for i := 0; i < 500; i++ {
		j1, j2 := rng.Intn(p.N()), rng.Intn(p.N())
		if j1 == j2 {
			continue
		}
		want := tr.swapValue(j1, j2)
		tr.swap(j1, j2)
		got := p.MaxAPL(tr.m)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("step %d: swapValue predicted %.9f, actual %.9f", i, want, got)
		}
		if math.Abs(tr.value()-got) > 1e-9 {
			t.Fatalf("step %d: tracker value %.9f, actual %.9f", i, tr.value(), got)
		}
	}
}

func TestTrackerAssign(t *testing.T) {
	p := paperProblem(t, "C7")
	rng := stats.NewRand(37)
	m := core.RandomMapping(p.N(), rng)
	tr := newTracker(p, m)
	for i := 0; i < 100; i++ {
		// Pick 4 distinct threads and permute their tiles.
		perm := rng.Perm(p.N())[:4]
		tiles := make([]mesh.Tile, 4)
		order := rng.Perm(4)
		for x := range perm {
			tiles[x] = tr.m[perm[order[x]]]
		}
		want := tr.assignValue(perm, tiles)
		tr.assign(perm, tiles)
		got := p.MaxAPL(tr.m)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("assignValue predicted %.9f, actual %.9f", want, got)
		}
		if err := tr.m.Validate(p.N()); err != nil {
			t.Fatal(err)
		}
	}
}

// torusProblem builds a C1-style problem on an 8x8 torus.
func torusProblem(t testing.TB) *core.Problem {
	t.Helper()
	msh := mesh.MustNew(8, 8)
	lm, err := model.NewTorus(msh, model.DefaultParams(), model.CornersPlacement(msh))
	if err != nil {
		t.Fatal(err)
	}
	return core.MustNewProblem(lm, workload.MustConfig("C1"))
}

// capacityProblem builds a 2-threads-per-tile problem over two paper
// configurations.
func capacity2Problem(t testing.TB) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	w := &workload.Workload{Name: "cap2"}
	for _, cfg := range []string{"C1", "C3"} {
		src := workload.MustConfig(cfg)
		w.Apps = append(w.Apps, src.Apps...)
	}
	p, err := core.NewProblemWithCapacity(lm, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllMappersOnTorusAndCapacity: every algorithm returns a valid
// permutation on the generalized instances, and SSS still beats Global
// on balance.
func TestAllMappersOnTorusAndCapacity(t *testing.T) {
	for name, p := range map[string]*core.Problem{
		"torus":    torusProblem(t),
		"capacity": capacity2Problem(t),
	} {
		for _, m := range allMappers() {
			mp, err := MapAndCheck(context.Background(), m, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.Name(), err)
			}
			if err := mp.Validate(p.N()); err != nil {
				t.Fatalf("%s/%s: %v", name, m.Name(), err)
			}
		}
		gm, err := MapAndCheck(context.Background(), Global{}, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		g, s := p.Evaluate(gm), p.Evaluate(sm)
		if !(s.DevAPL < g.DevAPL) {
			t.Errorf("%s: SSS dev %.4f not below Global %.4f", name, s.DevAPL, g.DevAPL)
		}
		if s.MaxAPL > g.MaxAPL+1e-9 {
			t.Errorf("%s: SSS max %.4f above Global %.4f", name, s.MaxAPL, g.MaxAPL)
		}
	}
}

// TestTorusShrinksProblem: the random-mapping dev-APL on a torus is far
// below the mesh's (the imbalance is mostly a mesh-edge artifact).
func TestTorusShrinksProblem(t *testing.T) {
	meshP := paperProblem(t, "C1")
	torusP := torusProblem(t)
	rng := stats.NewRand(7)
	devOf := func(p *core.Problem) float64 {
		var dev float64
		for i := 0; i < 100; i++ {
			dev += p.Evaluate(core.RandomMapping(p.N(), rng)).DevAPL
		}
		return dev / 100
	}
	meshDev := devOf(meshP)
	torusDev := devOf(torusP)
	if !(torusDev < meshDev*0.6) {
		t.Errorf("torus random dev %.3f not well below mesh %.3f", torusDev, meshDev)
	}
}
