package mapping

import (
	"context"
	"math"
	"testing"

	"obm/internal/core"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

// tinyProblem builds a small OBM instance for exact solving: a rows x
// cols mesh with apps applications of equal size and random rates.
func tinyProblem(t testing.TB, rows, cols, apps int, seed uint64) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(rows, cols), model.DefaultParams())
	n := rows * cols
	rng := stats.NewRand(seed)
	w := &workload.Workload{Name: "tiny"}
	per := n / apps
	for a := 0; a < apps; a++ {
		app := workload.Application{Name: "a"}
		for x := 0; x < per; x++ {
			c := 1 + rng.Float64()*10
			app.Threads = append(app.Threads, workload.Thread{
				CacheRate: c,
				MemRate:   rng.Float64() * 0.4 * c,
			})
		}
		w.Apps = append(w.Apps, app)
	}
	return core.MustNewProblem(lm, w)
}

func TestExactRejectsLargeInstances(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, err := (Exact{}).Map(context.Background(), p); err == nil {
		t.Error("64-tile exact solve accepted")
	}
}

// TestExactMatchesBruteForce verifies branch and bound against full
// enumeration on 2x2 and 2x3 instances.
func TestExactMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		for _, dims := range [][3]int{{2, 2, 2}, {2, 3, 2}, {2, 3, 3}} {
			p := tinyProblem(t, dims[0], dims[1], dims[2], seed)
			em, err := MapAndCheck(context.Background(), Exact{}, p)
			if err != nil {
				t.Fatal(err)
			}
			got := p.MaxAPL(em)
			want := bruteForceOBM(p)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("dims %v seed %d: exact %v, brute force %v", dims, seed, got, want)
			}
		}
	}
}

// bruteForceOBM enumerates all permutations.
func bruteForceOBM(p *core.Problem) float64 {
	n := p.N()
	m := core.IdentityMapping(n)
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if obj := p.MaxAPL(m); obj < best {
				best = obj
			}
			return
		}
		for i := k; i < n; i++ {
			m[k], m[i] = m[i], m[k]
			rec(k + 1)
			m[k], m[i] = m[i], m[k]
		}
	}
	rec(0)
	return best
}

// TestHeuristicsNeverBeatExact: on exactly solvable instances, every
// heuristic's objective is >= the exact optimum, and SSS comes close.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	var sssGapSum, cases float64
	for seed := uint64(1); seed <= 5; seed++ {
		p := tinyProblem(t, 3, 4, 2, seed)
		em, err := MapAndCheck(context.Background(), Exact{}, p)
		if err != nil {
			t.Fatal(err)
		}
		opt := p.MaxAPL(em)
		for _, h := range []Mapper{
			SortSelectSwap{},
			Global{},
			Greedy{},
			BalancedGreedy{},
			MonteCarlo{Samples: 300, Seed: seed},
			Annealing{Iters: 3000, Seed: seed},
		} {
			hm, err := MapAndCheck(context.Background(), h, p)
			if err != nil {
				t.Fatal(err)
			}
			if obj := p.MaxAPL(hm); obj < opt-1e-9 {
				t.Errorf("seed %d: %s beat the exact optimum (%v < %v)", seed, h.Name(), obj, opt)
			}
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		sssGapSum += (p.MaxAPL(sm) - opt) / opt
		cases++
	}
	if gap := sssGapSum / cases; gap > 0.05 {
		t.Errorf("SSS average optimality gap %.2f%% on 12-tile instances, want <= 5%%", 100*gap)
	}
}

// TestLowerBoundValid: the Hungarian lower bound never exceeds the
// exact optimum, and no heuristic goes below it.
func TestLowerBoundValid(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := tinyProblem(t, 3, 4, 2, seed)
		lb, err := p.LowerBound()
		if err != nil {
			t.Fatal(err)
		}
		em, err := MapAndCheck(context.Background(), Exact{}, p)
		if err != nil {
			t.Fatal(err)
		}
		opt := p.MaxAPL(em)
		if lb > opt+1e-9 {
			t.Fatalf("seed %d: lower bound %v exceeds optimum %v", seed, lb, opt)
		}
		if lb <= 0 {
			t.Error("lower bound should be positive for positive-rate workloads")
		}
	}
}

// TestLowerBoundOnPaperConfigs: the bound is sane at N=64 and SSS lands
// within a modest factor of it.
func TestLowerBoundOnPaperConfigs(t *testing.T) {
	for _, cfg := range []string{"C1", "C4", "C8"} {
		p := paperProblem(t, cfg)
		lb, err := p.LowerBound()
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		obj := p.MaxAPL(sm)
		if lb <= 0 || lb > obj+1e-9 {
			t.Errorf("%s: bound %v vs SSS %v", cfg, lb, obj)
		}
		if gap := (obj - lb) / lb; gap > 0.25 {
			t.Errorf("%s: SSS is %.1f%% above the lower bound, expected tighter", cfg, 100*gap)
		}
	}
}
