package mapping

import (
	"context"

	"obm/internal/core"
	"obm/internal/hungarian"
	"obm/internal/mesh"
)

// Global is the traditional performance-oriented mapper of Section II.D:
// it minimizes the overall packet latency of all threads (equivalently
// the g-APL, whose denominator is mapping-independent) with one chip-wide
// optimal assignment. The paper shows this mapper is counter-optimal for
// latency balance; it is the primary comparison baseline.
type Global struct{}

// Name implements Mapper.
func (Global) Name() string { return "Global" }

// Fingerprint implements Mapper. Global is parameterless and fully
// deterministic.
func (Global) Fingerprint() string { return "global" }

// Map implements Mapper. The chip-wide cost matrix entry for thread j on
// tile k is c_j*TC(k) + m_j*TM(k); a single Hungarian solve yields the
// g-APL-optimal permutation in O(N^3).
func (Global) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := p.N()
	cost := make([][]float64, n)
	flat := make([]float64, n*n)
	for j := 0; j < n; j++ {
		row := flat[j*n : (j+1)*n]
		for k := 0; k < n; k++ {
			row[k] = p.ThreadCost(j, mesh.Tile(k))
		}
		cost[j] = row
	}
	rowToCol, _, err := hungarian.Solve(cost)
	if err != nil {
		return nil, err
	}
	m := make(core.Mapping, n)
	for j, k := range rowToCol {
		m[j] = mesh.Tile(k)
	}
	return m, nil
}
