package mapping

import (
	"fmt"
	"runtime"
	"sync"

	"obm/internal/core"
	"obm/internal/stats"
)

// MonteCarlo draws Samples random mappings and keeps the one with the
// minimum max-APL — the paper's MC baseline for the OBM problem
// (Section V.A, 10^4 samples).
//
// With Workers > 1 the draw fans out over goroutines, each evaluating
// an equal share of the samples with its own deterministically derived
// random stream (share-nothing; the Problem is immutable and safe to
// read concurrently). The result is identical for any worker count:
// the partition of samples into streams is fixed by Workers, and ties
// between chunks resolve to the lowest chunk index.
type MonteCarlo struct {
	Samples int
	Seed    uint64
	// Workers fans evaluation out over this many goroutines; 0 or 1 is
	// serial, negative selects GOMAXPROCS.
	Workers int
}

// Name implements Mapper.
func (mc MonteCarlo) Name() string { return fmt.Sprintf("MC(%d)", mc.Samples) }

// Map implements Mapper.
func (mc MonteCarlo) Map(p *core.Problem) (core.Mapping, error) {
	if mc.Samples <= 0 {
		return nil, fmt.Errorf("montecarlo: need positive sample count, got %d", mc.Samples)
	}
	workers := mc.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		best, _ := mcChunk(p, mc.Samples, mc.Seed)
		return best, nil
	}
	if workers > mc.Samples {
		workers = mc.Samples
	}
	type chunkResult struct {
		best core.Mapping
		obj  float64
	}
	results := make([]chunkResult, workers)
	var wg sync.WaitGroup
	base := mc.Samples / workers
	extra := mc.Samples % workers
	for w := 0; w < workers; w++ {
		count := base
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			// Derive a distinct stream per chunk; the derivation depends
			// only on (Seed, w), keeping results reproducible.
			best, obj := mcChunk(p, count, mc.Seed+uint64(w)*0x9e3779b97f4a7c15)
			results[w] = chunkResult{best, obj}
		}(w, count)
	}
	wg.Wait()
	best := results[0]
	for _, r := range results[1:] {
		if r.best != nil && (best.best == nil || r.obj < best.obj) {
			best = r
		}
	}
	return best.best, nil
}

// mcChunk evaluates count random mappings from one seed and returns the
// best with its objective.
func mcChunk(p *core.Problem, count int, seed uint64) (core.Mapping, float64) {
	rng := stats.NewRand(seed)
	var best core.Mapping
	bestObj := 0.0
	for s := 0; s < count; s++ {
		m := core.RandomMapping(p.N(), rng)
		obj := p.MaxAPL(m)
		if best == nil || obj < bestObj {
			best, bestObj = m, obj
		}
	}
	return best, bestObj
}
