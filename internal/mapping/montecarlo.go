package mapping

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/stats"
)

// MonteCarlo draws Samples random mappings and keeps the one with the
// minimum max-APL — the paper's MC baseline for the OBM problem
// (Section V.A, 10^4 samples).
//
// Samples are drawn and scored in batches through the SoA
// core.BatchEvaluator, which streams the flattened thread x slot cost
// table across the batch instead of gathering it per sample.
//
// With Workers > 1 the draw fans out over goroutines, each evaluating
// an equal share of the samples with its own stats.SplitSeed-derived
// random stream (share-nothing; the Problem is immutable and safe to
// read concurrently). The result is deterministic for a fixed (Seed,
// Workers): the sample partition is a pure function of the pair, and
// ties between chunks resolve to the lowest chunk index. Different
// worker counts draw different (equally random) sample sets, so record
// the worker count alongside the seed when reproducibility matters —
// the run envelope does.
type MonteCarlo struct {
	Samples int
	Seed    uint64
	// Workers fans evaluation out over this many goroutines; 0 or 1 is
	// serial, negative selects GOMAXPROCS.
	Workers int
	// Objective selects the cost a sample is scored by; nil is the
	// paper's max-APL.
	Objective core.Objective
}

// Name implements Mapper.
func (mc MonteCarlo) Name() string {
	return fmt.Sprintf("MC(%d)%s", mc.Samples, objName(mc.Objective))
}

// Fingerprint implements Mapper. Workers is excluded: it is an
// execution-shape knob like the simulator's, not part of the sampled
// distribution, so artifact cache keys never split by machine shape.
// Runs that must be byte-reproducible fix (Seed, Workers) — both are
// recorded in the run envelope.
func (mc MonteCarlo) Fingerprint() string {
	return fmt.Sprintf("mc(samples=%d,seed=%d%s)", mc.Samples, mc.Seed, objFingerprint(mc.Objective))
}

// mcPollMask sets how often the sample loop polls cancellation and
// reports progress: every mcPollMask+1 samples (a power of two so the
// check is a mask, not a division).
const mcPollMask = 255

// Map implements Mapper. It polls ctx between samples and returns a
// wrapped ctx.Err() when cancelled; polling never touches the random
// stream, so an uncancelled run is bit-identical for any context.
func (mc MonteCarlo) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if mc.Samples <= 0 {
		return nil, fmt.Errorf("montecarlo: need positive sample count, got %d", mc.Samples)
	}
	rep := engine.StartStage(ctx, mc.Name())
	workers := mc.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		best, _, err := mcChunk(ctx, rep, nil, p, mc.Objective, mc.Samples, mc.Samples, mc.Seed)
		if err != nil {
			return nil, err
		}
		rep.Finish(mc.Samples, mc.Samples)
		return best, nil
	}
	if workers > mc.Samples {
		workers = mc.Samples
	}
	type chunkResult struct {
		best core.Mapping
		obj  float64
		err  error
	}
	results := make([]chunkResult, workers)
	var done atomic.Int64 // samples finished across all chunks
	var wg sync.WaitGroup
	base := mc.Samples / workers
	extra := mc.Samples % workers
	for w := 0; w < workers; w++ {
		count := base
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			// Derive a distinct stream per chunk; the derivation depends
			// only on (Seed, w), keeping results reproducible.
			best, obj, err := mcChunk(ctx, rep, &done, p, mc.Objective, count, mc.Samples, stats.SplitSeed(mc.Seed, w))
			results[w] = chunkResult{best, obj, err}
		}(w, count)
	}
	wg.Wait()
	best := chunkResult{}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.best != nil && (best.best == nil || r.obj < best.obj) {
			best = r
		}
	}
	rep.Finish(mc.Samples, mc.Samples)
	return best.best, nil
}

// mcChunk evaluates count random mappings from one seed and returns the
// best with its objective cost. total is the full sample budget across
// all chunks (for progress); done, when non-nil, is the shared
// cross-chunk completion counter.
//
// Samples are drawn and scored in batches of mcPollMask+1 through the
// SoA core.BatchEvaluator (one pass of the flattened cost table scores
// the whole batch), polling cancellation between batches — the same
// cadence the old per-sample loop polled at. RandomMappingInto consumes
// the same draws as RandomMapping and the batch scan compares costs in
// draw order with the same strict <, so the winner is bit-identical to
// the historical per-sample path. Steady state allocates only on
// improvement (logarithmically many times in expectation).
func mcChunk(ctx context.Context, rep *engine.Reporter, done *atomic.Int64, p *core.Problem, obj core.Objective, count, total int, seed uint64) (core.Mapping, float64, error) {
	rng := stats.NewRand(seed)
	be := p.BatchEvaluator(obj)
	n := p.N()
	batch := mcPollMask + 1
	if batch > count {
		batch = count
	}
	flat := make(core.Mapping, batch*n)
	ms := make([]core.Mapping, batch)
	for k := range ms {
		ms[k] = flat[k*n : (k+1)*n]
	}
	out := make([]float64, batch)
	var best core.Mapping
	bestObj := 0.0
	for s := 0; s < count; {
		if s > 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("montecarlo: interrupted after %d samples: %w", s, err)
			}
		}
		b := batch
		if count-s < b {
			b = count - s
		}
		for k := 0; k < b; k++ {
			core.RandomMappingInto(ms[k], rng)
		}
		be.EvaluateBatch(ms[:b], out[:b])
		for k := 0; k < b; k++ {
			if best == nil || out[k] < bestObj {
				best, bestObj = append(best[:0], ms[k]...), out[k]
			}
		}
		s += b
		if done != nil {
			rep.Report(int(done.Add(int64(b))), total)
		} else {
			rep.Report(s, total)
		}
	}
	return best, bestObj, nil
}
