package mapping

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/stats"
)

// Random maps threads to tiles uniformly at random. It is the baseline
// whose *average* behaviour the paper's Table 1 reports (averaged over
// >10^4 draws by the experiment harness).
type Random struct {
	Seed uint64
}

// Name implements Mapper.
func (r Random) Name() string { return "Random" }

// Fingerprint implements Mapper. The seed fully determines the drawn
// permutation.
func (r Random) Fingerprint() string { return fmt.Sprintf("random(seed=%d)", r.Seed) }

// Map implements Mapper.
func (r Random) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(r.Seed)
	return core.RandomMapping(p.N(), rng), nil
}
