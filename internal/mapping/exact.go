package mapping

import (
	"context"
	"fmt"
	"math"

	"obm/internal/core"
	"obm/internal/mesh"
)

// Exact solves the OBM problem to optimality by branch and bound. The
// problem is NP-complete (Section III.C of the paper), so this is only
// practical for small instances (N up to ~16); it exists to measure the
// heuristics' optimality gap in tests and the gap experiment, not for
// production mapping.
type Exact struct {
	// MaxNodes bounds the search; 0 means 50 million nodes. If the
	// bound is hit, Map returns an error rather than a possibly
	// suboptimal mapping.
	MaxNodes int64
	// Objective selects the cost being minimized; nil is the paper's
	// max-APL. The cheapest-completion lower bound only argues about
	// max-APL, so a non-default objective searches without pruning
	// (full enumeration — keep such instances tiny).
	Objective core.Objective
}

// Name implements Mapper.
func (e Exact) Name() string { return "Exact" + objName(e.Objective) }

// Fingerprint implements Mapper. MaxNodes is part of the key because
// hitting the node bound turns a result into an error.
func (e Exact) Fingerprint() string {
	mn := e.MaxNodes
	if mn <= 0 {
		mn = 50_000_000
	}
	return fmt.Sprintf("exact(maxnodes=%d%s)", mn, objFingerprint(e.Objective))
}

// Map implements Mapper. The branch-and-bound search polls
// cancellation every few thousand nodes, so even an exponential
// instance unwinds promptly under a deadline.
func (e Exact) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	n := p.N()
	if n > 24 {
		return nil, fmt.Errorf("exact: %d tiles is far beyond branch-and-bound reach", n)
	}
	maxNodes := e.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}

	// Seed the incumbent with SSS (optimizing the same objective) so
	// pruning — and under a non-default objective, plain incumbent
	// comparison — bites immediately.
	objv := core.ObjectiveOrDefault(e.Objective)
	prune := core.IsDefaultObjective(e.Objective)
	incumbent, err := (SortSelectSwap{Objective: e.Objective}).Map(ctx, p)
	if err != nil {
		return nil, err
	}
	bestObj := p.ObjectiveValue(incumbent, e.Objective)
	best := incumbent.Clone()

	// Per-thread sorted tile preferences are not needed; the bound uses
	// each remaining thread's cheapest available tile.
	used := make([]bool, n)
	cur := make(core.Mapping, n)
	num := make([]float64, p.NumApps()) // per-app numerators so far
	var nodes int64

	// remainingMin returns, for each app, an optimistic completion: every
	// unassigned thread takes its cheapest unused tile (allowing
	// conflicts — still a valid lower bound).
	lowerBound := func(nextThread int) float64 {
		lb := 0.0
		for i := 0; i < p.NumApps(); i++ {
			w := p.AppWeight(i)
			if w == 0 {
				continue
			}
			lo, hi := p.AppThreads(i)
			opt := num[i]
			for j := max(lo, nextThread); j < hi; j++ {
				cheapest := math.Inf(1)
				for k := 0; k < n; k++ {
					if used[k] {
						continue
					}
					if c := p.ThreadCost(j, mesh.Tile(k)); c < cheapest {
						cheapest = c
					}
				}
				opt += cheapest
			}
			if apl := opt / w; apl > lb {
				lb = apl
			}
		}
		return lb
	}

	var overflow bool
	var cancelled error
	var dfs func(j int)
	dfs = func(j int) {
		if overflow || cancelled != nil {
			return
		}
		nodes++
		if nodes > maxNodes {
			overflow = true
			return
		}
		if nodes&8191 == 0 {
			if err := ctx.Err(); err != nil {
				cancelled = err
				return
			}
		}
		if j == n {
			if obj := objv.Value(p, num); obj < bestObj {
				bestObj = obj
				copy(best, cur)
			}
			return
		}
		if prune && lowerBound(j) >= bestObj-1e-12 {
			return // cannot beat the incumbent (max-APL bound only)
		}
		app := p.AppOfThread(j)
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			used[k] = true
			cur[j] = mesh.Tile(k)
			c := p.ThreadCost(j, mesh.Tile(k))
			num[app] += c
			dfs(j + 1)
			num[app] -= c
			used[k] = false
		}
	}
	dfs(0)
	if cancelled != nil {
		return nil, fmt.Errorf("exact: interrupted after %d nodes: %w", nodes, cancelled)
	}
	if overflow {
		return nil, fmt.Errorf("exact: search exceeded %d nodes; instance too large", maxNodes)
	}
	return best, nil
}
