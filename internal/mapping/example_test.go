package mapping_test

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// Map the paper's Figure 5 worked example with sort-select-swap: the
// optimal, perfectly balanced solution gives every application an APL
// of 10.3375 cycles.
func ExampleSortSelectSwap() {
	lm := model.MustNew(mesh.MustNew(4, 4), model.Figure5Params())
	p := core.MustNewProblem(lm, workload.Figure5Workload())

	m, err := mapping.MapAndCheck(context.Background(), mapping.SortSelectSwap{}, p)
	if err != nil {
		panic(err)
	}
	ev := p.Evaluate(m)
	fmt.Printf("max-APL: %.4f cycles\n", ev.MaxAPL)
	fmt.Printf("dev-APL: %.4f\n", ev.DevAPL)
	// Output:
	// max-APL: 10.3375 cycles
	// dev-APL: 0.0000
}

// Global minimizes overall latency and, on this symmetric instance,
// happens to coincide with the balanced optimum.
func ExampleGlobal() {
	lm := model.MustNew(mesh.MustNew(4, 4), model.Figure5Params())
	p := core.MustNewProblem(lm, workload.Figure5Workload())

	m, err := mapping.MapAndCheck(context.Background(), mapping.Global{}, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("g-APL: %.4f cycles\n", p.GlobalAPL(m))
	// Output:
	// g-APL: 10.3375 cycles
}
