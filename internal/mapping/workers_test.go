package mapping

import (
	"context"
	"testing"

	"obm/internal/core"
)

// TestWorkersInvariance pins the contracts the scenario artifact cache
// depends on. For every parallel mapper the Workers knob must be
// invisible to the fingerprint — a fingerprint that varied with worker
// count would split the cache by machine shape. On top of that each
// mapper has its own determinism contract: the annealing portfolio's
// outcome is identical for any worker count (chains share nothing and
// selection is by index), while Monte-Carlo partitions the sample
// budget into per-chunk streams, so its result is only pinned for a
// fixed (Seed, Workers) pair — mapping twice with the same pair must
// be bit-identical.
func TestWorkersInvariance(t *testing.T) {
	p := paperProblem(t, "C3")
	cases := []struct {
		name string
		// resultInvariant: the mapping itself must not change with the
		// worker count (true for share-nothing portfolios selected by
		// index; false for MC, whose sample partition depends on Workers).
		resultInvariant bool
		variants        []Mapper
	}{
		{"montecarlo", false, []Mapper{
			MonteCarlo{Samples: 700, Seed: 9},
			MonteCarlo{Samples: 700, Seed: 9, Workers: 2},
			MonteCarlo{Samples: 700, Seed: 9, Workers: 5},
			MonteCarlo{Samples: 700, Seed: 9, Workers: -1},
		}},
		{"annealing-portfolio", true, []Mapper{
			Annealing{Iters: 900, Seed: 17, Restarts: 4},
			Annealing{Iters: 900, Seed: 17, Restarts: 4, Workers: 2},
			Annealing{Iters: 900, Seed: 17, Restarts: 4, Workers: 4},
			Annealing{Iters: 900, Seed: 17, Restarts: 4, Workers: -1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := tc.variants[0].Map(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			fp := tc.variants[0].Fingerprint()
			for _, v := range tc.variants[1:] {
				if got := v.Fingerprint(); got != fp {
					t.Errorf("fingerprint varies with workers: %q != %q", got, fp)
				}
				m, err := v.Map(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				if !tc.resultInvariant {
					// Fixed (seed, workers) must still reproduce exactly.
					again, err := v.Map(context.Background(), p)
					if err != nil {
						t.Fatal(err)
					}
					base, m = m, again
				}
				for j := range m {
					if m[j] != base[j] {
						t.Errorf("%s: mapping not deterministic at thread %d", v.Name(), j)
						break
					}
				}
			}
		})
	}
}

// TestAnnealingPortfolio checks the restart portfolio's contract: a
// single restart is bit-identical to the historical single chain, the
// portfolio never does worse than its first chain, and names and
// fingerprints only grow the restarts fragment for real portfolios.
func TestAnnealingPortfolio(t *testing.T) {
	p := paperProblem(t, "C2")
	single, err := Annealing{Iters: 800, Seed: 5}.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	asOne, err := Annealing{Iters: 800, Seed: 5, Restarts: 1}.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range single {
		if single[j] != asOne[j] {
			t.Fatal("Restarts=1 is not bit-identical to the single chain")
		}
	}
	if a, b := (Annealing{Iters: 800, Seed: 5}).Fingerprint(), (Annealing{Iters: 800, Seed: 5, Restarts: 1}).Fingerprint(); a != b {
		t.Errorf("Restarts=1 fingerprint %q differs from single-chain %q", b, a)
	}

	port, err := Annealing{Iters: 800, Seed: 5, Restarts: 4, Workers: 2}.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	obj := core.DefaultObjective
	if pv, sv := p.ObjectiveValue(port, obj), p.ObjectiveValue(single, obj); pv > sv {
		t.Errorf("portfolio best %v worse than its own first chain %v", pv, sv)
	}
	if got, want := (Annealing{Iters: 800, Restarts: 4}).Name(), "SA(800x4)"; got != want {
		t.Errorf("portfolio name = %q, want %q", got, want)
	}
	fp := (Annealing{Iters: 800, Seed: 5, Restarts: 4}).Fingerprint()
	if fp == (Annealing{Iters: 800, Seed: 5}).Fingerprint() {
		t.Error("portfolio fingerprint must differ from single-chain fingerprint")
	}
}
