package mapping

import (
	"context"
	"strings"
	"testing"

	"obm/internal/core"
)

// nsga2Quick is a budget small enough for unit tests but large enough
// to produce a multi-member front on the paper's C1 configuration.
func nsga2Quick(seed uint64) NSGAII {
	return NSGAII{Population: 24, Generations: 20, ArchiveSize: 12, Seed: seed}
}

// TestNSGAIIProducesValidFront: the front validates (permutations,
// mutual non-dominance, canonical order) and trades off at least three
// distinct points under the default {max-APL, dev-APL, energy} vector.
func TestNSGAIIProducesValidFront(t *testing.T) {
	p := paperProblem(t, "C1")
	set, err := MapSetAndCheck(context.Background(), nsga2Quick(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() < 3 {
		t.Fatalf("front has %d members, want >= 3", set.Len())
	}
	if dim := len(set.Members[0].Vector); dim != 3 {
		t.Fatalf("vector dim %d, want 3", dim)
	}
	// Vectors must really be the members' costs under the vector
	// objective, not stale copies.
	sc := p.VectorScorer(core.DefaultVectorObjective())
	for i, m := range set.Members {
		got := sc.Score(m.Mapping, nil)
		for d := range got {
			if got[d] != m.Vector[d] {
				t.Fatalf("member %d component %d: stored %v != recomputed %v", i, d, m.Vector[d], got[d])
			}
		}
	}
}

// TestNSGAIIDeterministic: equal configurations produce bit-identical
// fronts; different seeds (different fingerprints) are allowed to —
// and on this instance do — differ.
func TestNSGAIIDeterministic(t *testing.T) {
	p := paperProblem(t, "C1")
	a, err := nsga2Quick(1).MapSet(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nsga2Quick(1).MapSet(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged: %s != %s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := nsga2Quick(2).MapSet(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("seeds 1 and 2 produced identical fronts (%s); seed is not wired", a.Fingerprint())
	}
}

// TestNSGAIIGoldenFingerprints pins the per-seed front fingerprints on
// the paper's C1 configuration. These goldens are the worker-
// invariance proof in miniature: NSGAII has no worker knob at all, so
// any future parallelism must reproduce exactly these fronts (like the
// NoC golden fingerprint tests of PR 1).
func TestNSGAIIGoldenFingerprints(t *testing.T) {
	p := paperProblem(t, "C1")
	golden := map[uint64]string{
		1: "ps6-36a2283846c47557",
		2: "ps4-d82dde935eb195d5",
		3: "ps3-70e5bcd69f97077e",
	}
	for seed, want := range golden {
		set, err := nsga2Quick(seed).MapSet(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Fingerprint(); got != want {
			t.Errorf("seed %d front fingerprint %s, want %s", seed, got, want)
		}
	}
}

// TestNSGAIIFingerprint: defaults resolve, the vector objective is
// always printed, and distinct configurations get distinct keys.
func TestNSGAIIFingerprint(t *testing.T) {
	zero := NSGAII{}
	explicit := NSGAII{Population: 64, Generations: 120, MutationRate: 0.3, ArchiveSize: 24}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Fatalf("zero value %q != explicit defaults %q", zero.Fingerprint(), explicit.Fingerprint())
	}
	if !strings.Contains(zero.Fingerprint(), "vec(maxapl,devapl,energy)") {
		t.Fatalf("fingerprint %q does not name the vector objective", zero.Fingerprint())
	}
	v, err := core.NewVectorObjective(core.GAPL{}, core.DevAPL{})
	if err != nil {
		t.Fatal(err)
	}
	other := NSGAII{Objectives: v}
	if other.Fingerprint() == zero.Fingerprint() {
		t.Fatal("different vector objectives share a fingerprint")
	}
	if zero.Vector().Dim() != 3 {
		t.Fatalf("default vector dim %d, want 3", zero.Vector().Dim())
	}
}

// TestNSGAIICancellation: a cancelled context aborts the run with a
// wrapped ctx error.
func TestNSGAIICancellation(t *testing.T) {
	p := paperProblem(t, "C1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nsga2Quick(1).MapSet(ctx, p); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
