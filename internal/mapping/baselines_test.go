package mapping

import (
	"context"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/stats"
)

func TestGreedyValid(t *testing.T) {
	for _, cfg := range []string{"C1", "C7"} {
		p := paperProblem(t, cfg)
		for _, m := range []Mapper{Greedy{}, BalancedGreedy{}} {
			mp, err := MapAndCheck(context.Background(), m, p)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if err := mp.Validate(p.N()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGreedyNearGlobal: cost-greedy approximates Global's g-APL within
// a few percent (it is the classic constructive heuristic for it).
func TestGreedyNearGlobal(t *testing.T) {
	p := paperProblem(t, "C3")
	gm, err := MapAndCheck(context.Background(), Global{}, p)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := MapAndCheck(context.Background(), Greedy{}, p)
	if err != nil {
		t.Fatal(err)
	}
	gOpt, gGreedy := p.GlobalAPL(gm), p.GlobalAPL(hm)
	if gGreedy < gOpt-1e-9 {
		t.Fatalf("greedy g-APL %v beat the optimum %v", gGreedy, gOpt)
	}
	if (gGreedy-gOpt)/gOpt > 0.05 {
		t.Errorf("greedy g-APL %.3f is %.1f%% above optimal %.3f", gGreedy,
			100*(gGreedy-gOpt)/gOpt, gOpt)
	}
}

// TestBalancedGreedyBeatsGreedyOnMaxAPL: serving the worst-off
// application first should improve balance over pure cost greed.
func TestBalancedGreedyBeatsGreedyOnMaxAPL(t *testing.T) {
	better := 0
	for _, cfg := range []string{"C1", "C3", "C4", "C6", "C8"} {
		p := paperProblem(t, cfg)
		gm, err := MapAndCheck(context.Background(), Greedy{}, p)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := MapAndCheck(context.Background(), BalancedGreedy{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if p.MaxAPL(bm) < p.MaxAPL(gm) {
			better++
		}
	}
	if better < 3 {
		t.Errorf("BalancedGreedy beat Greedy on only %d/5 configs", better)
	}
}

func TestGeneticValidAndImproves(t *testing.T) {
	p := paperProblem(t, "C2")
	ga := Genetic{Population: 32, Generations: 60, Seed: 5}
	mp, err := MapAndCheck(context.Background(), ga, p)
	if err != nil {
		t.Fatal(err)
	}
	// GA must end at least as good as a random mapping average.
	rng := stats.NewRand(9)
	var rnd float64
	const R = 50
	for i := 0; i < R; i++ {
		rnd += p.MaxAPL(core.RandomMapping(p.N(), rng))
	}
	rnd /= R
	if p.MaxAPL(mp) >= rnd {
		t.Errorf("GA max-APL %.3f not better than random average %.3f", p.MaxAPL(mp), rnd)
	}
}

func TestGeneticRejectsBadElite(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, err := (Genetic{Population: 4, Elite: 4}).Map(context.Background(), p); err == nil {
		t.Error("elite >= population accepted")
	}
}

func TestGeneticDeterministic(t *testing.T) {
	p := paperProblem(t, "C1")
	ga := Genetic{Population: 16, Generations: 20, Seed: 3}
	a, err := ga.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ga.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GA not deterministic for fixed seed")
		}
	}
}

func TestOrderCrossoverValid(t *testing.T) {
	rng := stats.NewRand(7)
	for trial := 0; trial < 200; trial++ {
		a := core.RandomMapping(16, rng)
		b := core.RandomMapping(16, rng)
		child := orderCrossover(a, b, rng)
		if err := child.Validate(16); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestClusterSAValid(t *testing.T) {
	p := paperProblem(t, "C4")
	m := ClusterSA{Seed: 11}
	mp, err := MapAndCheck(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(p.N()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Name(), "ClusterSA") {
		t.Error("name wrong")
	}
}

func TestClusterSARejectsBadGeometry(t *testing.T) {
	p := paperProblem(t, "C1")
	if _, err := (ClusterSA{ClusterSize: 3}).Map(context.Background(), p); err == nil {
		t.Error("cluster size 3 should not divide 16-thread apps cleanly... (64%3 != 0)")
	}
	if _, err := (ClusterSA{ClusterSize: 5}).Map(context.Background(), p); err == nil {
		t.Error("cluster size 5 accepted")
	}
}

// TestClusterSABetterThanRandomWorseThanSSS places ClusterSA where the
// literature puts it: clearly better than random on balance, but not
// able to out-fine-tune SSS.
func TestClusterSAOrdering(t *testing.T) {
	var csaDev, sssDev, rndDev float64
	for _, cfg := range []string{"C1", "C3", "C6"} {
		p := paperProblem(t, cfg)
		cm, err := MapAndCheck(context.Background(), ClusterSA{Seed: 2}, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := MapAndCheck(context.Background(), SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(3)
		var rnd float64
		for i := 0; i < 50; i++ {
			rnd += p.Evaluate(core.RandomMapping(p.N(), rng)).DevAPL
		}
		csaDev += p.Evaluate(cm).DevAPL
		sssDev += p.Evaluate(sm).DevAPL
		rndDev += rnd / 50
	}
	if csaDev >= rndDev {
		t.Errorf("ClusterSA dev %.3f should beat random %.3f", csaDev, rndDev)
	}
	if sssDev >= csaDev {
		t.Errorf("SSS dev %.4f should beat ClusterSA %.4f", sssDev, csaDev)
	}
}

// TestMonteCarloParallelDeterministic: a fixed worker count must give
// identical results across runs, and parallel results must be valid and
// at least as good as any single chunk.
func TestMonteCarloParallel(t *testing.T) {
	p := paperProblem(t, "C4")
	mc4 := MonteCarlo{Samples: 2000, Seed: 7, Workers: 4}
	a, err := MapAndCheck(context.Background(), mc4, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapAndCheck(context.Background(), mc4, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("parallel MC not deterministic for fixed worker count")
		}
	}
	// GOMAXPROCS mode also works and validates.
	auto, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 2000, Seed: 7, Workers: -1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := auto.Validate(p.N()); err != nil {
		t.Fatal(err)
	}
	// More workers than samples clamps rather than panicking.
	tiny, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 3, Seed: 7, Workers: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Validate(p.N()); err != nil {
		t.Fatal(err)
	}
}

// TestMonteCarloParallelQuality: the fan-out draws the same total
// number of samples, so quality is statistically equivalent to serial.
func TestMonteCarloParallelQuality(t *testing.T) {
	p := paperProblem(t, "C6")
	serial, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 4000, Seed: 11}, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MapAndCheck(context.Background(), MonteCarlo{Samples: 4000, Seed: 11, Workers: 8}, p)
	if err != nil {
		t.Fatal(err)
	}
	so, po := p.MaxAPL(serial), p.MaxAPL(par)
	if po > so*1.05 || so > po*1.05 {
		t.Errorf("serial %.3f vs parallel %.3f differ by >5%%", so, po)
	}
}
