package mapping

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"obm/internal/core"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

// randomProblem builds a random valid OBM instance from a quick-check
// seed: mesh between 2x2 and 4x4, 1-4 applications with random rates.
func randomProblem(seed uint64) *core.Problem {
	rng := stats.NewRand(seed)
	rows := 2 + rng.Intn(3)
	cols := 2 + rng.Intn(3)
	n := rows * cols
	lm := model.MustNew(mesh.MustNew(rows, cols), model.DefaultParams())
	apps := 1 + rng.Intn(4)
	w := &workload.Workload{Name: "prop"}
	remaining := n
	for a := 0; a < apps; a++ {
		size := remaining / (apps - a)
		if size == 0 {
			continue
		}
		app := workload.Application{Name: "a"}
		for t := 0; t < size; t++ {
			c := rng.Float64() * 20
			app.Threads = append(app.Threads, workload.Thread{
				CacheRate: c,
				MemRate:   rng.Float64() * 0.5 * c,
			})
		}
		w.Apps = append(w.Apps, app)
		remaining -= size
	}
	return core.MustNewProblem(lm, w)
}

// TestPropertySSSValidOnRandomInstances: SSS returns a valid permutation
// on arbitrary instance shapes, and its objective is never below the
// lower bound.
func TestPropertySSSValidOnRandomInstances(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProblem(seed)
		m, err := (SortSelectSwap{}).Map(context.Background(), p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := m.Validate(p.N()); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		lb, err := p.LowerBound()
		if err != nil {
			return false
		}
		return p.MaxAPL(m) >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyObjectiveInvariantUnderAppRelabeling: swapping the order
// of two applications (and their thread blocks) must not change the
// max-APL of the correspondingly permuted mapping.
func TestPropertyObjectiveInvariantUnderAppRelabeling(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
		mk := func(order []int) (*core.Problem, core.Mapping) {
			apps := make([]workload.Application, 2)
			for a := range apps {
				r := stats.NewRand(seed + uint64(a))
				app := workload.Application{Name: "x"}
				for tdx := 0; tdx < 8; tdx++ {
					c := r.Float64() * 10
					app.Threads = append(app.Threads, workload.Thread{CacheRate: c, MemRate: 0.2 * c})
				}
				apps[a] = app
			}
			w := &workload.Workload{Name: "rel"}
			for _, a := range order {
				w.Apps = append(w.Apps, apps[a])
			}
			p := core.MustNewProblem(lm, w)
			// Mapping that assigns app 0's threads to tiles 0-7 and app
			// 1's to 8-15 in the *original* labeling, permuted to match.
			m := make(core.Mapping, 16)
			for pos, a := range order {
				for tdx := 0; tdx < 8; tdx++ {
					m[pos*8+tdx] = mesh.Tile(a*8 + tdx)
				}
			}
			return p, m
		}
		p1, m1 := mk([]int{0, 1})
		p2, m2 := mk([]int{1, 0})
		_ = rng
		return math.Abs(p1.MaxAPL(m1)-p2.MaxAPL(m2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUniformRatesAnyMappingEqualAPL: when every thread of
// every application has identical rates, all mappings that assign the
// same multiset of tiles per app... stronger: with ONE application,
// every permutation yields the same APL (the chip total is fixed).
func TestPropertyOneAppPermutationInvariance(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	w := &workload.Workload{Name: "one", Apps: []workload.Application{{Name: "a"}}}
	for i := 0; i < 16; i++ {
		w.Apps[0].Threads = append(w.Apps[0].Threads, workload.Thread{CacheRate: 3, MemRate: 1})
	}
	p := core.MustNewProblem(lm, w)
	rng := stats.NewRand(99)
	base := p.MaxAPL(core.IdentityMapping(16))
	f := func(seed uint64) bool {
		m := core.RandomMapping(16, stats.NewRand(seed^rng.Uint64()))
		return math.Abs(p.MaxAPL(m)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScalingRatesScalesNothing: multiplying every rate by a
// positive constant leaves all APL metrics unchanged (they are
// rate-weighted averages).
func TestPropertyRateScaleInvariance(t *testing.T) {
	f := func(seed uint64, scaleBits uint8) bool {
		scale := 0.1 + float64(scaleBits)/16 // 0.1 .. ~16
		p1 := randomProblem(seed)
		// Rebuild with scaled rates.
		w := p1.Workload()
		w2 := &workload.Workload{Name: "scaled"}
		for i := range w.Apps {
			app := workload.Application{Name: w.Apps[i].Name}
			for _, th := range w.Apps[i].Threads {
				app.Threads = append(app.Threads, workload.Thread{
					CacheRate: th.CacheRate * scale,
					MemRate:   th.MemRate * scale,
				})
			}
			w2.Apps = append(w2.Apps, app)
		}
		p2 := core.MustNewProblem(p1.Model(), w2)
		m := core.RandomMapping(p1.N(), stats.NewRand(seed))
		e1, e2 := p1.Evaluate(m), p2.Evaluate(m)
		return math.Abs(e1.MaxAPL-e2.MaxAPL) < 1e-6 &&
			math.Abs(e1.GlobalAPL-e2.GlobalAPL) < 1e-6 &&
			math.Abs(e1.DevAPL-e2.DevAPL) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
