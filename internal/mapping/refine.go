package mapping

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
)

// ImproveWithBudget refines an existing mapping toward a lower max-APL
// while moving at most maxMoves threads — the constraint a live system
// faces, where every migration costs cache warmup and pause time. It
// runs sort-select-swap's sliding-window phase starting from base, but
// only accepts a window permutation if the cumulative set of threads
// displaced from their base tiles stays within budget (threads returned
// to their base tile leave the budget again). It returns the refined
// mapping and the number of threads that ended up moved.
//
// With maxMoves >= N this converges to the same quality as a fresh SSS
// swap phase; with a small budget it spends the moves where the
// objective gains most.
//
// Each best-first round is a full O(N * window!) scan, so the loop
// polls ctx between rounds and between window steps, returning a
// wrapped ctx.Err() when interrupted.
func ImproveWithBudget(ctx context.Context, p *core.Problem, base core.Mapping, maxMoves int) (core.Mapping, int, error) {
	return ImproveWithBudgetObjective(ctx, p, base, maxMoves, nil)
}

// ImproveWithBudgetObjective is ImproveWithBudget refining an arbitrary
// core.Objective instead of max-APL; a nil obj is ImproveWithBudget
// exactly (same moves, same result).
func ImproveWithBudgetObjective(ctx context.Context, p *core.Problem, base core.Mapping, maxMoves int, obj core.Objective) (core.Mapping, int, error) {
	if err := base.Validate(p.N()); err != nil {
		return nil, 0, fmt.Errorf("refine: %w", err)
	}
	if maxMoves < 0 {
		return nil, 0, fmt.Errorf("refine: negative migration budget %d", maxMoves)
	}
	n := p.N()
	m := base.Clone()
	if maxMoves == 0 {
		return m, 0, nil
	}

	// Sorted slot list, as in SSS step 1.
	sorted := sortedSlotsByTC(p)

	tr := newObjectiveTracker(p, m, obj)
	inv := m.InverseOn(n)
	perms := permutations(4)
	moved := map[int]bool{}
	movedCount := func(js []int, ts []mesh.Tile) int {
		// Budget usage if threads js were placed on tiles ts.
		count := len(moved)
		for x, j := range js {
			was := moved[j]
			is := ts[x] != base[j]
			if is && !was {
				count++
			}
			if !is && was {
				count--
			}
		}
		return count
	}

	// Best-first: each round scans every window and applies only the
	// single permutation with the largest objective gain that fits the
	// remaining budget, so a small budget goes to the most valuable
	// migrations instead of whichever window the sweep meets first.
	const window = 4
	rep := engine.StartStage(ctx, "refine")
	tiles := make([]mesh.Tile, window)
	threads := make([]int, window)
	trial := make([]mesh.Tile, window)
	maxStep := n / window
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("refine: interrupted in round %d: %w", round+1, err)
		}
		rep.Report(len(moved), maxMoves)
		curObj := tr.value()
		bestGain := 0.0
		var bestThreads [window]int
		var bestTiles [window]mesh.Tile
		found := false
		for step := 1; step <= maxStep; step++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("refine: interrupted at window step %d/%d: %w", step, maxStep, err)
			}
			span := (window - 1) * step
			for i := 0; i+span < n; i++ {
				for x := 0; x < window; x++ {
					tiles[x] = sorted[i+x*step]
					threads[x] = inv[tiles[x]]
				}
				for _, perm := range perms {
					identity := true
					for x, y := range perm {
						trial[x] = tiles[y]
						if y != x {
							identity = false
						}
					}
					if identity {
						continue
					}
					if movedCount(threads, trial) > maxMoves {
						continue // would blow the migration budget
					}
					if gain := curObj - tr.assignValue(threads, trial); gain > bestGain+1e-12 {
						bestGain = gain
						copy(bestThreads[:], threads)
						copy(bestTiles[:], trial)
						found = true
					}
				}
			}
		}
		if !found {
			break
		}
		tr.assign(bestThreads[:], bestTiles[:])
		for x := range bestThreads {
			inv[bestTiles[x]] = bestThreads[x]
			if bestTiles[x] != base[bestThreads[x]] {
				moved[bestThreads[x]] = true
			} else {
				delete(moved, bestThreads[x])
			}
		}
	}
	rep.Finish(len(moved), maxMoves)
	return m, len(moved), nil
}
