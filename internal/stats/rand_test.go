package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds gave %d/100 identical values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 200*n && len(seen) < n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Errorf("Intn(%d) did not produce all values (got %d)", n, len(seen))
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	mu, sigma := 0.5, 0.4
	var sum float64
	for i := 0; i < n; i++ {
		x := r.LogNormal(mu, sigma)
		if x <= 0 {
			t.Fatal("lognormal must be positive")
		}
		sum += x
	}
	wantMean := math.Exp(mu + sigma*sigma/2)
	if mean := sum / n; math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Errorf("lognormal mean = %v, want ~%v", mean, wantMean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatal("exponential must be non-negative")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(19)
	for _, n := range []int{1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformish(t *testing.T) {
	// Element 0 should land in each of 4 positions roughly equally often.
	r := NewRand(23)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		p := r.Perm(4)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("element 0 at position %d with frequency %v, want ~0.25", pos, frac)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(29)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams overlap: %d/100 identical", same)
	}
}
