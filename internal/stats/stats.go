// Package stats provides small, dependency-free statistics helpers and a
// deterministic random source used throughout the repository. Every
// stochastic component (workload generation, Monte-Carlo mapping, simulated
// annealing, the NoC traffic injectors) draws from a stats.Rand seeded
// explicitly, so all experiments are reproducible bit-for-bit.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. Mean of an empty slice is 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by len(xs)).
// The paper reports population statistics over the fixed thread set of a
// configuration, so the population form is the right one here.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleStdDev returns the Bessel-corrected (n-1) standard deviation.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return StdDev(xs) * math.Sqrt(float64(n)/float64(n-1))
}

// Min returns the minimum of xs, or an error if xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or an error if xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MustMax is Max for inputs known to be non-empty; it panics on empty input.
func MustMax(xs []float64) float64 {
	m, err := Max(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// MustMin is Min for inputs known to be non-empty; it panics on empty input.
func MustMin(xs []float64) float64 {
	m, err := Min(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// MinMaxRatio returns min(xs)/max(xs), one of the latency-balance metrics
// discussed (and rejected as an objective) in Section III.A of the paper.
// It returns 1 for an empty slice and 0 when the maximum is 0.
func MinMaxRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mn := MustMin(xs)
	mx := MustMax(xs)
	if mx == 0 {
		return 0
	}
	return mn / mx
}

// Normalize returns xs scaled so that base maps to 1. If base is 0 the
// input is returned unscaled (copied).
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns an error on empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0], nil
	}
	if p >= 100 {
		return s[len(s)-1], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i). It returns 0 when the
// total weight is 0 (the convention used for idle pseudo-applications whose
// request rates are all zero).
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}
