package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	cases := []struct {
		in        []float64
		sum, mean float64
	}{
		{nil, 0, 0},
		{[]float64{}, 0, 0},
		{[]float64{5}, 5, 5},
		{[]float64{1, 2, 3, 4}, 10, 2.5},
		{[]float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		if got := Sum(c.in); got != c.sum {
			t.Errorf("Sum(%v) = %v, want %v", c.in, got, c.sum)
		}
		if got := Mean(c.in); got != c.mean {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.mean)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{3, 3, 3}); got != 0 {
		t.Errorf("StdDev of constant = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestSampleStdDev(t *testing.T) {
	if got := SampleStdDev([]float64{1}); got != 0 {
		t.Errorf("SampleStdDev single = %v, want 0", got)
	}
	xs := []float64{1, 2, 3, 4, 5}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if got := SampleStdDev(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("SampleStdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v (%v), want -1", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v (%v), want 7", mx, err)
	}
	if MustMax(xs) != 7 || MustMin(xs) != -1 {
		t.Error("MustMax/MustMin disagree with Max/Min")
	}
}

func TestMustMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMax(nil) should panic")
		}
	}()
	MustMax(nil)
}

func TestMinMaxRatio(t *testing.T) {
	if got := MinMaxRatio(nil); got != 1 {
		t.Errorf("MinMaxRatio(nil) = %v, want 1", got)
	}
	if got := MinMaxRatio([]float64{0, 0}); got != 0 {
		t.Errorf("MinMaxRatio zeros = %v, want 0", got)
	}
	if got := MinMaxRatio([]float64{2, 4}); got != 0.5 {
		t.Errorf("MinMaxRatio = %v, want 0.5", got)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
	out = Normalize([]float64{2, 4}, 0)
	if out[0] != 2 || out[1] != 4 {
		t.Errorf("Normalize by 0 should copy input, got %v", out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v (%v), want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should error")
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{10, 20}, []float64{1, 3}); !almostEqual(got, 17.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 17.5", got)
	}
	if got := WeightedMean([]float64{10, 20}, []float64{0, 0}); got != 0 {
		t.Errorf("WeightedMean zero weights = %v, want 0", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeightedMean length mismatch should panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

// Property: variance is non-negative and mean lies within [min, max].
func TestStatsProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		v := Variance(clean)
		m := Mean(clean)
		mn, mx := MustMin(clean), MustMax(clean)
		return v >= 0 && m >= mn-1e-6*math.Abs(mn)-1e-6 && m <= mx+1e-6*math.Abs(mx)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
