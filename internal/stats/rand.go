package stats

import (
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic pseudo-random source
// (splitmix64-seeded xoshiro256**). It is intentionally self-contained so
// that experiment outputs are stable across Go releases — math/rand's
// global source and shuffling internals have changed between versions,
// which would silently change every "random mapping" baseline.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 to spread the seed over the full state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller, deterministic).
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns a lognormal variate with the given parameters of the
// underlying normal (mu, sigma).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap
// (Fisher–Yates, descending form).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new independent generator derived from this one, for
// handing deterministic sub-streams to parallel components (e.g. one per
// injector) without sharing state.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// SplitSeed derives the seed of sub-stream i from a base seed. Stream 0
// is the base seed unchanged, so a single-stream run reproduces the
// corresponding serial run exactly; later streams are splitmix64-mixed
// into well-separated states. This is the canonical derivation for
// deterministic worker fan-out — simulation replicas (sim.ReplicaSeed),
// Monte-Carlo sample chunks and annealing restart portfolios all derive
// their per-worker streams this way, so a fixed (seed, partition) is
// reproducible regardless of scheduling.
func SplitSeed(base uint64, i int) uint64 {
	if i == 0 {
		return base
	}
	z := base + uint64(i)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
