package workload

import (
	"fmt"
	"math"

	"obm/internal/stats"
)

// PARSECNames lists the PARSEC 2.0 benchmark names; the synthetic
// applications of the eight paper configurations borrow these names so
// outputs read like the paper's.
var PARSECNames = []string{
	"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
	"fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
	"vips", "x264",
}

// Table3 holds the per-configuration traffic statistics published in the
// paper's Table 3: the average and spread of the cache and memory request
// rates over each configuration's 64 threads.
//
// Interpretation note (documented substitution): the paper labels the
// spread column "Std-dev", but those values are not realizable as the
// standard deviation of 64 non-negative rates — e.g. C1 would need a
// coefficient of variation of 12.6 while 64 non-negative samples can
// reach at most sqrt(63) ~= 7.94. We therefore read the column as the
// *variance* of the per-thread rates; the square roots (std 9.4 for C1,
// CV ~1.3) give exactly the heavy-tailed-but-feasible per-thread spread
// the rest of the evaluation depends on.
var Table3 = map[string]RateStats{
	"C1": {Cache: Stats{Mean: 7.008, Std: math.Sqrt(88.3)}, Mem: Stats{Mean: 0.899, Std: math.Sqrt(9.84)}},
	"C2": {Cache: Stats{Mean: 1.8855, Std: math.Sqrt(17.52)}, Mem: Stats{Mean: 0.381, Std: math.Sqrt(2.21)}},
	"C3": {Cache: Stats{Mean: 10.881, Std: math.Sqrt(112.34)}, Mem: Stats{Mean: 1.51, Std: math.Sqrt(18.42)}},
	"C4": {Cache: Stats{Mean: 11.063, Std: math.Sqrt(107.27)}, Mem: Stats{Mean: 1.548, Std: math.Sqrt(17.56)}},
	"C5": {Cache: Stats{Mean: 9.04, Std: math.Sqrt(129.27)}, Mem: Stats{Mean: 1.371, Std: math.Sqrt(19.91)}},
	"C6": {Cache: Stats{Mean: 9.222, Std: math.Sqrt(125.81)}, Mem: Stats{Mean: 1.409, Std: math.Sqrt(19.21)}},
	"C7": {Cache: Stats{Mean: 1.992, Std: math.Sqrt(14.69)}, Mem: Stats{Mean: 0.399, Std: math.Sqrt(2.01)}},
	"C8": {Cache: Stats{Mean: 8.881, Std: math.Sqrt(131.87)}, Mem: Stats{Mean: 1.334, Std: math.Sqrt(20.45)}},
}

// ConfigNames returns the configuration names C1..C8 in order.
func ConfigNames() []string {
	return []string{"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8"}
}

// paperConfigSeed gives each configuration a fixed, distinct seed so every
// experiment in the repository sees the same eight workloads.
func paperConfigSeed(name string) uint64 {
	var h uint64 = 0xb5ad4eceda1ce2a9
	for _, c := range name {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// Config builds one of the paper's eight evaluation configurations:
// four 16-thread applications whose flattened rate vectors are
// moment-matched to Table 3. Application names are drawn from the PARSEC
// suite; applications are numbered in ascending order of total
// communication rate, as in the paper.
func Config(name string) (*Workload, error) {
	target, ok := Table3[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown configuration %q (want C1..C8)", name)
	}
	// The moment correction can saturate against the physical miss-ratio
	// bound for an unlucky lognormal draw, so deterministically walk
	// derived seeds until the achieved statistics are within 0.5% of the
	// Table 3 targets. The walk is fixed per configuration, so everyone
	// sees the same workloads.
	var w *Workload
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		cand, err := Generate(GenSpec{
			Name:       name,
			NumApps:    4,
			ThreadsPer: 16,
			Cache:      target.Cache,
			Mem:        target.Mem,
			Seed:       paperConfigSeed(name) + uint64(attempt)*2654435761,
		})
		if err != nil {
			return nil, err
		}
		if statsWithin(cand.ComputeRateStats(), target, 0.005) {
			w = cand
			break
		}
		if w == nil {
			w = cand // best effort fallback; overwritten by any exact hit
		}
	}
	// Give the four applications PARSEC names (deterministic by config) on
	// top of their rank labels.
	base := int(paperConfigSeed(name) % uint64(len(PARSECNames)))
	for i := range w.Apps {
		w.Apps[i].Name = fmt.Sprintf("%s/%d-%s", name, i+1, PARSECNames[(base+i*3)%len(PARSECNames)])
	}
	return w, nil
}

// statsWithin reports whether got matches want within relative tolerance
// tol on all four moments.
func statsWithin(got, want RateStats, tol float64) bool {
	rel := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a)
		}
		return math.Abs(a-b) / b
	}
	return rel(got.Cache.Mean, want.Cache.Mean) <= tol &&
		rel(got.Cache.Std, want.Cache.Std) <= tol &&
		rel(got.Mem.Mean, want.Mem.Mean) <= tol &&
		rel(got.Mem.Std, want.Mem.Std) <= tol
}

// MustConfig is Config but panics on an unknown name.
func MustConfig(name string) *Workload {
	w, err := Config(name)
	if err != nil {
		panic(err)
	}
	return w
}

// AllConfigs returns the eight paper configurations C1..C8 in order.
func AllConfigs() []*Workload {
	names := ConfigNames()
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = MustConfig(n)
	}
	return out
}

// Figure5Workload returns the hand-specified workload of the paper's
// Figure 5 worked example: four applications of four threads each, with
// per-thread cache rates 0.1, 0.2, 0.3, 0.4 and zero memory traffic.
func Figure5Workload() *Workload {
	w := &Workload{Name: "figure5"}
	for a := 0; a < 4; a++ {
		app := Application{Name: fmt.Sprintf("app%d", a+1)}
		for _, c := range []float64{0.1, 0.2, 0.3, 0.4} {
			app.Threads = append(app.Threads, Thread{CacheRate: c})
		}
		w.Apps = append(w.Apps, app)
	}
	return w
}

// parsecProfile holds a benchmark's characteristic per-thread request
// intensities (requests per microsecond at 2 GHz), loosely ranked from
// the PARSEC characterization literature: compute-bound kernels barely
// touch the network, data-movement kernels hammer it.
type parsecProfile struct {
	cache, mem float64
}

// parsecProfiles maps benchmark names to intensities.
var parsecProfiles = map[string]parsecProfile{
	"blackscholes":  {0.6, 0.05},
	"swaptions":     {0.9, 0.08},
	"freqmine":      {2.2, 0.25},
	"raytrace":      {2.8, 0.3},
	"bodytrack":     {3.5, 0.45},
	"vips":          {4.8, 0.6},
	"x264":          {6.5, 0.9},
	"ferret":        {7.5, 1.0},
	"dedup":         {9.0, 1.3},
	"fluidanimate":  {10.0, 1.5},
	"facesim":       {11.5, 1.7},
	"streamcluster": {16.0, 2.4},
	"canneal":       {20.0, 3.2},
}

// PARSECProfileNames lists the benchmarks FromPARSEC accepts, in
// ascending network intensity.
func PARSECProfileNames() []string {
	return []string{
		"blackscholes", "swaptions", "freqmine", "raytrace", "bodytrack",
		"vips", "x264", "ferret", "dedup", "fluidanimate", "facesim",
		"streamcluster", "canneal",
	}
}

// FromPARSEC builds a workload from named benchmark profiles, one
// application per name (repeats allowed), threadsPer threads each with
// mild deterministic per-thread variation. It gives examples and tools
// a quick way to assemble realistic mixes without moment-matching
// machinery.
func FromPARSEC(names []string, threadsPer int, seed uint64) (*Workload, error) {
	if len(names) == 0 || threadsPer <= 0 {
		return nil, fmt.Errorf("workload: need benchmarks and positive threads per app")
	}
	rng := stats.NewRand(seed)
	w := &Workload{Name: "parsec-mix"}
	for i, name := range names {
		prof, ok := parsecProfiles[name]
		if !ok {
			return nil, fmt.Errorf("workload: unknown PARSEC benchmark %q (see PARSECProfileNames)", name)
		}
		app := Application{Name: fmt.Sprintf("%s-%d", name, i+1)}
		for t := 0; t < threadsPer; t++ {
			f := rng.LogNormal(0, 0.25)
			app.Threads = append(app.Threads, Thread{
				CacheRate: prof.cache * f,
				MemRate:   prof.mem * f,
			})
		}
		w.Apps = append(w.Apps, app)
	}
	return w, nil
}
