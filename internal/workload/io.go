package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonWorkload is the stable on-disk schema for user-defined workloads.
type jsonWorkload struct {
	Name string    `json:"name"`
	Apps []jsonApp `json:"apps"`
}

type jsonApp struct {
	Name    string       `json:"name"`
	Threads []jsonThread `json:"threads"`
}

type jsonThread struct {
	// Cache and Mem are the c_j and m_j request rates (requests per
	// microsecond at a 2 GHz clock, the paper's unit).
	Cache float64 `json:"cache"`
	Mem   float64 `json:"mem"`
}

// WriteJSON serializes the workload for editing and sharing.
func WriteJSON(w io.Writer, wl *Workload) error {
	if err := wl.Validate(); err != nil {
		return err
	}
	out := jsonWorkload{Name: wl.Name}
	for i := range wl.Apps {
		app := jsonApp{Name: wl.Apps[i].Name}
		for _, t := range wl.Apps[i].Threads {
			app.Threads = append(app.Threads, jsonThread{Cache: t.CacheRate, Mem: t.MemRate})
		}
		out.Apps = append(out.Apps, app)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a workload written by WriteJSON (or by hand) and
// validates it.
func ReadJSON(r io.Reader) (*Workload, error) {
	var in jsonWorkload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding: %w", err)
	}
	wl := &Workload{Name: in.Name}
	for _, app := range in.Apps {
		a := Application{Name: app.Name}
		for _, t := range app.Threads {
			a.Threads = append(a.Threads, Thread{CacheRate: t.Cache, MemRate: t.Mem})
		}
		wl.Apps = append(wl.Apps, a)
	}
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	return wl, nil
}
