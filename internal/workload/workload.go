// Package workload models the traffic characteristics of the applications
// being mapped: per-thread shared-L2 cache request rates c_j and
// memory-controller request rates m_j (Section III.B of the paper).
//
// The paper gathers these rates from PARSEC 2.0 traces under Simics/GEMS.
// That toolchain (and its traces) is unavailable, so this package
// substitutes a synthetic generator that is moment-matched to the
// statistics the paper publishes for its eight evaluation configurations
// (Table 3): the mean and standard deviation of the cache and memory
// request rates over each configuration's 64 threads. The mapping
// algorithms consume nothing but these per-thread rates, so matching
// their first two moments (and the heavy-tailed shape implied by
// std/mean ratios of 9-15) preserves the behaviour the evaluation
// depends on. See DESIGN.md, substitution 1.
package workload

import (
	"fmt"

	"obm/internal/stats"
)

// Thread holds the two per-thread parameters of the OBM problem.
type Thread struct {
	// CacheRate is the shared-L2 request rate c_j (requests per unit time;
	// the paper's unit is requests per microsecond at 2 GHz).
	CacheRate float64
	// MemRate is the memory-controller request rate m_j.
	MemRate float64
}

// TotalRate returns c_j + m_j, the weight of the thread in APL averaging.
func (t Thread) TotalRate() float64 { return t.CacheRate + t.MemRate }

// Application is a named group of threads mapped as a unit.
type Application struct {
	Name    string
	Threads []Thread
}

// NumThreads returns the number of threads in the application.
func (a *Application) NumThreads() int { return len(a.Threads) }

// TotalRate returns the application's aggregate communication rate.
func (a *Application) TotalRate() float64 {
	var s float64
	for _, t := range a.Threads {
		s += t.TotalRate()
	}
	return s
}

// CacheRates returns the c_j vector of the application.
func (a *Application) CacheRates() []float64 {
	out := make([]float64, len(a.Threads))
	for i, t := range a.Threads {
		out[i] = t.CacheRate
	}
	return out
}

// MemRates returns the m_j vector of the application.
func (a *Application) MemRates() []float64 {
	out := make([]float64, len(a.Threads))
	for i, t := range a.Threads {
		out[i] = t.MemRate
	}
	return out
}

// Workload is an ordered set of applications to be mapped together onto
// one chip. Thread j of the flattened workload follows the paper's
// indexing: application a_i owns threads N_{i-1}+1 .. N_i.
type Workload struct {
	Name string
	Apps []Application
}

// NumThreads returns the total thread count N across all applications.
func (w *Workload) NumThreads() int {
	n := 0
	for i := range w.Apps {
		n += len(w.Apps[i].Threads)
	}
	return n
}

// NumApps returns the number of applications A.
func (w *Workload) NumApps() int { return len(w.Apps) }

// Threads returns the flattened thread list in application order.
func (w *Workload) Threads() []Thread {
	out := make([]Thread, 0, w.NumThreads())
	for i := range w.Apps {
		out = append(out, w.Apps[i].Threads...)
	}
	return out
}

// Boundaries returns the cumulative thread counts N_0..N_A
// (N_0 = 0, N_A = N); application i owns flattened threads
// [Boundaries[i], Boundaries[i+1]).
func (w *Workload) Boundaries() []int {
	b := make([]int, len(w.Apps)+1)
	for i := range w.Apps {
		b[i+1] = b[i] + len(w.Apps[i].Threads)
	}
	return b
}

// AppOfThread returns the application index owning flattened thread j,
// or -1 if j is out of range.
func (w *Workload) AppOfThread(j int) int {
	b := w.Boundaries()
	for i := 0; i < len(w.Apps); i++ {
		if j >= b[i] && j < b[i+1] {
			return i
		}
	}
	return -1
}

// CacheRates returns the flattened c_j vector.
func (w *Workload) CacheRates() []float64 {
	out := make([]float64, 0, w.NumThreads())
	for i := range w.Apps {
		out = append(out, w.Apps[i].CacheRates()...)
	}
	return out
}

// MemRates returns the flattened m_j vector.
func (w *Workload) MemRates() []float64 {
	out := make([]float64, 0, w.NumThreads())
	for i := range w.Apps {
		out = append(out, w.Apps[i].MemRates()...)
	}
	return out
}

// Validate reports an error for empty workloads or negative rates.
func (w *Workload) Validate() error {
	if len(w.Apps) == 0 {
		return fmt.Errorf("workload %q: no applications", w.Name)
	}
	for i := range w.Apps {
		a := &w.Apps[i]
		if len(a.Threads) == 0 {
			return fmt.Errorf("workload %q: application %q has no threads", w.Name, a.Name)
		}
		for j, t := range a.Threads {
			if t.CacheRate < 0 || t.MemRate < 0 {
				return fmt.Errorf("workload %q: app %q thread %d has negative rate", w.Name, a.Name, j)
			}
		}
	}
	return nil
}

// Stats summarizes the first two moments of a rate vector.
type Stats struct {
	Mean, Std float64
}

// RateStats returns (cache, memory) statistics over all threads of w —
// the quantities reported in the paper's Table 3.
type RateStats struct {
	Cache Stats
	Mem   Stats
}

// ComputeRateStats returns the configuration-level rate statistics of w.
func (w *Workload) ComputeRateStats() RateStats {
	return RateStats{
		Cache: Stats{Mean: stats.Mean(w.CacheRates()), Std: stats.StdDev(w.CacheRates())},
		Mem:   Stats{Mean: stats.Mean(w.MemRates()), Std: stats.StdDev(w.MemRates())},
	}
}

// SortAppsByTotalRate relabels applications in ascending order of total
// communication rate, matching the paper's convention that "Application 1
// has the lightest traffic" (Section II.D). Thread contents are unchanged.
func (w *Workload) SortAppsByTotalRate() {
	for i := 1; i < len(w.Apps); i++ {
		for j := i; j > 0 && w.Apps[j-1].TotalRate() > w.Apps[j].TotalRate(); j-- {
			w.Apps[j-1], w.Apps[j] = w.Apps[j], w.Apps[j-1]
		}
	}
}

// PadTo appends an idle pseudo-application with zero-rate threads so the
// workload has exactly n threads (paper Section III.B footnote: when
// fewer threads than tiles exist, pseudo threads with zero traffic fill
// the remainder). It returns an error if the workload already has more
// than n threads.
func (w *Workload) PadTo(n int) error {
	cur := w.NumThreads()
	if cur > n {
		return fmt.Errorf("workload %q: %d threads exceed %d tiles", w.Name, cur, n)
	}
	if cur == n {
		return nil
	}
	w.Apps = append(w.Apps, Application{
		Name:    "idle",
		Threads: make([]Thread, n-cur),
	})
	return nil
}
