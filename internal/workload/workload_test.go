package workload

import (
	"math"
	"testing"
)

func twoAppWorkload() *Workload {
	return &Workload{
		Name: "test",
		Apps: []Application{
			{Name: "a", Threads: []Thread{{CacheRate: 1, MemRate: 0.1}, {CacheRate: 2, MemRate: 0.2}}},
			{Name: "b", Threads: []Thread{{CacheRate: 3, MemRate: 0.3}}},
		},
	}
}

func TestThreadTotalRate(t *testing.T) {
	th := Thread{CacheRate: 2.5, MemRate: 0.5}
	if th.TotalRate() != 3 {
		t.Errorf("TotalRate = %v, want 3", th.TotalRate())
	}
}

func TestApplicationAccessors(t *testing.T) {
	w := twoAppWorkload()
	a := &w.Apps[0]
	if a.NumThreads() != 2 {
		t.Errorf("NumThreads = %d", a.NumThreads())
	}
	if got := a.TotalRate(); math.Abs(got-3.3) > 1e-12 {
		t.Errorf("TotalRate = %v, want 3.3", got)
	}
	cr := a.CacheRates()
	if len(cr) != 2 || cr[0] != 1 || cr[1] != 2 {
		t.Errorf("CacheRates = %v", cr)
	}
	mr := a.MemRates()
	if len(mr) != 2 || mr[0] != 0.1 || mr[1] != 0.2 {
		t.Errorf("MemRates = %v", mr)
	}
}

func TestWorkloadFlattening(t *testing.T) {
	w := twoAppWorkload()
	if w.NumThreads() != 3 || w.NumApps() != 2 {
		t.Fatalf("NumThreads=%d NumApps=%d", w.NumThreads(), w.NumApps())
	}
	b := w.Boundaries()
	want := []int{0, 2, 3}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Boundaries = %v, want %v", b, want)
		}
	}
	if w.AppOfThread(0) != 0 || w.AppOfThread(1) != 0 || w.AppOfThread(2) != 1 {
		t.Error("AppOfThread wrong")
	}
	if w.AppOfThread(-1) != -1 || w.AppOfThread(3) != -1 {
		t.Error("AppOfThread should return -1 out of range")
	}
	cr := w.CacheRates()
	if len(cr) != 3 || cr[2] != 3 {
		t.Errorf("CacheRates = %v", cr)
	}
	ths := w.Threads()
	if len(ths) != 3 || ths[2].MemRate != 0.3 {
		t.Errorf("Threads = %v", ths)
	}
}

func TestValidate(t *testing.T) {
	if err := twoAppWorkload().Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	empty := &Workload{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty workload accepted")
	}
	noThreads := &Workload{Name: "n", Apps: []Application{{Name: "x"}}}
	if err := noThreads.Validate(); err == nil {
		t.Error("app without threads accepted")
	}
	neg := twoAppWorkload()
	neg.Apps[0].Threads[0].CacheRate = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSortAppsByTotalRate(t *testing.T) {
	w := &Workload{
		Apps: []Application{
			{Name: "heavy", Threads: []Thread{{CacheRate: 100}}},
			{Name: "light", Threads: []Thread{{CacheRate: 1}}},
			{Name: "mid", Threads: []Thread{{CacheRate: 10}}},
		},
	}
	w.SortAppsByTotalRate()
	got := []string{w.Apps[0].Name, w.Apps[1].Name, w.Apps[2].Name}
	want := []string{"light", "mid", "heavy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order = %v, want %v", got, want)
		}
	}
}

func TestPadTo(t *testing.T) {
	w := twoAppWorkload()
	if err := w.PadTo(8); err != nil {
		t.Fatal(err)
	}
	if w.NumThreads() != 8 {
		t.Errorf("padded to %d threads, want 8", w.NumThreads())
	}
	idle := w.Apps[len(w.Apps)-1]
	if idle.Name != "idle" || idle.TotalRate() != 0 {
		t.Errorf("idle app = %+v", idle)
	}
	// Padding to current size is a no-op.
	before := w.NumApps()
	if err := w.PadTo(8); err != nil {
		t.Fatal(err)
	}
	if w.NumApps() != before {
		t.Error("no-op pad added an application")
	}
	// Padding below current size errors.
	if err := w.PadTo(3); err == nil {
		t.Error("PadTo below thread count should error")
	}
}

func TestComputeRateStats(t *testing.T) {
	w := &Workload{Apps: []Application{{
		Name:    "a",
		Threads: []Thread{{CacheRate: 1, MemRate: 2}, {CacheRate: 3, MemRate: 2}},
	}}}
	rs := w.ComputeRateStats()
	if rs.Cache.Mean != 2 || rs.Cache.Std != 1 {
		t.Errorf("cache stats = %+v", rs.Cache)
	}
	if rs.Mem.Mean != 2 || rs.Mem.Std != 0 {
		t.Errorf("mem stats = %+v", rs.Mem)
	}
}
