package workload

import (
	"math"
	"testing"
)

func TestGenerateMomentMatch(t *testing.T) {
	spec := GenSpec{
		Name: "gen", NumApps: 4, ThreadsPer: 16,
		Cache: Stats{Mean: 7.0, Std: 9.4},
		Mem:   Stats{Mean: 0.9, Std: 3.1},
		Seed:  1,
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	rs := w.ComputeRateStats()
	check := func(name string, got, want float64) {
		if want == 0 {
			if got != 0 {
				t.Errorf("%s = %v, want 0", name, got)
			}
			return
		}
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("%s = %v, want %v (within 1%%)", name, got, want)
		}
	}
	check("cache mean", rs.Cache.Mean, spec.Cache.Mean)
	check("cache std", rs.Cache.Std, spec.Cache.Std)
	check("mem mean", rs.Mem.Mean, spec.Mem.Mean)
	check("mem std", rs.Mem.Std, spec.Mem.Std)
}

func TestGenerateDeterminism(t *testing.T) {
	spec := GenSpec{Name: "d", NumApps: 2, ThreadsPer: 4,
		Cache: Stats{Mean: 5, Std: 5}, Mem: Stats{Mean: 1, Std: 1}, Seed: 42}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	at, bt := a.Threads(), b.Threads()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatal("same spec+seed must produce identical workloads")
		}
	}
	spec.Seed = 43
	c := MustGenerate(spec)
	diff := false
	for i, th := range c.Threads() {
		if th != at[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seed produced identical workload")
	}
}

func TestGenerateAppsSortedByRate(t *testing.T) {
	spec := GenSpec{Name: "s", NumApps: 4, ThreadsPer: 16,
		Cache: Stats{Mean: 7, Std: 9}, Mem: Stats{Mean: 1, Std: 3}, Seed: 7}
	w := MustGenerate(spec)
	for i := 1; i < len(w.Apps); i++ {
		if w.Apps[i-1].TotalRate() > w.Apps[i].TotalRate() {
			t.Fatal("applications not sorted ascending by total rate")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenSpec{
		{NumApps: 0, ThreadsPer: 4, Cache: Stats{Mean: 1}},
		{NumApps: 4, ThreadsPer: 0, Cache: Stats{Mean: 1}},
		{NumApps: 4, ThreadsPer: 4, Cache: Stats{Mean: 0}},
		{NumApps: 4, ThreadsPer: 4, Cache: Stats{Mean: 1, Std: -1}},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateNonNegativeRates(t *testing.T) {
	// Extreme spread: clamping must keep everything non-negative.
	spec := GenSpec{Name: "x", NumApps: 4, ThreadsPer: 16,
		Cache: Stats{Mean: 2, Std: 14}, Mem: Stats{Mean: 0.4, Std: 2.8}, Seed: 3}
	w := MustGenerate(spec)
	for _, th := range w.Threads() {
		if th.CacheRate < 0 || th.MemRate < 0 {
			t.Fatalf("negative rate generated: %+v", th)
		}
	}
}

func TestGenerateZeroStd(t *testing.T) {
	spec := GenSpec{Name: "z", NumApps: 2, ThreadsPer: 2,
		Cache: Stats{Mean: 3, Std: 0}, Mem: Stats{Mean: 1, Std: 0}, Seed: 1}
	w := MustGenerate(spec)
	for _, th := range w.Threads() {
		if th.CacheRate != 3 || th.MemRate != 1 {
			t.Fatalf("zero-std workload not constant: %+v", th)
		}
	}
}
