package workload

import (
	"fmt"
	"math"

	"obm/internal/stats"
)

// GenSpec describes the target statistics of a synthetic workload: the
// number of applications, threads per application, and the Table 3-style
// mean/std targets for the flattened cache and memory rate vectors.
type GenSpec struct {
	Name       string
	NumApps    int
	ThreadsPer int
	Cache      Stats // target mean/std of all c_j
	Mem        Stats // target mean/std of all m_j
	Seed       uint64

	// AppSigma is the lognormal sigma of the per-application intensity
	// multiplier. Each application stands for one benchmark (PARSEC
	// programs differ in network load by orders of magnitude), so most of
	// the rate spread is *between* applications — this is what makes the
	// Global mapper trade one application's latency for another's, the
	// paper's motivating observation. 0 selects the default (1.2).
	AppSigma float64
	// ThreadSigma is the lognormal sigma of within-application thread
	// variation. 0 selects the default (0.3).
	ThreadSigma float64
}

// Validate reports an error for nonsensical specs.
func (s GenSpec) Validate() error {
	if s.NumApps <= 0 || s.ThreadsPer <= 0 {
		return fmt.Errorf("workload: spec %q: need positive apps/threads, got %dx%d", s.Name, s.NumApps, s.ThreadsPer)
	}
	if s.Cache.Mean <= 0 || s.Mem.Mean < 0 {
		return fmt.Errorf("workload: spec %q: need positive cache mean", s.Name)
	}
	if s.Cache.Std < 0 || s.Mem.Std < 0 {
		return fmt.Errorf("workload: spec %q: negative std target", s.Name)
	}
	return nil
}

// Generate builds a synthetic workload whose flattened cache and memory
// rate vectors match the spec's mean and standard deviation (the paper's
// Table 3 statistics) to within a small tolerance.
//
// Shape: rates are drawn hierarchically — a lognormal intensity
// multiplier per application (benchmarks differ in network load far more
// than threads within one benchmark do) times moderate lognormal
// per-thread variation. This is what lets the Global mapper trade a
// light application's latency for a heavy one's, the paper's motivating
// observation; a flat per-thread draw would make the applications
// statistically identical and hide the imbalance. Memory rates ride on
// cache rates (an L2 miss is first an L2 access) with skew-calibrated
// multiplicative noise and a physical per-thread miss-ratio bound. Both
// vectors are then affinely moment-corrected under their bounds to hit
// the targets.
func Generate(spec GenSpec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(spec.Seed)
	n := spec.NumApps * spec.ThreadsPer
	appSigma := spec.AppSigma
	if appSigma == 0 {
		appSigma = 1.2
	}
	threadSigma := spec.ThreadSigma
	if threadSigma == 0 {
		threadSigma = 0.3
	}

	// Hierarchical rates: one intensity multiplier per application (the
	// benchmark's character) times per-thread variation within it.
	cache := make([]float64, n)
	for a := 0; a < spec.NumApps; a++ {
		mul := rng.LogNormal(0, appSigma)
		for t := 0; t < spec.ThreadsPer; t++ {
			cache[a*spec.ThreadsPer+t] = mul * rng.LogNormal(0, threadSigma)
		}
	}
	// Memory rates proportional to cache rates with lognormal noise: keeps
	// the paper's observed cache:memory rate ratio per thread while letting
	// the two vectors have their own moments after correction. Table 3's
	// memory rates are substantially more skewed than the cache rates
	// (CV ~3.5 vs ~1.3), so the noise sigma is derived from the target
	// coefficients of variation: for independent lognormals the log-domain
	// variances add, sigma_mem^2 = sigma_cache^2 + sigma_noise^2.
	mem := make([]float64, n)
	ratio := spec.Cache.Mean / math.Max(spec.Mem.Mean, 1e-12)
	noiseSigma := 0.35
	if spec.Cache.Mean > 0 && spec.Mem.Mean > 0 {
		cvC := spec.Cache.Std / spec.Cache.Mean
		cvM := spec.Mem.Std / spec.Mem.Mean
		if extra := math.Log(1+cvM*cvM) - math.Log(1+cvC*cvC); extra > noiseSigma*noiseSigma {
			noiseSigma = math.Sqrt(extra)
		}
	}
	for i := range mem {
		noise := rng.LogNormal(0, noiseSigma)
		mem[i] = cache[i] / ratio * noise
	}

	momentCorrect(cache, spec.Cache, nil)
	// Every memory request is an L2 miss, i.e. a subset of the thread's L2
	// accesses; we bound the per-thread L2 miss ratio at 50%
	// (m_j <= 0.5*c_j), a generous ceiling for PARSEC-class workloads.
	// Beyond keeping the rates physical, the bound caps any application's
	// memory share of traffic at 1/3, so differences in memory intensity
	// remain compensable by tile placement instead of creating an
	// unbalanceable APL floor.
	ub := make([]float64, n)
	for i := range ub {
		ub[i] = 0.5 * cache[i]
	}
	momentCorrect(mem, spec.Mem, ub)

	w := &Workload{Name: spec.Name}
	for a := 0; a < spec.NumApps; a++ {
		app := Application{Name: fmt.Sprintf("%s-app%d", spec.Name, a+1)}
		for t := 0; t < spec.ThreadsPer; t++ {
			idx := a*spec.ThreadsPer + t
			app.Threads = append(app.Threads, Thread{CacheRate: cache[idx], MemRate: mem[idx]})
		}
		w.Apps = append(w.Apps, app)
	}
	w.SortAppsByTotalRate()
	for i := range w.Apps {
		w.Apps[i].Name = fmt.Sprintf("%s-app%d", spec.Name, i+1)
	}
	return w, nil
}

// MustGenerate is Generate but panics on error; for the fixed paper specs.
func MustGenerate(spec GenSpec) *Workload {
	w, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// momentCorrect rescales xs in place so its population mean and std equal
// the target, keeping every value within [0, ub[i]] (ub may be nil for
// unbounded-above). The affine correction can push samples outside the
// bounds when the target std is large; clamping and re-correcting
// converges quickly for heavy-tailed inputs because the clamped mass is
// tiny.
func momentCorrect(xs []float64, target Stats, ub []float64) {
	if len(xs) == 0 {
		return
	}
	clamp := func(i int, v float64) float64 {
		if v < 0 {
			v = 0
		}
		if ub != nil && v > ub[i] {
			v = ub[i]
		}
		return v
	}
	if target.Std == 0 {
		for i := range xs {
			xs[i] = clamp(i, target.Mean)
		}
		return
	}
	// The clamps bias a plain affine correction (clamping at zero raises
	// the mean; clamping at ub lowers it), so aim for a compensated target
	// that an integral-style update steers until the *achieved* moments
	// match the true target.
	aim := target
	for iter := 0; iter < 500; iter++ {
		m := stats.Mean(xs)
		s := stats.StdDev(xs)
		if s == 0 {
			// Degenerate (all-equal) vector: nudge one element to create
			// spread, then continue correcting.
			xs[0] = clamp(0, xs[0]+target.Std)
			if stats.StdDev(xs) == 0 {
				return // bounds leave no room for spread
			}
			continue
		}
		scale := aim.Std / s
		for i := range xs {
			xs[i] = clamp(i, aim.Mean+(xs[i]-m)*scale)
		}
		if closeEnough(xs, target) {
			return
		}
		aim.Mean += 0.5 * (target.Mean - stats.Mean(xs))
		aim.Std += 0.5 * (target.Std - stats.StdDev(xs))
		if aim.Mean < 0 {
			aim.Mean = 0
		}
		if aim.Std < 0 {
			aim.Std = 0
		}
	}
}

func closeEnough(xs []float64, target Stats) bool {
	const tol = 1e-9
	m := stats.Mean(xs)
	s := stats.StdDev(xs)
	return math.Abs(m-target.Mean) <= tol*math.Max(1, target.Mean) &&
		math.Abs(s-target.Std) <= tol*math.Max(1, target.Std)
}
