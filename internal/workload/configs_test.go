package workload

import (
	"math"
	"testing"
)

func TestConfigUnknown(t *testing.T) {
	if _, err := Config("C99"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestMustConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustConfig with bad name should panic")
		}
	}()
	MustConfig("nope")
}

func TestConfigShape(t *testing.T) {
	for _, name := range ConfigNames() {
		w := MustConfig(name)
		if w.NumApps() != 4 {
			t.Errorf("%s: %d apps, want 4", name, w.NumApps())
		}
		if w.NumThreads() != 64 {
			t.Errorf("%s: %d threads, want 64", name, w.NumThreads())
		}
		for i := range w.Apps {
			if len(w.Apps[i].Threads) != 16 {
				t.Errorf("%s app %d: %d threads, want 16", name, i, len(w.Apps[i].Threads))
			}
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestConfigsMatchTable3 is the Table 3 reproduction: the generated
// configurations' rate statistics must match the published targets.
func TestConfigsMatchTable3(t *testing.T) {
	for _, name := range ConfigNames() {
		w := MustConfig(name)
		got := w.ComputeRateStats()
		want := Table3[name]
		rel := func(a, b float64) float64 {
			if b == 0 {
				return math.Abs(a)
			}
			return math.Abs(a-b) / b
		}
		if rel(got.Cache.Mean, want.Cache.Mean) > 0.01 {
			t.Errorf("%s cache mean = %.4f, want %.4f", name, got.Cache.Mean, want.Cache.Mean)
		}
		if rel(got.Cache.Std, want.Cache.Std) > 0.01 {
			t.Errorf("%s cache std = %.4f, want %.4f", name, got.Cache.Std, want.Cache.Std)
		}
		if rel(got.Mem.Mean, want.Mem.Mean) > 0.01 {
			t.Errorf("%s mem mean = %.4f, want %.4f", name, got.Mem.Mean, want.Mem.Mean)
		}
		if rel(got.Mem.Std, want.Mem.Std) > 0.01 {
			t.Errorf("%s mem std = %.4f, want %.4f", name, got.Mem.Std, want.Mem.Std)
		}
	}
}

func TestConfigDeterminism(t *testing.T) {
	a := MustConfig("C3")
	b := MustConfig("C3")
	at, bt := a.Threads(), b.Threads()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatal("Config must be deterministic")
		}
	}
}

func TestConfigsDiffer(t *testing.T) {
	a := MustConfig("C1")
	b := MustConfig("C2")
	if a.ComputeRateStats() == b.ComputeRateStats() {
		t.Error("C1 and C2 have identical statistics")
	}
}

func TestAllConfigs(t *testing.T) {
	all := AllConfigs()
	if len(all) != 8 {
		t.Fatalf("AllConfigs returned %d", len(all))
	}
	for i, w := range all {
		if w.Name != ConfigNames()[i] {
			t.Errorf("config %d named %q", i, w.Name)
		}
	}
}

func TestCacheMemRatioPlausible(t *testing.T) {
	// The paper reports cache rates ~6.78x memory rates on average; the
	// generated configurations should preserve a high cache:memory ratio.
	for _, name := range ConfigNames() {
		w := MustConfig(name)
		rs := w.ComputeRateStats()
		ratio := rs.Cache.Mean / rs.Mem.Mean
		if ratio < 3 || ratio > 12 {
			t.Errorf("%s cache:mem ratio = %.2f, want within [3,12]", name, ratio)
		}
	}
}

func TestFigure5Workload(t *testing.T) {
	w := Figure5Workload()
	if w.NumApps() != 4 || w.NumThreads() != 16 {
		t.Fatalf("figure5: %d apps, %d threads", w.NumApps(), w.NumThreads())
	}
	for _, app := range w.Apps {
		rates := app.CacheRates()
		want := []float64{0.1, 0.2, 0.3, 0.4}
		for i := range want {
			if rates[i] != want[i] {
				t.Fatalf("rates = %v", rates)
			}
		}
		for _, th := range app.Threads {
			if th.MemRate != 0 {
				t.Fatal("figure5 threads must have zero memory traffic")
			}
		}
	}
}

func TestFromPARSEC(t *testing.T) {
	w, err := FromPARSEC([]string{"blackscholes", "canneal", "x264", "ferret"}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumApps() != 4 || w.NumThreads() != 64 {
		t.Fatalf("%d apps %d threads", w.NumApps(), w.NumThreads())
	}
	// canneal is the network hog; blackscholes barely registers.
	var light, heavy float64
	for i := range w.Apps {
		switch {
		case w.Apps[i].Name == "blackscholes-1":
			light = w.Apps[i].TotalRate()
		case w.Apps[i].Name == "canneal-2":
			heavy = w.Apps[i].TotalRate()
		}
	}
	if !(heavy > 10*light) {
		t.Errorf("canneal (%.1f) should dwarf blackscholes (%.1f)", heavy, light)
	}
	if _, err := FromPARSEC([]string{"doom"}, 4, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := FromPARSEC(nil, 4, 1); err == nil {
		t.Error("empty mix accepted")
	}
	for _, name := range PARSECProfileNames() {
		if _, ok := parsecProfiles[name]; !ok {
			t.Errorf("profile list names unknown benchmark %s", name)
		}
	}
}

func TestFromPARSECDeterministic(t *testing.T) {
	a, err := FromPARSEC([]string{"dedup", "vips"}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromPARSEC([]string{"dedup", "vips"}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	at, bt := a.Threads(), b.Threads()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatal("not deterministic")
		}
	}
}
