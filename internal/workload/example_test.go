package workload_test

import (
	"fmt"

	"obm/internal/workload"
)

// Build one of the paper's evaluation configurations and inspect its
// Table 3 statistics.
func ExampleConfig() {
	w, err := workload.Config("C1")
	if err != nil {
		panic(err)
	}
	rs := w.ComputeRateStats()
	fmt.Printf("%d applications, %d threads\n", w.NumApps(), w.NumThreads())
	fmt.Printf("cache rate mean %.3f (paper target 7.008)\n", rs.Cache.Mean)
	// Output:
	// 4 applications, 64 threads
	// cache rate mean 7.008 (paper target 7.008)
}

// Assemble a custom mix from named PARSEC benchmark profiles.
func ExampleFromPARSEC() {
	w, err := workload.FromPARSEC([]string{"blackscholes", "canneal"}, 4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("apps:", w.NumApps(), "threads:", w.NumThreads())
	fmt.Println("canneal heavier:", w.Apps[1].TotalRate() > w.Apps[0].TotalRate())
	// Output:
	// apps: 2 threads: 8
	// canneal heavier: true
}
