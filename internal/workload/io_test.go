package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	w := MustConfig("C2")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || got.NumApps() != w.NumApps() || got.NumThreads() != w.NumThreads() {
		t.Fatalf("shape mismatch: %s %d/%d", got.Name, got.NumApps(), got.NumThreads())
	}
	a, b := w.Threads(), got.Threads()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("thread %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &Workload{Name: "empty"}); err == nil {
		t.Error("invalid workload serialized")
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"name":"x","apps":[]}`,
		`{"name":"x","apps":[{"name":"a","threads":[]}]}`,
		`{"name":"x","apps":[{"name":"a","threads":[{"cache":-1,"mem":0}]}]}`,
		`{"name":"x","bogus":1,"apps":[{"name":"a","threads":[{"cache":1,"mem":0}]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestReadJSONHandWritten(t *testing.T) {
	src := `{
	  "name": "custom",
	  "apps": [
	    {"name": "db", "threads": [{"cache": 5, "mem": 1}, {"cache": 4, "mem": 0.5}]},
	    {"name": "web", "threads": [{"cache": 1, "mem": 0.1}]}
	  ]
	}`
	w, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumApps() != 2 || w.NumThreads() != 3 {
		t.Fatalf("parsed %d apps %d threads", w.NumApps(), w.NumThreads())
	}
	if w.Apps[0].Threads[1].CacheRate != 4 {
		t.Error("rates not parsed")
	}
}
