package hungarian_test

import (
	"fmt"

	"obm/internal/hungarian"
)

// Assign three workers to three jobs at minimum total cost.
func ExampleSolve() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := hungarian.Solve(cost)
	if err != nil {
		panic(err)
	}
	fmt.Println("assignment:", assign)
	fmt.Println("total cost:", total)
	// Output:
	// assignment: [1 0 2]
	// total cost: 5
}
