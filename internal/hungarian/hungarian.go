// Package hungarian solves the linear assignment problem in O(n^3) time
// using the Hungarian method in its shortest-augmenting-path (Jonker–
// Volgenant) formulation with dual potentials.
//
// The paper's SAM subproblem (Section IV.A, Algorithm 1) assigns the
// threads of one application to a set of tiles so that the application's
// total packet latency is minimized; its cost matrix entry is
// cost[j][k] = c_j*TC(k) + m_j*TM(k). The Global baseline solves the same
// problem over the whole chip.
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidCost is returned when a cost matrix contains NaN or -Inf, or
// is ragged/empty.
var ErrInvalidCost = errors.New("hungarian: invalid cost matrix")

// Solve finds, for an n x m cost matrix with n <= m, an assignment of
// every row to a distinct column minimizing the total cost. It returns
// rowToCol (length n) and the minimal total cost.
func Solve(cost [][]float64) (rowToCol []int, total float64, err error) {
	var s Solver
	// The Solver is local, so its reused buffer escapes as a fresh slice.
	return s.Solve(cost)
}

// Solver solves a sequence of assignment problems while reusing its
// internal arrays across calls, for hot paths that solve many instances
// (e.g. sort-select-swap's repeated SAM solves). The zero value is ready
// to use. Not safe for concurrent use; give each goroutine its own.
type Solver struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	rowToCol   []int
}

// Solve is identical to the package-level Solve — same algorithm, same
// float operations in the same order, bit-identical results — except the
// returned slice is owned by the Solver and overwritten by its next call.
func (s *Solver) Solve(cost [][]float64) (rowToCol []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty matrix", ErrInvalidCost)
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("%w: %d rows > %d cols", ErrInvalidCost, n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("%w: ragged row %d", ErrInvalidCost, i)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, -1) {
				return nil, 0, fmt.Errorf("%w: cost[%d][%d] = %v", ErrInvalidCost, i, j, c)
			}
		}
	}

	// Shortest augmenting path with potentials; 1-based internal arrays
	// with index 0 as the virtual root of each augmentation. u, v and p
	// must start zeroed (zero potentials, no column matched); minv and
	// used are initialized per row below, and way is only read on columns
	// the current row's search has already written.
	if cap(s.v) < m+1 {
		s.v = make([]float64, m+1)
		s.minv = make([]float64, m+1)
		s.p = make([]int, m+1)
		s.way = make([]int, m+1)
		s.used = make([]bool, m+1)
	}
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
		s.rowToCol = make([]int, n)
	}
	u := s.u[:n+1]
	v := s.v[:m+1]
	p := s.p[:m+1]     // p[j]: row matched to column j (0 = none)
	way := s.way[:m+1] // way[j]: previous column on the alternating path
	minv := s.minv[:m+1]
	used := s.used[:m+1]
	for i := range u {
		u[i] = 0
	}
	for j := range v {
		v[j] = 0
		p[j] = 0
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 {
				// Unreachable for finite costs; guards +Inf-only rows.
				return nil, 0, fmt.Errorf("%w: no augmenting path (all-Inf row?)", ErrInvalidCost)
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = s.rowToCol[:n]
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowToCol[i]]
	}
	return rowToCol, total, nil
}

// SolveMax finds the assignment maximizing total cost, by negating the
// matrix. Provided for completeness (e.g. reward-form formulations).
func SolveMax(cost [][]float64) (rowToCol []int, total float64, err error) {
	neg := make([][]float64, len(cost))
	for i, row := range cost {
		neg[i] = make([]float64, len(row))
		for j, c := range row {
			neg[i][j] = -c
		}
	}
	rowToCol, negTotal, err := Solve(neg)
	return rowToCol, -negTotal, err
}
