package hungarian

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"obm/internal/stats"
)

func TestSolveTrivial(t *testing.T) {
	assign, total, err := Solve([][]float64{{7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 1 || assign[0] != 0 || total != 7 {
		t.Errorf("assign=%v total=%v", assign, total)
	}
}

func TestSolveKnown(t *testing.T) {
	// Classic 3x3 example: optimal total is 5 (0->1:1, 1->0:2, 2->2:2).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
	used := map[int]bool{}
	for _, c := range assign {
		if used[c] {
			t.Fatal("column used twice")
		}
		used[c] = true
	}
}

func TestSolveRectangular(t *testing.T) {
	// 2 rows, 4 cols: pick the cheapest distinct columns.
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 1, 10, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Errorf("total = %v, want 3 (cols 1 and 3)", total)
	}
	if assign[0] != 1 || assign[1] != 3 {
		t.Errorf("assign = %v, want [1 3]", assign)
	}
}

func TestSolveErrors(t *testing.T) {
	cases := [][][]float64{
		{},                        // empty
		{{1, 2}, {1}},             // ragged
		{{1}, {2}},                // more rows than cols
		{{math.NaN()}},            // NaN
		{{math.Inf(-1)}},          // -Inf
		{{1, math.NaN()}, {1, 2}}, // NaN off-diagonal
	}
	for i, c := range cases {
		if _, _, err := Solve(c); !errors.Is(err, ErrInvalidCost) {
			t.Errorf("case %d: err = %v, want ErrInvalidCost", i, err)
		}
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Errorf("total = %v, want -10", total)
	}
}

func TestSolveMax(t *testing.T) {
	cost := [][]float64{
		{1, 9},
		{9, 1},
	}
	_, total, err := SolveMax(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 18 {
		t.Errorf("max total = %v, want 18", total)
	}
}

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	rng := stats.NewRand(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 4
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): Solve = %v, brute force = %v", trial, n, total, want)
		}
	}
}

// Property: the returned assignment is always a valid injection and its
// cost equals the reported total.
func TestSolveAssignmentValid(t *testing.T) {
	rng := stats.NewRand(7)
	f := func(seed uint64) bool {
		r := stats.NewRand(seed ^ rng.Uint64())
		n := 1 + r.Intn(10)
		m := n + r.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = r.Float64() * 50
			}
		}
		assign, total, err := Solve(cost)
		if err != nil {
			return false
		}
		used := make(map[int]bool)
		var sum float64
		for i, c := range assign {
			if c < 0 || c >= m || used[c] {
				return false
			}
			used[c] = true
			sum += cost[i][c]
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
