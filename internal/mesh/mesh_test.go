package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("New(0,5) should error")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("New(5,-1) should error")
	}
	m, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 4 || m.NumTiles() != 12 {
		t.Errorf("got %dx%d (%d tiles)", m.Rows(), m.Cols(), m.NumTiles())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0) should panic")
		}
	}()
	MustNew(0, 0)
}

func TestSquare(t *testing.T) {
	m, err := Square(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTiles() != 64 {
		t.Errorf("8x8 should have 64 tiles, got %d", m.NumTiles())
	}
}

func TestPaperNumbering(t *testing.T) {
	// Paper example (Section II.C): tile number 29 on an 8x8 mesh is at
	// the fourth row, fifth column (1-based).
	m := MustNew(8, 8)
	tile := m.FromPaperNumber(29)
	c := m.Coord(tile)
	if c.Row+1 != 4 || c.Col+1 != 5 {
		t.Errorf("paper tile 29 at 1-based (%d,%d), want (4,5)", c.Row+1, c.Col+1)
	}
	if m.PaperNumber(tile) != 29 {
		t.Errorf("round trip failed: %d", m.PaperNumber(tile))
	}
}

func TestCoordTileRoundTrip(t *testing.T) {
	m := MustNew(5, 7)
	for _, tl := range m.Tiles() {
		c := m.Coord(tl)
		if got := m.TileAt(c.Row, c.Col); got != tl {
			t.Fatalf("round trip %d -> %+v -> %d", tl, c, got)
		}
		if !m.Contains(tl) {
			t.Fatalf("Contains(%d) false", tl)
		}
	}
	if m.Contains(-1) || m.Contains(Tile(35)) {
		t.Error("Contains accepted out-of-range tile")
	}
}

func TestHops(t *testing.T) {
	m := MustNew(8, 8)
	cases := []struct {
		a, b Tile
		want int
	}{
		{0, 0, 0},
		{0, 7, 7},
		{0, 63, 14},
		{m.TileAt(3, 4), m.TileAt(3, 4), 0},
		{m.TileAt(2, 1), m.TileAt(5, 6), 8},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := m.Hops(c.b, c.a); got != c.want {
			t.Errorf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestAvgHopsToAllPaperValues(t *testing.T) {
	// Paper Section II.C: on the 8x8 mesh, HC(corner tile 1) = 7 and
	// HC(central tile 28) = 4.
	m := MustNew(8, 8)
	if got := m.AvgHopsToAll(m.FromPaperNumber(1)); got != 7 {
		t.Errorf("corner avg hops = %v, want 7", got)
	}
	if got := m.AvgHopsToAll(m.FromPaperNumber(28)); got != 4 {
		t.Errorf("central avg hops = %v, want 4", got)
	}
}

func TestAvgHopsToAllBruteForce(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {3, 5}, {8, 8}, {1, 1}, {2, 9}} {
		m := MustNew(dims[0], dims[1])
		for _, a := range m.Tiles() {
			var sum int
			for _, b := range m.Tiles() {
				sum += m.Hops(a, b)
			}
			want := float64(sum) / float64(m.NumTiles())
			if got := m.AvgHopsToAll(a); math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v tile %d: AvgHopsToAll = %v, want %v", dims, a, got, want)
			}
		}
	}
}

func TestHopsToNearestCorner(t *testing.T) {
	m := MustNew(8, 8)
	// Corners are 0 hops from themselves.
	for _, c := range m.Corners() {
		if got := m.HopsToNearestCorner(c); got != 0 {
			t.Errorf("corner %d: HM = %d, want 0", c, got)
		}
	}
	// Center tiles of an 8x8 are 3+3 = 6 hops from the nearest corner.
	if got := m.HopsToNearestCorner(m.TileAt(3, 3)); got != 6 {
		t.Errorf("center HM = %d, want 6", got)
	}
	// Matches brute force over corner set.
	for _, tl := range m.Tiles() {
		want := 1 << 30
		for _, c := range m.Corners() {
			if h := m.Hops(tl, c); h < want {
				want = h
			}
		}
		if got := m.HopsToNearestCorner(tl); got != want {
			t.Fatalf("tile %d: HM = %d, brute force %d", tl, got, want)
		}
	}
}

func TestCorners(t *testing.T) {
	m := MustNew(3, 4)
	c := m.Corners()
	want := [4]Tile{0, 3, 8, 11}
	if c != want {
		t.Errorf("Corners = %v, want %v", c, want)
	}
}

func TestQuadrants(t *testing.T) {
	m := MustNew(8, 8)
	cases := []struct {
		row, col int
		want     Quadrant
	}{
		{0, 0, TopLeft}, {0, 7, TopRight}, {7, 0, BottomLeft}, {7, 7, BottomRight},
		{3, 3, TopLeft}, {3, 4, TopRight}, {4, 3, BottomLeft}, {4, 4, BottomRight},
	}
	for _, c := range cases {
		if got := m.QuadrantOf(m.TileAt(c.row, c.col)); got != c.want {
			t.Errorf("QuadrantOf(%d,%d) = %v, want %v", c.row, c.col, got, c.want)
		}
	}
	for _, q := range []Quadrant{TopLeft, TopRight, BottomLeft, BottomRight} {
		corner := m.CornerOfQuadrant(q)
		if got := m.QuadrantOf(corner); got != q {
			t.Errorf("corner of %v is in quadrant %v", q, got)
		}
		if q.String() == "" {
			t.Error("empty quadrant name")
		}
	}
}

func TestNearestCornerMatchesQuadrantOnEvenMesh(t *testing.T) {
	m := MustNew(8, 8)
	for _, tl := range m.Tiles() {
		want := m.CornerOfQuadrant(m.QuadrantOf(tl))
		if got := m.NearestCorner(tl); m.Hops(tl, got) != m.Hops(tl, want) {
			t.Fatalf("tile %d: NearestCorner %d (%d hops) vs quadrant corner %d (%d hops)",
				tl, got, m.Hops(tl, got), want, m.Hops(tl, want))
		}
	}
}

func TestXYRoute(t *testing.T) {
	m := MustNew(4, 4)
	src, dst := m.TileAt(0, 0), m.TileAt(2, 3)
	path := m.XYRoute(src, dst)
	if len(path) != m.Hops(src, dst)+1 {
		t.Fatalf("path length %d, want %d", len(path), m.Hops(src, dst)+1)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatal("path endpoints wrong")
	}
	// X first: the first moves change only the column.
	c0, c1 := m.Coord(path[0]), m.Coord(path[1])
	if c0.Row != c1.Row {
		t.Error("XY routing should resolve X (column) first")
	}
	// Consecutive tiles are 1 hop apart.
	for i := 1; i < len(path); i++ {
		if m.Hops(path[i-1], path[i]) != 1 {
			t.Fatal("path not contiguous")
		}
	}
	// Self route.
	self := m.XYRoute(src, src)
	if len(self) != 1 || self[0] != src {
		t.Errorf("self route = %v", self)
	}
}

func TestString(t *testing.T) {
	if got := MustNew(8, 8).String(); got != "8x8 mesh (64 tiles)" {
		t.Errorf("String = %q", got)
	}
}

// Property: Hops is a metric (symmetry, identity, triangle inequality).
func TestHopsMetricProperties(t *testing.T) {
	m := MustNew(6, 7)
	n := m.NumTiles()
	f := func(a, b, c uint8) bool {
		ta, tb, tc := Tile(int(a)%n), Tile(int(b)%n), Tile(int(c)%n)
		hab, hba := m.Hops(ta, tb), m.Hops(tb, ta)
		return hab == hba &&
			m.Hops(ta, ta) == 0 &&
			m.Hops(ta, tc) <= hab+m.Hops(tb, tc) &&
			(hab > 0 || ta == tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusHops(t *testing.T) {
	m := MustNew(8, 8)
	cases := []struct {
		a, b Tile
		want int
	}{
		{0, 0, 0},
		{0, 7, 1},  // wrap across the row: 1 hop, not 7
		{0, 63, 2}, // corner to corner: 1+1 around both wraps
		{m.TileAt(0, 3), m.TileAt(0, 5), 2},
		{m.TileAt(2, 0), m.TileAt(6, 0), 4}, // 4 either way
	}
	for _, c := range cases {
		if got := m.TorusHops(c.a, c.b); got != c.want {
			t.Errorf("TorusHops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if m.TorusHops(c.a, c.b) != m.TorusHops(c.b, c.a) {
			t.Error("torus distance not symmetric")
		}
	}
	// Torus never exceeds mesh distance.
	for _, a := range m.Tiles() {
		for _, b := range m.Tiles() {
			if m.TorusHops(a, b) > m.Hops(a, b) {
				t.Fatalf("torus (%d,%d) longer than mesh", a, b)
			}
		}
	}
}

func TestAvgTorusHopsVertexTransitive(t *testing.T) {
	m := MustNew(8, 8)
	want := m.AvgTorusHopsToAll(0)
	for _, tl := range m.Tiles() {
		if got := m.AvgTorusHopsToAll(tl); math.Abs(got-want) > 1e-12 {
			t.Fatalf("tile %d: avg %v != %v (torus should be uniform)", tl, got, want)
		}
	}
	// 8x8 torus: per-dim avg distance = (0+1+2+3+4+3+2+1)/8 = 2; total 4.
	if math.Abs(want-4) > 1e-12 {
		t.Errorf("8x8 torus avg hops = %v, want 4", want)
	}
}
