// Package mesh models the geometry of a 2D-mesh NoC-based chip
// multiprocessor: tile numbering, coordinates, XY (dimension-order)
// routing distances, chip quadrants, and memory-controller placement.
//
// The paper (Section II.C) numbers tiles 1..N with
//
//	k = (i_k - 1) * n + j_k
//
// where i_k and j_k are the 1-based row and column. Internally this
// package uses 0-based Tile indices (0..N-1) because that is idiomatic for
// Go slices; PaperNumber and FromPaperNumber convert to and from the
// paper's 1-based numbering.
package mesh

import (
	"fmt"
)

// Tile identifies a tile by its 0-based index in row-major order.
type Tile int

// Coord is a 0-based (row, column) position on the mesh.
type Coord struct {
	Row, Col int
}

// Mesh is an immutable description of a rows x cols tile grid.
// The zero value is not usable; construct with New.
type Mesh struct {
	rows, cols int
}

// New returns a mesh with the given number of rows and columns.
// It returns an error if either dimension is not positive.
func New(rows, cols int) (*Mesh, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", rows, cols)
	}
	return &Mesh{rows: rows, cols: cols}, nil
}

// MustNew is New but panics on error; for use with constant dimensions.
func MustNew(rows, cols int) *Mesh {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Square returns an n x n mesh.
func Square(n int) (*Mesh, error) { return New(n, n) }

// Rows returns the number of rows.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mesh) Cols() int { return m.cols }

// NumTiles returns the total number of tiles N.
func (m *Mesh) NumTiles() int { return m.rows * m.cols }

// Contains reports whether t is a valid tile index for this mesh.
func (m *Mesh) Contains(t Tile) bool {
	return t >= 0 && int(t) < m.NumTiles()
}

// Coord returns the 0-based (row, col) of tile t.
func (m *Mesh) Coord(t Tile) Coord {
	return Coord{Row: int(t) / m.cols, Col: int(t) % m.cols}
}

// TileAt returns the tile at the 0-based (row, col).
func (m *Mesh) TileAt(row, col int) Tile {
	return Tile(row*m.cols + col)
}

// PaperNumber returns the 1-based tile number used in the paper (eq. 1).
func (m *Mesh) PaperNumber(t Tile) int { return int(t) + 1 }

// FromPaperNumber returns the tile for a 1-based paper tile number.
func (m *Mesh) FromPaperNumber(k int) Tile { return Tile(k - 1) }

// Hops returns the number of network hops between tiles a and b under
// XY dimension-order routing, which equals the Manhattan distance.
func (m *Mesh) Hops(a, b Tile) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.Row-cb.Row) + abs(ca.Col-cb.Col)
}

// AvgHopsToAll returns the average hop count from tile t to every tile of
// the mesh including itself (eq. 3 of the paper: the L2 bank a cache
// request targets is uniformly distributed over all N tiles).
func (m *Mesh) AvgHopsToAll(t Tile) float64 {
	c := m.Coord(t)
	return avgAxisDist(c.Row, m.rows) + avgAxisDist(c.Col, m.cols)
}

// avgAxisDist returns the mean |pos - x| for x uniform over [0, size).
func avgAxisDist(pos, size int) float64 {
	// Sum of distances to the left of pos is pos*(pos+1)/2; to the right is
	// (size-1-pos)*(size-pos)/2.
	left := pos * (pos + 1) / 2
	right := (size - 1 - pos) * (size - pos) / 2
	return float64(left+right) / float64(size)
}

// HopsToNearestCorner returns min(i,rows-1-i)+min(j,cols-1-j), the hop
// count from tile t to the nearest chip corner — eq. (4) of the paper,
// the on-chip distance of a memory-controller request when one controller
// sits at each corner and requests follow the proximity principle.
func (m *Mesh) HopsToNearestCorner(t Tile) int {
	c := m.Coord(t)
	return min(c.Row, m.rows-1-c.Row) + min(c.Col, m.cols-1-c.Col)
}

// Corners returns the four corner tiles in order
// (top-left, top-right, bottom-left, bottom-right). For a 1x1 mesh all
// four entries are tile 0.
func (m *Mesh) Corners() [4]Tile {
	return [4]Tile{
		m.TileAt(0, 0),
		m.TileAt(0, m.cols-1),
		m.TileAt(m.rows-1, 0),
		m.TileAt(m.rows-1, m.cols-1),
	}
}

// Quadrant identifies one of the four chip quadrants relative to center.
type Quadrant int

// Quadrants in reading order.
const (
	TopLeft Quadrant = iota
	TopRight
	BottomLeft
	BottomRight
)

func (q Quadrant) String() string {
	switch q {
	case TopLeft:
		return "top-left"
	case TopRight:
		return "top-right"
	case BottomLeft:
		return "bottom-left"
	case BottomRight:
		return "bottom-right"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}

// QuadrantOf returns the quadrant containing tile t. The chip is divided
// into four quadrants relative to its center (paper Section II.C); for odd
// dimensions the middle row/column is assigned to the top/left half, a
// documented tie-break the paper (even-sized meshes only) never exercises.
func (m *Mesh) QuadrantOf(t Tile) Quadrant {
	c := m.Coord(t)
	top := c.Row < (m.rows+1)/2
	left := c.Col < (m.cols+1)/2
	switch {
	case top && left:
		return TopLeft
	case top && !left:
		return TopRight
	case !top && left:
		return BottomLeft
	default:
		return BottomRight
	}
}

// CornerOfQuadrant returns the corner tile belonging to quadrant q.
func (m *Mesh) CornerOfQuadrant(q Quadrant) Tile {
	switch q {
	case TopLeft:
		return m.TileAt(0, 0)
	case TopRight:
		return m.TileAt(0, m.cols-1)
	case BottomLeft:
		return m.TileAt(m.rows-1, 0)
	default:
		return m.TileAt(m.rows-1, m.cols-1)
	}
}

// NearestCorner returns the corner tile closest to t (the memory
// controller that serves t under the proximity principle). This equals
// CornerOfQuadrant(QuadrantOf(t)) on even meshes.
func (m *Mesh) NearestCorner(t Tile) Tile {
	corners := m.Corners()
	best := corners[0]
	bestHops := m.Hops(t, best)
	for _, c := range corners[1:] {
		if h := m.Hops(t, c); h < bestHops {
			best, bestHops = c, h
		}
	}
	return best
}

// XYRoute returns the ordered list of tiles a packet traverses from src to
// dst under XY routing, inclusive of both endpoints. The X (column)
// dimension is resolved first, as in the paper's dimension-order routing.
func (m *Mesh) XYRoute(src, dst Tile) []Tile {
	cs, cd := m.Coord(src), m.Coord(dst)
	path := make([]Tile, 0, m.Hops(src, dst)+1)
	row, col := cs.Row, cs.Col
	path = append(path, m.TileAt(row, col))
	for col != cd.Col {
		col += sign(cd.Col - col)
		path = append(path, m.TileAt(row, col))
	}
	for row != cd.Row {
		row += sign(cd.Row - row)
		path = append(path, m.TileAt(row, col))
	}
	return path
}

// Tiles returns all tile indices 0..N-1 in row-major order.
func (m *Mesh) Tiles() []Tile {
	ts := make([]Tile, m.NumTiles())
	for i := range ts {
		ts[i] = Tile(i)
	}
	return ts
}

// String implements fmt.Stringer.
func (m *Mesh) String() string {
	return fmt.Sprintf("%dx%d mesh (%d tiles)", m.rows, m.cols, m.NumTiles())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// TorusHops returns the hop count between a and b when the mesh's rows
// and columns wrap around (a 2D torus): per dimension the shorter way
// around the ring.
func (m *Mesh) TorusHops(a, b Tile) int {
	ca, cb := m.Coord(a), m.Coord(b)
	dr := abs(ca.Row - cb.Row)
	if w := m.rows - dr; w < dr {
		dr = w
	}
	dc := abs(ca.Col - cb.Col)
	if w := m.cols - dc; w < dc {
		dc = w
	}
	return dr + dc
}

// AvgTorusHopsToAll returns the average torus hop count from t to every
// tile including itself. A torus is vertex-transitive, so the value is
// the same for every tile — which is exactly why the paper's
// cache-latency imbalance vanishes on a torus.
func (m *Mesh) AvgTorusHopsToAll(t Tile) float64 {
	var sum int
	for _, o := range m.Tiles() {
		sum += m.TorusHops(t, o)
	}
	return float64(sum) / float64(m.NumTiles())
}
