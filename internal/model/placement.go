package model

import (
	"fmt"

	"obm/internal/mesh"
)

// Placement is a set of memory-controller locations on the mesh. The
// paper fixes one controller per corner (Table 2); real CMPs also ship
// edge-center and diagonal arrangements, and the mapping problem only
// sees them through the TM(k) array, so the model supports any
// placement. Requests follow the proximity principle: each tile uses
// its nearest controller.
type Placement struct {
	name  string
	tiles []mesh.Tile
}

// Name identifies the placement in experiment output.
func (p Placement) Name() string { return p.name }

// Tiles returns the controller locations.
func (p Placement) Tiles() []mesh.Tile {
	return append([]mesh.Tile(nil), p.tiles...)
}

// Validate reports an error for empty or out-of-range placements.
func (p Placement) Validate(m *mesh.Mesh) error {
	if len(p.tiles) == 0 {
		return fmt.Errorf("model: placement %q has no controllers", p.name)
	}
	for _, t := range p.tiles {
		if !m.Contains(t) {
			return fmt.Errorf("model: placement %q controller %d outside %v", p.name, t, m)
		}
	}
	return nil
}

// Nearest returns the placement's controller closest to t (ties to the
// lowest tile index) and the hop distance, under mesh distances.
func (p Placement) Nearest(m *mesh.Mesh, t mesh.Tile) (mesh.Tile, int) {
	return p.NearestBy(m, t, m.Hops)
}

// NearestBy is Nearest under an arbitrary distance function (e.g.
// (*mesh.Mesh).TorusHops for wrap-around interconnects).
func (p Placement) NearestBy(m *mesh.Mesh, t mesh.Tile, hops func(a, b mesh.Tile) int) (mesh.Tile, int) {
	best := p.tiles[0]
	bestHops := hops(t, best)
	for _, c := range p.tiles[1:] {
		if h := hops(t, c); h < bestHops {
			best, bestHops = c, h
		}
	}
	return best, bestHops
}

// CornersPlacement is the paper's arrangement: one controller per chip
// corner.
func CornersPlacement(m *mesh.Mesh) Placement {
	c := m.Corners()
	return Placement{name: "corners", tiles: c[:]}
}

// EdgeCentersPlacement puts one controller at the middle of each chip
// edge (top, bottom, left, right) — the arrangement of e.g. Tilera-class
// parts.
func EdgeCentersPlacement(m *mesh.Mesh) Placement {
	midR, midC := (m.Rows()-1)/2, (m.Cols()-1)/2
	return Placement{name: "edge-centers", tiles: []mesh.Tile{
		m.TileAt(0, midC),
		m.TileAt(m.Rows()-1, midC),
		m.TileAt(midR, 0),
		m.TileAt(midR, m.Cols()-1),
	}}
}

// DiagonalPlacement spreads four controllers along the main diagonal,
// trading corner proximity for center proximity.
func DiagonalPlacement(m *mesh.Mesh) Placement {
	n := min(m.Rows(), m.Cols())
	pick := func(i int) mesh.Tile {
		pos := i * (n - 1) / 3
		return m.TileAt(pos, pos)
	}
	return Placement{name: "diagonal", tiles: []mesh.Tile{pick(0), pick(1), pick(2), pick(3)}}
}

// CustomPlacement builds a placement from explicit tiles.
func CustomPlacement(name string, tiles []mesh.Tile) Placement {
	return Placement{name: name, tiles: append([]mesh.Tile(nil), tiles...)}
}
