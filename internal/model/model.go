// Package model implements the analytic on-chip packet-latency model of
// Section II.C of the paper: the per-tile average latency of shared-L2
// cache traffic, TC(k), and of memory-controller traffic, TM(k), on a
// mesh-based CMP.
//
// The service latency of a packet from tile k to tile k' is (eq. 2)
//
//	TD_k(k') = H_k(k') * (td_r + td_w + td_q) + td_s
//
// where H is the XY-routing hop count, td_r/td_w/td_q are the per-hop
// router, wire and average queuing latencies, and td_s is the
// serialization latency. A packet whose destination equals its source
// needs no network traversal and incurs no serialization latency.
//
// Because L2 banks are address-interleaved uniformly over all N tiles,
// the cache-traffic latency of tile k averages TD over all destinations:
//
//	TC(k) = avgHops(k) * perHop + td_s * (N-1)/N
//
// The (N-1)/N factor is the probability that the hashed bank is remote;
// the paper's Figure 5 worked example (4x4 mesh, td_r=3, td_w=1, td_s=1,
// APLs 10.3375 and 11.5375 cycles) pins this form down exactly, and the
// unit tests reproduce those numbers digit-for-digit.
//
// Memory-controller traffic goes to the nearest of the four corner
// controllers (proximity principle, eq. 4):
//
//	TM(k) = HM(k) * perHop + td_s   (td_s dropped when HM(k)=0)
//
// The HM(k)=0 case (a corner tile talking to its own controller) is not
// specified by the paper; we treat it like the local-bank case since no
// network communication occurs. This is a documented assumption.
package model

import (
	"fmt"

	"obm/internal/mesh"
)

// Params holds the latency-model cycle parameters of eq. (2).
type Params struct {
	// TdR is the per-hop router pipeline latency in cycles (the paper
	// evaluates a canonical 3-stage router, so TdR = 3).
	TdR float64
	// TdW is the per-hop link/wire traversal latency in cycles.
	TdW float64
	// TdQ is the average per-hop queuing latency in cycles. The paper
	// observes 0..1 cycles at the loads evaluated.
	TdQ float64
	// TdS is the average serialization latency in cycles: packet length
	// over channel bandwidth, averaged over the packet mix (single-flit
	// 16-bit-payload requests and 5-flit 64-byte data replies on
	// 128-bit links).
	TdS float64
}

// PerHop returns the total per-hop latency td_r + td_w + td_q.
func (p Params) PerHop() float64 { return p.TdR + p.TdW + p.TdQ }

// Validate reports an error if any parameter is negative.
func (p Params) Validate() error {
	if p.TdR < 0 || p.TdW < 0 || p.TdQ < 0 || p.TdS < 0 {
		return fmt.Errorf("model: negative latency parameter: %+v", p)
	}
	return nil
}

// DefaultParams returns the cycle parameters used for the paper's 8x8
// evaluation platform (Table 2): a 3-stage wormhole router (td_r = 3),
// single-cycle links (td_w = 1), near-empty queues (td_q = 0), and an
// average serialization latency of 2.75 cycles for the request/forward/
// reply packet mix measured by our flit-level simulator. These defaults
// put the random-mapping global APL at ~22.6 cycles, matching Table 1.
func DefaultParams() Params {
	return Params{TdR: 3, TdW: 1, TdQ: 0, TdS: 2.75}
}

// Figure5Params returns the parameters of the paper's Figure 5 worked
// example (td_r = 3, td_w = 1, td_s = 1, zero queuing).
func Figure5Params() Params {
	return Params{TdR: 3, TdW: 1, TdQ: 0, TdS: 1}
}

// LatencyModel precomputes the TC and TM arrays for a mesh and parameter
// set. It is immutable after construction and safe for concurrent use.
type LatencyModel struct {
	mesh      *mesh.Mesh
	params    Params
	placement Placement
	topology  Topology
	tc        []float64
	tm        []float64
}

// New builds the latency model for m with parameters p and the paper's
// corner memory-controller placement.
func New(m *mesh.Mesh, p Params) (*LatencyModel, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil mesh")
	}
	return NewWithPlacement(m, p, CornersPlacement(m))
}

// NewWithPlacement builds the latency model with an explicit
// memory-controller placement; TM(k) becomes the latency to the nearest
// controller of that placement (proximity principle), generalizing
// eq. (4).
func NewWithPlacement(m *mesh.Mesh, p Params, pl Placement) (*LatencyModel, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil mesh")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(m); err != nil {
		return nil, err
	}
	n := m.NumTiles()
	lm := &LatencyModel{
		mesh:      m,
		params:    p,
		placement: pl,
		tc:        make([]float64, n),
		tm:        make([]float64, n),
	}
	perHop := p.PerHop()
	remoteFrac := float64(n-1) / float64(n)
	for t := 0; t < n; t++ {
		tile := mesh.Tile(t)
		lm.tc[t] = m.AvgHopsToAll(tile)*perHop + p.TdS*remoteFrac
		_, hops := pl.Nearest(m, tile)
		if hops == 0 {
			lm.tm[t] = 0
		} else {
			lm.tm[t] = float64(hops)*perHop + p.TdS
		}
	}
	return lm, nil
}

// NewTable builds a latency model from explicit per-tile TC and TM
// arrays instead of the mesh-geometry formulas. This is how the
// NP-completeness reduction of Section III.C instantiates arbitrary
// instances (TC(k) = s_k from a set-partition input), and it lets users
// model irregular chips whose latencies come from measurement rather
// than the analytic model.
func NewTable(m *mesh.Mesh, p Params, tc, tm []float64) (*LatencyModel, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil mesh")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := m.NumTiles()
	if len(tc) != n || len(tm) != n {
		return nil, fmt.Errorf("model: table lengths %d/%d for %d tiles", len(tc), len(tm), n)
	}
	for i := 0; i < n; i++ {
		if tc[i] < 0 || tm[i] < 0 {
			return nil, fmt.Errorf("model: negative latency in table at tile %d", i)
		}
	}
	return &LatencyModel{
		mesh:      m,
		params:    p,
		placement: CornersPlacement(m),
		tc:        append([]float64(nil), tc...),
		tm:        append([]float64(nil), tm...),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(m *mesh.Mesh, p Params) *LatencyModel {
	lm, err := New(m, p)
	if err != nil {
		panic(err)
	}
	return lm
}

// Mesh returns the mesh the model was built for.
func (lm *LatencyModel) Mesh() *mesh.Mesh { return lm.mesh }

// Params returns the cycle parameters of the model.
func (lm *LatencyModel) Params() Params { return lm.params }

// Placement returns the memory-controller placement the model was built
// with.
func (lm *LatencyModel) Placement() Placement { return lm.placement }

// Topology returns the interconnect topology the model assumes.
func (lm *LatencyModel) Topology() Topology { return lm.topology }

// NumTiles returns the number of tiles N.
func (lm *LatencyModel) NumTiles() int { return lm.mesh.NumTiles() }

// TC returns the average on-chip latency (cycles) of shared-cache traffic
// originating at tile t.
func (lm *LatencyModel) TC(t mesh.Tile) float64 { return lm.tc[t] }

// TM returns the average on-chip latency (cycles) of memory-controller
// traffic originating at tile t.
func (lm *LatencyModel) TM(t mesh.Tile) float64 { return lm.tm[t] }

// TCArray returns a copy of the TC array indexed by tile.
func (lm *LatencyModel) TCArray() []float64 {
	out := make([]float64, len(lm.tc))
	copy(out, lm.tc)
	return out
}

// TMArray returns a copy of the TM array indexed by tile.
func (lm *LatencyModel) TMArray() []float64 {
	out := make([]float64, len(lm.tm))
	copy(out, lm.tm)
	return out
}

// TD returns the point-to-point service latency of a single packet from
// src to dst (eq. 2), with no serialization cost when src == dst.
func (lm *LatencyModel) TD(src, dst mesh.Tile) float64 {
	if src == dst {
		return 0
	}
	h := float64(lm.mesh.Hops(src, dst))
	return h*lm.params.PerHop() + lm.params.TdS
}

// Cost returns the assignment cost of placing a thread with cache request
// rate c and memory request rate m on tile t (eq. 13):
// c*TC(t) + m*TM(t).
func (lm *LatencyModel) Cost(c, m float64, t mesh.Tile) float64 {
	return c*lm.tc[t] + m*lm.tm[t]
}
