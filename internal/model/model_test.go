package model

import (
	"math"
	"testing"
	"testing/quick"

	"obm/internal/mesh"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{TdR: 3, TdW: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{TdR: -1}).Validate(); err == nil {
		t.Error("negative TdR accepted")
	}
}

func TestPerHop(t *testing.T) {
	p := Params{TdR: 3, TdW: 1, TdQ: 0.5}
	if got := p.PerHop(); got != 4.5 {
		t.Errorf("PerHop = %v, want 4.5", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultParams()); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := New(mesh.MustNew(4, 4), Params{TdR: -1}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with nil mesh should panic")
		}
	}()
	MustNew(nil, DefaultParams())
}

// TestFigure5TCValues pins the TC formula against the paper's Figure 5
// worked example: a 4x4 mesh with td_r=3, td_w=1, td_s=1 must produce
// per-tile cache latencies 12.9375 (corner), 10.9375 (edge), 8.9375
// (center).
func TestFigure5TCValues(t *testing.T) {
	m := mesh.MustNew(4, 4)
	lm := MustNew(m, Figure5Params())
	cases := []struct {
		row, col int
		want     float64
	}{
		{0, 0, 12.9375}, // corner: 3 avg hops * 4 + 15/16
		{0, 1, 10.9375}, // edge: 2.5 avg hops * 4 + 15/16
		{1, 1, 8.9375},  // center: 2 avg hops * 4 + 15/16
	}
	for _, c := range cases {
		got := lm.TC(m.TileAt(c.row, c.col))
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TC(%d,%d) = %v, want %v", c.row, c.col, got, c.want)
		}
	}
}

// TestFigure5APLs reproduces the two APL values of Figure 5 exactly:
// the optimal mapping yields APL 10.3375 for every application, and the
// "equally bad" mapping yields 11.5375.
func TestFigure5APLs(t *testing.T) {
	m := mesh.MustNew(4, 4)
	lm := MustNew(m, Figure5Params())
	// One application's four threads with cache rates 0.1..0.4; each app
	// in Figure 5(a) receives one corner, two edges, one center, with the
	// heaviest thread on the lowest-latency tile.
	corner := lm.TC(m.TileAt(0, 0))
	edge := lm.TC(m.TileAt(0, 1))
	center := lm.TC(m.TileAt(1, 1))
	optimal := (0.4*center + 0.3*edge + 0.2*edge + 0.1*corner) / 1.0
	if math.Abs(optimal-10.3375) > 1e-12 {
		t.Errorf("optimal APL = %v, want 10.3375", optimal)
	}
	bad := (0.1*center + 0.2*edge + 0.3*edge + 0.4*corner) / 1.0
	if math.Abs(bad-11.5375) > 1e-12 {
		t.Errorf("equal-but-bad APL = %v, want 11.5375", bad)
	}
}

func TestTCAgainstDefinition(t *testing.T) {
	// TC(k) must equal the average over all destinations of the
	// point-to-point latency TD(k, k') (with TD(k,k) = 0).
	m := mesh.MustNew(5, 3)
	lm := MustNew(m, Params{TdR: 2, TdW: 1, TdQ: 0.5, TdS: 2})
	for _, src := range m.Tiles() {
		var sum float64
		for _, dst := range m.Tiles() {
			sum += lm.TD(src, dst)
		}
		want := sum / float64(m.NumTiles())
		if got := lm.TC(src); math.Abs(got-want) > 1e-9 {
			t.Fatalf("TC(%d) = %v, want %v", src, got, want)
		}
	}
}

func TestTMValues(t *testing.T) {
	m := mesh.MustNew(8, 8)
	p := DefaultParams()
	lm := MustNew(m, p)
	// Corner tiles host their own controller: zero latency.
	for _, c := range m.Corners() {
		if got := lm.TM(c); got != 0 {
			t.Errorf("TM(corner %d) = %v, want 0", c, got)
		}
	}
	// A center tile is 6 hops from its nearest corner.
	want := 6*p.PerHop() + p.TdS
	if got := lm.TM(m.TileAt(3, 3)); math.Abs(got-want) > 1e-12 {
		t.Errorf("TM(center) = %v, want %v", got, want)
	}
}

func TestTCTMSymmetry(t *testing.T) {
	// The mesh is 4-fold symmetric: tiles mapped onto each other by
	// horizontal/vertical reflection must share TC and TM.
	m := mesh.MustNew(8, 8)
	lm := MustNew(m, DefaultParams())
	for _, tl := range m.Tiles() {
		c := m.Coord(tl)
		reflH := m.TileAt(c.Row, 7-c.Col)
		reflV := m.TileAt(7-c.Row, c.Col)
		for _, r := range []mesh.Tile{reflH, reflV} {
			if math.Abs(lm.TC(tl)-lm.TC(r)) > 1e-12 {
				t.Fatalf("TC asymmetric: %d vs %d", tl, r)
			}
			if math.Abs(lm.TM(tl)-lm.TM(r)) > 1e-12 {
				t.Fatalf("TM asymmetric: %d vs %d", tl, r)
			}
		}
	}
}

func TestCenterHasSmallerTCCornerHasSmallerTM(t *testing.T) {
	// Section II.C: TC is smaller in the center, larger at corners; TM is
	// the opposite. This is the tension the algorithm exploits.
	m := mesh.MustNew(8, 8)
	lm := MustNew(m, DefaultParams())
	corner, center := m.TileAt(0, 0), m.TileAt(3, 3)
	if !(lm.TC(center) < lm.TC(corner)) {
		t.Error("TC(center) should be < TC(corner)")
	}
	if !(lm.TM(corner) < lm.TM(center)) {
		t.Error("TM(corner) should be < TM(center)")
	}
}

func TestArraysAreCopies(t *testing.T) {
	lm := MustNew(mesh.MustNew(4, 4), DefaultParams())
	tc := lm.TCArray()
	tc[0] = -999
	if lm.TC(0) == -999 {
		t.Error("TCArray leaked internal state")
	}
	tm := lm.TMArray()
	tm[5] = -999
	if lm.TM(5) == -999 {
		t.Error("TMArray leaked internal state")
	}
}

func TestTDProperties(t *testing.T) {
	m := mesh.MustNew(6, 6)
	lm := MustNew(m, DefaultParams())
	n := m.NumTiles()
	f := func(a, b uint8) bool {
		ta, tb := mesh.Tile(int(a)%n), mesh.Tile(int(b)%n)
		td := lm.TD(ta, tb)
		if ta == tb {
			return td == 0
		}
		// Latency grows with hops and includes serialization.
		return td >= lm.Params().PerHop() && td == lm.TD(tb, ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCost(t *testing.T) {
	m := mesh.MustNew(4, 4)
	lm := MustNew(m, Figure5Params())
	tl := m.TileAt(0, 0)
	want := 2*lm.TC(tl) + 3*lm.TM(tl)
	if got := lm.Cost(2, 3, tl); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestDefaultParamsRandomGAPLNearPaper(t *testing.T) {
	// With the default parameters, the expected g-APL of a random mapping
	// on the 8x8 mesh with cache traffic ~6.78x memory traffic should be
	// near the paper's Table 1 random average of ~22.6 cycles.
	m := mesh.MustNew(8, 8)
	lm := MustNew(m, DefaultParams())
	var tcMean, tmMean float64
	for _, tl := range m.Tiles() {
		tcMean += lm.TC(tl)
		tmMean += lm.TM(tl)
	}
	tcMean /= 64
	tmMean /= 64
	cacheFrac := 6.78 / 7.78
	g := cacheFrac*tcMean + (1-cacheFrac)*tmMean
	if g < 21.5 || g > 23.5 {
		t.Errorf("expected random g-APL = %.3f, want within [21.5, 23.5] (paper: 22.61)", g)
	}
}
