package model

import (
	"fmt"

	"obm/internal/mesh"
)

// Topology selects the interconnect shape the latency model (and the
// flit-level simulator) assumes.
type Topology int

// Topologies.
const (
	// TopologyMesh is the paper's 2D mesh.
	TopologyMesh Topology = iota
	// TopologyTorus adds wrap-around links in both dimensions. A torus
	// is vertex-transitive, so TC(k) becomes constant — the cache-side
	// imbalance the paper balances disappears by construction, leaving
	// only the memory-controller component. The topology experiment
	// quantifies this.
	TopologyTorus
)

func (t Topology) String() string {
	switch t {
	case TopologyMesh:
		return "mesh"
	case TopologyTorus:
		return "torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// NewTorus builds the latency model for a torus interconnect with the
// given controller placement: eqs. (3) and (4) with wrapped distances.
func NewTorus(m *mesh.Mesh, p Params, pl Placement) (*LatencyModel, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil mesh")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(m); err != nil {
		return nil, err
	}
	n := m.NumTiles()
	lm := &LatencyModel{
		mesh:      m,
		params:    p,
		placement: pl,
		topology:  TopologyTorus,
		tc:        make([]float64, n),
		tm:        make([]float64, n),
	}
	perHop := p.PerHop()
	remoteFrac := float64(n-1) / float64(n)
	for t := 0; t < n; t++ {
		tile := mesh.Tile(t)
		lm.tc[t] = m.AvgTorusHopsToAll(tile)*perHop + p.TdS*remoteFrac
		_, hops := pl.NearestBy(m, tile, m.TorusHops)
		if hops == 0 {
			lm.tm[t] = 0
		} else {
			lm.tm[t] = float64(hops)*perHop + p.TdS
		}
	}
	return lm, nil
}
