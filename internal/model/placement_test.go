package model

import (
	"math"
	"testing"

	"obm/internal/mesh"
)

func TestCornersPlacement(t *testing.T) {
	m := mesh.MustNew(8, 8)
	pl := CornersPlacement(m)
	if pl.Name() != "corners" {
		t.Errorf("name = %q", pl.Name())
	}
	tiles := pl.Tiles()
	if len(tiles) != 4 {
		t.Fatalf("%d controllers", len(tiles))
	}
	want := m.Corners()
	for i, tl := range tiles {
		if tl != want[i] {
			t.Errorf("controller %d = %v, want %v", i, tl, want[i])
		}
	}
	if err := pl.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestEdgeCentersPlacement(t *testing.T) {
	m := mesh.MustNew(8, 8)
	pl := EdgeCentersPlacement(m)
	if err := pl.Validate(m); err != nil {
		t.Fatal(err)
	}
	for _, tl := range pl.Tiles() {
		c := m.Coord(tl)
		onEdge := c.Row == 0 || c.Row == 7 || c.Col == 0 || c.Col == 7
		if !onEdge {
			t.Errorf("controller %v not on an edge", c)
		}
		if (c.Row == 0 || c.Row == 7) && (c.Col == 0 || c.Col == 7) {
			t.Errorf("controller %v is a corner, want edge centers", c)
		}
	}
}

func TestDiagonalPlacement(t *testing.T) {
	m := mesh.MustNew(8, 8)
	pl := DiagonalPlacement(m)
	if err := pl.Validate(m); err != nil {
		t.Fatal(err)
	}
	for _, tl := range pl.Tiles() {
		c := m.Coord(tl)
		if c.Row != c.Col {
			t.Errorf("controller %v off the diagonal", c)
		}
	}
}

func TestPlacementValidate(t *testing.T) {
	m := mesh.MustNew(4, 4)
	if err := (Placement{}).Validate(m); err == nil {
		t.Error("empty placement accepted")
	}
	bad := CustomPlacement("bad", []mesh.Tile{99})
	if err := bad.Validate(m); err == nil {
		t.Error("out-of-range controller accepted")
	}
}

func TestPlacementNearest(t *testing.T) {
	m := mesh.MustNew(8, 8)
	pl := CornersPlacement(m)
	for _, tl := range m.Tiles() {
		c, hops := pl.Nearest(m, tl)
		if hops != m.HopsToNearestCorner(tl) {
			t.Fatalf("tile %d: nearest hops %d, eq(4) gives %d", tl, hops, m.HopsToNearestCorner(tl))
		}
		if m.Hops(tl, c) != hops {
			t.Fatal("returned controller does not match returned distance")
		}
	}
}

// TestTMDependsOnPlacement: edge-center controllers favor edge-center
// tiles; corner controllers favor corners.
func TestTMDependsOnPlacement(t *testing.T) {
	m := mesh.MustNew(8, 8)
	p := DefaultParams()
	corners, err := NewWithPlacement(m, p, CornersPlacement(m))
	if err != nil {
		t.Fatal(err)
	}
	edges, err := NewWithPlacement(m, p, EdgeCentersPlacement(m))
	if err != nil {
		t.Fatal(err)
	}
	cornerTile := m.TileAt(0, 0)
	edgeTile := m.TileAt(0, 3) // next to the top edge-center (0, 3 or 0,4)
	if !(corners.TM(cornerTile) < edges.TM(cornerTile)) {
		t.Error("corner tile should prefer corner controllers")
	}
	if !(edges.TM(edgeTile) < corners.TM(edgeTile)) {
		t.Error("edge-center tile should prefer edge-center controllers")
	}
	// TC is placement-independent.
	for _, tl := range m.Tiles() {
		if corners.TC(tl) != edges.TC(tl) {
			t.Fatal("TC must not depend on controller placement")
		}
	}
}

func TestNewWithPlacementValidation(t *testing.T) {
	m := mesh.MustNew(4, 4)
	if _, err := NewWithPlacement(nil, DefaultParams(), CornersPlacement(m)); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := NewWithPlacement(m, DefaultParams(), Placement{}); err == nil {
		t.Error("empty placement accepted")
	}
}

func TestDefaultPlacementIsCorners(t *testing.T) {
	m := mesh.MustNew(8, 8)
	lm := MustNew(m, DefaultParams())
	if lm.Placement().Name() != "corners" {
		t.Errorf("default placement = %q, want corners", lm.Placement().Name())
	}
}

func TestTorusModel(t *testing.T) {
	m := mesh.MustNew(8, 8)
	lm, err := NewTorus(m, DefaultParams(), CornersPlacement(m))
	if err != nil {
		t.Fatal(err)
	}
	if lm.Topology() != TopologyTorus {
		t.Error("topology not recorded")
	}
	if TopologyMesh.String() != "mesh" || TopologyTorus.String() != "torus" || Topology(9).String() == "" {
		t.Error("topology names wrong")
	}
	// Vertex transitivity: TC constant across all tiles.
	want := lm.TC(0)
	for _, tl := range m.Tiles() {
		if lm.TC(tl) != want {
			t.Fatalf("torus TC not uniform: TC(%d)=%v vs %v", tl, lm.TC(tl), want)
		}
	}
	// 8x8 torus: 4 avg hops * 4 cycles + 2.75*(63/64).
	wantTC := 4*4.0 + 2.75*63/64
	if math.Abs(want-wantTC) > 1e-12 {
		t.Errorf("torus TC = %v, want %v", want, wantTC)
	}
	// TM still varies (controllers are fixed points) but uses wrapped
	// distances, so it never exceeds the mesh value anywhere.
	meshLM := MustNew(m, DefaultParams())
	for _, tl := range m.Tiles() {
		if lm.TM(tl) > meshLM.TM(tl)+1e-9 {
			t.Fatalf("torus TM(%d)=%v exceeds mesh %v", tl, lm.TM(tl), meshLM.TM(tl))
		}
	}
	if lm.TM(m.TileAt(7, 7)) != 0 {
		t.Error("controller tile should still have TM 0")
	}
}

func TestNewTorusValidation(t *testing.T) {
	m := mesh.MustNew(4, 4)
	if _, err := NewTorus(nil, DefaultParams(), CornersPlacement(m)); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := NewTorus(m, Params{TdR: -1}, CornersPlacement(m)); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewTorus(m, DefaultParams(), Placement{}); err == nil {
		t.Error("empty placement accepted")
	}
}
