package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusPinnedOutput builds a registry with one metric of
// each kind and pins the exact exposition bytes: type lines, sample
// ordering (counters, then gauges, then histograms, each sorted by
// name), cumulative bucket counts, the +Inf bucket, and name
// sanitization of dotted registry names.
func TestWritePrometheusPinnedOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("artifact.disk.hits").Add(3)
	r.Counter("noc.flits.injected").Add(120)
	r.Gauge("service.jobs.running").Set(2)
	h := r.Histogram("engine.job.seconds", []float64{0.5, 1, 2})
	h.Observe(0.25) // bucket le=0.5
	h.Observe(0.75) // bucket le=1
	h.Observe(1.5)  // bucket le=2
	h.Observe(9)    // overflow (+Inf only)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE artifact_disk_hits counter
artifact_disk_hits 3
# TYPE noc_flits_injected counter
noc_flits_injected 120
# TYPE service_jobs_running gauge
service_jobs_running 2
# TYPE engine_job_seconds histogram
engine_job_seconds_bucket{le="0.5"} 1
engine_job_seconds_bucket{le="1"} 2
engine_job_seconds_bucket{le="2"} 3
engine_job_seconds_bucket{le="+Inf"} 4
engine_job_seconds_sum 11.5
engine_job_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromName pins the sanitization rules.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"artifact.mem.hits":  "artifact_mem_hits",
		"already_fine:name":  "already_fine:name",
		"9starts.with.digit": "_9starts_with_digit",
		"spaces and-dashes":  "spaces_and_dashes",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusEmptySnapshot writes nothing for an empty registry.
func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty snapshot produced output: %q", b.String())
	}
}
