package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric followed by its
// samples. Counters and gauges are single samples; histograms expand to
// the conventional cumulative `_bucket{le="…"}` series (including the
// implicit `+Inf` bucket) plus `_sum` and `_count`.
//
// Metric names are sanitized for Prometheus (every character outside
// [a-zA-Z0-9_:] becomes '_'), so the registry's dotted names scrape as
// e.g. artifact_disk_hits. Snapshots are sorted by name, so the output
// is deterministic for a quiescent registry — the daemon's /metrics
// endpoint and obmsim's prom-format -metrics both write through here
// and produce identical bytes for identical snapshots.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus name
// charset: [a-zA-Z0-9_:], with a leading digit guarded by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float sample the way Prometheus clients
// conventionally do: shortest round-trip representation.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
