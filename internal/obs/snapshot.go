package obs

import "sort"

// Snapshot is a stable, renderable copy of a registry's state. Metric
// slices are sorted by name, so a quiescent registry snapshots
// deterministically (deep-equal, byte-identical JSON). The JSON form
// is the payload of cmd/obmsim's obsim.metrics/v1 block.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// CounterSnap is one counter's reading.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's reading.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram's full state: Counts[i] pairs with
// Bounds[i]; the final extra element of Counts is the overflow bucket.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound for the q-th quantile (0..1): the
// bucket boundary at which the cumulative count reaches q·Count.
// Samples in the overflow bucket report the last bound.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Counter returns the named counter's value and whether it exists.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value and whether it exists.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram's snapshot and whether it
// exists.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// Snapshot copies the registry's current state. Empty metrics are
// included (a created counter reports 0), so a snapshot's shape depends
// only on what was registered, not on activity.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make([]CounterSnap, 0, len(r.counters))
		for name, c := range r.counters {
			s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
		}
		sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	}
	if len(r.gauges) > 0 {
		s.Gauges = make([]GaugeSnap, 0, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
		}
		sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	}
	if len(r.hists) > 0 {
		s.Histograms = make([]HistogramSnap, 0, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnap{
				Name:   name,
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms = append(s.Histograms, hs)
		}
		sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	}
	return s
}
