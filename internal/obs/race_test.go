package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// get-or-create races on shared and distinct names, mixed metric kinds,
// concurrent snapshots and resets — and then checks the quiescent
// totals. Run under -race (make check does) this is the registry's
// thread-safety proof; it mirrors how parallel replica workers and
// config fan-outs all record through the process-wide Default registry.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker races get-or-create on the shared names and
			// owns one private counter; snapshots interleave throughout.
			own := r.Counter(fmt.Sprintf("worker.%d", w))
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.calls").Inc()
				r.Gauge("shared.depth").Add(1)
				r.Gauge("shared.depth").Add(-1)
				r.Gauge("shared.max").SetMax(int64(i))
				r.Histogram("shared.lat", []float64{0.25, 0.5, 1}).Observe(float64(i%3) / 2)
				r.Timer("shared.seconds").Observe(0)
				own.Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if v, _ := s.Counter("shared.calls"); v != workers*perWorker {
		t.Errorf("shared.calls = %d, want %d", v, workers*perWorker)
	}
	if v, _ := s.Gauge("shared.depth"); v != 0 {
		t.Errorf("shared.depth = %d, want 0 (paired adds)", v)
	}
	if v, _ := s.Gauge("shared.max"); v != perWorker-1 {
		t.Errorf("shared.max = %d, want %d", v, perWorker-1)
	}
	h, _ := s.Histogram("shared.lat")
	if h.Count != workers*perWorker {
		t.Errorf("shared.lat count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, c := range h.Counts {
		bucketTotal += c
	}
	if bucketTotal != h.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, h.Count)
	}
	for w := 0; w < workers; w++ {
		if v, _ := s.Counter(fmt.Sprintf("worker.%d", w)); v != perWorker {
			t.Errorf("worker.%d = %d, want %d", w, v, perWorker)
		}
	}
}

// TestResetDuringTraffic checks Reset is safe while writers are active
// (no torn state, no panic); exact values are unasserted because the
// interleaving is unordered by design.
func TestResetDuringTraffic(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("noisy")
			h := r.Histogram("noisy.h", []float64{1})
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.5)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Reset()
		_ = r.Snapshot()
	}
	close(stop)
	wg.Wait()
}
