package obs

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if g.Value() != 4 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Error("SetMax did not raise the gauge")
	}
}

// TestHistogramBucketEdges pins the bucket boundary semantics: bucket i
// counts bounds[i-1] < v <= bounds[i]; values above the last bound land
// in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	snap, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.5 and 1.0 -> bucket 0 (<=1); 1.0001 and 2.0 -> bucket 1 (<=2);
	// 4.0 -> bucket 2 (<=4); 4.0001 and 100 -> overflow.
	want := []uint64{2, 2, 1, 2}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if wantSum := 0.5 + 1 + 1.0001 + 2 + 4 + 4.0001 + 100; snap.Sum != wantSum {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if m := snap.Mean(); m <= 0 {
		t.Errorf("mean = %v, want > 0", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket <=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(3) // bucket <=4
	}
	snap, _ := r.Snapshot().Histogram("q")
	if p50 := snap.Quantile(0.50); p50 != 1 {
		t.Errorf("p50 = %v, want 1", p50)
	}
	if p99 := snap.Quantile(0.99); p99 != 4 {
		t.Errorf("p99 = %v, want 4", p99)
	}
	// Overflow samples report the last bound, not infinity.
	h.Observe(1e9)
	snap, _ = r.Snapshot().Histogram("q")
	if p := snap.Quantile(1); p != 8 {
		t.Errorf("max quantile = %v, want last bound 8", p)
	}
}

// TestHistogramObserveN: a weighted observation is equivalent to n
// repeated Observe calls — same buckets, count, and sum.
func TestHistogramObserveN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w", []float64{1, 2, 4})
	h.ObserveN(0.5, 3)
	h.ObserveN(3, 2)
	h.ObserveN(100, 1)
	h.ObserveN(42, 0) // no-op

	ref := r.Histogram("ref", []float64{1, 2, 4})
	for i := 0; i < 3; i++ {
		ref.Observe(0.5)
	}
	ref.Observe(3)
	ref.Observe(3)
	ref.Observe(100)

	snap := r.Snapshot()
	got, _ := snap.Histogram("w")
	want, _ := snap.Histogram("ref")
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("bucket counts = %v, want %v", got.Counts, want.Counts)
	}
	if got.Count != want.Count {
		t.Errorf("count = %d, want %d", got.Count, want.Count)
	}
	if got.Sum != want.Sum {
		t.Errorf("sum = %v, want %v", got.Sum, want.Sum)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("work.seconds")
	tm.Observe(250 * time.Millisecond)
	tm.Since(time.Now())
	snap, ok := r.Snapshot().Histogram("work.seconds")
	if !ok {
		t.Fatal("timer histogram missing")
	}
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	if snap.Sum < 0.25 || snap.Sum > 0.5 {
		t.Errorf("sum = %v seconds, want ~0.25", snap.Sum)
	}
}

// TestSnapshotDeterminism checks two snapshots of a quiescent registry
// are deep-equal and marshal to identical, name-sorted JSON.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register in non-alphabetical order.
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Gauge("m.mid").Set(-2)
	r.Histogram("k.hist", []float64{1, 10}).Observe(5)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Error("snapshots of a quiescent registry differ")
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("snapshot JSON not byte-identical")
	}
	if s1.Counters[0].Name != "a.first" || s1.Counters[1].Name != "z.last" {
		t.Errorf("counters not sorted by name: %+v", s1.Counters)
	}
}

func TestSnapshotLookupHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(3)
	s := r.Snapshot()
	if v, ok := s.Counter("c"); !ok || v != 2 {
		t.Errorf("Counter(c) = %d,%v", v, ok)
	}
	if _, ok := s.Counter("nope"); ok {
		t.Error("missing counter found")
	}
	if v, ok := s.Gauge("g"); !ok || v != 3 {
		t.Errorf("Gauge(g) = %d,%v", v, ok)
	}
	if _, ok := s.Histogram("nope"); ok {
		t.Error("missing histogram found")
	}
}

// TestResetZeroesInPlace checks Reset keeps captured metric pointers
// registered and working — the contract subsystems with package-level
// metric vars rely on.
func TestResetZeroesInPlace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kept")
	h := r.Histogram("kept.hist", []float64{1})
	c.Add(10)
	h.Observe(0.5)
	r.Reset()
	s := r.Snapshot()
	if v, ok := s.Counter("kept"); !ok || v != 0 {
		t.Errorf("after reset: counter = %d,%v; want 0,true", v, ok)
	}
	if hs, ok := s.Histogram("kept.hist"); !ok || hs.Count != 0 || hs.Sum != 0 {
		t.Errorf("after reset: histogram = %+v,%v", hs, ok)
	}
	// The captured pointers must still feed the same registry entries.
	c.Inc()
	h.Observe(2)
	s = r.Snapshot()
	if v, _ := s.Counter("kept"); v != 1 {
		t.Errorf("captured counter detached after reset: %d", v)
	}
	if hs, _ := s.Histogram("kept.hist"); hs.Count != 1 {
		t.Errorf("captured histogram detached after reset: %+v", hs)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(1, 2, 3); !reflect.DeepEqual(got, []float64{1, 3, 5}) {
		t.Errorf("LinearBuckets = %v", got)
	}
	if got := ExpBuckets(1, 10, 3); !reflect.DeepEqual(got, []float64{1, 10, 100}) {
		t.Errorf("ExpBuckets = %v", got)
	}
	b := DefTimeBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("DefTimeBuckets not ascending at %d: %v", i, b)
		}
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Error("Default registry should be one stable instance")
	}
}
