// Package obs is the repository's self-measurement substrate: a
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms) with timer helpers and a stable Snapshot
// form for rendering and JSON export.
//
// Design rules, in the spirit of the engine layer's contract:
//
//   - Zero-cost when unobserved, near-zero when observed: every metric
//     update is a single atomic operation (or a short CAS loop for
//     float sums) with no allocation, so hot loops can record
//     unconditionally. Subsystems with per-cycle hot paths (the NoC
//     simulator) batch locally and flush deltas at natural snapshot
//     boundaries instead of paying even an atomic per cycle.
//   - Metrics never influence results: recording reads the clock at
//     most, never an algorithm's random stream, so an instrumented run
//     stays bit-identical to an uninstrumented one.
//   - Snapshots are deterministic: metrics are reported sorted by name,
//     so two snapshots of a quiescent registry are deep-equal and
//     marshal to identical JSON (the obsim.metrics/v1 block relies on
//     this).
//
// Each metric's fields are individually atomic; a snapshot taken while
// writers are active is a consistent-per-field approximation and is
// exact whenever the registry is quiescent (end of a run, which is when
// cmd/obmsim reads it).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depth, high-water mark).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value
// (lock-free high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-layout bucketed distribution. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i] (bucket 0 counts
// v <= bounds[0]); one implicit overflow bucket counts v > bounds[last].
// The layout is fixed at creation, so concurrent observation is a pair
// of atomic adds plus a CAS loop for the float sum — no allocation, no
// lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// newHistogram builds a histogram with the given ascending upper
// bounds (a defensive copy is taken).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: upper-inclusive bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveN records a sample with an integer weight n — equivalent to n
// calls of Observe(v) in one shot. Weighted observations let callers
// fold time-weighted series into a histogram (observe the level, weight
// by the interval length) without a loop; n == 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Timer records durations, in seconds, into a histogram.
type Timer struct{ h *Histogram }

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Since records the time elapsed since start.
func (t *Timer) Since(start time.Time) { t.Observe(time.Since(start)) }

// DefTimeBuckets is the default bucket layout for timers: exponential
// from 1µs to ~17 minutes, factor 4. Mapper invocations, replica jobs,
// and whole experiments all land comfortably inside it.
func DefTimeBuckets() []float64 {
	b := make([]float64, 15)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}

// LinearBuckets returns n ascending upper bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n ascending upper bounds start, start·factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Registry is a named collection of metrics. Metrics are get-or-create
// by name: the first caller fixes the kind (and, for histograms, the
// bucket layout); later callers share the same instance. Safe for
// concurrent use; hot paths should capture the returned pointer once
// rather than looking it up per event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter named name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram named name, creating it with the
// given bucket bounds on first use (later calls ignore bounds and
// share the existing layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Timer returns a duration recorder backed by the histogram named name
// (created with DefTimeBuckets on first use).
func (r *Registry) Timer(name string) *Timer {
	return &Timer{h: r.Histogram(name, DefTimeBuckets())}
}

// Reset zeroes every registered metric in place. Pointers captured by
// subsystems stay registered and keep working, so a long-lived server
// (or a test) can reset between batches without re-wiring anything.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// defaultRegistry is the process-wide registry every subsystem exports
// into; cmd/obmsim snapshots it for -metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
