package sched

import (
	"fmt"
	"sort"

	"obm/internal/hungarian"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// FreeSet tracks which tiles are unoccupied, O(1) per take/release.
type FreeSet struct {
	free  []bool
	count int
}

// NewFreeSet returns a set with all n tiles free.
func NewFreeSet(n int) *FreeSet {
	f := &FreeSet{free: make([]bool, n), count: n}
	for i := range f.free {
		f.free[i] = true
	}
	return f
}

// Free reports whether tile t is unoccupied.
func (f *FreeSet) Free(t mesh.Tile) bool { return f.free[t] }

// Count returns the number of free tiles.
func (f *FreeSet) Count() int { return f.count }

// Take marks tile t occupied.
func (f *FreeSet) Take(t mesh.Tile) {
	if f.free[t] {
		f.free[t] = false
		f.count--
	}
}

// Release marks tile t free.
func (f *FreeSet) Release(t mesh.Tile) {
	if !f.free[t] {
		f.free[t] = true
		f.count++
	}
}

// Placement chooses tiles for an arriving application's threads without
// disturbing any already-placed thread — the fast path a streaming
// scheduler takes on every arrival, between (much rarer) full remaps.
// Implementations may keep internal scratch and are not safe for
// concurrent use.
type Placement interface {
	// Name labels the placement in results.
	Name() string
	// Place returns one tile per thread of app, all currently free in
	// fs. It must not modify fs — the caller takes the returned tiles.
	Place(lm *model.LatencyModel, app *workload.Application, fs *FreeSet) ([]mesh.Tile, error)
}

// SpiralPlacement is the nearest-neighbor run-time heuristic from the
// spiral task-mapping literature, adapted to the OBM cost model: seed
// at the free tile with the lowest shared-cache latency TC, walk
// Manhattan rings outward collecting free tiles until the application
// fits, then hand the heaviest threads the lowest-TC tiles collected.
// O(N + need·log need) per arrival with no assignment solve — the
// fast-path baseline against Hungarian placement.
type SpiralPlacement struct {
	ring []mesh.Tile // scratch: tiles of the ring under scan
	got  []mesh.Tile // scratch: collected tiles
	ord  []int       // scratch: thread order
}

// Name implements Placement.
func (s *SpiralPlacement) Name() string { return "spiral" }

// Place implements Placement.
func (s *SpiralPlacement) Place(lm *model.LatencyModel, app *workload.Application, fs *FreeSet) ([]mesh.Tile, error) {
	need := len(app.Threads)
	if need == 0 {
		return nil, fmt.Errorf("sched: placing empty application %q", app.Name)
	}
	if need > fs.Count() {
		return nil, fmt.Errorf("sched: %q needs %d tiles, %d free", app.Name, need, fs.Count())
	}
	msh := lm.Mesh()
	n := msh.NumTiles()

	// Seed: the free tile with minimum TC (lowest index on ties).
	seed := mesh.Tile(-1)
	for t := 0; t < n; t++ {
		tt := mesh.Tile(t)
		if !fs.Free(tt) {
			continue
		}
		if seed < 0 || lm.TC(tt) < lm.TC(seed) {
			seed = tt
		}
	}

	got := s.got[:0]
	got = append(got, seed)
	sc := msh.Coord(seed)
	maxRadius := msh.Rows() + msh.Cols() // covers the whole mesh from any seed
	for r := 1; len(got) < need && r <= maxRadius; r++ {
		ring := s.ring[:0]
		addIfFree := func(row, col int) {
			if row < 0 || row >= msh.Rows() || col < 0 || col >= msh.Cols() {
				return
			}
			if t := msh.TileAt(row, col); fs.Free(t) {
				ring = append(ring, t)
			}
		}
		for dr := -r; dr <= r; dr++ {
			rem := r - abs(dr)
			if rem == 0 {
				addIfFree(sc.Row+dr, sc.Col) // single tile at the vertical extremes
				continue
			}
			addIfFree(sc.Row+dr, sc.Col-rem)
			addIfFree(sc.Row+dr, sc.Col+rem)
		}
		// Within a ring all tiles are equally near; prefer the
		// lower-latency ones when only part of the ring is needed.
		sort.Slice(ring, func(a, b int) bool {
			ta, tb := lm.TC(ring[a]), lm.TC(ring[b])
			if ta != tb {
				return ta < tb
			}
			return ring[a] < ring[b]
		})
		s.ring = ring
		got = append(got, ring...)
	}
	got = got[:need]
	// Heaviest threads onto the lowest-TC tiles of the collected set.
	sort.Slice(got, func(a, b int) bool {
		ta, tb := lm.TC(got[a]), lm.TC(got[b])
		if ta != tb {
			return ta < tb
		}
		return got[a] < got[b]
	})
	ord := s.ord[:0]
	for i := 0; i < need; i++ {
		ord = append(ord, i)
	}
	sort.SliceStable(ord, func(a, b int) bool {
		ra := app.Threads[ord[a]].CacheRate + app.Threads[ord[a]].MemRate
		rb := app.Threads[ord[b]].CacheRate + app.Threads[ord[b]].MemRate
		return ra > rb
	})
	out := make([]mesh.Tile, need)
	for rank, threadIdx := range ord {
		out[threadIdx] = got[rank]
	}
	s.got, s.ord = got, ord
	return out, nil
}

// SAMPlacement picks the `need` free tiles with the lowest TC and
// assigns threads to them with a Hungarian solve over the full
// c·TC + m·TM cost — the quality-first arrival path, O(need³) per
// arrival.
type SAMPlacement struct {
	solver hungarian.Solver
	cand   []mesh.Tile
	cost   [][]float64
}

// Name implements Placement.
func (s *SAMPlacement) Name() string { return "sam" }

// Place implements Placement.
func (s *SAMPlacement) Place(lm *model.LatencyModel, app *workload.Application, fs *FreeSet) ([]mesh.Tile, error) {
	need := len(app.Threads)
	if need == 0 {
		return nil, fmt.Errorf("sched: placing empty application %q", app.Name)
	}
	if need > fs.Count() {
		return nil, fmt.Errorf("sched: %q needs %d tiles, %d free", app.Name, need, fs.Count())
	}
	cand := s.cand[:0]
	for t := 0; t < lm.NumTiles(); t++ {
		if fs.Free(mesh.Tile(t)) {
			cand = append(cand, mesh.Tile(t))
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		ta, tb := lm.TC(cand[a]), lm.TC(cand[b])
		if ta != tb {
			return ta < tb
		}
		return cand[a] < cand[b]
	})
	cand = cand[:need]
	s.cand = cand

	if cap(s.cost) < need {
		s.cost = make([][]float64, need)
	}
	cost := s.cost[:need]
	for i := range cost {
		if cap(cost[i]) < need {
			cost[i] = make([]float64, need)
		}
		cost[i] = cost[i][:need]
		th := app.Threads[i]
		for j, t := range cand {
			cost[i][j] = lm.Cost(th.CacheRate, th.MemRate, t)
		}
	}
	rowToCol, _, err := s.solver.Solve(cost)
	if err != nil {
		return nil, fmt.Errorf("sched: %q placement: %w", app.Name, err)
	}
	out := make([]mesh.Tile, need)
	for i, j := range rowToCol {
		out[i] = cand[j]
	}
	return out, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
