package sched

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
)

// Remapper produces a candidate replacement mapping for the live
// problem. The incumbent is the mapping currently running on the chip;
// implementations must not modify it.
type Remapper interface {
	// Name labels the remapper in results.
	Name() string
	// Remap solves for a candidate; the caller decides adoption (e.g.
	// via CompositeCost), so returning a candidate no better than the
	// incumbent is allowed, just useless.
	Remap(ctx context.Context, p *core.Problem, incumbent core.Mapping) (core.Mapping, error)
}

// FullRemap re-solves the whole problem from scratch with a configured
// mapper, ignoring the incumbent — the quality ceiling, at full solve
// cost.
type FullRemap struct{ Mapper mapping.Mapper }

// Name implements Remapper.
func (f FullRemap) Name() string { return "full:" + f.Mapper.Name() }

// Remap implements Remapper.
func (f FullRemap) Remap(ctx context.Context, p *core.Problem, _ core.Mapping) (core.Mapping, error) {
	return mapping.MapAndCheck(ctx, f.Mapper, p)
}

// WarmRemap runs sort-select-swap's fine-tuning phases from the
// incumbent (mapping.SortSelectSwap.WarmStart) — the streaming
// scheduler's workhorse: cost scales with the configured MaxStep
// instead of a full re-solve, and the result never scores worse than
// the incumbent under SSS.Objective.
type WarmRemap struct{ SSS mapping.SortSelectSwap }

// Name implements Remapper.
func (w WarmRemap) Name() string { return "warm:" + w.SSS.Name() }

// Remap implements Remapper.
func (w WarmRemap) Remap(ctx context.Context, p *core.Problem, incumbent core.Mapping) (core.Mapping, error) {
	return w.SSS.WarmStart(ctx, p, incumbent)
}

// BudgetRemap refines the incumbent moving at most Budget threads
// (mapping.ImproveWithBudgetObjective) — hard-capped disruption per
// remap, at best-first search cost.
type BudgetRemap struct {
	Budget    int
	Objective core.Objective
}

// Name implements Remapper.
func (b BudgetRemap) Name() string { return fmt.Sprintf("budget-%d", b.Budget) }

// Remap implements Remapper.
func (b BudgetRemap) Remap(ctx context.Context, p *core.Problem, incumbent core.Mapping) (core.Mapping, error) {
	m, _, err := mapping.ImproveWithBudgetObjective(ctx, p, incumbent, b.Budget, b.Objective)
	return m, err
}

// CompositeCost is the migration-cost-aware adoption test: a candidate
// replaces the incumbent only if its objective improvement outweighs a
// per-thread migration charge. Built to compose with core.Weighted —
// Objective scores balance, PerMigration prices disruption in the same
// units — so the scheduler's effective objective is
// obj(mapping) + PerMigration·migrations, evaluated at adoption time.
type CompositeCost struct {
	// Objective scores mappings; nil is the paper's max-APL.
	Objective core.Objective
	// PerMigration is the objective-unit charge per migrated thread;
	// zero adopts any strict improvement.
	PerMigration float64
}

// Accept reports whether a candidate scoring cand (against the
// incumbent's cur) is worth migrations thread moves.
func (c CompositeCost) Accept(cur, cand float64, migrations int) bool {
	return cand+c.PerMigration*float64(migrations) < cur-1e-12
}
