package sched

import (
	"testing"
)

func TestGeneratorProducesValidScenario(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 99} {
		g, err := NewGenerator(GenConfig{Events: 2000, Tiles: 64, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sc := Materialize(g)
		if len(sc.Events) != 2000 {
			t.Fatalf("seed %d: emitted %d events, want 2000", seed, len(sc.Events))
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
	}
}

func TestGeneratorNeverOversubscribes(t *testing.T) {
	g, err := NewGenerator(GenConfig{Events: 5000, Tiles: 32, Seed: 3, TargetLoad: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	occupied := 0
	threadsOf := map[string]int{}
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		if e.Arrive != nil {
			occupied += len(e.Arrive.Threads)
			threadsOf[e.Arrive.Name] = len(e.Arrive.Threads)
		} else {
			occupied -= threadsOf[e.Depart]
			delete(threadsOf, e.Depart)
		}
		if occupied > 32 {
			t.Fatalf("occupancy %d exceeds 32 tiles", occupied)
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	cfg := GenConfig{Events: 1000, Tiles: 64, Seed: 42}
	mk := func() Scenario {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Materialize(g)
	}
	a, b := mk(), mk()
	if a.End != b.End || len(a.Events) != len(b.Events) {
		t.Fatalf("shape differs: %d/%d events, end %d/%d", len(a.Events), len(b.Events), a.End, b.End)
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Time != eb.Time || ea.Depart != eb.Depart ||
			(ea.Arrive == nil) != (eb.Arrive == nil) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
		if ea.Arrive != nil {
			if ea.Arrive.Name != eb.Arrive.Name || len(ea.Arrive.Threads) != len(eb.Arrive.Threads) {
				t.Fatalf("arrival %d differs: %s/%d vs %s/%d", i,
					ea.Arrive.Name, len(ea.Arrive.Threads), eb.Arrive.Name, len(eb.Arrive.Threads))
			}
			for j := range ea.Arrive.Threads {
				if ea.Arrive.Threads[j] != eb.Arrive.Threads[j] {
					t.Fatalf("arrival %d thread %d rates differ", i, j)
				}
			}
		}
	}
	// A different seed must actually change the timeline.
	cfg.Seed = 43
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Materialize(g)
	same := c.End == a.End
	for i := range c.Events {
		if c.Events[i].Time != a.Events[i].Time {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical timelines")
	}
}

func TestGeneratorSeedStreamsSplit(t *testing.T) {
	// Changing only the thread-size range must not shift arrival times:
	// sizes draw from their own SplitSeed stream.
	times := func(cfg GenConfig) []int64 {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for {
			e, ok := g.Next()
			if !ok {
				return out
			}
			if e.Arrive != nil {
				out = append(out, e.Time)
			}
		}
	}
	a := times(GenConfig{Events: 400, Tiles: 256, Seed: 9, MinThreads: 2, MaxThreads: 4})
	b := times(GenConfig{Events: 400, Tiles: 256, Seed: 9, MinThreads: 2, MaxThreads: 8})
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		t.Fatal("no arrivals generated")
	}
	// Lifetimes differ (they depend on mean app size), so departures —
	// and with them the emitted-event budget — drift; but the arrival
	// clock itself must match while both runs admit the same arrivals.
	for i := 0; i < n/2; i++ {
		if a[i] != b[i] {
			t.Fatalf("arrival %d time %d != %d despite independent size stream", i, a[i], b[i])
		}
	}
}

func TestGenConfigValidate(t *testing.T) {
	bad := []GenConfig{
		{Events: 0, Tiles: 64},
		{Events: 10, Tiles: 0},
		{Events: 10, Tiles: 64, MinThreads: 8, MaxThreads: 4},
		{Events: 10, Tiles: 4, MinThreads: 8, MaxThreads: 8},
		{Events: 10, Tiles: 64, TargetLoad: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	sc := fourPhaseScenario()
	got := Materialize(NewSliceSource(sc))
	if got.End != sc.End || len(got.Events) != len(sc.Events) {
		t.Fatalf("round trip changed shape: %+v", got)
	}
	src := NewSliceSource(sc)
	if src.Len() != len(sc.Events) {
		t.Errorf("Len = %d, want %d", src.Len(), len(sc.Events))
	}
}

func TestGenConfigWithOverrides(t *testing.T) {
	base := GenConfig{Events: 100, Tiles: 64, Seed: 1}
	got, err := base.WithOverrides("load=0.8, gap=50, minthreads=4,maxthreads=24,appsigma=1.5,threadsigma=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetLoad != 0.8 || got.MeanGap != 50 || got.MinThreads != 4 || got.MaxThreads != 24 ||
		got.AppSigma != 1.5 || got.ThreadSigma != 0.2 {
		t.Errorf("overrides not applied: %+v", got)
	}
	// Scale and seeding stay the experiment's.
	if got.Events != 100 || got.Tiles != 64 || got.Seed != 1 {
		t.Errorf("overrides touched non-shape fields: %+v", got)
	}
	// "" is the identity.
	if same, err := base.WithOverrides(""); err != nil || same != base {
		t.Errorf("empty spec changed the config: %+v (%v)", same, err)
	}
	for _, bad := range []string{"load", "load=x", "seed=2", "events=5", "nope=1"} {
		if _, err := base.WithOverrides(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Overridden configs validate like hand-built ones.
	if _, err := base.WithOverrides("load=2"); err != nil {
		t.Fatal(err) // parse succeeds...
	}
	over, _ := base.WithOverrides("load=2")
	if err := over.withDefaults().Validate(); err == nil {
		t.Error("out-of-range load survived Validate")
	}
}

func TestGeneratorRespectsOverrides(t *testing.T) {
	lo, err := NewGenerator(GenConfig{Events: 2_000, Tiles: 64, Seed: 9, TargetLoad: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := (GenConfig{Events: 2_000, Tiles: 64, Seed: 9}).WithOverrides("load=0.9")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Higher target load means longer lifetimes, hence more concurrently
	// live applications on average.
	mean := func(g *Generator) float64 {
		live, sum, n := 0, 0, 0
		for {
			e, ok := g.Next()
			if !ok {
				break
			}
			if e.Depart != "" {
				live--
			} else {
				live++
			}
			sum += live
			n++
		}
		return float64(sum) / float64(n)
	}
	if ml, mh := mean(lo), mean(hi); ml >= mh {
		t.Errorf("mean live apps: load=0.2 gives %.2f, load=0.9 gives %.2f; want increase", ml, mh)
	}
}
