package sched

import (
	"testing"

	"obm/internal/mesh"
	"obm/internal/workload"
)

func TestFreeSet(t *testing.T) {
	f := NewFreeSet(4)
	if f.Count() != 4 {
		t.Fatalf("new set count = %d, want 4", f.Count())
	}
	f.Take(2)
	f.Take(2) // idempotent
	if f.Count() != 3 || f.Free(2) {
		t.Errorf("after take: count %d, free(2) %v", f.Count(), f.Free(2))
	}
	f.Release(2)
	f.Release(2)
	if f.Count() != 4 || !f.Free(2) {
		t.Errorf("after release: count %d, free(2) %v", f.Count(), f.Free(2))
	}
}

func placementApp(n int) *workload.Application {
	app := &workload.Application{Name: "p"}
	for i := 0; i < n; i++ {
		app.Threads = append(app.Threads, workload.Thread{
			CacheRate: float64(n - i), // thread 0 heaviest
			MemRate:   0.2 * float64(n-i),
		})
	}
	return app
}

func TestPlacementsReturnDistinctFreeTiles(t *testing.T) {
	lm := testModel(t)
	for _, pl := range []Placement{&SpiralPlacement{}, &SAMPlacement{}} {
		fs := NewFreeSet(lm.NumTiles())
		// Occupy a stripe so the placement must route around it.
		for tile := 8; tile < 24; tile++ {
			fs.Take(mesh.Tile(tile))
		}
		app := placementApp(12)
		tiles, err := pl.Place(lm, app, fs)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if len(tiles) != 12 {
			t.Fatalf("%s: placed %d tiles, want 12", pl.Name(), len(tiles))
		}
		seen := map[mesh.Tile]bool{}
		for _, tile := range tiles {
			if seen[tile] {
				t.Fatalf("%s: tile %d assigned twice", pl.Name(), tile)
			}
			seen[tile] = true
			if !fs.Free(tile) {
				t.Fatalf("%s: tile %d was not free", pl.Name(), tile)
			}
		}
		if fs.Count() != lm.NumTiles()-16 {
			t.Errorf("%s: Place mutated the free set", pl.Name())
		}
	}
}

func TestPlacementsDeterministic(t *testing.T) {
	lm := testModel(t)
	for _, mk := range []func() Placement{
		func() Placement { return &SpiralPlacement{} },
		func() Placement { return &SAMPlacement{} },
	} {
		fs := NewFreeSet(lm.NumTiles())
		app := placementApp(9)
		a, err := mk().Place(lm, app, fs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().Place(lm, app, fs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at thread %d: %d vs %d", mk().Name(), i, a[i], b[i])
			}
		}
	}
}

// TestSpiralHeaviestThreadGetsBestTile: the heaviest thread lands on
// the lowest-TC tile of the collected set.
func TestSpiralHeaviestThreadGetsBestTile(t *testing.T) {
	lm := testModel(t)
	fs := NewFreeSet(lm.NumTiles())
	app := placementApp(6)
	tiles, err := (&SpiralPlacement{}).Place(lm, app, fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tiles); i++ {
		if lm.TC(tiles[0]) > lm.TC(tiles[i]) {
			t.Fatalf("heaviest thread on TC %.3f but thread %d got %.3f",
				lm.TC(tiles[0]), i, lm.TC(tiles[i]))
		}
	}
}

// TestSpiralStaysNearSeed: with a free chip, the collected tiles sit
// within the smallest rings around the min-TC seed — the nearest-
// neighbor property that makes spiral placement cheap to reason about.
func TestSpiralStaysNearSeed(t *testing.T) {
	lm := testModel(t)
	msh := lm.Mesh()
	fs := NewFreeSet(lm.NumTiles())
	app := placementApp(5)
	tiles, err := (&SpiralPlacement{}).Place(lm, app, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Seed = global min-TC tile on an empty chip.
	seed := mesh.Tile(0)
	for tt := 1; tt < lm.NumTiles(); tt++ {
		if lm.TC(mesh.Tile(tt)) < lm.TC(seed) {
			seed = mesh.Tile(tt)
		}
	}
	for _, tile := range tiles {
		if msh.Hops(seed, tile) > 2 {
			t.Errorf("tile %d is %d hops from seed %d; want a tight cluster", tile, msh.Hops(seed, tile), seed)
		}
	}
}

// TestSAMBeatsSpiralOnItsCost: the Hungarian placement never pays more
// total assignment cost than the spiral greedy for the same arrival on
// the same chip state.
func TestSAMBeatsSpiralOnItsCost(t *testing.T) {
	lm := testModel(t)
	app := placementApp(10)
	cost := func(tiles []mesh.Tile) float64 {
		var sum float64
		for i, th := range app.Threads {
			sum += lm.Cost(th.CacheRate, th.MemRate, tiles[i])
		}
		return sum
	}
	fs := NewFreeSet(lm.NumTiles())
	spiral, err := (&SpiralPlacement{}).Place(lm, app, fs)
	if err != nil {
		t.Fatal(err)
	}
	sam, err := (&SAMPlacement{}).Place(lm, app, fs)
	if err != nil {
		t.Fatal(err)
	}
	if cost(sam) > cost(spiral)+1e-9 {
		t.Errorf("SAM placement cost %.4f exceeds spiral %.4f", cost(sam), cost(spiral))
	}
}

func TestPlacementErrors(t *testing.T) {
	lm := testModel(t)
	for _, pl := range []Placement{&SpiralPlacement{}, &SAMPlacement{}} {
		fs := NewFreeSet(lm.NumTiles())
		for tile := 0; tile < lm.NumTiles()-2; tile++ {
			fs.Take(mesh.Tile(tile))
		}
		if _, err := pl.Place(lm, placementApp(3), fs); err == nil {
			t.Errorf("%s: accepted app larger than free capacity", pl.Name())
		}
		if _, err := pl.Place(lm, &workload.Application{Name: "empty"}, fs); err == nil {
			t.Errorf("%s: accepted empty application", pl.Name())
		}
	}
}
