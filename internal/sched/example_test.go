package sched_test

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/sched"
	"obm/internal/workload"
)

// Run a small arrival/departure timeline under the remap-on-change
// policy (Section IV.B of the paper).
func ExampleRunner_Run() {
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	app := func(cfg string, idx int, name string) *workload.Application {
		w := workload.MustConfig(cfg)
		a := w.Apps[idx]
		a.Name = name
		return &a
	}
	sc := sched.Scenario{
		Events: []sched.Event{
			{Time: 0, Arrive: app("C1", 0, "light")},
			{Time: 0, Arrive: app("C1", 3, "heavy")},
			{Time: 100, Depart: "light"},
			{Time: 100, Arrive: app("C3", 3, "heavier")},
		},
		End: 200,
	}
	r, err := sched.NewRunner(lm, mapping.SortSelectSwap{}, sched.OnChange{})
	if err != nil {
		panic(err)
	}
	met, err := r.Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("remaps:", met.Remaps)
	fmt.Println("balanced:", met.TimeWeightedDevAPL < 0.5)
	// The two Time-0 arrivals coalesce into one remap, as do the
	// simultaneous departure+arrival at Time 100.
	// Output:
	// remaps: 2
	// balanced: true
}
