// Package sched simulates the dynamic multi-application scenario of
// Section IV.B of the paper: applications arrive and depart at runtime,
// and because sort-select-swap runs in milliseconds while application
// churn happens at a much coarser granularity, the system can re-solve
// the OBM problem at every change. The package models arrival/departure
// event timelines, remapping policies, thread-migration accounting, and
// time-weighted latency-balance metrics.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// ErrNoEvents marks a scenario whose timeline is empty. Callers that
// synthesize timelines can match it with errors.Is and treat the run as
// a well-defined no-op instead of a failure.
var ErrNoEvents = errors.New("sched: scenario has no events")

// Event is one change to the running application set.
type Event struct {
	// Time is when the event takes effect (arbitrary units; metrics are
	// weighted by the spans between events).
	Time int64
	// Arrive, when non-nil, is an application starting at Time. Its
	// Name must be unique among live applications.
	Arrive *workload.Application
	// Depart, when non-empty, names an application terminating at Time.
	Depart string
}

// Scenario is a timeline of events plus an end time.
type Scenario struct {
	Events []Event
	// End closes the last measurement interval; must be >= the last
	// event time.
	End int64
}

// Validate reports an error for unordered or inconsistent scenarios.
func (s Scenario) Validate() error {
	if len(s.Events) == 0 {
		return ErrNoEvents
	}
	live := map[string]bool{}
	var prev int64
	for i, e := range s.Events {
		if e.Time < prev {
			return fmt.Errorf("sched: event %d out of order (t=%d after %d)", i, e.Time, prev)
		}
		prev = e.Time
		if (e.Arrive == nil) == (e.Depart == "") {
			return fmt.Errorf("sched: event %d must be exactly one of arrive/depart", i)
		}
		if e.Arrive != nil {
			if len(e.Arrive.Threads) == 0 {
				return fmt.Errorf("sched: event %d arrival %q has no threads", i, e.Arrive.Name)
			}
			if live[e.Arrive.Name] {
				return fmt.Errorf("sched: event %d duplicate arrival %q", i, e.Arrive.Name)
			}
			live[e.Arrive.Name] = true
		} else {
			if !live[e.Depart] {
				return fmt.Errorf("sched: event %d departs unknown application %q", i, e.Depart)
			}
			delete(live, e.Depart)
		}
	}
	if s.End < prev {
		return fmt.Errorf("sched: end %d before last event %d", s.End, prev)
	}
	return nil
}

// Policy decides when the scheduler re-solves the whole mapping. When
// it declines, arriving applications are placed incrementally on free
// tiles (a SAM solve over the idle tiles) and departing applications
// simply free theirs.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Remap reports whether to re-solve at this event.
	Remap(now int64, sinceRemap int64) bool
}

// Never only places arrivals incrementally — the "static" baseline.
type Never struct{}

// Name implements Policy.
func (Never) Name() string { return "never" }

// Remap implements Policy.
func (Never) Remap(int64, int64) bool { return false }

// OnChange re-solves at every arrival and departure — what the paper's
// runtime argument advocates.
type OnChange struct{}

// Name implements Policy.
func (OnChange) Name() string { return "on-change" }

// Remap implements Policy.
func (OnChange) Remap(int64, int64) bool { return true }

// Every re-solves at an event only if at least Interval time units have
// passed since the previous re-solve.
type Every struct{ Interval int64 }

// Name implements Policy.
func (e Every) Name() string { return fmt.Sprintf("every-%d", e.Interval) }

// Remap implements Policy.
func (e Every) Remap(_ int64, since int64) bool { return since >= e.Interval }

// WhenUnbalanced re-solves only when the current mapping's dev-APL
// exceeds Threshold — the adaptive policy a deployment would actually
// run: migrations happen only when the balance contract is at risk.
// It requires measurement support, so the Runner consults it through
// the MeasuredPolicy interface.
type WhenUnbalanced struct{ Threshold float64 }

// Name implements Policy.
func (w WhenUnbalanced) Name() string { return fmt.Sprintf("dev>%.2f", w.Threshold) }

// Remap implements Policy; without a measurement it never fires (the
// Runner uses RemapMeasured instead).
func (WhenUnbalanced) Remap(int64, int64) bool { return false }

// RemapMeasured implements MeasuredPolicy.
func (w WhenUnbalanced) RemapMeasured(devAPL float64) bool { return devAPL > w.Threshold }

// MeasuredPolicy is an optional Policy refinement that decides based on
// the current mapping's measured dev-APL.
type MeasuredPolicy interface {
	Policy
	// RemapMeasured reports whether to re-solve given the dev-APL of the
	// live mapping after the event was applied.
	RemapMeasured(devAPL float64) bool
}

// Debounced rate-limits an inner policy: it never fires less than
// MinInterval time units after the previous remap, whatever the inner
// policy says. Its main use is capping the attempt rate of
// WhenUnbalanced on long timelines, where a drift period would
// otherwise trigger a solve at every event group. Stateful (it latches
// the since-last-remap gap the runner reports), so one value serves
// one run.
type Debounced struct {
	// Inner is the wrapped policy (commonly a MeasuredPolicy).
	Inner Policy
	// MinInterval is the minimum gap between remap attempts.
	MinInterval int64

	since int64
}

// Name implements Policy.
func (d *Debounced) Name() string {
	return fmt.Sprintf("%s/min%d", d.Inner.Name(), d.MinInterval)
}

// Remap implements Policy: it latches the reported gap for
// RemapMeasured (which the runners call without time context) and
// defers to the inner policy only once the gap clears MinInterval.
func (d *Debounced) Remap(now int64, since int64) bool {
	d.since = since
	return since >= d.MinInterval && d.Inner.Remap(now, since)
}

// RemapMeasured implements MeasuredPolicy, honoring the debounce gap
// latched by the preceding Remap call.
func (d *Debounced) RemapMeasured(devAPL float64) bool {
	mp, ok := d.Inner.(MeasuredPolicy)
	return ok && d.since >= d.MinInterval && mp.RemapMeasured(devAPL)
}

// Metrics aggregates a run.
type Metrics struct {
	// TimeWeightedMaxAPL and TimeWeightedDevAPL average the balance
	// metrics over time (weighted by interval lengths with live apps).
	TimeWeightedMaxAPL float64
	TimeWeightedDevAPL float64
	// Remaps counts full re-solves; Migrations counts threads of
	// persisting applications whose tile changed across re-solves.
	Remaps     int
	Migrations int
	// Intervals counts measured spans.
	Intervals int
}

// Runner executes scenarios over a fixed chip.
type Runner struct {
	lm     *model.LatencyModel
	mapper mapping.Mapper
	policy Policy
	// MigrationBudget, when positive, replaces full re-solves with
	// best-first budgeted refinement (mapping.ImproveWithBudget): at most
	// this many threads move per remap. Zero means unconstrained
	// re-solves with the configured mapper.
	MigrationBudget int
}

// NewRunner builds a runner; mapper is used for full re-solves.
func NewRunner(lm *model.LatencyModel, m mapping.Mapper, p Policy) (*Runner, error) {
	if lm == nil || m == nil || p == nil {
		return nil, fmt.Errorf("sched: nil runner component")
	}
	return &Runner{lm: lm, mapper: m, policy: p}, nil
}

// liveState tracks the chip between events.
type liveState struct {
	// apps maps name -> application (threads with rates).
	apps map[string]*workload.Application
	// order lists live app names sorted for determinism.
	order []string
	// tiles maps name -> tile per thread.
	tiles map[string][]mesh.Tile
	// freeTiles not held by any live application.
	free map[mesh.Tile]bool
}

// problem builds the OBM problem plus mapping for the current state.
func (st *liveState) problem(lm *model.LatencyModel) (*core.Problem, core.Mapping, error) {
	w := &workload.Workload{Name: "live"}
	var m core.Mapping
	for _, name := range st.order {
		w.Apps = append(w.Apps, *st.apps[name])
		m = append(m, st.tiles[name]...)
	}
	// Idle-pad to the full chip; the pad occupies the free tiles.
	if err := w.PadTo(lm.NumTiles()); err != nil {
		return nil, nil, err
	}
	frees := make([]mesh.Tile, 0, len(st.free))
	for t := range st.free {
		frees = append(frees, t)
	}
	sort.Slice(frees, func(a, b int) bool { return frees[a] < frees[b] })
	m = append(m, frees...)
	p, err := core.NewProblem(lm, w)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Validate(p.N()); err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// Run executes the scenario and returns aggregate metrics. ctx
// cancels the timeline promptly: it is checked before every event and
// threaded into each re-solve's mapper.
func (r *Runner) Run(ctx context.Context, sc Scenario) (Metrics, error) {
	if err := sc.Validate(); err != nil {
		return Metrics{}, err
	}
	st := &liveState{
		apps:  map[string]*workload.Application{},
		tiles: map[string][]mesh.Tile{},
		free:  map[mesh.Tile]bool{},
	}
	for t := 0; t < r.lm.NumTiles(); t++ {
		st.free[mesh.Tile(t)] = true
	}

	var met Metrics
	var weightSum float64
	var lastRemap int64
	prevTime := sc.Events[0].Time

	measure := func(until int64) error {
		span := float64(until - prevTime)
		if span <= 0 || len(st.order) == 0 {
			return nil
		}
		p, m, err := st.problem(r.lm)
		if err != nil {
			return err
		}
		ev := p.Evaluate(m)
		met.TimeWeightedMaxAPL += ev.MaxAPL * span
		met.TimeWeightedDevAPL += ev.DevAPL * span
		weightSum += span
		met.Intervals++
		return nil
	}

	// Events sharing a timestamp are one logical change to the system
	// (e.g. a departure immediately backfilled by an arrival), so they
	// are coalesced: every event in the group is applied, then the
	// policy is consulted once. Per-event policy checks would re-solve
	// the same instant repeatedly, inflating Remaps and Migrations.
	for gi := 0; gi < len(sc.Events); {
		ge := gi + 1
		for ge < len(sc.Events) && sc.Events[ge].Time == sc.Events[gi].Time {
			ge++
		}
		now := sc.Events[gi].Time
		if err := ctx.Err(); err != nil {
			return Metrics{}, fmt.Errorf("sched: interrupted at event %d/%d: %w", gi, len(sc.Events), err)
		}
		if err := measure(now); err != nil {
			return Metrics{}, err
		}
		prevTime = now
		// Apply every event in the group.
		for _, e := range sc.Events[gi:ge] {
			if e.Arrive != nil {
				app := *e.Arrive
				if len(app.Threads) > len(st.free) {
					return Metrics{}, fmt.Errorf("sched: t=%d: %q needs %d tiles, %d free",
						e.Time, app.Name, len(app.Threads), len(st.free))
				}
				st.apps[app.Name] = &app
				st.order = append(st.order, app.Name)
				sort.Strings(st.order)
				// Incremental placement: SAM over the free tiles.
				if err := st.placeIncremental(r.lm, app.Name); err != nil {
					return Metrics{}, err
				}
			} else {
				for _, t := range st.tiles[e.Depart] {
					st.free[t] = true
				}
				delete(st.tiles, e.Depart)
				delete(st.apps, e.Depart)
				for i, n := range st.order {
					if n == e.Depart {
						st.order = append(st.order[:i], st.order[i+1:]...)
						break
					}
				}
			}
		}
		gi = ge
		// Policy: full re-solve once for the whole group?
		if len(st.order) > 0 {
			fire := r.policy.Remap(now, now-lastRemap)
			if mp, ok := r.policy.(MeasuredPolicy); ok && !fire {
				p, m, err := st.problem(r.lm)
				if err != nil {
					return Metrics{}, err
				}
				fire = mp.RemapMeasured(p.Evaluate(m).DevAPL)
			}
			if fire {
				var migs int
				var err error
				if r.MigrationBudget > 0 {
					migs, err = st.remapBudgeted(ctx, r.lm, r.MigrationBudget)
				} else {
					migs, err = st.remap(ctx, r.lm, r.mapper)
				}
				if err != nil {
					return Metrics{}, err
				}
				met.Remaps++
				met.Migrations += migs
				lastRemap = now
			}
		}
	}
	if err := measure(sc.End); err != nil {
		return Metrics{}, err
	}
	if weightSum > 0 {
		met.TimeWeightedMaxAPL /= weightSum
		met.TimeWeightedDevAPL /= weightSum
	}
	return met, nil
}

// placeIncremental assigns the named (newly arrived) application to
// free tiles via a SAM solve, leaving everyone else in place.
func (st *liveState) placeIncremental(lm *model.LatencyModel, name string) error {
	app := st.apps[name]
	frees := make([]mesh.Tile, 0, len(st.free))
	for t := range st.free {
		frees = append(frees, t)
	}
	sort.Slice(frees, func(a, b int) bool { return frees[a] < frees[b] })

	// Single-application problem over a chip restricted to free tiles:
	// reuse SolveSAM by building a one-app workload padded to N and
	// solving the assignment over the free tile set.
	w := &workload.Workload{Name: "arrival", Apps: []workload.Application{*app}}
	if err := w.PadTo(lm.NumTiles()); err != nil {
		return err
	}
	p, err := core.NewProblem(lm, w)
	if err != nil {
		return err
	}
	assign, _, err := p.SolveSAM(0, len(app.Threads), frees[:len(app.Threads)])
	if err != nil {
		return err
	}
	st.tiles[name] = assign
	for _, t := range assign {
		delete(st.free, t)
	}
	return nil
}

// remapBudgeted refines the live mapping in place, moving at most
// budget threads (mapping.ImproveWithBudget), and returns the migration
// count.
func (st *liveState) remapBudgeted(ctx context.Context, lm *model.LatencyModel, budget int) (int, error) {
	p, cur, err := st.problem(lm)
	if err != nil {
		return 0, err
	}
	nm, moved, err := mapping.ImproveWithBudget(ctx, p, cur, budget)
	if err != nil {
		return 0, err
	}
	st.adopt(lm, nm)
	return moved, nil
}

// adopt writes a full-problem mapping back into the per-application
// tile lists and the free set.
func (st *liveState) adopt(lm *model.LatencyModel, nm core.Mapping) {
	idx := 0
	newFree := map[mesh.Tile]bool{}
	for t := 0; t < lm.NumTiles(); t++ {
		newFree[mesh.Tile(t)] = true
	}
	for _, name := range st.order {
		next := make([]mesh.Tile, len(st.tiles[name]))
		for x := range next {
			next[x] = nm[idx]
			delete(newFree, nm[idx])
			idx++
		}
		st.tiles[name] = next
	}
	st.free = newFree
}

// remap re-solves the whole live mapping with the runner's mapper and
// returns the number of migrated threads (tile changes among
// applications that existed before the re-solve).
func (st *liveState) remap(ctx context.Context, lm *model.LatencyModel, mapper mapping.Mapper) (int, error) {
	p, _, err := st.problem(lm)
	if err != nil {
		return 0, err
	}
	nm, err := mapping.MapAndCheck(ctx, mapper, p)
	if err != nil {
		return 0, err
	}
	migrations := 0
	idx := 0
	newFree := map[mesh.Tile]bool{}
	for t := 0; t < lm.NumTiles(); t++ {
		newFree[mesh.Tile(t)] = true
	}
	for _, name := range st.order {
		old := st.tiles[name]
		next := make([]mesh.Tile, len(old))
		for x := range next {
			next[x] = nm[idx]
			delete(newFree, nm[idx])
			if old[x] != next[x] {
				migrations++
			}
			idx++
		}
		st.tiles[name] = next
	}
	st.free = newFree
	return migrations, nil
}
