package sched

import (
	"container/heap"
	"fmt"
	"strconv"
	"strings"

	"obm/internal/stats"
	"obm/internal/workload"
)

// Source streams a timeline of events so million-event scenarios never
// need to exist in memory as a slice. Events arrive in nondecreasing
// Time order and satisfy the Scenario invariants (arrivals unique,
// departures live).
type Source interface {
	// Next returns the next event; ok is false when the timeline is
	// exhausted.
	Next() (e Event, ok bool)
	// Len returns the total number of events the source emits, for
	// progress reporting.
	Len() int
	// End returns the horizon closing the last measurement interval. For
	// generated timelines it is final only once Next has returned
	// ok == false.
	End() int64
}

// SliceSource adapts an in-memory Scenario to the Source interface.
type SliceSource struct {
	sc Scenario
	i  int
}

// NewSliceSource wraps sc; the caller should have validated it.
func NewSliceSource(sc Scenario) *SliceSource { return &SliceSource{sc: sc} }

// Next implements Source.
func (s *SliceSource) Next() (Event, bool) {
	if s.i >= len(s.sc.Events) {
		return Event{}, false
	}
	e := s.sc.Events[s.i]
	s.i++
	return e, true
}

// Len implements Source.
func (s *SliceSource) Len() int { return len(s.sc.Events) }

// End implements Source.
func (s *SliceSource) End() int64 { return s.sc.End }

// Materialize drains a source into an in-memory Scenario — convenient
// for tests and for feeding generated timelines to the event-slice
// Runner at small scale. It refuses nothing: the source's own
// invariants make the result valid.
func Materialize(src Source) Scenario {
	sc := Scenario{Events: make([]Event, 0, src.Len())}
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		sc.Events = append(sc.Events, e)
	}
	sc.End = src.End()
	return sc
}

// GenConfig parameterizes a synthetic arrival/departure timeline.
type GenConfig struct {
	// Events is the number of events (arrivals + departures) to emit.
	Events int
	// Tiles is the chip capacity; arrivals are clamped so the live
	// thread count never exceeds it.
	Tiles int
	// Seed derives all random streams (inter-arrival times, application
	// sizes, request rates, lifetimes) via stats.SplitSeed, so any one
	// stream can be perturbed without shifting the others.
	Seed uint64
	// MeanGap is the mean inter-arrival gap in ticks (default 100).
	MeanGap float64
	// TargetLoad is the steady-state fraction of tiles occupied
	// (default 0.6); application lifetimes are derived from it by
	// Little's law.
	TargetLoad float64
	// MinThreads and MaxThreads bound application sizes (defaults 2
	// and 16).
	MinThreads, MaxThreads int
	// AppSigma and ThreadSigma shape the lognormal request-rate
	// hierarchy (defaults 1.2 and 0.3), mirroring workload.Generate:
	// applications differ a lot, threads within one a little.
	AppSigma, ThreadSigma float64
}

// WithOverrides applies a comma-separated key=value spec over the
// generator's load-shape knobs — the form surfaced as obmsim's
// -stream flag. Recognized keys: load (TargetLoad), gap (MeanGap),
// minthreads, maxthreads, appsigma, threadsigma. Unknown keys and
// unparsable values are errors (fail fast, like unknown experiment
// configs); "" returns c unchanged. Events, Tiles, and Seed are
// deliberately not overridable here: they are owned by the experiment
// (scale and seeding), not the workload shape.
func (c GenConfig) WithOverrides(spec string) (GenConfig, error) {
	if spec == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("sched: stream override %q is not key=value", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "minthreads", "maxthreads":
			n, err := strconv.Atoi(v)
			if err != nil {
				return c, fmt.Errorf("sched: stream override %s=%q: %w", k, v, err)
			}
			if k == "minthreads" {
				c.MinThreads = n
			} else {
				c.MaxThreads = n
			}
		case "load", "gap", "appsigma", "threadsigma":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return c, fmt.Errorf("sched: stream override %s=%q: %w", k, v, err)
			}
			switch k {
			case "load":
				c.TargetLoad = f
			case "gap":
				c.MeanGap = f
			case "appsigma":
				c.AppSigma = f
			case "threadsigma":
				c.ThreadSigma = f
			}
		default:
			return c, fmt.Errorf("sched: unknown stream override %q (valid: load, gap, minthreads, maxthreads, appsigma, threadsigma)", k)
		}
	}
	return c, nil
}

// withDefaults resolves zero fields to the documented defaults.
func (c GenConfig) withDefaults() GenConfig {
	if c.MeanGap == 0 {
		c.MeanGap = 100
	}
	if c.TargetLoad == 0 {
		c.TargetLoad = 0.6
	}
	if c.MinThreads == 0 {
		c.MinThreads = 2
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 16
	}
	if c.AppSigma == 0 {
		c.AppSigma = 1.2
	}
	if c.ThreadSigma == 0 {
		c.ThreadSigma = 0.3
	}
	return c
}

// Validate reports configuration errors after default resolution.
func (c GenConfig) Validate() error {
	if c.Events <= 0 {
		return fmt.Errorf("sched: generator needs Events > 0, got %d", c.Events)
	}
	if c.Tiles <= 0 {
		return fmt.Errorf("sched: generator needs Tiles > 0, got %d", c.Tiles)
	}
	if c.MeanGap < 0 || c.TargetLoad < 0 || c.TargetLoad > 1 {
		return fmt.Errorf("sched: bad generator load shape (gap %v, load %v)", c.MeanGap, c.TargetLoad)
	}
	if c.MinThreads < 1 || c.MaxThreads < c.MinThreads {
		return fmt.Errorf("sched: bad thread range [%d,%d]", c.MinThreads, c.MaxThreads)
	}
	if c.MinThreads > c.Tiles {
		return fmt.Errorf("sched: MinThreads %d exceeds chip capacity %d", c.MinThreads, c.Tiles)
	}
	return nil
}

// pendingDep is a scheduled departure.
type pendingDep struct {
	at      float64
	name    string
	threads int
}

// depHeap is a min-heap of pending departures by time (name breaks
// ties for determinism).
type depHeap []pendingDep

func (h depHeap) Len() int { return len(h) }
func (h depHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].name < h[b].name
}
func (h depHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *depHeap) Push(x interface{}) { *h = append(*h, x.(pendingDep)) }
func (h *depHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generator streams a synthetic timeline: Poisson arrivals with
// lognormal request-rate hierarchies and exponential lifetimes sized by
// Little's law so the chip sits near TargetLoad occupancy. It
// implements Source; memory use is O(live applications), independent of
// Events. Deterministic for a fixed GenConfig.
type Generator struct {
	cfg GenConfig

	times, sizes, rates, lives *stats.Rand

	clock       float64
	nextArrival float64
	deps        depHeap
	free        int
	meanLife    float64
	emitted     int
	nextID      int
	lastTime    int64
}

// NewGenerator validates cfg (after default resolution) and builds a
// generator positioned before the first event.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meanThreads := float64(cfg.MinThreads+cfg.MaxThreads) / 2
	g := &Generator{
		cfg:      cfg,
		times:    stats.NewRand(stats.SplitSeed(cfg.Seed, 1)),
		sizes:    stats.NewRand(stats.SplitSeed(cfg.Seed, 2)),
		rates:    stats.NewRand(stats.SplitSeed(cfg.Seed, 3)),
		lives:    stats.NewRand(stats.SplitSeed(cfg.Seed, 4)),
		free:     cfg.Tiles,
		meanLife: cfg.TargetLoad * float64(cfg.Tiles) * cfg.MeanGap / meanThreads,
	}
	g.nextArrival = g.times.ExpFloat64() * cfg.MeanGap
	return g, nil
}

// Len implements Source.
func (g *Generator) Len() int { return g.cfg.Events }

// End implements Source: one mean gap past the last emitted event
// (final only after exhaustion).
func (g *Generator) End() int64 { return g.lastTime + int64(g.cfg.MeanGap) + 1 }

// Next implements Source.
func (g *Generator) Next() (Event, bool) {
	for g.emitted < g.cfg.Events {
		// Departures due before the next arrival fire first.
		if len(g.deps) > 0 && g.deps[0].at <= g.nextArrival {
			d := heap.Pop(&g.deps).(pendingDep)
			g.clock = d.at
			g.free += d.threads
			g.emitted++
			g.lastTime = int64(g.clock)
			return Event{Time: g.lastTime, Depart: d.name}, true
		}
		g.clock = g.nextArrival
		g.nextArrival = g.clock + g.times.ExpFloat64()*g.cfg.MeanGap
		threads := g.cfg.MinThreads + g.sizes.Intn(g.cfg.MaxThreads-g.cfg.MinThreads+1)
		if threads > g.free {
			threads = g.free
		}
		if threads < g.cfg.MinThreads {
			// Chip (nearly) full: this arrival balks; pending departures
			// will free capacity before a later one is admitted.
			continue
		}
		app := g.makeApp(threads)
		life := g.lives.ExpFloat64() * g.meanLife
		if life < 1 {
			life = 1
		}
		heap.Push(&g.deps, pendingDep{at: g.clock + life, name: app.Name, threads: threads})
		g.free -= threads
		g.emitted++
		g.lastTime = int64(g.clock)
		return Event{Time: g.lastTime, Arrive: app}, true
	}
	return Event{}, false
}

// makeApp draws an application with a lognormal per-app intensity and
// mild per-thread variation, memory traffic a bounded fraction of cache
// traffic — the same hierarchy workload.Generate uses.
func (g *Generator) makeApp(threads int) *workload.Application {
	g.nextID++
	app := &workload.Application{Name: fmt.Sprintf("app%07d", g.nextID)}
	scale := g.rates.LogNormal(0, g.cfg.AppSigma)
	app.Threads = make([]workload.Thread, threads)
	for i := range app.Threads {
		c := scale * g.rates.LogNormal(0, g.cfg.ThreadSigma)
		m := c * (0.1 + 0.4*g.rates.Float64())
		app.Threads[i] = workload.Thread{CacheRate: c, MemRate: m}
	}
	return app
}
