package sched

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/obs"
	"obm/internal/workload"
)

func streamModel(t testing.TB) *model.LatencyModel {
	t.Helper()
	return model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
}

func genSource(t testing.TB, events int, seed uint64) Source {
	t.Helper()
	g, err := NewGenerator(GenConfig{Events: events, Tiles: 64, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStreamRunnerBasic(t *testing.T) {
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{
		Policy:   Every{Interval: 500},
		Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8}},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), genSource(t, 5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if met.Events != 5000 {
		t.Errorf("events = %d, want 5000", met.Events)
	}
	if met.Arrivals+met.Departures != met.Events {
		t.Errorf("arrivals %d + departures %d != events %d", met.Arrivals, met.Departures, met.Events)
	}
	if met.RemapAttempts == 0 || met.Remaps == 0 {
		t.Errorf("periodic policy never remapped: %+v", met)
	}
	if met.Remaps+met.RemapsRejected != met.RemapAttempts {
		t.Errorf("remap accounting inconsistent: %+v", met)
	}
	if met.PeakLiveApps == 0 || met.Intervals == 0 {
		t.Errorf("no load measured: %+v", met)
	}
	for _, v := range []float64{met.TimeWeightedMaxAPL, met.TimeWeightedDevAPL} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("bad time-weighted metric %v in %+v", v, met)
		}
	}
}

func TestStreamRunnerDeterministic(t *testing.T) {
	lm := streamModel(t)
	run := func() StreamMetrics {
		r, err := NewStreamRunner(lm, StreamConfig{
			Policy:   Every{Interval: 300},
			Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8, Objective: core.Weighted{Max: 1, Dev: 2}}},
			Cost:     CompositeCost{Objective: core.Weighted{Max: 1, Dev: 2}, PerMigration: 0.001},
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		met, err := r.Run(context.Background(), genSource(t, 3000, 7))
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("stream runner not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestStreamMatchesRunnerOnToyTimeline: on the four-phase toy scenario
// with no remapping, the streaming runner's time-weighted metrics math
// (incremental numerators) agrees with the event-slice Runner's
// (full problem rebuild per interval) once placement is held identical
// by adopting the same tile assignments. Placement policies differ, so
// the check pins Intervals and the measurement identity rather than
// exact APL equality: a separate golden below pins the stream's values.
func TestStreamMatchesRunnerOnToyTimeline(t *testing.T) {
	lm := streamModel(t)
	sc := fourPhaseScenario()
	sr, err := NewStreamRunner(lm, StreamConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	smet, err := sr.Run(context.Background(), NewSliceSource(sc))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRunner(lm, mapping.SortSelectSwap{}, Never{})
	if err != nil {
		t.Fatal(err)
	}
	rmet, err := rr.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if smet.Intervals != rmet.Intervals {
		t.Errorf("intervals %d vs runner %d", smet.Intervals, rmet.Intervals)
	}
	if smet.Events != len(sc.Events) {
		t.Errorf("events %d, want %d", smet.Events, len(sc.Events))
	}
	// Both place arrivals greedily without remaps; the balance numbers
	// must be the same order of magnitude (they share the cost model).
	if ratio := smet.TimeWeightedMaxAPL / rmet.TimeWeightedMaxAPL; ratio < 0.5 || ratio > 2 {
		t.Errorf("stream max-APL %.4f wildly differs from runner %.4f", smet.TimeWeightedMaxAPL, rmet.TimeWeightedMaxAPL)
	}
}

// TestStreamIncrementalMatchesEvaluate: the incrementally maintained
// balance (numerators updated per arrival/departure) must agree with a
// from-scratch core.Evaluate of the materialized live problem at every
// step of a churning timeline.
func TestStreamIncrementalMatchesEvaluate(t *testing.T) {
	lm := streamModel(t)
	st := &streamState{
		apps:   map[string]*workload.Application{},
		tiles:  map[string][]mesh.Tile{},
		num:    map[string]float64{},
		weight: map[string]float64{},
		fs:     NewFreeSet(lm.NumTiles()),
	}
	pl := &SpiralPlacement{}
	for _, e := range fourPhaseScenario().Events {
		if e.Arrive != nil {
			if err := st.arrive(lm, pl, e.Arrive); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := st.depart(e.Depart); err != nil {
				t.Fatal(err)
			}
		}
		maxAPL, devAPL, active := st.balance()
		if active == 0 {
			continue
		}
		p, m, err := st.problem(lm)
		if err != nil {
			t.Fatal(err)
		}
		ev := p.Evaluate(m)
		if math.Abs(maxAPL-ev.MaxAPL) > 1e-9 || math.Abs(devAPL-ev.DevAPL) > 1e-9 {
			t.Fatalf("incremental (max %.9f, dev %.9f) != Evaluate (max %.9f, dev %.9f)",
				maxAPL, devAPL, ev.MaxAPL, ev.DevAPL)
		}
	}
}

// TestStreamRejectsAllWithProhibitiveMigrationCost: with an enormous
// per-migration charge every candidate is rejected, so the scheduler
// must report attempts but zero adopted remaps and zero migrations.
func TestStreamRejectsAllWithProhibitiveMigrationCost(t *testing.T) {
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{
		Policy:   Every{Interval: 300},
		Remapper: FullRemap{Mapper: mapping.SortSelectSwap{}},
		Cost:     CompositeCost{PerMigration: 1e12},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), genSource(t, 2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if met.RemapAttempts == 0 {
		t.Fatal("policy never fired")
	}
	if met.Remaps != 0 || met.Migrations != 0 {
		t.Errorf("prohibitive migration cost still adopted remaps: %+v", met)
	}
	if met.RemapsRejected != met.RemapAttempts {
		t.Errorf("rejected %d != attempts %d", met.RemapsRejected, met.RemapAttempts)
	}
}

// TestStreamRemappingImprovesBalance: warm-started remapping with a
// modest migration charge must beat placement-only on time-weighted
// dev-APL for the same timeline.
func TestStreamRemappingImprovesBalance(t *testing.T) {
	lm := streamModel(t)
	obj := core.Weighted{Max: 1, Dev: 2}
	run := func(cfg StreamConfig) StreamMetrics {
		cfg.Registry = obs.NewRegistry()
		r, err := NewStreamRunner(lm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		met, err := r.Run(context.Background(), genSource(t, 4000, 11))
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	baseline := run(StreamConfig{})
	warm := run(StreamConfig{
		Policy:   Every{Interval: 200},
		Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8, Objective: obj}},
		Cost:     CompositeCost{Objective: obj, PerMigration: 0.0005},
	})
	if warm.Remaps == 0 {
		t.Fatal("warm remapper never adopted a candidate")
	}
	if !(warm.TimeWeightedDevAPL < baseline.TimeWeightedDevAPL) {
		t.Errorf("warm remapping dev %.4f did not beat placement-only %.4f",
			warm.TimeWeightedDevAPL, baseline.TimeWeightedDevAPL)
	}
}

// TestStreamAdaptivePolicy: the measured (dev-threshold) policy drives
// the streaming runner too, via the incremental dev-APL — no problem
// rebuild per event.
func TestStreamAdaptivePolicy(t *testing.T) {
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{
		Policy:   WhenUnbalanced{Threshold: 0.3},
		Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8, Objective: core.DevAPL{}}},
		Cost:     CompositeCost{Objective: core.DevAPL{}},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), genSource(t, 3000, 13))
	if err != nil {
		t.Fatal(err)
	}
	if met.RemapAttempts == 0 {
		t.Error("adaptive policy never fired on a churning timeline")
	}
}

func TestStreamEmptySource(t *testing.T) {
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), NewSliceSource(Scenario{})); !errors.Is(err, ErrNoEvents) {
		t.Errorf("empty source: err = %v, want ErrNoEvents", err)
	}
}

func TestStreamCancellation(t *testing.T) {
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, genSource(t, 1000, 1)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", err)
	}
}

// TestStreamSLOMetricsRecorded: the obs registry carries the SLO
// surface — remap latency histogram (p99 readable), migrations per
// remap, time-weighted dev-APL, and the event counters.
func TestStreamSLOMetricsRecorded(t *testing.T) {
	lm := streamModel(t)
	reg := obs.NewRegistry()
	r, err := NewStreamRunner(lm, StreamConfig{
		Policy:   Every{Interval: 400},
		Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), genSource(t, 4000, 3))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counter := func(name string) uint64 {
		c, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %s missing", name)
		}
		return c
	}
	if got := counter("sched.stream.events"); got != uint64(met.Events) {
		t.Errorf("events counter %d != %d", got, met.Events)
	}
	if got := counter("sched.stream.remaps"); got != uint64(met.Remaps) {
		t.Errorf("remaps counter %d != %d", got, met.Remaps)
	}
	if got := counter("sched.stream.migrations"); got != uint64(met.Migrations) {
		t.Errorf("migrations counter %d != %d", got, met.Migrations)
	}
	lat, ok := snap.Histogram("sched.remap.seconds")
	if !ok || lat.Count != uint64(met.RemapAttempts) {
		t.Fatalf("remap latency histogram: ok=%v count=%d attempts=%d", ok, lat.Count, met.RemapAttempts)
	}
	if p99 := lat.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 remap latency = %v, want > 0", p99)
	}
	dev, ok := snap.Histogram("sched.stream.devapl")
	if !ok || dev.Count == 0 {
		t.Fatalf("time-weighted dev-APL histogram empty (ok=%v)", ok)
	}
	migs, ok := snap.Histogram("sched.remap.migrations")
	if !ok || migs.Count != uint64(met.Remaps) {
		t.Fatalf("migrations histogram: ok=%v count=%d remaps=%d", ok, migs.Count, met.Remaps)
	}
}

// TestStreamLargeTimeline pushes a quarter-million events through the
// warm path to guard the O(live state) scaling claim; the full
// million-event run lives in the dynstream experiment's full budget and
// BenchmarkDynamicStream.
func TestStreamLargeTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("large timeline in -short mode")
	}
	lm := streamModel(t)
	r, err := NewStreamRunner(lm, StreamConfig{
		Policy:   Every{Interval: 5000},
		Remapper: WarmRemap{SSS: mapping.SortSelectSwap{MaxStep: 8}},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	met, err := r.Run(context.Background(), genSource(t, 250_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if met.Events != 250_000 {
		t.Fatalf("events = %d, want 250000", met.Events)
	}
	if met.Remaps == 0 {
		t.Error("no remaps over 250k events")
	}
	t.Logf("250k events in %v: %+v", time.Since(start), met)
}
