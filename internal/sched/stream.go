package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/obs"
	"obm/internal/workload"
)

// StreamConfig assembles a streaming scheduler from its policies.
type StreamConfig struct {
	// Placement handles every arrival incrementally (default spiral).
	Placement Placement
	// Policy decides when to attempt a remap (default Never).
	Policy Policy
	// Remapper produces remap candidates; nil disables remapping
	// regardless of Policy.
	Remapper Remapper
	// Cost is the migration-aware adoption test for candidates.
	Cost CompositeCost
	// Registry receives the scheduler's SLO metrics (remap latency,
	// migrations per remap, time-weighted dev-APL); nil uses the
	// process-default registry. Recording never influences results.
	Registry *obs.Registry
}

// StreamMetrics aggregates one streaming run. The time-weighted APL
// metrics match what the event-slice Runner reports for the same
// timeline; the remap-economy counters are the scheduler's SLO surface.
type StreamMetrics struct {
	Events     int
	Arrivals   int
	Departures int
	// RemapAttempts counts policy firings; Remaps the adopted
	// candidates; RemapsRejected those whose improvement did not cover
	// their migration cost.
	RemapAttempts  int
	Remaps         int
	RemapsRejected int
	// Migrations counts thread moves across adopted remaps only.
	Migrations int
	// PeakLiveApps is the high-water mark of concurrently live
	// applications.
	PeakLiveApps int
	// Intervals counts measured spans.
	Intervals          int
	TimeWeightedMaxAPL float64
	TimeWeightedDevAPL float64
}

// StreamRunner executes event timelines of arbitrary length in O(live
// state) memory: per-application APL numerators are maintained
// incrementally, so between-remap measurement costs O(live apps) per
// event group and the OBM problem is only materialized when the policy
// actually fires.
type StreamRunner struct {
	lm  *model.LatencyModel
	cfg StreamConfig
}

// NewStreamRunner validates the configuration, resolving defaults
// (spiral placement, Never policy, default registry).
func NewStreamRunner(lm *model.LatencyModel, cfg StreamConfig) (*StreamRunner, error) {
	if lm == nil {
		return nil, fmt.Errorf("sched: nil latency model")
	}
	if cfg.Placement == nil {
		cfg.Placement = &SpiralPlacement{}
	}
	if cfg.Policy == nil {
		cfg.Policy = Never{}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	return &StreamRunner{lm: lm, cfg: cfg}, nil
}

// streamState is the live chip: applications, their tiles, and the
// incrementally maintained APL numerators.
type streamState struct {
	apps   map[string]*workload.Application
	order  []string // sorted live names, the deterministic iteration order
	tiles  map[string][]mesh.Tile
	num    map[string]float64 // per-app total packet latency (APL numerator)
	weight map[string]float64 // per-app total request rate (APL denominator)
	fs     *FreeSet
	apls   []float64 // measurement scratch
}

// appNumerator computes an application's APL numerator from scratch.
func (st *streamState) appNumerator(lm *model.LatencyModel, name string) float64 {
	app, ts := st.apps[name], st.tiles[name]
	var sum float64
	for i, th := range app.Threads {
		sum += lm.Cost(th.CacheRate, th.MemRate, ts[i])
	}
	return sum
}

// balance returns the live max-APL and dev-APL (population stddev),
// iterating apps in sorted-name order so float summation is
// deterministic. Zero-weight apps are excluded, as in core.Evaluate.
func (st *streamState) balance() (maxAPL, devAPL float64, active int) {
	apls := st.apls[:0]
	for _, name := range st.order {
		w := st.weight[name]
		if w == 0 {
			continue
		}
		a := st.num[name] / w
		apls = append(apls, a)
		if a > maxAPL {
			maxAPL = a
		}
	}
	st.apls = apls
	if len(apls) == 0 {
		return 0, 0, 0
	}
	var mean float64
	for _, a := range apls {
		mean += a
	}
	mean /= float64(len(apls))
	var varsum float64
	for _, a := range apls {
		d := a - mean
		varsum += d * d
	}
	return maxAPL, math.Sqrt(varsum / float64(len(apls))), len(apls)
}

// problem materializes the padded OBM problem plus the incumbent
// mapping for the current live set — only done per remap attempt.
func (st *streamState) problem(lm *model.LatencyModel) (*core.Problem, core.Mapping, error) {
	w := &workload.Workload{Name: "live"}
	var m core.Mapping
	for _, name := range st.order {
		w.Apps = append(w.Apps, *st.apps[name])
		m = append(m, st.tiles[name]...)
	}
	if err := w.PadTo(lm.NumTiles()); err != nil {
		return nil, nil, err
	}
	for t := 0; t < lm.NumTiles(); t++ {
		if st.fs.Free(mesh.Tile(t)) {
			m = append(m, mesh.Tile(t))
		}
	}
	p, err := core.NewProblem(lm, w)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Validate(p.N()); err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// Run drains the source and returns aggregate metrics. Progress is
// reported through ctx's engine sink under the "dynstream" stage; the
// run is cancellable between event groups and inside every remap
// solve.
func (r *StreamRunner) Run(ctx context.Context, src Source) (StreamMetrics, error) {
	reg := r.cfg.Registry
	evCount := reg.Counter("sched.stream.events")
	arrCount := reg.Counter("sched.stream.arrivals")
	depCount := reg.Counter("sched.stream.departures")
	attemptCount := reg.Counter("sched.stream.remap.attempts")
	remapCount := reg.Counter("sched.stream.remaps")
	rejectCount := reg.Counter("sched.stream.remap.rejected")
	migCount := reg.Counter("sched.stream.migrations")
	liveGauge := reg.Gauge("sched.stream.live_apps")
	peakGauge := reg.Gauge("sched.stream.live_apps.peak")
	remapTimer := reg.Timer("sched.remap.seconds")
	migHist := reg.Histogram("sched.remap.migrations", obs.LinearBuckets(0, 8, 33))
	devHist := reg.Histogram("sched.stream.devapl", obs.ExpBuckets(0.01, 2, 16))

	st := &streamState{
		apps:   map[string]*workload.Application{},
		tiles:  map[string][]mesh.Tile{},
		num:    map[string]float64{},
		weight: map[string]float64{},
		fs:     NewFreeSet(r.lm.NumTiles()),
	}

	var met StreamMetrics
	var weightSum float64
	var lastRemap int64
	var prevTime int64
	first := true
	total := src.Len()
	rep := engine.StartStage(ctx, "dynstream")

	measure := func(until int64) {
		span := float64(until - prevTime)
		if span <= 0 {
			return
		}
		maxAPL, devAPL, active := st.balance()
		if active == 0 {
			return
		}
		met.TimeWeightedMaxAPL += maxAPL * span
		met.TimeWeightedDevAPL += devAPL * span
		weightSum += span
		met.Intervals++
		devHist.ObserveN(devAPL, uint64(span))
	}

	// pending groups events that share a timestamp: one lookahead slot
	// keeps the source streaming while the runner coalesces.
	var pending []Event
	var carry *Event
	nextGroup := func() []Event {
		pending = pending[:0]
		if carry != nil {
			pending = append(pending, *carry)
			carry = nil
		}
		for {
			e, ok := src.Next()
			if !ok {
				return pending
			}
			if len(pending) == 0 || e.Time == pending[0].Time {
				pending = append(pending, e)
				continue
			}
			carry = &e
			return pending
		}
	}

	for {
		group := nextGroup()
		if len(group) == 0 {
			break
		}
		now := group[0].Time
		if err := ctx.Err(); err != nil {
			return StreamMetrics{}, fmt.Errorf("sched: stream interrupted at event %d/%d: %w", met.Events, total, err)
		}
		if first {
			prevTime = now
			first = false
		}
		measure(now)
		prevTime = now

		for i := range group {
			e := &group[i]
			if e.Time < now {
				return StreamMetrics{}, fmt.Errorf("sched: stream event out of order (t=%d after %d)", e.Time, now)
			}
			if e.Arrive != nil {
				if err := st.arrive(r.lm, r.cfg.Placement, e.Arrive); err != nil {
					return StreamMetrics{}, err
				}
				met.Arrivals++
				arrCount.Inc()
			} else {
				if err := st.depart(e.Depart); err != nil {
					return StreamMetrics{}, err
				}
				met.Departures++
				depCount.Inc()
			}
			met.Events++
			evCount.Inc()
		}
		liveGauge.Set(int64(len(st.order)))
		peakGauge.SetMax(int64(len(st.order)))
		if len(st.order) > met.PeakLiveApps {
			met.PeakLiveApps = len(st.order)
		}
		if met.Events%4096 < len(group) {
			rep.Report(met.Events, total)
		}

		// Policy: attempt a remap for the whole group?
		if r.cfg.Remapper != nil && len(st.order) > 0 {
			fire := r.cfg.Policy.Remap(now, now-lastRemap)
			if mp, ok := r.cfg.Policy.(MeasuredPolicy); ok && !fire {
				_, devAPL, _ := st.balance()
				fire = mp.RemapMeasured(devAPL)
			}
			if fire {
				met.RemapAttempts++
				attemptCount.Inc()
				start := time.Now()
				adopted, migs, err := r.attemptRemap(ctx, st)
				remapTimer.Since(start)
				if err != nil {
					return StreamMetrics{}, err
				}
				lastRemap = now
				if adopted {
					met.Remaps++
					met.Migrations += migs
					remapCount.Inc()
					migCount.Add(uint64(migs))
					migHist.Observe(float64(migs))
				} else {
					met.RemapsRejected++
					rejectCount.Inc()
				}
			}
		}
	}
	if met.Events == 0 {
		return StreamMetrics{}, ErrNoEvents
	}
	measure(src.End())
	if weightSum > 0 {
		met.TimeWeightedMaxAPL /= weightSum
		met.TimeWeightedDevAPL /= weightSum
	}
	rep.Finish(met.Events, total)
	return met, nil
}

// attemptRemap materializes the live problem, solves for a candidate,
// and adopts it only if the migration-aware composite cost approves.
func (r *StreamRunner) attemptRemap(ctx context.Context, st *streamState) (adopted bool, migrations int, err error) {
	p, incumbent, err := st.problem(r.lm)
	if err != nil {
		return false, 0, err
	}
	cand, err := r.cfg.Remapper.Remap(ctx, p, incumbent)
	if err != nil {
		return false, 0, err
	}
	// Migrations: live (non-pad) threads whose tile changed.
	liveThreads := 0
	for _, name := range st.order {
		liveThreads += len(st.apps[name].Threads)
	}
	for j := 0; j < liveThreads; j++ {
		if cand[j] != incumbent[j] {
			migrations++
		}
	}
	sc := p.Scorer(r.cfg.Cost.Objective)
	if !r.cfg.Cost.Accept(sc.Score(incumbent), sc.Score(cand), migrations) {
		return false, 0, nil
	}
	// Adopt: write tiles back per app and rebuild numerators and the
	// free set.
	idx := 0
	fs := NewFreeSet(r.lm.NumTiles())
	for _, name := range st.order {
		ts := st.tiles[name]
		for i := range ts {
			ts[i] = cand[idx]
			fs.Take(cand[idx])
			idx++
		}
		st.num[name] = st.appNumerator(r.lm, name)
	}
	st.fs = fs
	return true, migrations, nil
}

// arrive validates and places a new application, updating the
// incremental state.
func (st *streamState) arrive(lm *model.LatencyModel, pl Placement, a *workload.Application) error {
	if a.Name == "" || len(a.Threads) == 0 {
		return fmt.Errorf("sched: stream arrival %q has no threads", a.Name)
	}
	if _, dup := st.apps[a.Name]; dup {
		return fmt.Errorf("sched: stream duplicate arrival %q", a.Name)
	}
	app := *a
	ts, err := pl.Place(lm, &app, st.fs)
	if err != nil {
		return err
	}
	for _, t := range ts {
		st.fs.Take(t)
	}
	st.apps[app.Name] = &app
	st.tiles[app.Name] = ts
	i := sort.SearchStrings(st.order, app.Name)
	st.order = append(st.order, "")
	copy(st.order[i+1:], st.order[i:])
	st.order[i] = app.Name
	var w float64
	for _, th := range app.Threads {
		w += th.CacheRate + th.MemRate
	}
	st.weight[app.Name] = w
	st.num[app.Name] = st.appNumerator(lm, app.Name)
	return nil
}

// depart frees a terminating application's tiles and drops its state.
func (st *streamState) depart(name string) error {
	if _, ok := st.apps[name]; !ok {
		return fmt.Errorf("sched: stream departs unknown application %q", name)
	}
	for _, t := range st.tiles[name] {
		st.fs.Release(t)
	}
	delete(st.tiles, name)
	delete(st.apps, name)
	delete(st.num, name)
	delete(st.weight, name)
	i := sort.SearchStrings(st.order, name)
	st.order = append(st.order[:i], st.order[i+1:]...)
	return nil
}
