package sched

import (
	"context"
	"errors"
	"math"
	"testing"

	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func testModel(t testing.TB) *model.LatencyModel {
	t.Helper()
	return model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
}

// appFrom lifts one application out of a paper configuration and gives
// it a unique name.
func appFrom(cfg string, idx int, name string) *workload.Application {
	w := workload.MustConfig(cfg)
	app := w.Apps[idx]
	app.Name = name
	return &app
}

func fourPhaseScenario() Scenario {
	return Scenario{
		Events: []Event{
			{Time: 0, Arrive: appFrom("C1", 3, "heavy1")},
			{Time: 0, Arrive: appFrom("C1", 0, "light1")},
			{Time: 100, Arrive: appFrom("C3", 3, "heavy2")},
			{Time: 200, Arrive: appFrom("C3", 0, "light2")},
			{Time: 300, Depart: "heavy1"},
			{Time: 400, Arrive: appFrom("C5", 2, "mid1")},
			{Time: 500, Depart: "light1"},
			{Time: 500, Arrive: appFrom("C8", 1, "mid2")},
		},
		End: 700,
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := fourPhaseScenario().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scenario{
		{},
		{Events: []Event{{Time: 5, Arrive: appFrom("C1", 0, "a")}, {Time: 1, Depart: "a"}}, End: 10},
		{Events: []Event{{Time: 0}}, End: 1},
		{Events: []Event{{Time: 0, Arrive: appFrom("C1", 0, "a"), Depart: "b"}}, End: 1},
		{Events: []Event{{Time: 0, Depart: "ghost"}}, End: 1},
		{Events: []Event{{Time: 0, Arrive: appFrom("C1", 0, "a")}, {Time: 1, Arrive: appFrom("C1", 1, "a")}}, End: 2},
		{Events: []Event{{Time: 5, Arrive: appFrom("C1", 0, "a")}}, End: 1},
		{Events: []Event{{Time: 0, Arrive: &workload.Application{Name: "empty"}}}, End: 1},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

// TestCoalesceSimultaneousEvents: events sharing a timestamp trigger at
// most one re-solve, not one per event.
func TestCoalesceSimultaneousEvents(t *testing.T) {
	lm := testModel(t)
	r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), fourPhaseScenario())
	if err != nil {
		t.Fatal(err)
	}
	// fourPhaseScenario has 8 events at 6 distinct timestamps (two pairs
	// coincide), so on-change must fire exactly 6 times.
	if met.Remaps != 6 {
		t.Errorf("remaps = %d, want 6 (one per distinct timestamp)", met.Remaps)
	}
}

// TestDegenerateTimelines: zero-length spans and empty timelines must
// yield typed errors or well-defined zeros — never NaN/Inf metrics.
func TestDegenerateTimelines(t *testing.T) {
	lm := testModel(t)
	cases := []struct {
		name    string
		sc      Scenario
		wantErr error // nil: expect success with finite metrics
	}{
		{
			name:    "empty event list",
			sc:      Scenario{},
			wantErr: ErrNoEvents,
		},
		{
			name:    "empty with end",
			sc:      Scenario{End: 100},
			wantErr: ErrNoEvents,
		},
		{
			name: "end equals only event time",
			sc: Scenario{
				Events: []Event{{Time: 0, Arrive: appFrom("C1", 0, "a")}},
				End:    0,
			},
		},
		{
			name: "end equals last event time",
			sc: Scenario{
				Events: []Event{
					{Time: 0, Arrive: appFrom("C1", 0, "a")},
					{Time: 50, Arrive: appFrom("C1", 1, "b")},
				},
				End: 50,
			},
		},
		{
			name: "all events simultaneous, zero span",
			sc: Scenario{
				Events: []Event{
					{Time: 7, Arrive: appFrom("C1", 0, "a")},
					{Time: 7, Arrive: appFrom("C1", 1, "b")},
					{Time: 7, Depart: "a"},
				},
				End: 7,
			},
		},
		{
			name: "everything departs before end",
			sc: Scenario{
				Events: []Event{
					{Time: 0, Arrive: appFrom("C1", 0, "a")},
					{Time: 10, Depart: "a"},
				},
				End: 100,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
			if err != nil {
				t.Fatal(err)
			}
			met, err := r.Run(context.Background(), tc.sc)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []float64{met.TimeWeightedMaxAPL, met.TimeWeightedDevAPL} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite time-weighted metric in %+v", met)
				}
			}
			if met.Intervals == 0 && (met.TimeWeightedMaxAPL != 0 || met.TimeWeightedDevAPL != 0) {
				t.Errorf("zero intervals but nonzero time-weighted metrics: %+v", met)
			}
		})
	}
}

func TestPolicies(t *testing.T) {
	if (Never{}).Remap(10, 10) {
		t.Error("Never remapped")
	}
	if !(OnChange{}).Remap(10, 0) {
		t.Error("OnChange declined")
	}
	e := Every{Interval: 100}
	if e.Remap(50, 50) || !e.Remap(150, 150) {
		t.Error("Every interval logic wrong")
	}
	for _, p := range []Policy{Never{}, OnChange{}, Every{Interval: 5}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	lm := testModel(t)
	if _, err := NewRunner(nil, mapping.Global{}, Never{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewRunner(lm, nil, Never{}); err == nil {
		t.Error("nil mapper accepted")
	}
	if _, err := NewRunner(lm, mapping.Global{}, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestRunBasic(t *testing.T) {
	lm := testModel(t)
	r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	met, err := r.Run(context.Background(), fourPhaseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if met.Intervals == 0 {
		t.Fatal("no intervals measured")
	}
	if met.Remaps == 0 {
		t.Error("on-change policy should remap")
	}
	if met.TimeWeightedMaxAPL <= 0 {
		t.Error("no latency accumulated")
	}
}

// TestOnChangeBeatsNever: re-solving at every change yields better
// time-weighted balance than never remapping.
func TestOnChangeBeatsNever(t *testing.T) {
	lm := testModel(t)
	sc := fourPhaseScenario()
	never, err := NewRunner(lm, mapping.SortSelectSwap{}, Never{})
	if err != nil {
		t.Fatal(err)
	}
	onchange, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	mNever, err := never.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	mChange, err := onchange.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if mNever.Remaps != 0 || mNever.Migrations != 0 {
		t.Error("never policy migrated threads")
	}
	if !(mChange.TimeWeightedDevAPL < mNever.TimeWeightedDevAPL) {
		t.Errorf("on-change dev %.4f should beat never %.4f",
			mChange.TimeWeightedDevAPL, mNever.TimeWeightedDevAPL)
	}
	if !(mChange.TimeWeightedMaxAPL <= mNever.TimeWeightedMaxAPL+1e-9) {
		t.Errorf("on-change max %.3f should not exceed never %.3f",
			mChange.TimeWeightedMaxAPL, mNever.TimeWeightedMaxAPL)
	}
}

// TestPeriodicBetweenExtremes: a rate-limited policy lands between
// never and on-change on balance, with fewer migrations than on-change.
func TestPeriodicBetweenExtremes(t *testing.T) {
	lm := testModel(t)
	sc := fourPhaseScenario()
	run := func(p Policy) Metrics {
		r, err := NewRunner(lm, mapping.SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	never := run(Never{})
	change := run(OnChange{})
	period := run(Every{Interval: 250})
	if !(period.Remaps > 0 && period.Remaps < change.Remaps+1) {
		t.Errorf("periodic remaps %d vs on-change %d", period.Remaps, change.Remaps)
	}
	if period.Migrations > change.Migrations {
		t.Errorf("periodic migrated more (%d) than on-change (%d)", period.Migrations, change.Migrations)
	}
	if !(period.TimeWeightedDevAPL <= never.TimeWeightedDevAPL+1e-9) {
		t.Errorf("periodic dev %.4f worse than never %.4f", period.TimeWeightedDevAPL, never.TimeWeightedDevAPL)
	}
}

func TestOverSubscription(t *testing.T) {
	lm := testModel(t)
	sc := Scenario{
		Events: []Event{
			{Time: 0, Arrive: appFrom("C1", 0, "a")},
			{Time: 1, Arrive: appFrom("C1", 1, "b")},
			{Time: 2, Arrive: appFrom("C1", 2, "c")},
			{Time: 3, Arrive: appFrom("C1", 3, "d")},
			{Time: 4, Arrive: appFrom("C3", 0, "e")}, // 80 threads > 64 tiles
		},
		End: 10,
	}
	r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), sc); err == nil {
		t.Error("over-subscription accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	lm := testModel(t)
	r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(context.Background(), fourPhaseScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), fourPhaseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("scheduler not deterministic: %+v vs %+v", a, b)
	}
}

// TestWhenUnbalancedPolicy: the adaptive policy remaps less often than
// on-change while keeping dev-APL bounded near its threshold.
func TestWhenUnbalancedPolicy(t *testing.T) {
	lm := testModel(t)
	sc := fourPhaseScenario()
	run := func(p Policy) Metrics {
		r, err := NewRunner(lm, mapping.SortSelectSwap{}, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	change := run(OnChange{})
	adaptive := run(WhenUnbalanced{Threshold: 0.5})
	if adaptive.Remaps == 0 {
		t.Fatal("adaptive policy never fired despite churn imbalance")
	}
	if adaptive.Remaps > change.Remaps {
		t.Errorf("adaptive (%d remaps) fired more than on-change (%d)", adaptive.Remaps, change.Remaps)
	}
	if adaptive.Migrations > change.Migrations {
		t.Errorf("adaptive migrated more (%d) than on-change (%d)", adaptive.Migrations, change.Migrations)
	}
	// A huge threshold degenerates to never.
	lazy := run(WhenUnbalanced{Threshold: 1e9})
	if lazy.Remaps != 0 {
		t.Errorf("threshold 1e9 still remapped %d times", lazy.Remaps)
	}
	if (WhenUnbalanced{Threshold: 0.5}).Name() == "" {
		t.Error("empty name")
	}
}

// TestMigrationBudget: a budgeted runner never exceeds its per-remap
// budget and still improves balance over never remapping.
func TestMigrationBudget(t *testing.T) {
	lm := testModel(t)
	sc := fourPhaseScenario()
	r, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	r.MigrationBudget = 8
	met, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if met.Remaps == 0 {
		t.Fatal("budgeted runner never remapped")
	}
	if met.Migrations > met.Remaps*8 {
		t.Errorf("%d migrations over %d remaps exceeds budget 8", met.Migrations, met.Remaps)
	}
	never, err := NewRunner(lm, mapping.SortSelectSwap{}, Never{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := never.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !(met.TimeWeightedDevAPL < base.TimeWeightedDevAPL) {
		t.Errorf("budgeted dev %.4f not below never %.4f", met.TimeWeightedDevAPL, base.TimeWeightedDevAPL)
	}
	full, err := NewRunner(lm, mapping.SortSelectSwap{}, OnChange{})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := full.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if met.Migrations >= fm.Migrations {
		t.Errorf("budgeted migrations %d not below full remap %d", met.Migrations, fm.Migrations)
	}
}

func TestDebouncedPolicy(t *testing.T) {
	d := &Debounced{Inner: OnChange{}, MinInterval: 100}
	if d.Remap(0, 50) {
		t.Error("fired inside the debounce window")
	}
	if !d.Remap(0, 100) {
		t.Error("did not fire once the gap cleared MinInterval")
	}
	m := &Debounced{Inner: WhenUnbalanced{Threshold: 0.5}, MinInterval: 100}
	if m.Remap(0, 500) {
		t.Error("WhenUnbalanced fired without a measurement")
	}
	if !m.RemapMeasured(0.9) {
		t.Error("measured fire suppressed despite cleared gap")
	}
	m.Remap(0, 10) // latch a gap inside the window
	if m.RemapMeasured(0.9) {
		t.Error("measured fire inside the debounce window")
	}
	if m.RemapMeasured(0.1) {
		t.Error("fired below the inner threshold")
	}
	np := &Debounced{Inner: Never{}, MinInterval: 1}
	np.Remap(0, 50)
	if np.RemapMeasured(9) {
		t.Error("non-measured inner policy fired on measurement")
	}
	if got := m.Name(); got != "dev>0.50/min100" {
		t.Errorf("Name = %q", got)
	}
}
