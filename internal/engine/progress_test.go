package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSequencedMonotonicUnderConcurrency hammers one sequencer from
// many goroutines and checks the sink received a gapless 1..N sequence
// in arrival order — the property the service journal's cursor polling
// depends on.
func TestSequencedMonotonicUnderConcurrency(t *testing.T) {
	var sink recordSink
	seq := Sequenced(&sink)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq.Event(Progress{Stage: "s", Done: i})
			}
		}(w)
	}
	wg.Wait()
	evs := sink.all()
	if len(evs) != workers*per {
		t.Fatalf("%d events, want %d", len(evs), workers*per)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d (gapless, in arrival order)", i, ev.Seq, i+1)
		}
	}
}

// TestSequencedNil mirrors the package's nil-sink conventions.
func TestSequencedNil(t *testing.T) {
	if Sequenced(nil) != nil {
		t.Error("Sequenced(nil) should be nil")
	}
}

// TestRunnerStampsSequence checks Runner.Run installs a sequencer, so
// every event a batch emits carries a per-batch Seq starting at 1.
func TestRunnerStampsSequence(t *testing.T) {
	for round := 0; round < 2; round++ { // numbering restarts per batch
		var sink recordSink
		r := Runner{Sink: &sink}
		_, err := r.Run(context.Background(), []Job{{Name: "probe", Run: func(ctx context.Context) (any, error) {
			rep := StartStage(ctx, "inner")
			rep.Report(1, 2)
			rep.Finish(2, 2)
			return nil, nil
		}}})
		if err != nil {
			t.Fatal(err)
		}
		evs := sink.all()
		if len(evs) == 0 {
			t.Fatal("no events")
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("round %d: event %d Seq = %d, want %d", round, i, ev.Seq, i+1)
			}
		}
	}
}

// TestFinishMarksFinalAndSurvivesThrottle is the Finish-is-never-lost
// contract: a Finish immediately after a Report must pass a spacing
// throttle that would drop any ordinary event, because Finish events
// carry Final.
func TestFinishMarksFinalAndSurvivesThrottle(t *testing.T) {
	var sink recordSink
	// An hour-long spacing interval: after the first Report consumes the
	// allowance, nothing ordinary can pass again within the test.
	th := Throttled(&sink, time.Hour)
	ctx := WithSink(context.Background(), th)
	rep := StartStage(ctx, "stage")
	rep.Report(1, 10) // first event always passes
	rep.Report(5, 10) // dropped by spacing
	rep.Finish(10, 10)
	evs := sink.all()
	if len(evs) != 2 {
		t.Fatalf("got %d events %+v, want first Report + Finish", len(evs), evs)
	}
	if evs[0].Final || evs[0].Done != 1 {
		t.Errorf("first event = %+v, want ordinary Done=1", evs[0])
	}
	last := evs[1]
	if !last.Final || last.Done != 10 || last.Total != 10 {
		t.Errorf("final event = %+v, want Final with Done=Total=10", last)
	}
}

// TestThrottledPassesSkippedAndFinal checks the two unconditional
// classes pass a saturated throttle while ordinary events are dropped.
func TestThrottledPassesSkippedAndFinal(t *testing.T) {
	var sink recordSink
	th := Throttled(&sink, time.Hour)
	th.Event(Progress{Stage: "a", Done: 1}) // consumes the spacing allowance
	th.Event(Progress{Stage: "b", Done: 2}) // dropped
	th.Event(Progress{Stage: "hit", Skipped: true, Done: 1, Total: 1})
	th.Event(Progress{Stage: "a", Done: 3, Final: true})
	evs := sink.all()
	if len(evs) != 3 {
		t.Fatalf("got %d events %+v, want 3", len(evs), evs)
	}
	if !evs[1].Skipped || !evs[2].Final {
		t.Errorf("events = %+v, want skipped then final", evs)
	}
}

// TestThrottledDegenerateIntervals: nil sink and non-positive interval
// follow the package conventions.
func TestThrottledDegenerateIntervals(t *testing.T) {
	if Throttled(nil, time.Second) != nil {
		t.Error("Throttled(nil) should be nil")
	}
	var sink recordSink
	th := Throttled(&sink, 0)
	for i := 0; i < 10; i++ {
		th.Event(Progress{Done: i})
	}
	if got := len(sink.all()); got != 10 {
		t.Errorf("zero interval dropped events: %d/10", got)
	}
}
