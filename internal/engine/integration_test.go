// Integration tests for the engine contract across real layers: the
// external test package imports mapping and sim (both of which import
// engine), exercising deadline expiry mid-anneal, cancellation during
// replica sharding, and progress-sink event ordering end to end.
package engine_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/sim"
	"obm/internal/workload"
)

func c1Problem(t testing.TB) *core.Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	return core.MustNewProblem(lm, workload.MustConfig("C1"))
}

// orderedSink records events and is safe for concurrent reporters.
type orderedSink struct {
	mu     sync.Mutex
	events []engine.Progress
}

func (s *orderedSink) Event(p engine.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, p)
}

func (s *orderedSink) snapshot() []engine.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]engine.Progress(nil), s.events...)
}

// TestDeadlineStopsAnnealingMidRun gives simulated annealing an
// iteration budget that cannot finish inside the deadline and checks it
// unwinds with a DeadlineExceeded-wrapped error, promptly.
func TestDeadlineStopsAnnealingMidRun(t *testing.T) {
	p := c1Problem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mapping.Annealing{Iters: 50_000_000, Seed: 1}.Map(ctx, p)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("50M-iteration anneal finished under a 50ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "annealing: interrupted") {
		t.Errorf("error %v missing annealing interruption context", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("anneal took %v to notice a 50ms deadline", elapsed)
	}
}

// TestCancelDuringRunReplicas cancels after the first replica completes
// and checks the finished work is kept while the batch reports the
// interruption.
func TestCancelDuringRunReplicas(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := make(chan struct{})
	var once sync.Once
	vals, err := sim.RunReplicas(ctx, 8, 2, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			once.Do(func() { close(first); cancel() })
			return 100, nil
		}
		select {
		case <-first:
		case <-time.After(5 * time.Second):
			t.Error("replica never saw the first finish")
		}
		// Later replicas honour the cancelled context like a real
		// simulation poll would.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 100 + i, nil
	})
	if err == nil {
		t.Fatal("cancelled replica batch returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "replicas interrupted") {
		t.Errorf("error %v missing replica interruption context", err)
	}
	// Results come back in-slot (len == n always); completed replicas
	// keep their values, interrupted ones stay zero.
	if len(vals) != 8 {
		t.Fatalf("got %d slots, want 8", len(vals))
	}
	if vals[0] != 100 {
		t.Errorf("completed replica 0 lost its value: %d", vals[0])
	}
	completed := 0
	for _, v := range vals {
		if v != 0 {
			completed++
		}
	}
	if completed == 8 {
		t.Error("all 8 replicas completed despite cancellation")
	}
}

// TestProgressSinkSeesOrderedStageEvents runs a real anneal with a sink
// installed and checks the stage's events arrive with monotonically
// non-decreasing Done and Elapsed, ending in the Finish event.
func TestProgressSinkSeesOrderedStageEvents(t *testing.T) {
	p := c1Problem(t)
	sink := &orderedSink{}
	ctx := engine.WithSink(context.Background(), sink)
	sa := mapping.Annealing{Iters: 30_000, Seed: 2}
	if _, err := sa.Map(ctx, p); err != nil {
		t.Fatal(err)
	}
	events := sink.snapshot()
	if len(events) == 0 {
		t.Fatal("no progress events reached the sink")
	}
	prevDone, prevElapsed := -1, time.Duration(-1)
	for i, e := range events {
		if e.Stage != sa.Name() {
			t.Errorf("event %d: stage %q, want %q", i, e.Stage, sa.Name())
		}
		if e.Total != sa.Iters {
			t.Errorf("event %d: total %d, want %d", i, e.Total, sa.Iters)
		}
		if e.Done < prevDone {
			t.Errorf("event %d: done went backwards (%d after %d)", i, e.Done, prevDone)
		}
		if e.Elapsed < prevElapsed {
			t.Errorf("event %d: elapsed went backwards (%v after %v)", i, e.Elapsed, prevElapsed)
		}
		prevDone, prevElapsed = e.Done, e.Elapsed
	}
	if last := events[len(events)-1]; last.Done != sa.Iters {
		t.Errorf("final event done=%d, want %d (Finish must always emit)", last.Done, sa.Iters)
	}
	// The identical run without a sink must produce the identical
	// mapping: progress reporting cannot perturb the random stream.
	plain, err := sa.Map(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	withSink, err := sa.Map(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != withSink[i] {
			t.Fatalf("tile %d differs with sink installed: %d vs %d", i, plain[i], withSink[i])
		}
	}
}

// TestRunnerTimeoutBoundsRealJobs drives engine.Runner over real
// mapping jobs: the cheap job's result survives a timeout the expensive
// job cannot meet.
func TestRunnerTimeoutBoundsRealJobs(t *testing.T) {
	p := c1Problem(t)
	r := engine.Runner{Timeout: 150 * time.Millisecond}
	results, err := r.Run(context.Background(), []engine.Job{
		{Name: "sss", Run: func(ctx context.Context) (any, error) {
			return mapping.SortSelectSwap{}.Map(ctx, p)
		}},
		{Name: "sa-huge", Run: func(ctx context.Context) (any, error) {
			return mapping.Annealing{Iters: 50_000_000, Seed: 1}.Map(ctx, p)
		}},
	})
	if err == nil {
		t.Fatal("batch with a 50M-iteration anneal met a 150ms timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if len(results) == 0 || results[0].Name != "sss" || results[0].Err != nil {
		t.Fatalf("cheap job's result not preserved: %+v", results)
	}
	if m, ok := results[0].Value.(core.Mapping); !ok || len(m) == 0 {
		t.Errorf("cheap job's value not a mapping: %#v", results[0].Value)
	}
}
