// Package engine is the cancellable execution substrate every
// long-running layer of the repository runs on: the iterative mappers
// (Monte Carlo, SA, cluster SA, SSS refinement), the experiment
// runners, and the replica-sharded simulator all accept a
// context.Context and consult this package for two services:
//
//   - cancellation and deadlines — callers cancel a context (or set a
//     deadline) and every layer unwinds promptly, returning whatever
//     partial results it has together with a ctx.Err()-wrapped error;
//   - structured progress — a pluggable Sink carried in the context
//     receives Progress events (stage, done/total, elapsed) so a CLI
//     ticker, a log shipper, or a serving API can observe work in
//     flight without the workers knowing who is watching.
//
// The design rule that keeps results reproducible: context plumbing
// must never perturb an algorithm's random stream. Cancellation polls
// and progress reports read the clock and the context only; a run that
// is never cancelled produces bit-identical output to the pre-context
// code path.
package engine

import (
	"context"
	"sync"
	"time"
)

// Progress is one structured progress event for a named stage.
type Progress struct {
	// Seq is the event's monotonic per-job sequence number, stamped by
	// the Sequenced sink wrapper (the Runner installs one around its
	// Sink automatically). Numbering starts at 1 and has no gaps, so a
	// consumer that saw event Seq=n can poll "everything after n" and
	// resume without loss; 0 means the event never passed through a
	// sequencer.
	Seq uint64
	// Stage names the unit of work, e.g. "MC(10000)", "fig9", or
	// "replicas".
	Stage string
	// Done counts completed steps; Total is the known step count (0 when
	// unknown or open-ended).
	Done, Total int
	// Elapsed is the time since the stage started.
	Elapsed time.Duration
	// Skipped marks a stage whose work was served from a cache (the
	// scenario artifact cache emits one such event per hit) rather than
	// recomputed. Observers can count hits or render the stage as
	// skipped; Done/Total are 1/1.
	Skipped bool
	// Final marks the unthrottled stage-completion event emitted by
	// Reporter.Finish. Spacing throttles (Throttled) must never drop a
	// Final event: it is the only event guaranteed to carry the stage's
	// terminal Done/Total.
	Final bool
}

// ReportSkipped emits one unthrottled Progress event marking stage as
// skipped (served from cache) to the sink carried by ctx, if any.
func ReportSkipped(ctx context.Context, stage string) {
	s := SinkOf(ctx)
	if s == nil {
		return
	}
	s.Event(Progress{Stage: stage, Done: 1, Total: 1, Skipped: true})
}

// Sink receives progress events. Implementations must be safe for
// concurrent use: parallel chunks and replica workers report through
// one sink.
type Sink interface {
	Event(Progress)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Progress)

// Event implements Sink.
func (f SinkFunc) Event(p Progress) { f(p) }

// sinkKey carries the Sink through a context.
type sinkKey struct{}

// WithSink returns a context that carries s; workers down the call
// chain report progress to it via StartStage. A nil sink returns ctx
// unchanged.
func WithSink(ctx context.Context, s Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, s)
}

// SinkOf returns the sink carried by ctx, or nil if none.
func SinkOf(ctx context.Context) Sink {
	s, _ := ctx.Value(sinkKey{}).(Sink)
	return s
}

// DefaultReportInterval is the minimum spacing between throttled
// Reporter events. Tight loops may call Report every few hundred
// iterations; the reporter forwards at most one event per interval
// (plus the first and any Finish).
const DefaultReportInterval = 100 * time.Millisecond

// Reporter emits throttled Progress events for one stage. Obtain one
// with StartStage; a nil *Reporter (no sink in the context) is a valid
// receiver for which every method is a free no-op, so hot loops report
// unconditionally.
type Reporter struct {
	sink  Sink
	stage string
	start time.Time

	mu       sync.Mutex
	last     time.Time
	interval time.Duration
}

// StartStage returns a Reporter for stage drawing its sink from ctx,
// or nil when the context carries no sink.
func StartStage(ctx context.Context, stage string) *Reporter {
	s := SinkOf(ctx)
	if s == nil {
		return nil
	}
	return &Reporter{sink: s, stage: stage, start: time.Now(), interval: DefaultReportInterval}
}

// Report emits a throttled progress event. The first call always
// emits; later calls emit at most once per DefaultReportInterval.
// Safe for concurrent use.
func (r *Reporter) Report(done, total int) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if !r.last.IsZero() && now.Sub(r.last) < r.interval {
		r.mu.Unlock()
		return
	}
	r.last = now
	r.mu.Unlock()
	r.sink.Event(Progress{Stage: r.stage, Done: done, Total: total, Elapsed: now.Sub(r.start)})
}

// Finish emits a final unthrottled event marking the stage complete.
// The event carries Final, so downstream spacing throttles (Throttled,
// a CLI ticker) know they must deliver it even if an ordinary Report
// just passed: dropping it would leave consumers without the stage's
// terminal Done/Total.
func (r *Reporter) Finish(done, total int) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.last = now
	r.mu.Unlock()
	r.sink.Event(Progress{Stage: r.stage, Done: done, Total: total, Elapsed: now.Sub(r.start), Final: true})
}

// Sequenced wraps s so every event is stamped with a monotonically
// increasing Seq (1, 2, 3, …) before being forwarded. Stamping and
// forwarding happen under one lock, so events reach s in sequence
// order even when several stages report concurrently — a journal that
// appends in arrival order can serve "events after cursor n" by slice
// position. The Runner wraps its Sink in one sequencer per batch, which
// is what gives a job's event stream its per-job numbering.
func Sequenced(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &seqSink{sink: s}
}

type seqSink struct {
	mu   sync.Mutex
	n    uint64
	sink Sink
}

func (q *seqSink) Event(p Progress) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	p.Seq = q.n
	q.sink.Event(p)
}

// Throttled wraps s with a global spacing filter: at most one ordinary
// event per interval is forwarded, keeping a human-facing sink readable
// when many stages report concurrently. Two event classes always pass
// regardless of spacing — Skipped (cache hits are rare and are the
// run's main observability signal) and Final (the stage-completion
// event from Reporter.Finish, which consumers rely on seeing). A
// non-positive interval forwards everything.
func Throttled(s Sink, interval time.Duration) Sink {
	if s == nil {
		return nil
	}
	if interval <= 0 {
		return s
	}
	return &throttledSink{sink: s, interval: interval}
}

type throttledSink struct {
	sink     Sink
	interval time.Duration

	mu   sync.Mutex
	last time.Time
}

func (t *throttledSink) Event(p Progress) {
	if !p.Skipped && !p.Final {
		now := time.Now()
		t.mu.Lock()
		if !t.last.IsZero() && now.Sub(t.last) < t.interval {
			t.mu.Unlock()
			return
		}
		t.last = now
		t.mu.Unlock()
	}
	t.sink.Event(p)
}
