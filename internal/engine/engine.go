// Package engine is the cancellable execution substrate every
// long-running layer of the repository runs on: the iterative mappers
// (Monte Carlo, SA, cluster SA, SSS refinement), the experiment
// runners, and the replica-sharded simulator all accept a
// context.Context and consult this package for two services:
//
//   - cancellation and deadlines — callers cancel a context (or set a
//     deadline) and every layer unwinds promptly, returning whatever
//     partial results it has together with a ctx.Err()-wrapped error;
//   - structured progress — a pluggable Sink carried in the context
//     receives Progress events (stage, done/total, elapsed) so a CLI
//     ticker, a log shipper, or a serving API can observe work in
//     flight without the workers knowing who is watching.
//
// The design rule that keeps results reproducible: context plumbing
// must never perturb an algorithm's random stream. Cancellation polls
// and progress reports read the clock and the context only; a run that
// is never cancelled produces bit-identical output to the pre-context
// code path.
package engine

import (
	"context"
	"sync"
	"time"
)

// Progress is one structured progress event for a named stage.
type Progress struct {
	// Stage names the unit of work, e.g. "MC(10000)", "fig9", or
	// "replicas".
	Stage string
	// Done counts completed steps; Total is the known step count (0 when
	// unknown or open-ended).
	Done, Total int
	// Elapsed is the time since the stage started.
	Elapsed time.Duration
	// Skipped marks a stage whose work was served from a cache (the
	// scenario artifact cache emits one such event per hit) rather than
	// recomputed. Observers can count hits or render the stage as
	// skipped; Done/Total are 1/1.
	Skipped bool
}

// ReportSkipped emits one unthrottled Progress event marking stage as
// skipped (served from cache) to the sink carried by ctx, if any.
func ReportSkipped(ctx context.Context, stage string) {
	s := SinkOf(ctx)
	if s == nil {
		return
	}
	s.Event(Progress{Stage: stage, Done: 1, Total: 1, Skipped: true})
}

// Sink receives progress events. Implementations must be safe for
// concurrent use: parallel chunks and replica workers report through
// one sink.
type Sink interface {
	Event(Progress)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Progress)

// Event implements Sink.
func (f SinkFunc) Event(p Progress) { f(p) }

// sinkKey carries the Sink through a context.
type sinkKey struct{}

// WithSink returns a context that carries s; workers down the call
// chain report progress to it via StartStage. A nil sink returns ctx
// unchanged.
func WithSink(ctx context.Context, s Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, s)
}

// SinkOf returns the sink carried by ctx, or nil if none.
func SinkOf(ctx context.Context) Sink {
	s, _ := ctx.Value(sinkKey{}).(Sink)
	return s
}

// DefaultReportInterval is the minimum spacing between throttled
// Reporter events. Tight loops may call Report every few hundred
// iterations; the reporter forwards at most one event per interval
// (plus the first and any Finish).
const DefaultReportInterval = 100 * time.Millisecond

// Reporter emits throttled Progress events for one stage. Obtain one
// with StartStage; a nil *Reporter (no sink in the context) is a valid
// receiver for which every method is a free no-op, so hot loops report
// unconditionally.
type Reporter struct {
	sink  Sink
	stage string
	start time.Time

	mu       sync.Mutex
	last     time.Time
	interval time.Duration
}

// StartStage returns a Reporter for stage drawing its sink from ctx,
// or nil when the context carries no sink.
func StartStage(ctx context.Context, stage string) *Reporter {
	s := SinkOf(ctx)
	if s == nil {
		return nil
	}
	return &Reporter{sink: s, stage: stage, start: time.Now(), interval: DefaultReportInterval}
}

// Report emits a throttled progress event. The first call always
// emits; later calls emit at most once per DefaultReportInterval.
// Safe for concurrent use.
func (r *Reporter) Report(done, total int) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if !r.last.IsZero() && now.Sub(r.last) < r.interval {
		r.mu.Unlock()
		return
	}
	r.last = now
	r.mu.Unlock()
	r.sink.Event(Progress{Stage: r.stage, Done: done, Total: total, Elapsed: now.Sub(r.start)})
}

// Finish emits a final unthrottled event marking the stage complete.
func (r *Reporter) Finish(done, total int) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.last = now
	r.mu.Unlock()
	r.sink.Event(Progress{Stage: r.stage, Done: done, Total: total, Elapsed: now.Sub(r.start)})
}
