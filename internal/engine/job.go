package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"obm/internal/obs"
)

// Job is one named unit of cancellable work.
type Job struct {
	// Name identifies the job in results and progress events.
	Name string
	// Run executes the job. Implementations must honour ctx: poll
	// cancellation in long loops and return a ctx.Err()-wrapped error
	// when interrupted.
	Run func(ctx context.Context) (any, error)
}

// Result records one finished (or failed) job.
type Result struct {
	// Name is the job's name.
	Name string
	// Value is what the job returned (may be nil on error).
	Value any
	// Err is the job's error, nil on success.
	Err error
	// Elapsed is the job's wall time.
	Elapsed time.Duration
}

// Runner executes a batch of jobs sequentially under one context. It
// is the engine's top-level entry point: cmd/obmsim runs every
// requested experiment through it, and any future serving layer would
// enqueue its work the same way.
type Runner struct {
	// Timeout bounds the whole batch; 0 means no deadline beyond the
	// caller's context.
	Timeout time.Duration
	// Sink, when non-nil, is installed on the batch context (WithSink)
	// so every layer below reports progress to it. The runner itself
	// reports the batch stage ("batch": jobs completed / total).
	Sink Sink
	// OnResult, when non-nil, observes each job's Result as soon as it
	// completes — successes and failures both — letting callers stream
	// output while later jobs run.
	OnResult func(Result)
	// KeepGoing runs the remaining jobs after a job fails instead of
	// stopping at the first error. Cancellation always stops the batch.
	KeepGoing bool
}

// Run executes jobs in order and returns the results of every job that
// ran. On cancellation (or deadline expiry) it stops promptly and
// returns the completed prefix together with a ctx.Err()-wrapped
// error, so callers keep partial results. Job failures are wrapped
// with the job name; with KeepGoing they are joined, otherwise the
// first failure stops the batch.
func (r Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if r.Sink != nil {
		// One sequencer per batch: every event the batch emits — from the
		// runner's own "batch" stage down to replica workers — carries a
		// monotonic per-batch Seq, so a consumer holding a cursor can poll
		// for "events after n" and resume without loss.
		ctx = WithSink(ctx, Sequenced(r.Sink))
	}
	rep := StartStage(ctx, "batch")
	results := make([]Result, 0, len(jobs))
	var errs []error
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return results, fmt.Errorf("engine: batch interrupted after %d/%d jobs: %w", i, len(jobs), err)
		}
		start := time.Now()
		v, err := runJob(ctx, j)
		res := Result{Name: j.Name, Value: v, Err: err, Elapsed: time.Since(start)}
		obs.Default().Timer("engine.job." + j.Name + ".seconds").Observe(res.Elapsed)
		results = append(results, res)
		if r.OnResult != nil {
			r.OnResult(res)
		}
		rep.Report(i+1, len(jobs))
		if err != nil {
			wrapped := fmt.Errorf("engine: job %s: %w", j.Name, err)
			if ctx.Err() != nil {
				// The job died of the batch deadline or a caller cancel;
				// report how far the batch got.
				return results, fmt.Errorf("engine: batch interrupted during job %d/%d: %w", i+1, len(jobs), err)
			}
			if !r.KeepGoing {
				return results, wrapped
			}
			errs = append(errs, wrapped)
		}
	}
	rep.Finish(len(jobs), len(jobs))
	return results, errors.Join(errs...)
}

// runJob executes one job, converting a panic into an error that
// carries the panic value and stack. This is the batch boundary's half
// of the panic-safety audit done for the scenario cache's singleflight:
// lower layers re-raise panics (programmer error stays loud), and the
// runner turns them into a failed Result here so the batch's own
// bookkeeping — OnResult streaming, stage reporting, KeepGoing — stays
// consistent instead of unwinding half-finished.
func runJob(ctx context.Context, j Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: job %s panicked: %v\n%s", j.Name, r, debug.Stack())
		}
	}()
	return j.Run(ctx)
}
