package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recordSink collects events; safe for concurrent use.
type recordSink struct {
	mu     sync.Mutex
	events []Progress
}

func (s *recordSink) Event(p Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, p)
}

func (s *recordSink) all() []Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Progress(nil), s.events...)
}

func TestSinkPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := SinkOf(ctx); got != nil {
		t.Fatalf("SinkOf(background) = %v, want nil", got)
	}
	if WithSink(ctx, nil) != ctx {
		t.Error("WithSink(nil) should return ctx unchanged")
	}
	var sink recordSink
	ctx = WithSink(ctx, &sink)
	got := SinkOf(ctx)
	if got == nil {
		t.Fatal("SinkOf lost the sink")
	}
	got.Event(Progress{Stage: "x", Done: 1, Total: 2})
	if evs := sink.all(); len(evs) != 1 || evs[0].Stage != "x" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestNilReporterIsFreeNoop(t *testing.T) {
	rep := StartStage(context.Background(), "none")
	if rep != nil {
		t.Fatalf("StartStage without sink = %v, want nil", rep)
	}
	rep.Report(1, 10) // must not panic
	rep.Finish(10, 10)
}

func TestReporterOrderingAndThrottle(t *testing.T) {
	var sink recordSink
	ctx := WithSink(context.Background(), &sink)
	rep := StartStage(ctx, "loop")
	const n = 5000
	for i := 1; i <= n; i++ {
		rep.Report(i, n)
	}
	rep.Finish(n, n)
	evs := sink.all()
	if len(evs) == 0 {
		t.Fatal("no events emitted")
	}
	// First Report always passes the throttle; Finish always emits.
	if evs[0].Done != 1 {
		t.Errorf("first event Done = %d, want 1", evs[0].Done)
	}
	last := evs[len(evs)-1]
	if last.Done != n || last.Total != n {
		t.Errorf("final event = %+v, want Done=Total=%d", last, n)
	}
	// Events arrive in issue order with monotonically non-decreasing
	// Done and Elapsed.
	for i := 1; i < len(evs); i++ {
		if evs[i].Done < evs[i-1].Done {
			t.Errorf("event %d Done %d < previous %d", i, evs[i].Done, evs[i-1].Done)
		}
		if evs[i].Elapsed < evs[i-1].Elapsed {
			t.Errorf("event %d Elapsed went backwards", i)
		}
		if evs[i].Stage != "loop" {
			t.Errorf("event %d stage = %q", i, evs[i].Stage)
		}
	}
	// The throttle must have dropped the bulk of the 5000 reports.
	if len(evs) > n/2 {
		t.Errorf("throttle ineffective: %d events for %d reports", len(evs), n)
	}
}

func TestRunnerRunsJobsInOrder(t *testing.T) {
	var order []string
	jobs := []Job{
		{Name: "a", Run: func(context.Context) (any, error) { order = append(order, "a"); return 1, nil }},
		{Name: "b", Run: func(context.Context) (any, error) { order = append(order, "b"); return 2, nil }},
	}
	var streamed []string
	r := Runner{OnResult: func(res Result) { streamed = append(streamed, res.Name) }}
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Value != 1 || results[1].Value != 2 {
		t.Fatalf("results = %+v", results)
	}
	if fmt.Sprint(order) != "[a b]" || fmt.Sprint(streamed) != "[a b]" {
		t.Errorf("order %v, streamed %v", order, streamed)
	}
}

func TestRunnerStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	jobs := []Job{
		{Name: "ok", Run: func(context.Context) (any, error) { ran++; return nil, nil }},
		{Name: "bad", Run: func(context.Context) (any, error) { ran++; return nil, boom }},
		{Name: "never", Run: func(context.Context) (any, error) { ran++; return nil, nil }},
	}
	results, err := Runner{}.Run(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran != 2 || len(results) != 2 {
		t.Errorf("ran %d jobs, got %d results; want 2, 2", ran, len(results))
	}

	ran = 0
	results, err = Runner{KeepGoing: true}.Run(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("KeepGoing err = %v, want wrapped boom", err)
	}
	if ran != 3 || len(results) != 3 {
		t.Errorf("KeepGoing ran %d jobs, got %d results; want 3, 3", ran, len(results))
	}
}

func TestRunnerTimeoutReturnsPartialResults(t *testing.T) {
	jobs := []Job{
		{Name: "fast", Run: func(context.Context) (any, error) { return "done", nil }},
		{Name: "slow", Run: func(ctx context.Context) (any, error) {
			<-ctx.Done() // honours cancellation
			return nil, ctx.Err()
		}},
		{Name: "never", Run: func(context.Context) (any, error) { return nil, nil }},
	}
	r := Runner{Timeout: 20 * time.Millisecond}
	start := time.Now()
	results, err := r.Run(context.Background(), jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("runner took %v to honour a 20ms deadline", elapsed)
	}
	// The fast job completed and is preserved; the slow job's failed
	// result is recorded; "never" did not run.
	if len(results) != 2 || results[0].Value != "done" || results[1].Err == nil {
		t.Fatalf("partial results = %+v", results)
	}
}

func TestRunnerCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Runner{}.Run(ctx, []Job{{Name: "x", Run: func(context.Context) (any, error) {
		t.Error("job ran under a cancelled context")
		return nil, nil
	}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if len(results) != 0 {
		t.Errorf("results = %+v, want none", results)
	}
}

func TestRunnerInstallsSink(t *testing.T) {
	var sink recordSink
	r := Runner{Sink: &sink}
	_, err := r.Run(context.Background(), []Job{{Name: "probe", Run: func(ctx context.Context) (any, error) {
		rep := StartStage(ctx, "inner")
		rep.Report(1, 1)
		return nil, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, ev := range sink.all() {
		stages[ev.Stage] = true
	}
	if !stages["inner"] || !stages["batch"] {
		t.Errorf("stages seen: %v, want inner and batch", stages)
	}
}
