package engine

import (
	"context"
	"strings"
	"testing"
)

// TestRunnerConvertsJobPanics checks the batch boundary's panic audit:
// a job that panics becomes a failed Result — with the panic value and
// a stack in the error — and with KeepGoing the rest of the batch still
// runs and streams through OnResult.
func TestRunnerConvertsJobPanics(t *testing.T) {
	var streamed []string
	r := Runner{
		KeepGoing: true,
		OnResult:  func(res Result) { streamed = append(streamed, res.Name) },
	}
	jobs := []Job{
		{Name: "ok1", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{Name: "boom", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{Name: "ok2", Run: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	results, err := r.Run(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("joined error should carry the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "panic_test.go") {
		t.Errorf("panic error should carry a stack trace: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (KeepGoing past the panic)", len(results))
	}
	if results[1].Err == nil || results[0].Err != nil || results[2].Err != nil {
		t.Errorf("only the panicking job should fail: %v", results)
	}
	if len(streamed) != 3 {
		t.Errorf("OnResult saw %v, want all three jobs", streamed)
	}
}

// TestRunnerPanicStopsBatchWithoutKeepGoing checks a panicking job
// behaves exactly like a failing one under the default stop-on-error
// policy.
func TestRunnerPanicStopsBatchWithoutKeepGoing(t *testing.T) {
	ran := false
	results, err := Runner{}.Run(context.Background(), []Job{
		{Name: "boom", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{Name: "after", Run: func(ctx context.Context) (any, error) { ran = true; return nil, nil }},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Error("batch continued past a panic without KeepGoing")
	}
	if len(results) != 1 {
		t.Errorf("got %d results, want 1", len(results))
	}
}
