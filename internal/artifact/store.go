package artifact

import (
	"context"
	"fmt"
	"sync"

	"obm/internal/obs"
)

// Memory-tier and whole-store metrics; process-wide like the disk
// tier's (in practice one shared store lives per process).
var (
	mMemHits  = obs.Default().Counter("artifact.mem.hits")
	mComputed = obs.Default().Counter("artifact.store.computed")
	mBypass   = obs.Default().Counter("artifact.store.bypass")
	mInflight = obs.Default().Gauge("artifact.store.inflight")
)

// Source says which tier served a Get.
type Source int

const (
	// SourceComputed: neither tier had it; the compute callback ran.
	SourceComputed Source = iota
	// SourceMemory: served by the in-process singleflight tier (which
	// includes joining a computation already in flight).
	SourceMemory
	// SourceDisk: served by the persistent disk tier.
	SourceDisk
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	default:
		return "computed"
	}
}

// Stats is one coherent snapshot of a store's request accounting.
// MemHits+DiskHits+Computed equals the successful Get traffic;
// Computed equals the number of compute callbacks started (failed or
// panicked ones included — their slots are evicted, not counted back).
type Stats struct {
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Computed uint64 `json:"computed"`
	// Bypass counts explicit no-cache requests (timing harnesses).
	Bypass uint64 `json:"bypass,omitempty"`
	// Disk-tier occupancy and failure accounting; zero when no disk
	// tier is attached. DiskSchema counts stale-schema files discarded
	// after an encoding bump (expected, unlike DiskCorrupt).
	DiskEvictions uint64 `json:"disk_evictions,omitempty"`
	DiskCorrupt   uint64 `json:"disk_corrupt,omitempty"`
	DiskSchema    uint64 `json:"disk_schema_mismatch,omitempty"`
	DiskEntries   int    `json:"disk_entries,omitempty"`
	DiskBytes     int64  `json:"disk_bytes,omitempty"`
}

// entry is one memory-tier slot. The first requester computes (or
// loads from disk); done is closed when art/err are final, and
// everyone else waits on it (singleflight).
type entry struct {
	done chan struct{}
	art  Artifact
	err  error
}

// Store is the two-tier artifact store: a process-local singleflight
// memory tier, optionally backed by a persistent DiskTier. It is safe
// for concurrent use: simultaneous Gets for the same WorkUnit share
// one computation, distinct units proceed in parallel, and a disk hit
// is promoted into the memory tier so repeats stay in-process.
//
// Errors are never cached: a failed, cancelled, or panicking
// computation evicts its slot so a later request retries (waiters that
// joined the failed flight do share its error). Nothing failed is ever
// written to disk.
type Store struct {
	disk *DiskTier

	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats // guarded by mu so snapshots are coherent pairs
}

// NewStore returns a store over the given disk tier; disk may be nil
// for a memory-only store (the pre-disk behaviour, and the default for
// tests and library callers that never opt into persistence).
func NewStore(disk *DiskTier) *Store {
	return &Store{disk: disk, entries: make(map[string]*entry)}
}

// Disk returns the attached disk tier (nil for memory-only stores).
func (s *Store) Disk() *DiskTier { return s.disk }

// Get returns the artifact for wu, serving it from the memory tier,
// then the disk tier, and only then running compute — at most once per
// distinct key however many goroutines ask concurrently. The returned
// artifact is an independent copy; callers may mutate it freely. The
// Source reports which tier answered, so callers can surface
// tier-accurate progress (scenario reports skipped stages for hits).
func (s *Store) Get(ctx context.Context, wu WorkUnit, compute func(context.Context) (Artifact, error)) (Artifact, Source, error) {
	key := wu.Key()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return Artifact{}, SourceMemory, fmt.Errorf("artifact: waiting for in-flight %s: %w", wu.Mapper, ctx.Err())
		}
		if e.err != nil {
			return Artifact{}, SourceMemory, e.err
		}
		s.mu.Lock()
		s.stats.MemHits++
		s.mu.Unlock()
		mMemHits.Inc()
		return e.art.Clone(), SourceMemory, nil
	}
	e := &entry{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	if s.disk != nil {
		if art, ok := s.disk.Get(wu); ok {
			e.art = art
			close(e.done)
			s.mu.Lock()
			s.stats.DiskHits++
			s.mu.Unlock()
			return art.Clone(), SourceDisk, nil
		}
	}
	s.mu.Lock()
	s.stats.Computed++
	s.mu.Unlock()
	mComputed.Inc()
	mInflight.Add(1)
	return s.compute(ctx, key, e, wu, compute)
}

// compute runs the callback for the entry this caller owns and
// finalizes it exactly once, however the computation ends — success,
// error, or panic. The deferred completion is what makes the
// singleflight panic-safe: without it a panic in the callback would
// leave e.done forever open, deadlocking every waiter on the key and
// permanently leaking the slot. A panic is converted into an error the
// waiters can return, the slot is evicted so a later request retries,
// and then the panic is re-raised on the owning goroutine — the
// repository's panic policy (programmer error stays loud) is preserved
// while no bystander can hang on it.
func (s *Store) compute(ctx context.Context, key string, e *entry, wu WorkUnit, compute func(context.Context) (Artifact, error)) (Artifact, Source, error) {
	completed := false
	defer func() {
		mInflight.Add(-1)
		if completed {
			return
		}
		r := recover()
		e.err = fmt.Errorf("artifact: computing %s panicked: %v", wu.Mapper, r)
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
		close(e.done)
		if r != nil {
			panic(r)
		}
	}()
	art, err := compute(ctx)
	if err != nil {
		e.err = err
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
		close(e.done)
		completed = true
		return Artifact{}, SourceComputed, err
	}
	e.art = art
	close(e.done)
	completed = true
	if s.disk != nil {
		// A failed cache write must not fail the computation that
		// produced a perfectly good artifact; it is counted
		// (artifact.disk.write_errors) and costs a later recompute.
		_ = s.disk.Put(wu, art)
	}
	return art.Clone(), SourceComputed, nil
}

// Bypass is the store's explicit no-cache mode: it runs compute
// directly, touching neither tier — no lookup, no singleflight, no
// write-back — and counts the request so harnesses can prove a timing
// path really bypassed the cache (and that cached paths never do).
// Runners that measure mapper wall time use this instead of silently
// skipping the store.
func (s *Store) Bypass(ctx context.Context, compute func(context.Context) (Artifact, error)) (Artifact, error) {
	s.mu.Lock()
	s.stats.Bypass++
	s.mu.Unlock()
	mBypass.Inc()
	return compute(ctx)
}

// Stats returns one coherent snapshot of the request accounting, with
// the disk tier's occupancy and failure counts folded in.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	if s.disk != nil {
		st.DiskEvictions, st.DiskCorrupt, st.DiskSchema = s.disk.counters()
		st.DiskEntries = s.disk.Len()
		st.DiskBytes = s.disk.Bytes()
	}
	return st
}

// Len returns the number of completed-or-in-flight memory-tier slots.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
