package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"os/exec"
	"testing"
)

// goldenSHA pins the byte-exact encoding of testArtifact under schema
// version 2 (the set-valued encoding; v1 pinned 151 bytes /
// ab7ee8c2…). If this test fails you have changed the wire format:
// bump SchemaVersion (old caches then recompute cleanly via ErrSchema)
// and re-pin, never re-pin alone.
const (
	goldenLen = 251
	goldenSHA = "d802381e0ce89a96a820215addd16ceadb7f6b1e1bc0d61be42d14015b6ce9f2"
)

func TestGoldenEncodingStable(t *testing.T) {
	wu, a := testArtifact()
	data := Encode(wu, a)
	if len(data) != goldenLen {
		t.Errorf("encoded length %d, want %d", len(data), goldenLen)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != goldenSHA {
		t.Errorf("encoding drifted:\n got %s\nwant %s\nIf intentional, bump SchemaVersion and re-pin.", got, goldenSHA)
	}
	// Determinism: two encodings of the same value are byte-identical.
	again := Encode(wu, a)
	if string(again) != string(data) {
		t.Error("Encode is not deterministic")
	}
}

// helperEnv gates the re-exec helper below; it holds the cache dir the
// child process writes into.
const helperEnv = "OBM_ARTIFACT_HELPER_DIR"

// TestHelperProcessWritesArtifact is not a test: it is the body of the
// child process for TestDiskTierAcrossProcesses. Gated on helperEnv so
// a normal `go test` run skips it.
func TestHelperProcessWritesArtifact(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestDiskTierAcrossProcesses")
	}
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wu, a := testArtifact()
	if err := d.Put(wu, a); err != nil {
		t.Fatal(err)
	}
}

// TestDiskTierAcrossProcesses is the ISSUE's cross-process guarantee:
// an artifact written by one OS process round-trips bit-identically
// through the disk tier into a second process. The writer is this test
// binary re-executed with the helper test selected.
func TestDiskTierAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcessWritesArtifact$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, out)
	}

	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("warm found %d artifacts from the writer process, want 1", d.Len())
	}
	wu, want := testArtifact()
	got, ok := d.Get(wu)
	if !ok {
		t.Fatal("artifact written by another process missed")
	}
	// Bit-level comparison: re-encode both and compare bytes, which
	// covers every field including float payloads.
	if string(Encode(wu, got)) != string(Encode(wu, want)) {
		t.Error("artifact decoded in this process differs from the one encoded in the writer process")
	}
	// And the raw file matches the golden pin, so both processes agree
	// on the wire format byte for byte.
	data, err := os.ReadFile(d.path(wu.Key()))
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != goldenSHA {
		t.Errorf("cross-process file hash %s, want golden %s", got, goldenSHA)
	}
}
