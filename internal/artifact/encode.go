package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"obm/internal/core"
	"obm/internal/mesh"
)

// The on-disk artifact format is self-describing, versioned, and
// checksummed so a reader can always tell a valid artifact from a
// truncated, corrupted, or foreign file without any out-of-band state:
//
//	offset  size  field
//	0       4     magic "OBMA"
//	4       4     schema version (uint32 LE)
//	8       4     key length K (uint32 LE)
//	12      K     WorkUnit.Key() bytes (self-describing: a reader can
//	              verify the file answers the question it was asked)
//	...     4     mapping length N (uint32 LE)
//	...     4*N   mapping tiles (uint32 LE each)
//	...     4     APL count A (uint32 LE)
//	...     8*A   per-application APLs (float64 bits LE)
//	...     8*4   MaxAPL, DevAPL, GlobalAPL, MinMaxRatio (float64 bits LE)
//	...     4     Pareto-set member count S (uint32 LE; 0 for scalar
//	              artifacts) — new in schema v2
//	...           S members, each:
//	                4    mapping length N_i (uint32 LE)
//	                4*N_i  mapping tiles (uint32 LE each)
//	                4    vector dimension D_i (uint32 LE)
//	                8*D_i  cost vector (float64 bits LE)
//	...     8     FNV-1a 64 checksum of every preceding byte (uint64 LE)
//
// Float64 values are stored as raw IEEE-754 bits, so a decoded
// artifact is bit-identical to the encoded one — the golden round-trip
// tests rely on it.
var magic = [4]byte{'O', 'B', 'M', 'A'}

// ErrCorrupt marks an artifact file that is truncated, fails its
// checksum, or is structurally inconsistent. The store treats it as a
// miss: the file is discarded and the work recomputed.
var ErrCorrupt = errors.New("artifact: corrupt encoding")

// ErrSchema marks an artifact encoded under a different schema
// version. Like corruption it degrades to recompute; unlike corruption
// it is expected after an upgrade. Concrete mismatches are reported as
// a *SchemaError, which errors.Is-matches this sentinel.
var ErrSchema = errors.New("artifact: schema version mismatch")

// SchemaError is the typed form of ErrSchema: it names both the
// version found in the file and the version this build supports, so a
// cache directory shared across a schema bump produces a diagnosable
// mismatch (and a clean recompute) instead of an opaque failure.
type SchemaError struct {
	// Found is the schema version embedded in the file.
	Found int
	// Supported is this build's SchemaVersion.
	Supported int
}

// Error implements error.
func (e *SchemaError) Error() string {
	return fmt.Sprintf("artifact: schema version mismatch: file has v%d, this build reads v%d", e.Found, e.Supported)
}

// Is makes errors.Is(err, ErrSchema) match every *SchemaError.
func (e *SchemaError) Is(target error) bool { return target == ErrSchema }

// Encode serializes the artifact for wu into the versioned binary
// form. The inverse is Decode; Encode(wu, a) round-trips bit-exactly.
func Encode(wu WorkUnit, a Artifact) []byte {
	return encodeVersion(wu, a, uint32(wu.schemaOrDefault()))
}

// encodeVersion is Encode with an explicit schema version; the tests
// use it to craft wrong-version files with valid checksums.
func encodeVersion(wu WorkUnit, a Artifact, version uint32) []byte {
	key := wu.Key()
	n, ap := len(a.Mapping), len(a.Eval.APLs)
	size := 4 + 4 + 4 + len(key) + 4 + 4*n + 4 + 8*ap + 8*4 + 4 + 8
	for _, m := range a.Set {
		size += 4 + 4*len(m.Mapping) + 4 + 8*len(m.Vector)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = le32(buf, version)
	buf = le32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = le32(buf, uint32(n))
	for _, t := range a.Mapping {
		buf = le32(buf, uint32(t))
	}
	buf = le32(buf, uint32(ap))
	for _, v := range a.Eval.APLs {
		buf = le64(buf, math.Float64bits(v))
	}
	buf = le64(buf, math.Float64bits(a.Eval.MaxAPL))
	buf = le64(buf, math.Float64bits(a.Eval.DevAPL))
	buf = le64(buf, math.Float64bits(a.Eval.GlobalAPL))
	buf = le64(buf, math.Float64bits(a.Eval.MinMaxRatio))
	buf = le32(buf, uint32(len(a.Set)))
	for _, m := range a.Set {
		buf = le32(buf, uint32(len(m.Mapping)))
		for _, t := range m.Mapping {
			buf = le32(buf, uint32(t))
		}
		buf = le32(buf, uint32(len(m.Vector)))
		for _, v := range m.Vector {
			buf = le64(buf, math.Float64bits(v))
		}
	}
	h := fnv.New64a()
	h.Write(buf)
	return le64(buf, h.Sum64())
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// Decode parses an encoded artifact, returning the embedded WorkUnit
// key and the decoded artifact. It fails with ErrCorrupt (possibly
// wrapped) on truncation, checksum mismatch, or structural nonsense,
// and with ErrSchema when the version differs from SchemaVersion —
// both of which the disk tier converts into a clean recompute.
func Decode(data []byte) (key string, a Artifact, err error) {
	// Verify the trailing checksum first: it covers every other field,
	// so any later parse error on checksum-valid data is a real format
	// bug, not bit rot.
	if len(data) < 4+4+4+4+4+8*4+4+8 {
		return "", Artifact{}, fmt.Errorf("%w: %d bytes is shorter than the minimal frame", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := binary.LittleEndian.Uint64(tail), h.Sum64(); got != want {
		return "", Artifact{}, fmt.Errorf("%w: checksum %016x != %016x", ErrCorrupt, got, want)
	}
	c := cursor{b: body}
	if m := c.bytes(4); m == nil || [4]byte(m) != magic {
		return "", Artifact{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := c.u32()
	if c.err == nil && version != SchemaVersion {
		return "", Artifact{}, &SchemaError{Found: int(version), Supported: SchemaVersion}
	}
	key = string(c.bytes(int(c.u32())))
	n := int(c.u32())
	if c.err == nil && (n < 0 || n > len(c.b)/4) {
		return "", Artifact{}, fmt.Errorf("%w: mapping length %d exceeds frame", ErrCorrupt, n)
	}
	if c.err == nil {
		a.Mapping = make(core.Mapping, n)
		for j := range a.Mapping {
			a.Mapping[j] = mesh.Tile(c.u32())
		}
	}
	ap := int(c.u32())
	if c.err == nil && (ap < 0 || ap > len(c.b)/8) {
		return "", Artifact{}, fmt.Errorf("%w: APL count %d exceeds frame", ErrCorrupt, ap)
	}
	if c.err == nil {
		a.Eval.APLs = make([]float64, ap)
		for i := range a.Eval.APLs {
			a.Eval.APLs[i] = math.Float64frombits(c.u64())
		}
	}
	a.Eval.MaxAPL = math.Float64frombits(c.u64())
	a.Eval.DevAPL = math.Float64frombits(c.u64())
	a.Eval.GlobalAPL = math.Float64frombits(c.u64())
	a.Eval.MinMaxRatio = math.Float64frombits(c.u64())
	s := int(c.u32())
	if c.err == nil && (s < 0 || s > len(c.b)/8) {
		return "", Artifact{}, fmt.Errorf("%w: set member count %d exceeds frame", ErrCorrupt, s)
	}
	if c.err == nil && s > 0 {
		a.Set = make([]SetMember, s)
		for i := range a.Set {
			mn := int(c.u32())
			if c.err == nil && (mn < 0 || mn > len(c.b)/4) {
				return "", Artifact{}, fmt.Errorf("%w: set member %d mapping length %d exceeds frame", ErrCorrupt, i, mn)
			}
			if c.err != nil {
				break
			}
			a.Set[i].Mapping = make(core.Mapping, mn)
			for j := range a.Set[i].Mapping {
				a.Set[i].Mapping[j] = mesh.Tile(c.u32())
			}
			vd := int(c.u32())
			if c.err == nil && (vd < 0 || vd > len(c.b)/8) {
				return "", Artifact{}, fmt.Errorf("%w: set member %d vector dimension %d exceeds frame", ErrCorrupt, i, vd)
			}
			if c.err != nil {
				break
			}
			a.Set[i].Vector = make([]float64, vd)
			for d := range a.Set[i].Vector {
				a.Set[i].Vector[d] = math.Float64frombits(c.u64())
			}
		}
	}
	if c.err != nil {
		return "", Artifact{}, c.err
	}
	if len(c.b) != 0 {
		return "", Artifact{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(c.b))
	}
	return key, a, nil
}

// cursor is a bounds-checked little-endian reader; the first overrun
// latches an ErrCorrupt and every later read returns zero.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.b) {
		c.err = fmt.Errorf("%w: truncated (want %d bytes, have %d)", ErrCorrupt, n, len(c.b))
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
