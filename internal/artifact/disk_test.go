package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// mustPut stores synthetic(i) and fails the test on error.
func mustPut(t *testing.T, d *DiskTier, i int) {
	t.Helper()
	if err := d.Put(unitFor(i), synthetic(i)); err != nil {
		t.Fatal(err)
	}
}

// encodedSize is the on-disk size of one synthetic artifact; unitFor
// keys are fixed-width, so every test artifact encodes to it.
func encodedSize() int64 {
	return int64(len(Encode(unitFor(0), synthetic(0))))
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(unitFor(1)); ok {
		t.Fatal("hit on an empty tier")
	}
	mustPut(t, d, 1)
	a, ok := d.Get(unitFor(1))
	if !ok {
		t.Fatal("miss after Put")
	}
	checkSynthetic(t, a, 1)
	if d.Len() != 1 || d.Bytes() != encodedSize() {
		t.Errorf("occupancy = %d entries / %d bytes, want 1 / %d", d.Len(), d.Bytes(), encodedSize())
	}
}

// TestDiskTruncatedFileRecovers simulates a torn write (possible only
// from writers bypassing WriteFileAtomic, e.g. an older binary): the
// tier must treat the file as a miss and delete it, not error.
func TestDiskTruncatedFileRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, 1)
	path := d.path(unitFor(1).Key())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(unitFor(1)); ok {
		t.Fatal("truncated artifact served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("truncated file not discarded: %v", err)
	}
	if _, corrupt, _ := d.counters(); corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", corrupt)
	}
	// The slot is reusable: a fresh Put serves again.
	mustPut(t, d, 1)
	if a, ok := d.Get(unitFor(1)); !ok {
		t.Fatal("re-put after discard missed")
	} else {
		checkSynthetic(t, a, 1)
	}
}

// TestDiskWrongSchemaRecovers plants a file from a future schema at the
// right content address: the tier must discard it and miss, so the
// caller recomputes under the current schema instead of erroring.
func TestDiskWrongSchemaRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wu := unitFor(2)
	path := d.path(wu.Key())
	if err := WriteFileAtomic(path, encodeVersion(wu, synthetic(2), SchemaVersion+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(wu); ok {
		t.Fatal("foreign-schema artifact served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("foreign-schema file not discarded: %v", err)
	}
	// Schema mismatches are classified apart from corruption: an
	// upgrade aging a shared cache dir out is expected, bit rot is not.
	evic, corrupt, schema := d.counters()
	_ = evic
	if corrupt != 0 || schema != 1 {
		t.Errorf("counters corrupt=%d schema=%d, want 0 and 1", corrupt, schema)
	}
	// The slot recomputes cleanly under the current schema.
	mustPut(t, d, 2)
	if a, ok := d.Get(wu); !ok {
		t.Fatal("re-put after schema discard missed")
	} else {
		checkSynthetic(t, a, 2)
	}
}

// TestDiskKeyCollisionFileDiscarded plants a valid artifact whose
// embedded key disagrees with its content address (renamed by hand, or
// a hash collision in a hostile cache dir): the embedded key is
// authoritative, so this is corruption.
func TestDiskKeyCollisionFileDiscarded(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	other := unitFor(9)
	if err := WriteFileAtomic(d.path(unitFor(3).Key()), Encode(other, synthetic(9)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(unitFor(3)); ok {
		t.Fatal("artifact answering a different key served as a hit")
	}
	if _, corrupt, _ := d.counters(); corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", corrupt)
	}
}

func TestDiskLRUEviction(t *testing.T) {
	size := encodedSize()
	d, err := OpenDisk(t.TempDir(), 3*size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustPut(t, d, i)
	}
	// Refresh 1 so 2 becomes the least recently used.
	if _, ok := d.Get(unitFor(1)); !ok {
		t.Fatal("warm-up read missed")
	}
	mustPut(t, d, 4)
	if evictions, _, _ := d.counters(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if _, ok := d.Get(unitFor(2)); ok {
		t.Error("LRU victim should have been 2")
	}
	for _, want := range []int{1, 3, 4} {
		a, ok := d.Get(unitFor(want))
		if !ok {
			t.Fatalf("entry %d evicted out of LRU order", want)
		}
		checkSynthetic(t, a, want)
	}
	if d.Bytes() > d.MaxBytes() {
		t.Errorf("tier over budget: %d > %d", d.Bytes(), d.MaxBytes())
	}
}

// TestDiskOversizedWriteSurvives: a single artifact larger than the
// whole budget is kept (evicting everything else) rather than evicted
// immediately — otherwise every oversized Put would thrash.
func TestDiskOversizedWriteSurvives(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), encodedSize()/2)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, 1)
	if a, ok := d.Get(unitFor(1)); !ok {
		t.Fatal("oversized artifact evicted on write")
	} else {
		checkSynthetic(t, a, 1)
	}
	mustPut(t, d, 2)
	if d.Len() != 1 {
		t.Errorf("tier holds %d entries over a sub-artifact budget, want 1", d.Len())
	}
	if _, ok := d.Get(unitFor(2)); !ok {
		t.Fatal("newest oversized artifact missing")
	}
}

// TestDiskWarmAcrossReopen is restart recovery: a second OpenDisk on
// the same directory indexes the artifacts, preserves LRU order from
// mtimes, sweeps temp leftovers, and serves bit-identical payloads.
func TestDiskWarmAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustPut(t, d1, i)
	}
	// Distinct, ordered mtimes (filesystem granularity can merge fast
	// writes): 2 oldest, then 3, then 1.
	base := time.Now().Add(-time.Hour)
	for rank, i := range []int{2, 3, 1} {
		mt := base.Add(time.Duration(rank) * time.Minute)
		if err := os.Chtimes(d1.path(unitFor(i).Key()), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// A crashed writer's leftover must be swept on open.
	leftover := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(leftover, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 3 || d2.Bytes() != 3*encodedSize() {
		t.Fatalf("warmed %d entries / %d bytes, want 3 / %d", d2.Len(), d2.Bytes(), 3*encodedSize())
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Error("temp leftover not swept on open")
	}
	for i := 1; i <= 3; i++ {
		a, ok := d2.Get(unitFor(i))
		if !ok {
			t.Fatalf("entry %d lost across reopen", i)
		}
		checkSynthetic(t, a, i)
	}
	// Re-impose the mtime ordering — the Gets above refreshed it, which
	// is itself the recency contract — then reopen under a 2-artifact
	// budget: the mtime-oldest entry (2) is the one evicted.
	for rank, i := range []int{2, 3, 1} {
		mt := base.Add(time.Duration(rank) * time.Minute)
		if err := os.Chtimes(d1.path(unitFor(i).Key()), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	d3, err := OpenDisk(dir, 2*encodedSize())
	if err != nil {
		t.Fatal(err)
	}
	if d3.Len() != 2 {
		t.Fatalf("budgeted warm kept %d entries, want 2", d3.Len())
	}
	if _, ok := d3.Get(unitFor(2)); ok {
		t.Error("mtime-oldest entry survived a budgeted warm")
	}
	for _, i := range []int{3, 1} {
		if _, ok := d3.Get(unitFor(i)); !ok {
			t.Errorf("recent entry %d evicted by warm", i)
		}
	}
}

// TestDiskAdoptsForeignWrites: a file another process wrote after this
// tier warmed is served and indexed on first read.
func TestDiskAdoptsForeignWrites(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir, 0) // the "other process"
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, b, 5)
	art, ok := a.Get(unitFor(5))
	if !ok {
		t.Fatal("foreign write not visible")
	}
	checkSynthetic(t, art, 5)
	if a.Len() != 1 {
		t.Errorf("foreign file not adopted into the index: %d entries", a.Len())
	}
}

// TestDiskConcurrentReadersDuringEviction hammers a tiny tier with
// concurrent writers (forcing constant eviction) and readers; run
// under -race. The contract: every Get either hits with the correct
// bits or misses cleanly — never an error, a panic, or a torn read.
func TestDiskConcurrentReadersDuringEviction(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 2*encodedSize())
	if err != nil {
		t.Fatal(err)
	}
	const units = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d.Put(unitFor((seed+i)%units), synthetic((seed+i)%units))
			}
		}(w * 3)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (seed + i) % units
				if a, ok := d.Get(unitFor(u)); ok {
					checkSynthetic(t, a, u)
				}
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if evictions, _, _ := d.counters(); evictions == 0 {
		t.Error("stress run never evicted; budget too generous to exercise the race")
	}
	if d.Bytes() > d.MaxBytes() {
		t.Errorf("tier settled over budget: %d > %d", d.Bytes(), d.MaxBytes())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	for _, payload := range []string{"first", "second longer payload"} {
		if err := WriteFileAtomic(path, []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Errorf("read back %q, want %q", got, payload)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp file leaked: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Errorf("directory holds %d entries, want just the target", len(ents))
	}
	if err := WriteFileAtomic(filepath.Join(dir, "no", "such", "dir", "x"), []byte("y"), 0o644); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func TestOpenDiskRejectsEmptyDir(t *testing.T) {
	if _, err := OpenDisk("", 0); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestDiskPathIsContentAddressed(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, 1)
	ents, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files, want 1", len(ents))
	}
	name := ents[0].Name()
	if !strings.HasSuffix(name, ext) || len(name) != 64+len(ext) {
		t.Errorf("artifact filename %q is not a hex SHA-256 plus %q", name, ext)
	}
	if strings.Contains(name, "|") {
		t.Errorf("raw key leaked into filename %q", name)
	}
}
