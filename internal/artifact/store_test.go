package artifact

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"obm/internal/core"
	"obm/internal/mesh"
)

// synthetic returns a deterministic artifact for work-unit index i, so
// concurrency tests can verify every Get returned the right payload.
func synthetic(i int) Artifact {
	n := 8
	m := make(core.Mapping, n)
	for j := range m {
		m[j] = mesh.Tile((j + i) % n)
	}
	apls := make([]float64, 4)
	for k := range apls {
		apls[k] = float64(i)*100 + float64(k) + 0.5
	}
	return Artifact{Mapping: m, Eval: core.Evaluation{APLs: apls, MaxAPL: float64(i) + 0.25}}
}

func unitFor(i int) WorkUnit {
	return NewWorkUnit(fmt.Sprintf("p%03d", i), fmt.Sprintf("m%03d", i), "maxapl")
}

func computeSynthetic(i int, calls *atomic.Int64) func(context.Context) (Artifact, error) {
	return func(context.Context) (Artifact, error) {
		if calls != nil {
			calls.Add(1)
		}
		return synthetic(i), nil
	}
}

// checkSynthetic verifies an artifact matches synthetic(i) bit-exactly.
func checkSynthetic(t *testing.T, a Artifact, i int) {
	t.Helper()
	want := synthetic(i)
	for j := range want.Mapping {
		if a.Mapping[j] != want.Mapping[j] {
			t.Fatalf("unit %d: mapping[%d] = %d, want %d", i, j, a.Mapping[j], want.Mapping[j])
		}
	}
	for k := range want.Eval.APLs {
		if math.Float64bits(a.Eval.APLs[k]) != math.Float64bits(want.Eval.APLs[k]) {
			t.Fatalf("unit %d: APLs[%d] = %v, want %v", i, k, a.Eval.APLs[k], want.Eval.APLs[k])
		}
	}
	if math.Float64bits(a.Eval.MaxAPL) != math.Float64bits(want.Eval.MaxAPL) {
		t.Fatalf("unit %d: MaxAPL = %v, want %v", i, a.Eval.MaxAPL, want.Eval.MaxAPL)
	}
}

func TestStoreMemorySingleflight(t *testing.T) {
	s := NewStore(nil)
	var calls atomic.Int64
	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, _, err := s.Get(context.Background(), unitFor(1), computeSynthetic(1, &calls))
			if err != nil {
				t.Error(err)
				return
			}
			checkSynthetic(t, a, 1)
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	st := s.Stats()
	if st.Computed != 1 || st.MemHits != callers-1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 computed, %d mem hits", st, callers-1)
	}
}

func TestStoreBypassTouchesNoTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(disk)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		a, err := s.Bypass(context.Background(), computeSynthetic(7, &calls))
		if err != nil {
			t.Fatal(err)
		}
		checkSynthetic(t, a, 7)
	}
	if calls.Load() != 3 {
		t.Errorf("bypass memoized: %d compute calls for 3 requests", calls.Load())
	}
	st := s.Stats()
	if st.Bypass != 3 || st.Computed != 0 || st.MemHits != 0 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want bypass-only traffic", st)
	}
	if s.Len() != 0 || disk.Len() != 0 {
		t.Errorf("bypass populated a tier: mem %d, disk %d entries", s.Len(), disk.Len())
	}
}

// TestStoreDiskPromotion is the two-tier contract: a fresh store over
// a warmed directory serves from disk without computing, and promotes
// the artifact into its memory tier so the repeat is a memory hit.
func TestStoreDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	disk1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStore(disk1)
	var calls atomic.Int64
	if _, src, err := s1.Get(context.Background(), unitFor(3), computeSynthetic(3, &calls)); err != nil || src != SourceComputed {
		t.Fatalf("cold get: src=%v err=%v", src, err)
	}

	// A second store with its own warmed disk tier — a "restart".
	disk2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(disk2)
	a, src, err := s2.Get(context.Background(), unitFor(3), computeSynthetic(3, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDisk {
		t.Fatalf("warm get source = %v, want disk", src)
	}
	checkSynthetic(t, a, 3)
	a, src, err = s2.Get(context.Background(), unitFor(3), computeSynthetic(3, &calls))
	if err != nil || src != SourceMemory {
		t.Fatalf("promoted get source = %v, err = %v, want memory", src, err)
	}
	checkSynthetic(t, a, 3)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times across restart, want 1", calls.Load())
	}
	st := s2.Stats()
	if st.Computed != 0 || st.DiskHits != 1 || st.MemHits != 1 {
		t.Errorf("restart stats = %+v, want 0 computed / 1 disk / 1 mem", st)
	}
}

func TestStoreErrorNotCachedOnEitherTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(disk)
	boom := fmt.Errorf("mapper exploded")
	if _, _, err := s.Get(context.Background(), unitFor(4), func(context.Context) (Artifact, error) {
		return Artifact{}, boom
	}); err != boom {
		t.Fatalf("err = %v, want the compute error", err)
	}
	if s.Len() != 0 || disk.Len() != 0 {
		t.Errorf("failed computation stored: mem %d, disk %d", s.Len(), disk.Len())
	}
	// The slot retries cleanly.
	a, src, err := s.Get(context.Background(), unitFor(4), computeSynthetic(4, nil))
	if err != nil || src != SourceComputed {
		t.Fatalf("retry: src=%v err=%v", src, err)
	}
	checkSynthetic(t, a, 4)
}

func TestStoreReturnsIndependentCopies(t *testing.T) {
	s := NewStore(nil)
	a1, _, err := s.Get(context.Background(), unitFor(5), computeSynthetic(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	a1.Mapping[0] = 99
	a1.Eval.APLs[0] = -1
	a2, _, err := s.Get(context.Background(), unitFor(5), computeSynthetic(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	checkSynthetic(t, a2, 5)
}
