// Package artifact is the repository's durable artifact substrate: a
// canonical WorkUnit descriptor naming one deterministic mapper
// invocation, a versioned self-describing binary encoding for its
// (Mapping, Evaluation) result, and a two-tier content-addressed Store
// (singleflight in-memory tier over an optional disk tier) that every
// layer above — scenario, experiments, cmd/obmsim, and eventually the
// daemon and distributed fan-out — shares.
//
// Contracts, in the spirit of the engine and obs layers:
//
//   - Content addressing end to end: a WorkUnit's Key is derived only
//     from content fingerprints (problem, mapper, objective) plus the
//     artifact schema version, never from names, machines, or worker
//     counts, so independently built but identical work shares storage
//     across goroutines, runs, and processes.
//   - Bit-identical round trips: the encoding preserves float64 bits
//     exactly, so an artifact served from disk is indistinguishable
//     from a recomputed one (golden tests enforce this, including
//     across separate processes).
//   - The cache can only make runs faster, never wrong: corrupted,
//     truncated, or wrong-schema disk entries are discarded and the
//     work recomputed; a failed or panicking computation is never
//     stored; eviction under concurrent readers degrades to a miss.
package artifact

import (
	"fmt"

	"obm/internal/core"
)

// SchemaVersion is the current artifact encoding version. Bumping it
// invalidates every stored artifact (old files decode with ErrSchema
// and age out of the disk tier via eviction); it participates in every
// WorkUnit key so two schema generations never collide.
//
// v2 made artifacts set-valued: after the point-valued fields, the
// frame carries N (mapping, cost vector) Pareto-set members. Scalar
// mapper artifacts simply store an empty set.
const SchemaVersion = 2

// WorkUnit canonically describes one deterministic mapper invocation:
// the content fingerprint of the problem instance, of the mapper
// configuration (seeds and budgets included, execution-shape knobs
// excluded), and of the objective being optimized, plus the artifact
// schema version. Two WorkUnits with equal Keys must — by the Mapper
// determinism contract — produce bit-identical artifacts, which is
// what makes the store safe to share across processes and machines.
type WorkUnit struct {
	// Problem is core.Problem.Fingerprint().
	Problem string
	// Mapper is mapping.Mapper.Fingerprint(). By that contract it
	// already folds in a non-default objective; Objective is carried
	// separately so the descriptor is self-describing for readers that
	// never instantiate the mapper (daemons, cache inspectors).
	Mapper string
	// Objective is the fingerprint of the objective the mapper
	// optimizes (core.Objective.Fingerprint; the default max-APL for
	// mappers without a configurable objective).
	Objective string
	// Schema is the artifact encoding version; zero means
	// SchemaVersion.
	Schema int
}

// NewWorkUnit builds a WorkUnit at the current schema version.
func NewWorkUnit(problemFP, mapperFP, objectiveFP string) WorkUnit {
	return WorkUnit{Problem: problemFP, Mapper: mapperFP, Objective: objectiveFP, Schema: SchemaVersion}
}

// schemaOrDefault resolves the zero value to the current version.
func (w WorkUnit) schemaOrDefault() int {
	if w.Schema == 0 {
		return SchemaVersion
	}
	return w.Schema
}

// Key returns the stable content key both tiers address the work unit
// by: the memory tier's map key, and (hashed) the disk tier's file
// name. The fingerprint components never contain '|' (they are
// printf-style tokens), so the join is unambiguous.
func (w WorkUnit) Key() string {
	return fmt.Sprintf("wu%d|%s|%s|%s", w.schemaOrDefault(), w.Problem, w.Mapper, w.Objective)
}

// SetMember is one Pareto-set member of a set-valued artifact: a
// mapping with its cost vector under the work unit's vector objective
// (component order fixed by the objective fingerprint in the key).
type SetMember struct {
	// Mapping is one validated permutation of the front.
	Mapping core.Mapping
	// Vector is the member's cost vector (lower is better everywhere).
	Vector []float64
}

// Clone returns an independent deep copy.
func (m SetMember) Clone() SetMember {
	return SetMember{
		Mapping: m.Mapping.Clone(),
		Vector:  append([]float64(nil), m.Vector...),
	}
}

// Artifact is one memoized mapper invocation's result: the validated
// mapping and its full evaluation on the problem it was computed for,
// plus — for set-valued (multi-objective) invocations — the Pareto
// front in canonical order. Scalar invocations leave Set empty; a
// set-valued invocation stores its representative (first canonical)
// member in Mapping/Eval so every point-valued consumer keeps working
// unchanged.
type Artifact struct {
	// Mapping is the mapper's validated permutation (the canonical
	// representative for set-valued artifacts).
	Mapping core.Mapping
	// Eval is Problem.Evaluate of that mapping.
	Eval core.Evaluation
	// Set is the Pareto front of a set-valued invocation, in the
	// canonical order of core.ParetoSet; empty for scalar artifacts.
	Set []SetMember
}

// Clone returns an independent deep copy, so callers handed a cached
// artifact can never corrupt the stored one.
func (a Artifact) Clone() Artifact {
	out := Artifact{Mapping: a.Mapping.Clone(), Eval: a.Eval.Clone()}
	if len(a.Set) > 0 {
		out.Set = make([]SetMember, len(a.Set))
		for i, m := range a.Set {
			out.Set[i] = m.Clone()
		}
	}
	return out
}
