package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"obm/internal/obs"
)

// Disk-tier metrics: process-wide (every DiskTier instance feeds them),
// mirrored next to the in-memory tier's counters so cmd/obmsim's
// metrics block shows artifact reuse per tier.
var (
	mDiskHits      = obs.Default().Counter("artifact.disk.hits")
	mDiskMisses    = obs.Default().Counter("artifact.disk.misses")
	mDiskEvictions = obs.Default().Counter("artifact.disk.evictions")
	mDiskCorrupt   = obs.Default().Counter("artifact.disk.corrupt")
	mDiskSchema    = obs.Default().Counter("artifact.disk.schema_mismatch")
	mDiskWriteErrs = obs.Default().Counter("artifact.disk.write_errors")
	mDiskBytes     = obs.Default().Gauge("artifact.disk.bytes")
	mDiskEntries   = obs.Default().Gauge("artifact.disk.entries")
)

// ext is the artifact file suffix; temp files use tmpPattern and are
// swept on open so a crashed writer can never poison the directory.
const (
	ext        = ".obma"
	tmpPattern = ".tmp-*"
)

// DiskTier is the persistent half of the two-tier store: one artifact
// per file, content-addressed by the SHA-256 of the WorkUnit key,
// bounded by a byte budget with least-recently-used eviction. It is
// safe for concurrent use within a process, and safe to share a
// directory across processes: writes are temp-file + atomic rename, a
// concurrent eviction under a reader degrades to a miss, and files
// written by another process after startup are adopted on first read.
type DiskTier struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded

	mu    sync.Mutex
	byKey map[string]*list.Element // WorkUnit key -> lru element
	lru   *list.List               // front = most recently used *dentry
	total int64

	evictions, corrupt, schemaMismatch uint64 // per-tier counters for Stats
}

// dentry is one resident artifact file.
type dentry struct {
	key  string
	path string
	size int64
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir with
// the given byte budget (maxBytes <= 0 disables eviction). It warms
// the tier by scanning existing artifact files — recency order is
// recovered from file modification times, which Get refreshes on every
// hit — sweeps stale temp files, and immediately enforces the budget.
func OpenDisk(dir string, maxBytes int64) (*DiskTier, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: disk tier needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: opening disk tier: %w", err)
	}
	d := &DiskTier{dir: dir, maxBytes: maxBytes, byKey: make(map[string]*list.Element), lru: list.New()}
	if err := d.warm(); err != nil {
		return nil, err
	}
	return d, nil
}

// warm scans dir, indexing every artifact file oldest-first so the LRU
// order survives process restarts, and removes leftover temp files.
func (d *DiskTier) warm() error {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("artifact: warming disk tier: %w", err)
	}
	type resident struct {
		path  string
		size  int64
		mtime time.Time
	}
	var found []resident
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(d.dir, name)) // crashed writer's leftover
			continue
		}
		if !strings.HasSuffix(name, ext) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced with an eviction or external cleanup
		}
		found = append(found, resident{path: filepath.Join(d.dir, name), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range found {
		// The key inside the file is authoritative, but reading every
		// artifact at startup defeats the point of warming; index by
		// path now and verify the embedded key on first Get.
		e := &dentry{path: r.path, size: r.size}
		d.byKey[r.path] = d.lru.PushFront(e) // placeholder key until first read
		e.key = r.path
		d.total += r.size
	}
	d.evictLocked(nil)
	d.publishLocked()
	return nil
}

// path returns the content address of a work unit: the hex SHA-256 of
// its key, inside the tier's directory.
func (d *DiskTier) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+ext)
}

// Get returns the stored artifact for wu, or ok=false on any kind of
// miss: absent file, concurrent eviction, truncation, checksum or
// schema mismatch, or a file answering a different key (all but the
// plain absence also discard the offending file). A hit refreshes the
// entry's recency in memory and its mtime on disk, so LRU order is
// meaningful to the next process warming from this directory.
func (d *DiskTier) Get(wu WorkUnit) (Artifact, bool) {
	path := d.path(wu.Key())
	data, err := os.ReadFile(path)
	if err != nil {
		mDiskMisses.Inc()
		return Artifact{}, false
	}
	key, art, err := Decode(data)
	if err != nil || key != wu.Key() {
		if err == nil {
			err = fmt.Errorf("%w: file answers key %q", ErrCorrupt, key)
		}
		d.discard(path, wu.Key(), err)
		mDiskMisses.Inc()
		return Artifact{}, false
	}
	d.touch(wu.Key(), path, int64(len(data)))
	mDiskHits.Inc()
	return art, true
}

// touch records a hit: the entry moves to the LRU front (adopting
// files written by other processes after warming) and its mtime is
// refreshed best-effort for cross-process recency.
func (d *DiskTier) touch(key, path string, size int64) {
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort; recency only
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.byKey[key]; ok {
		d.lru.MoveToFront(el)
		return
	}
	// Warming indexed this file under its path placeholder, or another
	// process wrote it after we started; re-home it under the real key.
	if el, ok := d.byKey[path]; ok {
		delete(d.byKey, path)
		el.Value.(*dentry).key = key
		d.byKey[key] = el
		d.lru.MoveToFront(el)
		return
	}
	d.insertLocked(&dentry{key: key, path: path, size: size})
	d.publishLocked()
}

// discard drops a corrupt, foreign, or stale-schema file so the slot
// recomputes cleanly. Schema mismatches (a *SchemaError naming the
// found and supported versions — the expected state of a cache dir
// shared across a schema bump) are counted apart from corruption, so
// operators can tell an upgrade aging out from bit rot.
func (d *DiskTier) discard(path, key string, cause error) {
	schema := errors.Is(cause, ErrSchema)
	if schema {
		mDiskSchema.Inc()
	} else {
		mDiskCorrupt.Inc()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if schema {
		d.schemaMismatch++
	} else {
		d.corrupt++
	}
	for _, k := range []string{key, path} {
		if el, ok := d.byKey[k]; ok {
			d.removeLocked(el)
			break
		}
	}
	os.Remove(path)
	d.publishLocked()
}

// Put stores the artifact for wu with an atomic temp-file + rename
// write, then enforces the byte budget. Failures are returned but safe
// to ignore: a failed cache write only costs a later recompute.
func (d *DiskTier) Put(wu WorkUnit, a Artifact) error {
	key := wu.Key()
	data := Encode(wu, a)
	path := d.path(key)
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		mDiskWriteErrs.Inc()
		return fmt.Errorf("artifact: writing %s: %w", path, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.byKey[key]; ok {
		// Overwrite of a live key (e.g. two processes raced): replace
		// the size and refresh recency.
		e := el.Value.(*dentry)
		d.total += int64(len(data)) - e.size
		e.size = int64(len(data))
		d.lru.MoveToFront(el)
	} else {
		d.insertLocked(&dentry{key: key, path: path, size: int64(len(data))})
	}
	d.evictLocked(d.byKey[key])
	d.publishLocked()
	return nil
}

// insertLocked adds a fresh entry at the LRU front.
func (d *DiskTier) insertLocked(e *dentry) {
	d.byKey[e.key] = d.lru.PushFront(e)
	d.total += e.size
}

// removeLocked unlinks an entry from the index (not the filesystem).
func (d *DiskTier) removeLocked(el *list.Element) {
	e := el.Value.(*dentry)
	d.lru.Remove(el)
	delete(d.byKey, e.key)
	d.total -= e.size
}

// evictLocked deletes least-recently-used entries until the tier fits
// its budget. keep (the entry just written, if any) survives even when
// it alone exceeds the budget — evicting the artifact the caller is
// about to rely on would turn every oversized write into thrash.
func (d *DiskTier) evictLocked(keep *list.Element) {
	if d.maxBytes <= 0 {
		return
	}
	for d.total > d.maxBytes && d.lru.Len() > 0 {
		el := d.lru.Back()
		if el == keep {
			return
		}
		e := el.Value.(*dentry)
		d.removeLocked(el)
		os.Remove(e.path)
		d.evictions++
		mDiskEvictions.Inc()
	}
}

// publishLocked refreshes the occupancy gauges.
func (d *DiskTier) publishLocked() {
	mDiskBytes.Set(d.total)
	mDiskEntries.Set(int64(d.lru.Len()))
}

// Dir returns the tier's root directory.
func (d *DiskTier) Dir() string { return d.dir }

// MaxBytes returns the configured byte budget (<= 0: unbounded).
func (d *DiskTier) MaxBytes() int64 { return d.maxBytes }

// Len returns the number of indexed artifacts.
func (d *DiskTier) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// Bytes returns the indexed payload size.
func (d *DiskTier) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// counters returns the tier-local eviction, corruption, and
// schema-mismatch counts.
func (d *DiskTier) counters() (evictions, corrupt, schemaMismatch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.evictions, d.corrupt, d.schemaMismatch
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory followed by an atomic rename, so readers (and a SIGINT
// mid-write) can never observe a partially written file. The temp file
// is removed on any failure.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, perm); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
