package artifact

import (
	"errors"
	"math"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/mesh"
)

// testArtifact builds a small artifact with floats chosen to expose
// any lossy encoding: values with no short decimal form, a negative
// zero, and a subnormal. It carries a two-member Pareto set so the
// schema-v2 set section is covered by every round-trip, truncation,
// bit-rot, and cross-process test.
func testArtifact() (WorkUnit, Artifact) {
	wu := NewWorkUnit("p8x8c1-0123456789abcdef", "sss(w=4)", "maxapl")
	a := Artifact{
		Mapping: core.Mapping{3, 1, mesh.Tile(0), 2},
		Eval: core.Evaluation{
			APLs:        []float64{0.1 + 0.2, math.Nextafter(21.5, 22), math.Copysign(0, -1), 5e-324},
			MaxAPL:      math.Nextafter(21.5, 22),
			DevAPL:      0.030000000000000002,
			GlobalAPL:   21.0 / 7.0,
			MinMaxRatio: 0.9999999999999999,
		},
		Set: []SetMember{
			{Mapping: core.Mapping{3, 1, 0, 2}, Vector: []float64{0.1 + 0.2, math.Copysign(0, -1), 5e-324}},
			{Mapping: core.Mapping{0, 1, 2, 3}, Vector: []float64{math.Nextafter(21.5, 22), 1.0 / 3.0, 7}},
		},
	}
	return wu, a
}

func TestEncodeDecodeRoundTripBitIdentical(t *testing.T) {
	wu, a := testArtifact()
	key, got, err := Decode(Encode(wu, a))
	if err != nil {
		t.Fatal(err)
	}
	if key != wu.Key() {
		t.Errorf("embedded key = %q, want %q", key, wu.Key())
	}
	if len(got.Mapping) != len(a.Mapping) {
		t.Fatalf("mapping length %d, want %d", len(got.Mapping), len(a.Mapping))
	}
	for j := range a.Mapping {
		if got.Mapping[j] != a.Mapping[j] {
			t.Errorf("mapping[%d] = %d, want %d", j, got.Mapping[j], a.Mapping[j])
		}
	}
	if len(got.Eval.APLs) != len(a.Eval.APLs) {
		t.Fatalf("APL count %d, want %d", len(got.Eval.APLs), len(a.Eval.APLs))
	}
	for i := range a.Eval.APLs {
		if math.Float64bits(got.Eval.APLs[i]) != math.Float64bits(a.Eval.APLs[i]) {
			t.Errorf("APLs[%d] bits %016x, want %016x", i,
				math.Float64bits(got.Eval.APLs[i]), math.Float64bits(a.Eval.APLs[i]))
		}
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"MaxAPL", got.Eval.MaxAPL, a.Eval.MaxAPL},
		{"DevAPL", got.Eval.DevAPL, a.Eval.DevAPL},
		{"GlobalAPL", got.Eval.GlobalAPL, a.Eval.GlobalAPL},
		{"MinMaxRatio", got.Eval.MinMaxRatio, a.Eval.MinMaxRatio},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("%s bits %016x, want %016x", f.name, math.Float64bits(f.got), math.Float64bits(f.want))
		}
	}
	if len(got.Set) != len(a.Set) {
		t.Fatalf("set member count %d, want %d", len(got.Set), len(a.Set))
	}
	for i := range a.Set {
		for j := range a.Set[i].Mapping {
			if got.Set[i].Mapping[j] != a.Set[i].Mapping[j] {
				t.Errorf("set[%d].Mapping[%d] = %d, want %d", i, j, got.Set[i].Mapping[j], a.Set[i].Mapping[j])
			}
		}
		for d := range a.Set[i].Vector {
			if math.Float64bits(got.Set[i].Vector[d]) != math.Float64bits(a.Set[i].Vector[d]) {
				t.Errorf("set[%d].Vector[%d] bits %016x, want %016x", i, d,
					math.Float64bits(got.Set[i].Vector[d]), math.Float64bits(a.Set[i].Vector[d]))
			}
		}
	}
}

// TestEncodeDecodeEmptySet: scalar artifacts (no set) still round-trip
// with a nil Set, not an empty non-nil one.
func TestEncodeDecodeEmptySet(t *testing.T) {
	wu, a := testArtifact()
	a.Set = nil
	_, got, err := Decode(Encode(wu, a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Set != nil {
		t.Fatalf("empty set decoded as %v, want nil", got.Set)
	}
}

// TestDecodeTruncated feeds Decode every proper prefix of a valid
// encoding: all must fail with ErrCorrupt, none may panic — a SIGKILL
// mid-write (pre-atomic-rename this was possible) must never produce a
// frame that parses.
func TestDecodeTruncated(t *testing.T) {
	wu, a := testArtifact()
	data := Encode(wu, a)
	for n := 0; n < len(data); n++ {
		if _, _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
}

// TestDecodeBitRot flips one bit in every byte position in turn; the
// checksum must catch each (a flip in the checksum itself included).
func TestDecodeBitRot(t *testing.T) {
	wu, a := testArtifact()
	data := Encode(wu, a)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
}

func TestDecodeWrongSchema(t *testing.T) {
	wu, a := testArtifact()
	data := encodeVersion(wu, a, SchemaVersion+41)
	_, _, err := Decode(data)
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("err = %v, want ErrSchema", err)
	}
	// The typed error names both versions, so mixed-schema cache dirs
	// produce a diagnosable message.
	var se *SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SchemaError", err)
	}
	if se.Found != SchemaVersion+41 || se.Supported != SchemaVersion {
		t.Fatalf("SchemaError = %+v, want Found=%d Supported=%d", se, SchemaVersion+41, SchemaVersion)
	}
	for _, part := range []string{"v43", "v2"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q does not name %s", err.Error(), part)
		}
	}
}

func TestWorkUnitKey(t *testing.T) {
	wu := NewWorkUnit("pA", "mB", "oC")
	if got, want := wu.Key(), "wu2|pA|mB|oC"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	// The zero schema resolves to the current version: the two forms
	// address the same storage.
	if (WorkUnit{Problem: "pA", Mapper: "mB", Objective: "oC"}).Key() != wu.Key() {
		t.Error("zero-schema key differs from explicit current version")
	}
	// Any component change must change the key.
	for _, alt := range []WorkUnit{
		{Problem: "pX", Mapper: "mB", Objective: "oC"},
		{Problem: "pA", Mapper: "mX", Objective: "oC"},
		{Problem: "pA", Mapper: "mB", Objective: "oX"},
		{Problem: "pA", Mapper: "mB", Objective: "oC", Schema: SchemaVersion + 1},
	} {
		if alt.Key() == wu.Key() {
			t.Errorf("%+v shares a key with %+v", alt, wu)
		}
	}
}

func TestArtifactCloneIndependent(t *testing.T) {
	_, a := testArtifact()
	c := a.Clone()
	c.Mapping[0], c.Eval.APLs[0] = 99, -1
	c.Set[0].Mapping[0], c.Set[0].Vector[0] = 99, -1
	if a.Mapping[0] == 99 || a.Eval.APLs[0] == -1 {
		t.Error("Clone shares storage with the original")
	}
	if a.Set[0].Mapping[0] == 99 || a.Set[0].Vector[0] == -1 {
		t.Error("Clone shares set storage with the original")
	}
}
