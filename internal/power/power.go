// Package power estimates NoC power in the style of DSENT [24], the
// model the paper uses at 45nm and 1V: dynamic energy proportional to
// flit activity (buffer write+read, crossbar traversal, arbitration at
// every router hop, plus link traversal), and static leakage
// proportional to router and link count. Absolute watts are
// approximations from published 45nm router characterizations; the
// paper's Figure 11 compares mappings, and those ratios depend only on
// the per-flit-hop energy being fixed, which this model preserves
// exactly (DESIGN.md, substitution 3).
package power

import (
	"fmt"

	"obm/internal/noc"
)

// Params holds per-event energies in picojoules and leakage in
// milliwatts for one router/link at 45nm, 1V, 128-bit flits.
type Params struct {
	// BufWrite and BufRead are per-flit buffer energies.
	BufWrite, BufRead float64
	// Crossbar is the per-flit switch traversal energy.
	Crossbar float64
	// Arbiter is the per-flit allocation energy.
	Arbiter float64
	// Link is the per-flit link traversal energy.
	Link float64
	// RouterLeakage and LinkLeakage are static power per device in mW.
	RouterLeakage, LinkLeakage float64
	// ClockGHz converts cycles to seconds (Table 2: 2 GHz).
	ClockGHz float64
}

// Default45nm returns parameters representative of DSENT's 45nm bulk
// process for a 5-port 128-bit 3-stage router.
func Default45nm() Params {
	return Params{
		BufWrite:      0.60,
		BufRead:       0.55,
		Crossbar:      1.05,
		Arbiter:       0.12,
		Link:          1.30,
		RouterLeakage: 2.1,
		LinkLeakage:   0.4,
		ClockGHz:      2.0,
	}
}

// Validate reports an error for non-physical parameters.
func (p Params) Validate() error {
	if p.BufWrite < 0 || p.BufRead < 0 || p.Crossbar < 0 || p.Arbiter < 0 ||
		p.Link < 0 || p.RouterLeakage < 0 || p.LinkLeakage < 0 {
		return fmt.Errorf("power: negative energy parameter: %+v", p)
	}
	if p.ClockGHz <= 0 {
		return fmt.Errorf("power: clock must be positive, got %v GHz", p.ClockGHz)
	}
	return nil
}

// PerFlitHop returns the dynamic energy of moving one flit one hop
// (through a router and the following link), in pJ.
func (p Params) PerFlitHop() float64 {
	return p.BufWrite + p.BufRead + p.Crossbar + p.Arbiter + p.Link
}

// Report breaks an estimate down.
type Report struct {
	// DynamicW is flit-activity power in watts.
	DynamicW float64
	// StaticW is leakage in watts.
	StaticW float64
	// EnergyPJ is total dynamic energy in picojoules.
	EnergyPJ float64
}

// TotalW returns dynamic plus static power.
func (r Report) TotalW() float64 { return r.DynamicW + r.StaticW }

// Estimate computes NoC power from simulation statistics: every
// flit-hop costs PerFlitHop, injection and ejection each cost a buffer
// transaction, and leakage accrues for routers+links over the simulated
// wall time.
func Estimate(p Params, st noc.Stats, numRouters, numLinks int) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if numRouters < 0 || numLinks < 0 {
		return Report{}, fmt.Errorf("power: negative device count")
	}
	energy := float64(st.FlitHops) * p.PerFlitHop()
	// Source injection writes the first buffer; ejection reads the last.
	energy += float64(st.InjectedFlits) * p.BufWrite
	energy += float64(st.DeliveredFlits) * p.BufRead
	rep := Report{EnergyPJ: energy}
	if st.Cycles > 0 {
		seconds := float64(st.Cycles) / (p.ClockGHz * 1e9)
		rep.DynamicW = energy * 1e-12 / seconds
		rep.StaticW = (float64(numRouters)*p.RouterLeakage + float64(numLinks)*p.LinkLeakage) / 1e3
	}
	return rep, nil
}

// EstimateEnergy returns the dynamic NoC energy, in pJ, of moving
// flitHops flit-hops through the network: the analytic-model
// counterpart of Estimate for callers that know traffic volume but run
// no cycle-accurate simulation (core.Energy derives flitHops from the
// latency model's hop structure). flitHops may be fractional — the
// analytic model works in request rates, so the result is an energy
// rate at the same scale, which is all a relative comparison needs.
func EstimateEnergy(p Params, flitHops float64) float64 {
	return flitHops * p.PerFlitHop()
}

// MeshLinkCount returns the number of unidirectional inter-router links
// in a rows x cols mesh (each adjacent pair is connected both ways).
func MeshLinkCount(rows, cols int) int {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	return 2 * (rows*(cols-1) + cols*(rows-1))
}
