package power

import (
	"math"
	"testing"

	"obm/internal/noc"
)

func TestParamsValidate(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Default45nm()
	p.Link = -1
	if err := p.Validate(); err == nil {
		t.Error("negative link energy accepted")
	}
	p = Default45nm()
	p.ClockGHz = 0
	if err := p.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestPerFlitHop(t *testing.T) {
	p := Params{BufWrite: 1, BufRead: 2, Crossbar: 3, Arbiter: 4, Link: 5, ClockGHz: 1}
	if got := p.PerFlitHop(); got != 15 {
		t.Errorf("PerFlitHop = %v, want 15", got)
	}
}

func TestEstimateZeroTraffic(t *testing.T) {
	rep, err := Estimate(Default45nm(), noc.Stats{Cycles: 1000}, 64, MeshLinkCount(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DynamicW != 0 {
		t.Errorf("idle dynamic power = %v, want 0", rep.DynamicW)
	}
	if rep.StaticW <= 0 {
		t.Error("leakage should be positive")
	}
	if rep.TotalW() != rep.StaticW {
		t.Error("TotalW wrong")
	}
}

func TestEstimateScalesWithActivity(t *testing.T) {
	p := Default45nm()
	st1 := noc.Stats{Cycles: 1000, FlitHops: 100, InjectedFlits: 10, DeliveredFlits: 10}
	st2 := noc.Stats{Cycles: 1000, FlitHops: 200, InjectedFlits: 20, DeliveredFlits: 20}
	r1, err := Estimate(p, st1, 64, 224)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(p, st2, 64, 224)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.DynamicW-2*r1.DynamicW) > 1e-12 {
		t.Errorf("doubling activity should double dynamic power: %v vs %v", r1.DynamicW, r2.DynamicW)
	}
	if r1.StaticW != r2.StaticW {
		t.Error("static power should not depend on traffic")
	}
}

func TestEstimateEnergyAccounting(t *testing.T) {
	p := Params{BufWrite: 1, BufRead: 1, Crossbar: 1, Arbiter: 1, Link: 1, ClockGHz: 2}
	st := noc.Stats{Cycles: 100, FlitHops: 10, InjectedFlits: 4, DeliveredFlits: 4}
	rep, err := Estimate(p, st, 16, 48)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*5.0 + 4*1 + 4*1
	if math.Abs(rep.EnergyPJ-want) > 1e-12 {
		t.Errorf("EnergyPJ = %v, want %v", rep.EnergyPJ, want)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(Params{ClockGHz: -1}, noc.Stats{}, 1, 1); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := Estimate(Default45nm(), noc.Stats{}, -1, 0); err == nil {
		t.Error("negative router count accepted")
	}
}

func TestMeshLinkCount(t *testing.T) {
	cases := []struct{ r, c, want int }{
		{1, 1, 0},
		{1, 2, 2},
		{2, 2, 8},
		{8, 8, 224},
		{0, 5, 0},
	}
	for _, cs := range cases {
		if got := MeshLinkCount(cs.r, cs.c); got != cs.want {
			t.Errorf("MeshLinkCount(%d,%d) = %d, want %d", cs.r, cs.c, got, cs.want)
		}
	}
}
