// Package viz renders experiment results as standalone SVG figures —
// the closest a reproduction repository gets to regenerating the
// paper's actual figures. Only the standard library is used; outputs
// are deterministic byte-for-byte.
package viz

import (
	"fmt"
	"strings"
)

// palette holds the categorical series colors (colorblind-safe-ish).
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// seriesColor returns the color for series index i.
func seriesColor(i int) string { return palette[i%len(palette)] }

type svg struct {
	w, h int
	sb   strings.Builder
}

func newSVG(w, h int) *svg {
	s := &svg{w: w, h: h}
	fmt.Fprintf(&s.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svg) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&s.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (s *svg) rectOutlined(x, y, w, h float64, fill, stroke string) {
	fmt.Fprintf(&s.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="0.5"/>`+"\n", x, y, w, h, fill, stroke)
}

func (s *svg) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n", x1, y1, x2, y2, stroke, width)
}

func (s *svg) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&s.sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

// text escapes and places a label. anchor: start|middle|end.
func (s *svg) text(x, y float64, size int, anchor, fill, content string) {
	esc := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(content)
	fmt.Fprintf(&s.sb, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s" fill="%s">%s</text>`+"\n", x, y, size, anchor, fill, esc)
}

func (s *svg) done() []byte {
	s.sb.WriteString("</svg>\n")
	return []byte(s.sb.String())
}

// heatColor maps t in [0,1] to a white→dark-blue ramp.
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Interpolate white (255,255,255) -> #205080 (32,80,128).
	r := int(255 - t*(255-32))
	g := int(255 - t*(255-80))
	b := int(255 - t*(255-128))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// Heatmap renders a matrix of values as shaded tiles with the numbers
// overlaid — the paper's Figure 3 style.
func Heatmap(title string, vals [][]float64) []byte {
	rows := len(vals)
	cols := 0
	if rows > 0 {
		cols = len(vals[0])
	}
	const cell, margin, top = 52, 20, 40
	s := newSVG(cols*cell+2*margin, rows*cell+top+margin)
	s.text(float64(s.w)/2, 24, 15, "middle", "black", title)
	var mn, mx float64
	first := true
	for _, row := range vals {
		for _, v := range row {
			if first || v < mn {
				mn = v
			}
			if first || v > mx {
				mx = v
			}
			first = false
		}
	}
	for r, row := range vals {
		for c, v := range row {
			t := 0.0
			if mx > mn {
				t = (v - mn) / (mx - mn)
			}
			x := float64(margin + c*cell)
			y := float64(top + r*cell)
			s.rectOutlined(x, y, cell, cell, heatColor(t), "#888888")
			txtColor := "black"
			if t > 0.6 {
				txtColor = "white"
			}
			s.text(x+cell/2, y+cell/2+4, 11, "middle", txtColor, fmt.Sprintf("%.1f", v))
		}
	}
	return s.done()
}

// Grid renders an application-ID placement grid — the paper's
// Figures 4 and 8a.
func Grid(title string, grid [][]int) []byte {
	rows := len(grid)
	cols := 0
	if rows > 0 {
		cols = len(grid[0])
	}
	const cell, margin, top = 44, 20, 40
	s := newSVG(cols*cell+2*margin, rows*cell+top+margin)
	s.text(float64(s.w)/2, 24, 15, "middle", "black", title)
	for r, row := range grid {
		for c, id := range row {
			x := float64(margin + c*cell)
			y := float64(top + r*cell)
			fill := "#eeeeee"
			if id > 0 {
				fill = seriesColor(id - 1)
			}
			s.rectOutlined(x, y, cell, cell, fill, "#555555")
			s.text(x+cell/2, y+cell/2+5, 14, "middle", "white", fmt.Sprint(id))
		}
	}
	return s.done()
}

// Bars renders grouped vertical bars: one group per label in groups,
// one bar per series — the paper's Figures 9-11.
func Bars(title string, groups, series []string, values [][]float64, unit string) []byte {
	const w, h = 720, 360
	const left, right, top, bottom = 60, 20, 50, 60
	s := newSVG(w, h)
	s.text(w/2, 24, 15, "middle", "black", title)
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)
	var mx float64
	for _, row := range values {
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
	}
	if mx == 0 {
		mx = 1
	}
	// Y axis with 5 ticks.
	for i := 0; i <= 5; i++ {
		v := mx * float64(i) / 5
		y := float64(top) + plotH*(1-float64(i)/5)
		s.line(left-4, y, float64(w-right), y, "#dddddd", 1)
		s.text(left-8, y+4, 10, "end", "black", fmt.Sprintf("%.1f", v))
	}
	s.text(16, float64(top)+plotH/2, 11, "middle", "black", unit)
	groupW := plotW / float64(len(groups))
	barW := groupW * 0.8 / float64(len(series))
	for gi, g := range groups {
		gx := float64(left) + groupW*float64(gi)
		for si := range series {
			v := values[si][gi]
			bh := plotH * v / mx
			x := gx + groupW*0.1 + barW*float64(si)
			s.rect(x, float64(top)+plotH-bh, barW-1, bh, seriesColor(si))
		}
		s.text(gx+groupW/2, float64(h-bottom)+18, 11, "middle", "black", g)
	}
	// Legend.
	lx := float64(left)
	ly := float64(h - 18)
	for si, name := range series {
		s.rect(lx, ly-9, 10, 10, seriesColor(si))
		s.text(lx+14, ly, 11, "start", "black", name)
		lx += float64(14 + 8*len(name) + 24)
	}
	s.line(left, float64(top)+plotH, float64(w-right), float64(top)+plotH, "black", 1)
	return s.done()
}

// Lines renders one or more series over a shared x axis — the paper's
// Figure 12 and the load-sweep curves. Series iterate in the order of
// the names slice for deterministic output.
func Lines(title, xLabel, yLabel string, xs []float64, names []string, series map[string][]float64) []byte {
	const w, h = 720, 360
	const left, right, top, bottom = 70, 20, 50, 60
	s := newSVG(w, h)
	s.text(w/2, 24, 15, "middle", "black", title)
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)
	var xmn, xmx, ymx float64
	first := true
	for _, x := range xs {
		if first || x < xmn {
			xmn = x
		}
		if first || x > xmx {
			xmx = x
		}
		first = false
	}
	for _, name := range names {
		for _, v := range series[name] {
			if v > ymx {
				ymx = v
			}
		}
	}
	if xmx == xmn {
		xmx = xmn + 1
	}
	if ymx == 0 {
		ymx = 1
	}
	px := func(x float64) float64 { return float64(left) + plotW*(x-xmn)/(xmx-xmn) }
	py := func(y float64) float64 { return float64(top) + plotH*(1-y/ymx) }
	for i := 0; i <= 5; i++ {
		v := ymx * float64(i) / 5
		s.line(left-4, py(v), float64(w-right), py(v), "#dddddd", 1)
		s.text(left-8, py(v)+4, 10, "end", "black", fmt.Sprintf("%.1f", v))
	}
	for si, name := range names {
		vals := series[name]
		for i := 1; i < len(vals) && i < len(xs); i++ {
			s.line(px(xs[i-1]), py(vals[i-1]), px(xs[i]), py(vals[i]), seriesColor(si), 2)
		}
		for i := 0; i < len(vals) && i < len(xs); i++ {
			s.circle(px(xs[i]), py(vals[i]), 3, seriesColor(si))
		}
	}
	s.line(left, float64(top)+plotH, float64(w-right), float64(top)+plotH, "black", 1)
	s.line(left, top, left, float64(top)+plotH, "black", 1)
	s.text(float64(left)+plotW/2, float64(h)-28, 11, "middle", "black", xLabel)
	s.text(16, float64(top)+plotH/2, 11, "middle", "black", yLabel)
	lx := float64(left)
	ly := float64(h - 10)
	for si, name := range names {
		s.rect(lx, ly-9, 10, 10, seriesColor(si))
		s.text(lx+14, ly, 11, "start", "black", name)
		lx += float64(14 + 8*len(name) + 24)
	}
	return s.done()
}
