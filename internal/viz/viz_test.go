package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG as XML and returns element counts by name.
func wellFormed(t *testing.T, svg []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	if counts["svg"] != 1 {
		t.Fatalf("expected exactly one <svg>, got %d", counts["svg"])
	}
	return counts
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("TC(k)", [][]float64{{1, 2}, {3, 4}})
	counts := wellFormed(t, out)
	// Background + 4 cells.
	if counts["rect"] < 5 {
		t.Errorf("rect count %d, want >= 5", counts["rect"])
	}
	// Title + 4 value labels.
	if counts["text"] < 5 {
		t.Errorf("text count %d, want >= 5", counts["text"])
	}
	if !strings.Contains(string(out), "TC(k)") {
		t.Error("title missing")
	}
}

func TestHeatmapConstantField(t *testing.T) {
	// All-equal values must not divide by zero.
	out := Heatmap("flat", [][]float64{{5, 5}, {5, 5}})
	wellFormed(t, out)
}

func TestGrid(t *testing.T) {
	out := Grid("mapping", [][]int{{1, 2}, {3, 4}})
	counts := wellFormed(t, out)
	if counts["rect"] < 5 {
		t.Errorf("rect count %d", counts["rect"])
	}
	for _, id := range []string{">1<", ">2<", ">3<", ">4<"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("app id %s missing", id)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars("max-APL", []string{"C1", "C2"}, []string{"Global", "SSS"},
		[][]float64{{24, 25}, {21, 22}}, "cycles")
	counts := wellFormed(t, out)
	// Background + 4 bars + 2 legend swatches.
	if counts["rect"] < 7 {
		t.Errorf("rect count %d, want >= 7", counts["rect"])
	}
	if !strings.Contains(string(out), "Global") || !strings.Contains(string(out), "SSS") {
		t.Error("legend missing")
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("zeros", []string{"a"}, []string{"s"}, [][]float64{{0}}, "x")
	wellFormed(t, out)
}

func TestLines(t *testing.T) {
	xs := []float64{0.1, 1, 10, 100}
	out := Lines("SA vs runtime", "x SSS runtime", "max-APL", xs,
		[]string{"SA", "SSS"},
		map[string][]float64{"SA": {22, 21.6, 21.5, 21.47}, "SSS": {21.57, 21.57, 21.57, 21.57}})
	counts := wellFormed(t, out)
	if counts["circle"] != 8 {
		t.Errorf("circle count %d, want 8 markers", counts["circle"])
	}
	if counts["line"] < 6 {
		t.Errorf("line count %d", counts["line"])
	}
}

func TestLinesDegenerate(t *testing.T) {
	// Single point, zero range: no NaN coordinates.
	out := Lines("one", "x", "y", []float64{5}, []string{"s"}, map[string][]float64{"s": {0}})
	wellFormed(t, out)
	if strings.Contains(string(out), "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestTextEscaping(t *testing.T) {
	out := Grid("a<b&c>d", [][]int{{1}})
	wellFormed(t, out)
	if !strings.Contains(string(out), "a&lt;b&amp;c&gt;d") {
		t.Error("special characters not escaped")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []byte {
		return Bars("t", []string{"a", "b"}, []string{"x", "y"}, [][]float64{{1, 2}, {3, 4}}, "u")
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("SVG output not deterministic")
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, tc := range []float64{-1, 0, 0.5, 1, 2} {
		c := heatColor(tc)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("heatColor(%v) = %q", tc, c)
		}
	}
	if heatColor(0) != "#ffffff" {
		t.Errorf("cold end = %s, want white", heatColor(0))
	}
}
