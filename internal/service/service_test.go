package service

import (
	"bytes"
	"errors"
	"testing"
)

// TestRequestStream: the stream override flows flag -> request ->
// options -> envelope, and a malformed spec is a bad request before
// any work runs.
func TestRequestStream(t *testing.T) {
	r := Request{Experiments: []string{"dynstream"}, Quick: true, Stream: "load=0.8"}
	opts, err := r.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Stream != "load=0.8" {
		t.Errorf("options stream = %q", opts.Stream)
	}
	env, err := Envelope(r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(env, []byte(`"stream": "load=0.8"`)) {
		t.Errorf("envelope does not record the stream override:\n%s", env)
	}
	// Omitted override: no stream key at all (wire-compatible with
	// pre-stream consumers).
	plain, err := Envelope(Request{Experiments: []string{"table1"}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(`"stream"`)) {
		t.Errorf("empty stream override serialized:\n%s", plain)
	}
	r.Stream = "bogus=1"
	if _, err := r.Options(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad stream spec: err = %v, want ErrBadRequest", err)
	}
}
