package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"obm/internal/engine"
	"obm/internal/obs"
)

// httpFixture serves a stub-backed manager over httptest.
func httpFixture(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(Handler(m, obs.Default()))
	t.Cleanup(func() { srv.Close(); m.Close() })
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestHTTPLifecycle drives submit → status+events → result → done over
// the wire with an instant stub executor.
func TestHTTPLifecycle(t *testing.T) {
	release := make(chan struct{})
	close(release)
	exec := func(ctx context.Context, req Request, ec ExecConfig) (*Outcome, error) {
		sink := engine.Sequenced(ec.Sink)
		sink.Event(engine.Progress{Stage: "stage", Done: 1, Total: 1, Final: true})
		env, err := Envelope(req, nil, nil)
		return &Outcome{Envelope: env}, err
	}
	srv, _ := httpFixture(t, Config{execute: exec})

	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig5"}, Quick: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}

	var sr struct {
		Status
		Events     []wireEvent `json:"progress"`
		NextCursor uint64      `json:"next_cursor"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+st.ID+"?cursor=0", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", sr.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(sr.Events) != 1 || sr.Events[0].Seq != 1 || !sr.Events[0].Final || sr.NextCursor != 1 {
		t.Errorf("events = %+v next %d", sr.Events, sr.NextCursor)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var env struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Schema != RunSchema {
		t.Errorf("result envelope %s: %v", body, err)
	}
}

// TestHTTPErrorMapping checks each typed failure surfaces as its
// documented status code with a JSON error body.
func TestHTTPErrorMapping(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	exec, _ := blockingExec(started, release)
	srv, m := httpFixture(t, Config{Queue: 1, Concurrency: 1, execute: exec})
	defer close(release)

	check := func(wantCode int, resp *http.Response, body []byte) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Errorf("status = %d %s, want %d", resp.StatusCode, body, wantCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("error body %s: %v", body, err)
		}
	}

	// 400: malformed body, bad request, per-job cache override.
	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", nil)
	check(http.StatusBadRequest, resp, body)
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"nope"}})
	check(http.StatusBadRequest, resp, body)
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig5"}, CacheDir: "/tmp/x"})
	check(http.StatusBadRequest, resp, body)

	// 404: unknown job, for status, result, and cancel.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-999999"},
		{"GET", "/v1/jobs/job-999999/result"},
		{"DELETE", "/v1/jobs/job-999999"},
	} {
		resp, body = doJSON(t, probe.method, srv.URL+probe.path, nil)
		check(http.StatusNotFound, resp, body)
	}

	// Occupy the worker, fill the queue: 409 while running, then 429.
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig5"}})
	var a Status
	json.Unmarshal(body, &a)
	<-started
	waitState(t, m, a.ID, StateRunning)
	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+a.ID+"/result", nil)
	check(http.StatusConflict, resp, body)
	doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"table3"}})
	resp, body = doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig9"}})
	check(http.StatusTooManyRequests, resp, body)
}

// TestHTTPCancelAndGoneResult cancels a running job over the wire and
// checks DELETE echoes the status and the result reports 410.
func TestHTTPCancelAndGoneResult(t *testing.T) {
	started := make(chan string, 1)
	exec, _ := blockingExec(started, nil)
	srv, m := httpFixture(t, Config{execute: exec})

	_, body := doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig5"}})
	var a Status
	json.Unmarshal(body, &a)
	<-started
	waitState(t, m, a.ID, StateRunning)

	resp, body := doJSON(t, "DELETE", srv.URL+"/v1/jobs/"+a.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	waitState(t, m, a.ID, StateCancelled)
	resp, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+a.ID+"/result", nil)
	if resp.StatusCode != http.StatusGone {
		t.Errorf("result of cancelled job: %d %s, want 410", resp.StatusCode, body)
	}
}

// TestHTTPExperimentsAndMetrics: the registry listing and the
// Prometheus exposition endpoints.
func TestHTTPExperimentsAndMetrics(t *testing.T) {
	exec, _ := blockingExec(nil, nil)
	srv, _ := httpFixture(t, Config{execute: exec})

	resp, body := doJSON(t, "GET", srv.URL+"/v1/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %d", resp.StatusCode)
	}
	var listing struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if err := json.Unmarshal(body, &listing); err != nil || len(listing.Experiments) < 20 {
		t.Fatalf("listing %v: %v", len(listing.Experiments), err)
	}
	found := false
	for _, e := range listing.Experiments {
		if e.ID == "table1" && e.Title != "" {
			found = true
		}
	}
	if !found {
		t.Error("table1 missing from listing")
	}

	resp, body = doJSON(t, "GET", srv.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{"# TYPE service_jobs_submitted counter", "service_jobs_running"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, truncate(text, 400))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestHTTPDrainRefusesSubmits: once a drain begins, the API answers
// 503 to new submissions.
func TestHTTPDrainRefusesSubmits(t *testing.T) {
	release := make(chan struct{})
	close(release)
	exec, _ := blockingExec(nil, release)
	srv, m := httpFixture(t, Config{execute: exec})
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, "POST", srv.URL+"/v1/jobs", Request{Experiments: []string{"fig5"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d %s, want 503", resp.StatusCode, body)
	}
}
