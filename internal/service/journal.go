package service

import (
	"sort"
	"sync"

	"obm/internal/engine"
)

// Journal buffers one job's progress events for cursor-based polling.
// It is the Sink a Manager installs per job: the engine batch runner
// stamps every event with a monotonic per-job Seq (1, 2, 3, … — see
// engine.Sequenced) and forwards them in sequence order, so the journal
// can serve "everything after cursor n" losslessly, however often a
// consumer polls.
//
// The journal does not trust its producer, though: a sink wired without
// engine.Sequenced delivers zero or out-of-order Seq values, and
// cursor math that assumes Seq == slice index + 1 would then silently
// duplicate or skip events. Event therefore re-stamps any incoming Seq
// that is not strictly greater than the last stored one, keeping the
// buffered sequence strictly increasing, and Since locates cursors by
// binary search over Seq rather than by slice position.
//
// The buffer is bounded only by the job's lifetime: upstream Reporter
// throttling caps the event rate (~10/s per concurrent stage), jobs are
// dropped whole at retention expiry, and consumers resume from any
// cursor, so dropping events here would buy little and break the
// no-loss contract.
type Journal struct {
	mu      sync.Mutex
	events  []engine.Progress
	lastSeq uint64
}

// Event implements engine.Sink. Events whose Seq does not strictly
// increase the journal's sequence (zero, duplicate, or out-of-order —
// a sink wired without engine.Sequenced) are re-stamped with the next
// sequence number; correctly sequenced producers pass through
// untouched.
func (j *Journal) Event(p engine.Progress) {
	j.mu.Lock()
	if p.Seq > j.lastSeq {
		j.lastSeq = p.Seq
	} else {
		j.lastSeq++
		p.Seq = j.lastSeq
	}
	j.events = append(j.events, p)
	j.mu.Unlock()
}

// Since returns a copy of every event with Seq > cursor, plus the next
// cursor to poll from (the Seq of the last returned event, or cursor
// itself when nothing new arrived). Cursor 0 returns the full journal.
func (j *Journal) Since(cursor uint64) ([]engine.Progress, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Stored Seq is strictly increasing (Event enforces it), so the
	// first event after the cursor is found by binary search — even
	// when the producer left gaps.
	i := sort.Search(len(j.events), func(k int) bool {
		return j.events[k].Seq > cursor
	})
	if i == len(j.events) {
		return nil, cursor
	}
	out := append([]engine.Progress(nil), j.events[i:]...)
	return out, out[len(out)-1].Seq
}

// Len returns the number of buffered events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}
