package service

import (
	"sync"

	"obm/internal/engine"
)

// Journal buffers one job's progress events for cursor-based polling.
// It is the Sink a Manager installs per job: the engine batch runner
// stamps every event with a monotonic per-job Seq (1, 2, 3, … — see
// engine.Sequenced) and forwards them in sequence order, so the journal
// appends in Seq order and can serve "everything after cursor n" by
// slice position, losslessly, however often a consumer polls.
//
// The buffer is bounded only by the job's lifetime: upstream Reporter
// throttling caps the event rate (~10/s per concurrent stage), jobs are
// dropped whole at retention expiry, and consumers resume from any
// cursor, so dropping events here would buy little and break the
// no-loss contract.
type Journal struct {
	mu     sync.Mutex
	events []engine.Progress
}

// Event implements engine.Sink.
func (j *Journal) Event(p engine.Progress) {
	j.mu.Lock()
	j.events = append(j.events, p)
	j.mu.Unlock()
}

// Since returns a copy of every event with Seq > cursor, plus the next
// cursor to poll from (the Seq of the last returned event, or cursor
// itself when nothing new arrived). Cursor 0 returns the full journal.
func (j *Journal) Since(cursor uint64) ([]engine.Progress, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Seq is gapless from 1 and events arrive in order, so the slice
	// index of the first event after cursor is cursor itself.
	if cursor >= uint64(len(j.events)) {
		return nil, cursor
	}
	out := append([]engine.Progress(nil), j.events[cursor:]...)
	return out, out[len(out)-1].Seq
}

// Len returns the number of buffered events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}
