package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"obm/internal/engine"
)

// blockingExec returns an execute stub that parks each job until
// release is closed (or its context is cancelled), recording which
// requests actually executed. started receives the job's first
// experiment ID the moment it begins running.
func blockingExec(started chan<- string, release <-chan struct{}) (func(context.Context, Request, ExecConfig) (*Outcome, error), func() []string) {
	var mu sync.Mutex
	var ran []string
	exec := func(ctx context.Context, req Request, ec ExecConfig) (*Outcome, error) {
		mu.Lock()
		ran = append(ran, req.Experiments[0])
		mu.Unlock()
		if started != nil {
			started <- req.Experiments[0]
		}
		select {
		case <-release:
			env, err := Envelope(req, nil, nil)
			if err != nil {
				return nil, err
			}
			return &Outcome{Envelope: env}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return exec, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ran...)
	}
}

// waitState polls until the job reaches want (fails the test after 5s).
func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestManagerLifecycleDone(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	exec, _ := blockingExec(started, release)
	m := NewManager(Config{execute: exec})
	defer m.Close()

	st, err := m.Submit(Request{Experiments: []string{"fig5"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submit status = %+v", st)
	}
	<-started
	waitState(t, m, st.ID, StateRunning)
	if _, err := m.Result(st.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("Result while running = %v, want ErrNotFinished", err)
	}
	close(release)
	final := waitState(t, m, st.ID, StateDone)
	if final.Started == nil || final.Finished == nil {
		t.Errorf("terminal status missing timestamps: %+v", final)
	}
	env, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) == 0 {
		t.Error("empty envelope")
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	exec, _ := blockingExec(nil, nil)
	m := NewManager(Config{execute: exec})
	defer m.Close()
	cases := []Request{
		{},                              // no experiments
		{Experiments: []string{"nope"}}, // unknown experiment
		{Experiments: []string{"fig5"}, Objective: "bogus"},       // bad objective
		{Experiments: []string{"fig5"}, Configs: []string{"C99"}}, // unknown config
	}
	for _, req := range cases {
		if _, err := m.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Submit(%+v) err = %v, want ErrBadRequest", req, err)
		}
	}
}

// TestQueueFullTyped fills the single worker and the one-slot queue,
// then checks the next submit is refused with ErrQueueFull (the
// daemon's HTTP 429).
func TestQueueFullTyped(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	exec, _ := blockingExec(started, release)
	m := NewManager(Config{Queue: 1, Concurrency: 1, execute: exec})
	defer func() { close(release); m.Close() }()

	a, err := m.Submit(Request{Experiments: []string{"fig5"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // a occupies the worker; the queue slot is free again
	waitState(t, m, a.ID, StateRunning)
	if _, err := m.Submit(Request{Experiments: []string{"table3"}}); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	_, err = m.Submit(Request{Experiments: []string{"fig9"}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if code := errStatus(err); code != 429 {
		t.Errorf("ErrQueueFull maps to HTTP %d, want 429", code)
	}
}

// TestCancelWhileQueuedNeverStarts is the admission-control half of the
// cancel contract: cancelling a queued job transitions it terminally
// before a worker ever picks it up, and the executor never sees it.
func TestCancelWhileQueuedNeverStarts(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	exec, ran := blockingExec(started, release)
	m := NewManager(Config{Queue: 4, Concurrency: 1, execute: exec})
	defer m.Close()

	a, _ := m.Submit(Request{Experiments: []string{"fig5"}})
	<-started
	waitState(t, m, a.ID, StateRunning)
	b, err := m.Submit(Request{Experiments: []string{"table3"}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(b.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	close(release) // let a finish; the worker then drains the queue
	waitState(t, m, a.ID, StateDone)
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ran() {
		if id == "table3" {
			t.Error("cancelled-while-queued job was executed")
		}
	}
	if _, err := m.Result(b.ID); err == nil || errors.Is(err, ErrNotFinished) {
		t.Errorf("Result of cancelled job = %v, want its cancellation error", err)
	}
}

// TestCancelRunningUnwinds cancels an in-flight job and checks it
// terminates as cancelled via its context.
func TestCancelRunningUnwinds(t *testing.T) {
	started := make(chan string, 1)
	exec, _ := blockingExec(started, nil) // only ctx cancellation releases it
	m := NewManager(Config{execute: exec})
	defer m.Close()

	a, _ := m.Submit(Request{Experiments: []string{"fig5"}})
	<-started
	waitState(t, m, a.ID, StateRunning)
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, a.ID, StateCancelled)
	if st.Error == "" {
		t.Error("cancelled job carries no error")
	}
}

// TestDrainGraceful: in-flight jobs finish, queued jobs are rejected,
// new submits are refused — the SIGTERM contract.
func TestDrainGraceful(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	exec, ran := blockingExec(started, release)
	m := NewManager(Config{Queue: 4, Concurrency: 1, execute: exec})
	defer m.Close()

	a, _ := m.Submit(Request{Experiments: []string{"fig5"}})
	<-started
	waitState(t, m, a.ID, StateRunning)
	b, _ := m.Submit(Request{Experiments: []string{"table3"}})

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()

	// The drain must reject the queued job and refuse new submits
	// while the in-flight job is still running.
	waitState(t, m, b.ID, StateCancelled)
	if st, _ := m.Status(b.ID); st.Error != ErrDraining.Error() {
		t.Errorf("queued job error = %q, want %q", st.Error, ErrDraining)
	}
	if _, err := m.Submit(Request{Experiments: []string{"fig9"}}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := m.Status(a.ID); st.State != StateDone {
		t.Errorf("in-flight job state after drain = %s, want done", st.State)
	}
	if _, err := m.Result(a.ID); err != nil {
		t.Errorf("result unavailable after drain: %v", err)
	}
	for _, id := range ran() {
		if id == "table3" {
			t.Error("drain-rejected job was executed")
		}
	}
}

// TestDrainForcedByContext: when the drain budget expires, in-flight
// jobs are cancelled rather than awaited forever.
func TestDrainForcedByContext(t *testing.T) {
	started := make(chan string, 1)
	exec, _ := blockingExec(started, nil) // never releases voluntarily
	m := NewManager(Config{execute: exec})

	a, _ := m.Submit(Request{Experiments: []string{"fig5"}})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want deadline exceeded", err)
	}
	if st, _ := m.Status(a.ID); st.State != StateCancelled {
		t.Errorf("in-flight job after forced drain = %s, want cancelled", st.State)
	}
}

// TestRetentionExpiry: a finished job's status, events, and result all
// become ErrNotFound once retention passes.
func TestRetentionExpiry(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	release := make(chan struct{})
	close(release) // jobs complete immediately
	exec, _ := blockingExec(nil, release)
	m := NewManager(Config{Retention: time.Hour, now: clock, execute: exec})
	defer m.Close()

	a, err := m.Submit(Request{Experiments: []string{"fig5"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateDone)
	if _, err := m.Result(a.ID); err != nil {
		t.Fatalf("result before expiry: %v", err)
	}

	advance(2 * time.Hour)
	if _, err := m.Status(a.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status after expiry = %v, want ErrNotFound", err)
	}
	if _, err := m.Result(a.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Result after expiry = %v, want ErrNotFound", err)
	}
	if _, _, err := m.Events(a.ID, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Events after expiry = %v, want ErrNotFound", err)
	}
}

// TestEventsCursorResume: a consumer polling with the returned cursor
// sees every journal event exactly once, in Seq order.
func TestEventsCursorResume(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	exec := func(ctx context.Context, req Request, ec ExecConfig) (*Outcome, error) {
		sink := engine.Sequenced(ec.Sink) // what the real engine runner does
		for i := 1; i <= 5; i++ {
			sink.Event(engine.Progress{Stage: "work", Done: i, Total: 5})
		}
		started <- "ok"
		<-release
		sink.Event(engine.Progress{Stage: "work", Done: 5, Total: 5, Final: true})
		env, _ := Envelope(req, nil, nil)
		return &Outcome{Envelope: env}, nil
	}
	m := NewManager(Config{execute: exec})
	defer m.Close()

	a, _ := m.Submit(Request{Experiments: []string{"fig5"}})
	<-started
	evs, next, err := m.Events(a.ID, 0)
	if err != nil || len(evs) != 5 || next != 5 {
		t.Fatalf("first poll: %d events, next %d, err %v; want 5, 5", len(evs), next, err)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d", i, ev.Seq)
		}
	}
	if evs2, next2, _ := m.Events(a.ID, next); len(evs2) != 0 || next2 != next {
		t.Errorf("poll at head returned %d events, next %d", len(evs2), next2)
	}
	close(release)
	waitState(t, m, a.ID, StateDone)
	evs3, next3, _ := m.Events(a.ID, next)
	if len(evs3) != 1 || !evs3[0].Final || next3 != 6 {
		t.Errorf("resumed poll = %+v next %d, want the one Final event and cursor 6", evs3, next3)
	}
}
