package service

import (
	"encoding/json"

	"obm/internal/artifact"
	"obm/internal/obs"
)

// RunSchema tags the result envelope every frontend emits.
const RunSchema = "obmsim.run/v1"

// MetricsSchema tags the optional metrics block embedded in the
// envelope and printed by obmsim -metrics.
const MetricsSchema = "obsim.metrics/v1"

// MetricsBlock is the wire form of a metrics snapshot: the registry
// state tagged with its schema.
type MetricsBlock struct {
	Schema string `json:"schema"`
	obs.Snapshot
}

// NewMetricsBlock tags a snapshot for embedding.
func NewMetricsBlock(s obs.Snapshot) *MetricsBlock {
	return &MetricsBlock{Schema: MetricsSchema, Snapshot: s}
}

// ExperimentEntry is one experiment's slot in the envelope: its ID,
// human title, and the experiment's own typed JSON document.
type ExperimentEntry struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Result json.RawMessage `json:"result"`
}

// envelopeOptions is the envelope's options block: everything a reader
// needs to reproduce the run byte-for-byte. Workers matters because
// Monte-Carlo's sample partition depends on it; seed alone does not pin
// the run. The cache knobs are execution-shape provenance — results
// are bit-identical with or without a disk tier.
type envelopeOptions struct {
	Seed      uint64   `json:"seed"`
	Quick     bool     `json:"quick,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Configs   []string `json:"configs,omitempty"`
	Objective string   `json:"objective,omitempty"`
	CacheDir  string   `json:"cachedir,omitempty"`
	CacheSize int64    `json:"cachesize,omitempty"`
	Stream    string   `json:"stream,omitempty"`
}

// envelopeCache is the envelope's cache block: the artifact encoding
// schema plus the disk tier's configuration when one was requested. It
// deliberately carries no per-run traffic counters — the envelope is a
// pure function of the request and the (content-addressed, therefore
// bit-identical) artifacts, so a cold run, a warm re-run, a CLI
// invocation, and a daemon job all emit identical bytes for the same
// request. Per-run tier traffic is observable through the metrics
// block, obmsim -progress, the daemon's job status, and /metrics.
type envelopeCache struct {
	Dir       string `json:"dir,omitempty"`
	SizeBytes int64  `json:"size_bytes,omitempty"`
	Schema    int    `json:"artifact_schema"`
}

// envelope is the full obmsim.run/v1 document.
type envelope struct {
	Schema      string            `json:"schema"`
	Options     envelopeOptions   `json:"options"`
	Cache       envelopeCache     `json:"cache"`
	Experiments []ExperimentEntry `json:"experiments"`
	Metrics     *MetricsBlock     `json:"metrics,omitempty"`
}

// Envelope assembles the obmsim.run/v1 result document for a request
// and its experiment entries, with a trailing newline, ready to write.
// metrics may be nil (the block is omitted entirely, keeping the
// envelope byte-compatible with consumers that predate it).
//
// This is THE envelope assembly: cmd/obmsim, the daemon, and any other
// frontend call it with the same inputs and get the same bytes.
func Envelope(req Request, entries []ExperimentEntry, metrics *MetricsBlock) ([]byte, error) {
	req = req.Normalized()
	cache := envelopeCache{Schema: artifact.SchemaVersion}
	if req.CacheDir != "" {
		cache.Dir, cache.SizeBytes = req.CacheDir, req.CacheSize
	}
	doc, err := json.MarshalIndent(envelope{
		Schema: RunSchema,
		Options: envelopeOptions{
			Seed:      req.Seed,
			Quick:     req.Quick,
			Workers:   req.Workers,
			Configs:   req.Configs,
			Objective: req.Objective,
			CacheDir:  req.CacheDir,
			CacheSize: req.CacheSize,
			Stream:    req.Stream,
		},
		Cache:       cache,
		Experiments: entries,
		Metrics:     metrics,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
