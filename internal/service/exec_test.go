package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"obm/internal/artifact"
	"obm/internal/engine"
	"obm/internal/scenario"
)

// TestExecuteColdWarmByteIdentical is the service-level acceptance
// property: the envelope is a pure function of the request and the
// artifact contents, so a warm re-execution — every mapper invocation
// served from the shared store — emits byte-identical output while
// computing nothing.
func TestExecuteColdWarmByteIdentical(t *testing.T) {
	scenario.ResetShared()
	t.Cleanup(func() { scenario.ResetShared() })
	req := Request{Experiments: []string{"table1"}, Quick: true, Configs: []string{"C1"}}

	cold, err := Execute(context.Background(), req, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Computed == 0 {
		t.Fatalf("cold run computed nothing: %+v", cold.Stats)
	}
	warm, err := Execute(context.Background(), req, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 || warm.Stats.MemHits == 0 {
		t.Errorf("warm run stats = %+v, want 0 computed and memory hits", warm.Stats)
	}
	if !bytes.Equal(cold.Envelope, warm.Envelope) {
		t.Error("warm envelope differs from cold: envelope is not a pure function of the request")
	}
}

// TestExecuteEnvelopeShape decodes the envelope and checks the schema,
// options echo, and experiment entries.
func TestExecuteEnvelopeShape(t *testing.T) {
	req := Request{Experiments: []string{"fig5", "table3"}, Quick: true, Seed: 7}
	out, err := Execute(context.Background(), req, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Options struct {
			Seed      uint64 `json:"seed"`
			Quick     bool   `json:"quick"`
			CacheSize int64  `json:"cachesize"`
		} `json:"options"`
		Cache struct {
			Schema int `json:"artifact_schema"`
		} `json:"cache"`
		Experiments []ExperimentEntry `json:"experiments"`
	}
	if err := json.Unmarshal(out.Envelope, &doc); err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if doc.Schema != RunSchema {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Options.Seed != 7 || !doc.Options.Quick || doc.Options.CacheSize != DefaultCacheSize {
		t.Errorf("options echo = %+v", doc.Options)
	}
	if doc.Cache.Schema != artifact.SchemaVersion {
		t.Errorf("artifact schema = %d", doc.Cache.Schema)
	}
	if len(doc.Experiments) != 2 || doc.Experiments[0].ID != "fig5" || doc.Experiments[1].ID != "table3" {
		t.Fatalf("entries = %+v", doc.Experiments)
	}
	for _, e := range doc.Experiments {
		if e.Title == "" || !json.Valid(e.Result) {
			t.Errorf("entry %s malformed", e.ID)
		}
	}
}

// TestExecuteStreamsResults checks OnResult receives each result with
// its already-encoded JSON document as it completes.
func TestExecuteStreamsResults(t *testing.T) {
	var streamed []string
	req := Request{Experiments: []string{"fig5", "table3"}, Quick: true}
	_, err := Execute(context.Background(), req, ExecConfig{
		OnResult: func(res engine.Result, raw json.RawMessage) {
			if res.Err == nil && !json.Valid(raw) {
				t.Errorf("%s raw document invalid", res.Name)
			}
			streamed = append(streamed, res.Name)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 2 || streamed[0] != "fig5" || streamed[1] != "table3" {
		t.Errorf("streamed = %v", streamed)
	}
}

// TestExecuteMetricsBlock: the Metrics option embeds an
// obsim.metrics/v1 block; off omits the key entirely.
func TestExecuteMetricsBlock(t *testing.T) {
	req := Request{Experiments: []string{"fig5"}, Quick: true}
	out, err := Execute(context.Background(), req, ExecConfig{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.Envelope, &doc); err != nil {
		t.Fatal(err)
	}
	var mb MetricsBlock
	if err := json.Unmarshal(doc["metrics"], &mb); err != nil || mb.Schema != MetricsSchema {
		t.Errorf("metrics block = %+v, %v", mb, err)
	}

	out, err = Execute(context.Background(), req, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	doc = nil
	if err := json.Unmarshal(out.Envelope, &doc); err != nil {
		t.Fatal(err)
	}
	if _, present := doc["metrics"]; present {
		t.Error("metrics block present without the option")
	}
}

// TestResolveBadRequests: every malformed request resolves to a typed
// ErrBadRequest before any work runs.
func TestResolveBadRequests(t *testing.T) {
	cases := []Request{
		{},
		{Experiments: []string{"nope"}},
		{Experiments: []string{"fig5", "bogus"}},
		{Experiments: []string{"fig5"}, Objective: "nonsense"},
		{Experiments: []string{"fig5"}, Configs: []string{"C99"}},
	}
	for _, req := range cases {
		if _, _, err := req.Resolve(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Resolve(%+v) = %v, want ErrBadRequest", req, err)
		}
	}
	if _, runners, err := (Request{Experiments: []string{"all"}}).Resolve(); err != nil || len(runners) < 20 {
		t.Errorf("all: %d runners, %v", len(runners), err)
	}
}

// TestExecuteCancelKeepsPartial: an interrupted batch keeps the
// completed prefix in the envelope, the CLI's partial-results contract.
func TestExecuteCancelKeepsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	req := Request{Experiments: []string{"fig5", "fig11"}, Quick: false}
	var seen int
	out, err := Execute(ctx, req, ExecConfig{
		OnResult: func(res engine.Result, raw json.RawMessage) {
			seen++
			if seen == 1 {
				cancel() // fig5 done; kill the batch before fig11 finishes
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if len(out.Entries) != 1 || out.Entries[0].ID != "fig5" {
		t.Fatalf("partial entries = %+v", out.Entries)
	}
	var doc struct {
		Experiments []ExperimentEntry `json:"experiments"`
	}
	if err := json.Unmarshal(out.Envelope, &doc); err != nil || len(doc.Experiments) != 1 {
		t.Errorf("partial envelope: %v, %d entries", err, len(doc.Experiments))
	}
}
