package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"obm/internal/artifact"
	"obm/internal/engine"
	"obm/internal/obs"
)

// State is a job's position in the submit → queued → running →
// (done | failed | cancelled) lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: executing on a worker.
	StateRunning State = "running"
	// StateDone: finished successfully; the result envelope is
	// available until retention expiry.
	StateDone State = "done"
	// StateFailed: finished with an error (experiment failure, panic,
	// deadline).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client before or during
	// execution, or rejected from the queue by a drain.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Typed lifecycle errors. Transports map these onto their own status
// codes (the HTTP handler: 429, 503, 404, 409).
var (
	// ErrQueueFull rejects a submit when the admission queue is at
	// capacity.
	ErrQueueFull = errors.New("admission queue full")
	// ErrDraining rejects submits (and fails queued jobs) once a drain
	// has begun.
	ErrDraining = errors.New("service draining")
	// ErrNotFound names an unknown — or retention-expired — job ID.
	ErrNotFound = errors.New("job not found")
	// ErrNotFinished rejects a result fetch while the job is still
	// queued or running.
	ErrNotFinished = errors.New("job not finished")
)

// Config tunes a Manager. The zero value is usable: queue 64, one
// worker, one hour of result retention.
type Config struct {
	// Queue bounds the admission queue (jobs admitted but not yet
	// running); <= 0 means the default 64.
	Queue int
	// Concurrency is the number of jobs running at once; <= 0 means 1.
	// Note per-job artifact stats are exact deltas only at concurrency
	// 1 (jobs overlapping in the process share the one store).
	Concurrency int
	// Retention is how long finished jobs (state, journal, result) stay
	// fetchable; 0 means the default hour, < 0 retains forever.
	Retention time.Duration

	// now is the test clock hook; nil means time.Now.
	now func() time.Time
	// execute is the test execution hook; nil means Execute.
	execute func(context.Context, Request, ExecConfig) (*Outcome, error)
}

// DefaultQueue and DefaultRetention are Config's zero-value defaults.
const (
	DefaultQueue     = 64
	DefaultRetention = time.Hour
)

// Status is a job's externally visible state: the daemon returns it
// from GET /v1/jobs/{id} (and POST/DELETE echo it).
type Status struct {
	ID      string    `json:"id"`
	State   State     `json:"state"`
	Request Request   `json:"request"`
	Created time.Time `json:"created"`
	// Started/Finished are nil until the job reaches that point.
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Error carries the failure (or cancellation reason) for terminal
	// non-done states.
	Error string `json:"error,omitempty"`
	// Artifacts is the job's artifact-store traffic delta, set once the
	// job finishes: a warm re-submit of a cached scenario shows
	// Computed 0 here.
	Artifacts *artifact.Stats `json:"artifacts,omitempty"`
	// Events is the journal length — the highest progress Seq so far,
	// i.e. the cursor at which a poll would currently find nothing new.
	Events uint64 `json:"events"`
}

// job is the Manager's internal record.
type job struct {
	id       string
	req      Request
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	outcome  *Outcome
	journal  *Journal

	cancel          context.CancelFunc // set while running
	cancelRequested bool
}

// Manager owns the job lifecycle for a long-running host: a bounded
// admission queue feeding a fixed worker pool, per-job progress
// journals, cancellation, result retention, and graceful drain. All
// methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	now     func() time.Time
	execute func(context.Context, Request, ExecConfig) (*Outcome, error)

	rootCtx    context.Context
	cancelRoot context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   uint64
	draining bool

	// metrics
	submitted, rejected, completed, failed, cancelled *obs.Counter
	queued, running                                   *obs.Gauge
	jobTimer                                          *obs.Timer
}

// NewManager starts a manager with cfg's queue bound, worker count,
// and retention. Stop it with Drain (graceful) or Close (prompt).
func NewManager(cfg Config) *Manager {
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Retention == 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.execute == nil {
		cfg.execute = Execute
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.Default()
	m := &Manager{
		cfg:        cfg,
		now:        cfg.now,
		execute:    cfg.execute,
		rootCtx:    ctx,
		cancelRoot: cancel,
		queue:      make(chan *job, cfg.Queue),
		jobs:       make(map[string]*job),
		submitted:  reg.Counter("service.jobs.submitted"),
		rejected:   reg.Counter("service.jobs.rejected"),
		completed:  reg.Counter("service.jobs.completed"),
		failed:     reg.Counter("service.jobs.failed"),
		cancelled:  reg.Counter("service.jobs.cancelled"),
		queued:     reg.Gauge("service.jobs.queued"),
		running:    reg.Gauge("service.jobs.running"),
		jobTimer:   reg.Timer("service.job.seconds"),
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates req, admits it to the queue, and returns the new
// job's status. Typed failures: ErrBadRequest (resolution), ErrDraining
// (shutdown begun), ErrQueueFull (admission queue at capacity).
// Validation is synchronous, so a bad request never occupies a queue
// slot.
func (m *Manager) Submit(req Request) (Status, error) {
	req = req.Normalized()
	if _, _, err := req.Resolve(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if m.draining {
		return Status{}, ErrDraining
	}
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.nextID),
		req:     req,
		state:   StateQueued,
		created: m.now(),
		journal: &Journal{},
	}
	select {
	case m.queue <- j:
	default:
		m.nextID-- // ID not spent: the job was never admitted
		m.rejected.Inc()
		return Status{}, fmt.Errorf("%w (capacity %d)", ErrQueueFull, m.cfg.Queue)
	}
	m.jobs[j.id] = j
	m.submitted.Inc()
	m.queued.Add(1)
	return m.statusLocked(j), nil
}

// Status returns a job's current status; ErrNotFound for unknown or
// retention-expired IDs.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return m.statusLocked(j), nil
}

// Events returns a copy of the job's progress events with Seq > cursor
// and the cursor to poll from next. A consumer that stores the returned
// cursor between polls sees every event exactly once, in order.
func (m *Manager) Events(id string, cursor uint64) ([]engine.Progress, uint64, error) {
	m.mu.Lock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, cursor, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	evs, next := j.journal.Since(cursor)
	return evs, next, nil
}

// Result returns the finished job's obmsim.run/v1 envelope.
// ErrNotFound for unknown/expired IDs, ErrNotFinished while the job is
// queued or running, and the job's own error for failed or cancelled
// jobs.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch {
	case !j.state.Terminal():
		return nil, fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	case j.state != StateDone:
		return nil, fmt.Errorf("job %s %s: %w", id, j.state, j.err)
	}
	return j.outcome.Envelope, nil
}

// Cancel requests cancellation: a queued job never starts (its state
// becomes cancelled immediately), a running job's context is cancelled
// and the job unwinds promptly through the engine's cancellation
// plumbing, and a terminal job is left as-is. Returns the resulting
// status.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = errors.New("cancelled while queued")
		j.finished = m.now()
		m.queued.Add(-1)
		m.cancelled.Inc()
	case StateRunning:
		j.cancelRequested = true
		j.cancel()
	}
	return m.statusLocked(j), nil
}

// Drain begins graceful shutdown: new submits are refused with
// ErrDraining, jobs still waiting in the queue are cancelled without
// starting, and in-flight jobs run to completion. Drain blocks until
// the workers have finished; if ctx expires first, the in-flight jobs
// are cancelled and Drain returns ctx.Err() after they unwind.
// Idempotent: later calls just wait.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		for _, j := range m.jobs {
			if j.state == StateQueued {
				j.state = StateCancelled
				j.err = ErrDraining
				j.finished = m.now()
				m.queued.Add(-1)
				m.cancelled.Inc()
			}
		}
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancelRoot()
		<-done
		return ctx.Err()
	}
}

// Close shuts down promptly: cancels every in-flight job and drains.
func (m *Manager) Close() {
	m.cancelRoot()
	m.Drain(context.Background())
}

// worker consumes the queue until drained.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		ctx, ok := m.start(j)
		if !ok {
			continue // cancelled while queued
		}
		m.run(ctx, j)
	}
}

// start transitions a dequeued job to running; false when the job was
// cancelled while queued.
func (m *Manager) start(j *job) (context.Context, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != StateQueued {
		return nil, false
	}
	ctx, cancel := context.WithCancel(m.rootCtx)
	j.state = StateRunning
	j.started = m.now()
	j.cancel = cancel
	m.queued.Add(-1)
	m.running.Add(1)
	return ctx, true
}

// run executes one job and records its terminal state.
func (m *Manager) run(ctx context.Context, j *job) {
	out, err := m.execute(ctx, j.req, ExecConfig{Sink: j.journal})

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel()
	j.finished = m.now()
	j.outcome = out
	j.err = err
	switch {
	case err == nil:
		j.state = StateDone
		m.completed.Inc()
	case j.cancelRequested || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		m.cancelled.Inc()
	default:
		j.state = StateFailed
		m.failed.Inc()
	}
	m.running.Add(-1)
	m.jobTimer.Observe(j.finished.Sub(j.started))
}

// statusLocked builds the external view; callers hold m.mu.
func (m *Manager) statusLocked(j *job) Status {
	s := Status{
		ID:      j.id,
		State:   j.state,
		Request: j.req,
		Created: j.created,
		Events:  uint64(j.journal.Len()),
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.state.Terminal() && j.outcome != nil {
		stats := j.outcome.Stats
		s.Artifacts = &stats
	}
	return s
}

// sweepLocked drops terminal jobs past their retention; callers hold
// m.mu. Lazy sweeping on every lookup/submit keeps expiry deterministic
// under an injected test clock — no background janitor to race with.
func (m *Manager) sweepLocked() {
	if m.cfg.Retention < 0 {
		return
	}
	now := m.now()
	for id, j := range m.jobs {
		if j.state.Terminal() && now.Sub(j.finished) > m.cfg.Retention {
			delete(m.jobs, id)
		}
	}
}
