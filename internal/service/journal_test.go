package service

import (
	"testing"

	"obm/internal/engine"
)

func TestJournalSinceSequenced(t *testing.T) {
	j := &Journal{}
	for i := 1; i <= 5; i++ {
		j.Event(engine.Progress{Seq: uint64(i), Stage: "s"})
	}
	all, cur := j.Since(0)
	if len(all) != 5 || cur != 5 {
		t.Fatalf("Since(0) = %d events, cursor %d; want 5, 5", len(all), cur)
	}
	rest, cur := j.Since(3)
	if len(rest) != 2 || rest[0].Seq != 4 || cur != 5 {
		t.Fatalf("Since(3) = %+v, cursor %d; want seqs 4..5, cursor 5", rest, cur)
	}
	none, cur := j.Since(5)
	if len(none) != 0 || cur != 5 {
		t.Fatalf("Since(5) = %d events, cursor %d; want 0, 5", len(none), cur)
	}
}

// TestJournalUnsequencedSink: a sink wired without engine.Sequenced
// delivers Seq 0 (or repeated/out-of-order values). The journal must
// re-stamp those so cursor polling still sees every event exactly once
// — the old index-by-cursor math silently replayed the whole buffer
// forever (cursor never advanced past 0).
func TestJournalUnsequencedSink(t *testing.T) {
	j := &Journal{}
	stages := []string{"a", "b", "c", "d"}
	for _, s := range stages {
		j.Event(engine.Progress{Stage: s}) // Seq 0: unsequenced producer
	}
	var got []string
	cursor := uint64(0)
	for {
		evs, next := j.Since(cursor)
		if len(evs) == 0 {
			break
		}
		for _, e := range evs {
			got = append(got, e.Stage)
		}
		if next <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		cursor = next
	}
	if len(got) != len(stages) {
		t.Fatalf("polled %d events %v, want %d exactly once", len(got), got, len(stages))
	}
	for i, s := range stages {
		if got[i] != s {
			t.Fatalf("event %d = %q, want %q (order must be preserved)", i, got[i], s)
		}
	}
}

// TestJournalOutOfOrderSeq: duplicate and regressing Seq values are
// re-stamped to keep the stored sequence strictly increasing.
func TestJournalOutOfOrderSeq(t *testing.T) {
	j := &Journal{}
	for _, seq := range []uint64{1, 1, 5, 3, 6} {
		j.Event(engine.Progress{Seq: seq})
	}
	evs, cur := j.Since(0)
	if len(evs) != 5 {
		t.Fatalf("stored %d events, want 5", len(evs))
	}
	prev := uint64(0)
	for i, e := range evs {
		if e.Seq <= prev {
			t.Fatalf("event %d Seq %d not strictly increasing after %d", i, e.Seq, prev)
		}
		prev = e.Seq
	}
	if cur != prev {
		t.Fatalf("cursor %d != last Seq %d", cur, prev)
	}
	// After re-stamping the stored Seq values are 1,2,5,6,7; a cursor
	// that matches no stored Seq must neither duplicate nor skip.
	tail, _ := j.Since(4)
	if len(tail) != 3 || tail[0].Seq != 5 {
		t.Fatalf("Since(4) = %+v, want seqs 5,6,7", tail)
	}
}

// TestJournalSeqGaps: a producer with gaps in Seq (e.g. a Throttled
// sink upstream of Sequenced... or events filtered before the journal)
// must still poll correctly by Seq, not by slice index.
func TestJournalSeqGaps(t *testing.T) {
	j := &Journal{}
	for _, seq := range []uint64{10, 20, 30} {
		j.Event(engine.Progress{Seq: seq})
	}
	evs, cur := j.Since(10)
	if len(evs) != 2 || evs[0].Seq != 20 || cur != 30 {
		t.Fatalf("Since(10) = %+v cursor %d, want seqs 20,30 cursor 30", evs, cur)
	}
	// A cursor inside a gap returns the next event after it.
	evs, _ = j.Since(15)
	if len(evs) != 2 || evs[0].Seq != 20 {
		t.Fatalf("Since(15) = %+v, want seqs 20,30", evs)
	}
	// The old implementation indexed the slice by cursor: Since(10)
	// would have skipped everything (10 >= len(3)). Guard the regression
	// the other way too: a large cursor past the end returns nothing.
	evs, cur = j.Since(99)
	if len(evs) != 0 || cur != 99 {
		t.Fatalf("Since(99) = %+v cursor %d, want empty, 99", evs, cur)
	}
}
