package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"obm/internal/artifact"
	"obm/internal/engine"
	"obm/internal/experiments"
	"obm/internal/obs"
	"obm/internal/scenario"
)

// ExecConfig tunes one Execute call. The zero value runs silently with
// no deadline and no metrics block.
type ExecConfig struct {
	// Timeout bounds the whole run; 0 means no deadline beyond ctx.
	Timeout time.Duration
	// Sink, when non-nil, receives the run's progress events (the
	// engine Runner wraps it in a per-run sequencer, so events arrive
	// with monotonic Seq).
	Sink engine.Sink
	// OnResult, when non-nil, streams each experiment's result as soon
	// as it completes — successes and failures both. raw is the
	// experiment's JSON document on success (nil on failure), so
	// streaming consumers never re-encode.
	OnResult func(res engine.Result, raw json.RawMessage)
	// Metrics embeds an obs.Default() snapshot (taken after the run) in
	// the envelope. Process-global and cumulative: meaningful for a
	// one-shot host like cmd/obmsim, deliberately off for daemon jobs,
	// whose envelopes must not depend on what ran before them.
	Metrics bool
}

// Outcome is everything one Execute produced.
type Outcome struct {
	// Entries holds the successful experiments' envelope slots, in
	// execution order.
	Entries []ExperimentEntry
	// Results holds every engine result that ran, including failures.
	Results []engine.Result
	// Envelope is the assembled obmsim.run/v1 document over Entries.
	Envelope []byte
	// Metrics is the snapshot embedded in the envelope when
	// ExecConfig.Metrics was set (nil otherwise). Callers that also
	// print the metrics render this block, so the printed table and the
	// envelope can never disagree.
	Metrics *MetricsBlock
	// Stats is the artifact-store traffic this run generated: the delta
	// of the shared store's counters across the run. Exact when runs
	// don't overlap in the process (the CLI, or a Manager with
	// Concurrency 1); an approximation when they do.
	Stats artifact.Stats
}

// Execute runs a request's experiments under ctx and assembles the
// result envelope. It is the one execution path behind every frontend:
// resolve the request, run the experiments through the engine batch
// runner (streaming each result to cfg.OnResult), collect the
// successful results' JSON documents, and build the envelope.
//
// The returned error is the batch error (first experiment failure, or
// a ctx.Err()-wrapped interruption) joined with any result-encoding
// failure; the Outcome is returned alongside it, so callers keep the
// completed prefix of an interrupted run — exactly the partial-results
// contract cmd/obmsim has always had.
func Execute(ctx context.Context, req Request, cfg ExecConfig) (*Outcome, error) {
	req = req.Normalized()
	opts, runners, err := req.Resolve()
	if err != nil {
		return nil, err
	}

	jobs := make([]engine.Job, len(runners))
	titles := make(map[string]string, len(runners))
	for i, r := range runners {
		r := r
		titles[r.ID()] = r.Title()
		jobs[i] = engine.Job{
			Name: r.ID(),
			Run:  func(ctx context.Context) (any, error) { return r.Run(ctx, opts) },
		}
	}

	out := &Outcome{}
	var encodeErr error
	before := scenario.Shared().StoreStats()
	runner := engine.Runner{
		Timeout: cfg.Timeout,
		Sink:    cfg.Sink,
		OnResult: func(res engine.Result) {
			var raw json.RawMessage
			if res.Err == nil && encodeErr == nil {
				r := res.Value.(experiments.Result)
				var jerr error
				raw, jerr = r.JSON()
				if jerr != nil {
					encodeErr = fmt.Errorf("service: encoding %s result: %w", res.Name, jerr)
				} else {
					out.Entries = append(out.Entries, ExperimentEntry{ID: res.Name, Title: titles[res.Name], Result: raw})
				}
			}
			if cfg.OnResult != nil {
				cfg.OnResult(res, raw)
			}
		},
	}
	results, runErr := runner.Run(ctx, jobs)
	out.Results = results
	out.Stats = statsDelta(before, scenario.Shared().StoreStats())

	if cfg.Metrics {
		out.Metrics = NewMetricsBlock(obs.Default().Snapshot())
	}
	env, envErr := Envelope(req, out.Entries, out.Metrics)
	out.Envelope = env

	switch {
	case runErr != nil:
		return out, runErr
	case encodeErr != nil:
		return out, encodeErr
	case envErr != nil:
		return out, envErr
	}
	return out, nil
}

// statsDelta subtracts the counter fields of two store-stats readings;
// occupancy fields (entries, bytes) keep the after-reading since they
// are levels, not counters.
func statsDelta(before, after artifact.Stats) artifact.Stats {
	return artifact.Stats{
		MemHits:       after.MemHits - before.MemHits,
		DiskHits:      after.DiskHits - before.DiskHits,
		Computed:      after.Computed - before.Computed,
		Bypass:        after.Bypass - before.Bypass,
		DiskEvictions: after.DiskEvictions - before.DiskEvictions,
		DiskCorrupt:   after.DiskCorrupt - before.DiskCorrupt,
		DiskEntries:   after.DiskEntries,
		DiskBytes:     after.DiskBytes,
	}
}
