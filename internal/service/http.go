package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"obm/internal/engine"
	"obm/internal/obs"
)

// Handler exposes a Manager over HTTP/JSON — the daemon's API surface:
//
//	POST   /v1/jobs           submit a Request, returns 202 + Status
//	GET    /v1/jobs/{id}      Status + progress events (?cursor=N)
//	GET    /v1/jobs/{id}/result  the obmsim.run/v1 envelope
//	DELETE /v1/jobs/{id}      cancel, returns the resulting Status
//	GET    /v1/experiments    the experiment registry listing
//	GET    /metrics           reg's snapshot, Prometheus text format
//
// Error mapping: ErrBadRequest → 400, ErrNotFound → 404, ErrQueueFull
// → 429, ErrDraining → 503, ErrNotFinished → 409, failed/cancelled
// result fetch → 500/410. Error bodies are {"error": "..."} JSON.
func Handler(m *Manager, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
			return
		}
		if req.CacheDir != "" || req.CacheSize != 0 {
			// The artifact disk tier is attached once at daemon startup
			// (-cachedir); accepting a per-job override here would record a
			// tier in the envelope that the process never used.
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: cachedir/cachesize are configured at daemon startup, not per job", ErrBadRequest))
			return
		}
		st, err := m.Submit(req)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, err := m.Status(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		var cursor uint64
		if c := r.URL.Query().Get("cursor"); c != "" {
			v, perr := strconv.ParseUint(c, 10, 64)
			if perr != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q: %w", c, perr))
				return
			}
			cursor = v
		}
		evs, next, err := m.Events(id, cursor)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, statusResponse{Status: st, Events: wireEvents(evs), NextCursor: next})
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		env, err := m.Result(id)
		if err != nil {
			code := errStatus(err)
			if code == http.StatusInternalServerError {
				// Distinguish "the job was cancelled" from "the job failed".
				if st, serr := m.Status(id); serr == nil && st.State == StateCancelled {
					code = http.StatusGone
				}
			}
			writeError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(env)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Experiments []ExperimentInfo `json:"experiments"`
		}{Experiments()})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, reg.Snapshot())
	})

	return mux
}

// statusResponse is GET /v1/jobs/{id}'s body: the status plus the
// progress events after the request's cursor ("progress", so the
// status's own "events" journal-length field keeps its name) and the
// cursor to poll from next.
type statusResponse struct {
	Status
	Events     []wireEvent `json:"progress"`
	NextCursor uint64      `json:"next_cursor"`
}

// wireEvent is engine.Progress in stable snake_case wire form.
type wireEvent struct {
	Seq       uint64  `json:"seq"`
	Stage     string  `json:"stage"`
	Done      int     `json:"done"`
	Total     int     `json:"total,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Skipped   bool    `json:"skipped,omitempty"`
	Final     bool    `json:"final,omitempty"`
}

func wireEvents(evs []engine.Progress) []wireEvent {
	out := make([]wireEvent, len(evs))
	for i, p := range evs {
		out[i] = wireEvent{
			Seq:       p.Seq,
			Stage:     p.Stage,
			Done:      p.Done,
			Total:     p.Total,
			ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond),
			Skipped:   p.Skipped,
			Final:     p.Final,
		}
	}
	return out
}

// errStatus maps the service's typed errors onto HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFinished):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
