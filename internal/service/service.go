// Package service is the transport-agnostic job layer between the
// execution substrates (engine, experiments, scenario, artifact, obs)
// and whatever frontend drives them. It owns three things every
// frontend used to hand-roll:
//
//   - Request: the one serializable description of a run — which
//     experiments, quick or full budgets, seed, config subset,
//     objective, workers, cache knobs — mirroring experiments.Options
//     field for field, with fail-fast resolution into runners;
//   - Execute + Envelope: the shared execution path that turns a
//     Request into the obmsim.run/v1 result envelope. Every frontend
//     goes through the same assembly, so a daemon job, a CLI run, and
//     any future transport emit byte-identical envelopes for the same
//     request (the envelope is a pure function of the request and the
//     artifact contents — per-run cache traffic lives in metrics, not
//     in the envelope);
//   - Manager: the submit → queued → running → (done | failed |
//     cancelled) job lifecycle for long-running hosts — per-job IDs, a
//     bounded admission queue with a concurrency limit, a sequenced
//     per-job progress journal consumers poll by cursor, cancellation,
//     result retention, and graceful drain.
//
// cmd/obmsim is a thin synchronous client of Execute; cmd/obmsimd
// fronts a Manager with the HTTP/JSON API in Handler.
package service

import (
	"errors"
	"fmt"
	"strings"

	"obm/internal/core"
	"obm/internal/experiments"
)

// ErrBadRequest wraps every request-resolution failure (unknown
// experiment, malformed objective, unknown config, empty experiment
// list), so transports can map the whole class onto one status code
// (HTTP 400) while the message stays specific.
var ErrBadRequest = errors.New("bad request")

// DefaultCacheSize is the disk-tier byte budget applied when a request
// leaves CacheSize zero — the same 256 MiB default cmd/obmsim has
// always used, now defined once for every frontend.
const DefaultCacheSize int64 = 256 << 20

// Request is the transport-neutral description of one run: the JSON
// body of the daemon's POST /v1/jobs, and what cmd/obmsim assembles
// from its flags. Fields mirror experiments.Options; the JSON names
// match the envelope's options block, so a stored request and the
// envelope it produced read the same way.
type Request struct {
	// Experiments lists experiment IDs (see experiments.All); the
	// single element "all" expands to every registered experiment.
	Experiments []string `json:"experiments"`
	// Quick selects the smaller CI sample budgets.
	Quick bool `json:"quick,omitempty"`
	// Seed is the base random seed; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Configs restricts the C1..C8 workload subset; empty keeps each
	// experiment's paper-default set.
	Configs []string `json:"configs,omitempty"`
	// Objective names the optimization objective for the optimizing
	// mappers ("" or "max", "dev", "global", "ratio",
	// "weighted:max=1,dev=2").
	Objective string `json:"objective,omitempty"`
	// Workers shards the parallel mappers and the NoC step engine: 0
	// serial, -1 all cores. Results are bit-identical for any value.
	Workers int `json:"workers,omitempty"`
	// CacheDir roots the persistent artifact disk tier. Attaching the
	// tier is the host's job (cmd/obmsim does it per run; the daemon
	// once at startup and rejects per-job overrides) — the field here
	// records provenance in the envelope's options block.
	CacheDir string `json:"cachedir,omitempty"`
	// CacheSize bounds the disk tier in bytes; 0 means
	// DefaultCacheSize, <0 unbounded.
	CacheSize int64 `json:"cachesize,omitempty"`
	// Stream overrides the dynstream timeline generator's load shape
	// ("load=0.8,maxthreads=24"; see sched.GenConfig.WithOverrides).
	// "" keeps the documented defaults.
	Stream string `json:"stream,omitempty"`
}

// Normalized returns the request with defaults applied: Seed 0 becomes
// 1 and CacheSize 0 becomes DefaultCacheSize. Every execution and
// envelope path normalizes first, so a request omitting a knob and one
// spelling out the default produce identical envelopes.
func (r Request) Normalized() Request {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.CacheSize == 0 {
		r.CacheSize = DefaultCacheSize
	}
	return r
}

// Options resolves the request into experiments.Options without
// touching the experiment registry. Most callers want Resolve, which
// also resolves and validates the runner list.
func (r Request) Options() (experiments.Options, error) {
	r = r.Normalized()
	opts := experiments.Options{
		Quick:     r.Quick,
		Seed:      r.Seed,
		Workers:   r.Workers,
		CacheDir:  r.CacheDir,
		CacheSize: r.CacheSize,
		Stream:    r.Stream,
	}
	if len(r.Configs) > 0 {
		opts.Configs = append([]string(nil), r.Configs...)
	}
	if r.Objective != "" {
		obj, err := core.ParseObjective(r.Objective)
		if err != nil {
			return experiments.Options{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts.Objective = obj
	}
	if err := opts.Validate(); err != nil {
		return experiments.Options{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return opts, nil
}

// Resolve validates the whole request and returns the resolved options
// together with the runners, in execution order. All failures wrap
// ErrBadRequest and happen before any work runs.
func (r Request) Resolve() (experiments.Options, []experiments.Runner, error) {
	opts, err := r.Options()
	if err != nil {
		return experiments.Options{}, nil, err
	}
	if len(r.Experiments) == 0 {
		return experiments.Options{}, nil, fmt.Errorf("%w: no experiments requested", ErrBadRequest)
	}
	if len(r.Experiments) == 1 && r.Experiments[0] == "all" {
		return opts, experiments.All(), nil
	}
	runners := make([]experiments.Runner, 0, len(r.Experiments))
	for _, id := range r.Experiments {
		runner, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			return experiments.Options{}, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		runners = append(runners, runner)
	}
	return opts, runners, nil
}

// ExperimentInfo describes one registered experiment for listings
// (obmsim -list, GET /v1/experiments).
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Experiments lists every registered experiment in ID order.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, r := range all {
		out[i] = ExperimentInfo{ID: r.ID(), Title: r.Title()}
	}
	return out
}
