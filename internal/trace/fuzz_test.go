package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the binary trace parser: arbitrary input must
// either parse into a consistent trace or fail cleanly — never panic,
// never return out-of-range events.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid trace and near-valid mutations.
	h := Header{Name: "seed", Threads: 4, Cycles: 100}
	events := []Event{
		{Cycle: 1, Thread: 0, Kind: CacheAccess},
		{Cycle: 7, Thread: 3, Kind: MemAccess},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h, events); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OBM1"))
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, events, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must satisfy the format invariants.
		if h.Threads <= 0 || h.Cycles == 0 {
			t.Fatalf("invalid header accepted: %+v", h)
		}
		var prev uint64
		for i, e := range events {
			if int(e.Thread) >= h.Threads {
				t.Fatalf("event %d thread out of range", i)
			}
			if e.Kind > MemAccess {
				t.Fatalf("event %d bad kind", i)
			}
			if e.Cycle < prev {
				t.Fatalf("event %d out of order", i)
			}
			prev = e.Cycle
		}
		// Round trip: rewriting what we parsed must succeed and re-read
		// identically.
		var out bytes.Buffer
		if err := WriteBinary(&out, h, events); err != nil {
			t.Fatalf("rewrite of parsed trace failed: %v", err)
		}
		h2, ev2, err := ReadBinary(&out)
		if err != nil || h2 != h || len(ev2) != len(events) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzReadJSON hardens the JSON trace parser the same way.
func FuzzReadJSON(f *testing.F) {
	h := Header{Name: "seed", Threads: 2, Cycles: 10}
	events := []Event{{Cycle: 1, Thread: 1, Kind: CacheAccess}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, h, events); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"name":"x","threads":-1,"cycles":0}`)

	f.Fuzz(func(t *testing.T, data string) {
		h, _, err := ReadJSON(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if h.Threads <= 0 || h.Cycles == 0 {
			t.Fatalf("invalid header accepted: %+v", h)
		}
	})
}
