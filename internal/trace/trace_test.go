package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"obm/internal/workload"
)

func sampleTrace() (Header, []Event) {
	h := Header{Name: "t", Threads: 4, Cycles: 100}
	events := []Event{
		{Cycle: 0, Thread: 0, Kind: CacheAccess},
		{Cycle: 3, Thread: 1, Kind: MemAccess},
		{Cycle: 3, Thread: 2, Kind: CacheAccess},
		{Cycle: 99, Thread: 3, Kind: CacheAccess},
	}
	return h, events
}

func TestKindString(t *testing.T) {
	if CacheAccess.String() != "cache" || MemAccess.String() != "mem" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestHeaderValidate(t *testing.T) {
	if err := (Header{Threads: 1, Cycles: 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Header{Threads: 0, Cycles: 1}).Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	if err := (Header{Threads: 1, Cycles: 0}).Validate(); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h, events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	h2, ev2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header %+v != %+v", h2, h)
	}
	if len(ev2) != len(events) {
		t.Fatalf("got %d events", len(ev2))
	}
	for i := range events {
		if ev2[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, ev2[i], events[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	h, events := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	h2, ev2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h || len(ev2) != len(events) {
		t.Fatalf("round trip mismatch: %+v, %d events", h2, len(ev2))
	}
	for i := range events {
		if ev2[i] != events[i] {
			t.Errorf("event %d mismatch", i)
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	w := workload.MustConfig("C1")
	h, events, err := Generate(w, 5000, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var jbuf, bbuf bytes.Buffer
	if err := WriteJSON(&jbuf, h, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, h, events); err != nil {
		t.Fatal(err)
	}
	if bbuf.Len() >= jbuf.Len()/3 {
		t.Errorf("binary (%d B) should be well under a third of JSON (%d B)", bbuf.Len(), jbuf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, _, err := ReadBinary(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Valid magic, truncated afterwards.
	if _, _, err := ReadBinary(strings.NewReader("OBM1")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestWriteBinaryRejectsUnordered(t *testing.T) {
	h := Header{Name: "x", Threads: 2, Cycles: 10}
	events := []Event{{Cycle: 5, Thread: 0}, {Cycle: 3, Thread: 1}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h, events); err == nil {
		t.Error("out-of-order events accepted")
	}
}

func TestReadBinaryRejectsBadThread(t *testing.T) {
	h := Header{Name: "x", Threads: 1, Cycles: 10}
	events := []Event{{Cycle: 1, Thread: 5, Kind: CacheAccess}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBinary(&buf); err == nil {
		t.Error("out-of-range thread accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	w := workload.MustConfig("C2")
	if _, _, err := Generate(w, 0, 2000, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, _, err := Generate(w, 100, 0, 1); err == nil {
		t.Error("zero rate unit accepted")
	}
	if _, _, err := Generate(&workload.Workload{}, 100, 2000, 1); err == nil {
		t.Error("invalid workload accepted")
	}
}

// TestGenerateRatesRoundTrip: rates recovered from a generated trace
// converge to the workload's rates.
func TestGenerateRatesRoundTrip(t *testing.T) {
	w := workload.MustConfig("C1")
	const cycles = 400_000
	h, events, err := Generate(w, cycles, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cache, mem, err := Rates(h, events, 2000)
	if err != nil {
		t.Fatal(err)
	}
	wc, wm := w.CacheRates(), w.MemRates()
	var totGot, totWant float64
	for j := range wc {
		totGot += cache[j] + mem[j]
		totWant += wc[j] + wm[j]
	}
	if rel := math.Abs(totGot-totWant) / totWant; rel > 0.05 {
		t.Errorf("total recovered rate off by %.1f%%", rel*100)
	}
	// Hot threads recover accurately.
	for j := range wc {
		if wc[j] > 5 {
			if rel := math.Abs(cache[j]-wc[j]) / wc[j]; rel > 0.2 {
				t.Errorf("thread %d cache rate %.3f vs workload %.3f", j, cache[j], wc[j])
			}
		}
	}
}

func TestRatesValidation(t *testing.T) {
	h, events := sampleTrace()
	if _, _, err := Rates(h, events, 0); err == nil {
		t.Error("zero rate unit accepted")
	}
	bad := []Event{{Cycle: 1, Thread: 99, Kind: CacheAccess}}
	if _, _, err := Rates(h, bad, 2000); err == nil {
		t.Error("out-of-range thread accepted")
	}
	badKind := []Event{{Cycle: 1, Thread: 0, Kind: Kind(7)}}
	if _, _, err := Rates(h, badKind, 2000); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEventsSortedFromGenerate(t *testing.T) {
	w := workload.MustConfig("C3")
	_, events, err := Generate(w, 2000, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatal("events not sorted by cycle")
		}
	}
}
