// Package trace defines the on-disk trace format for CMP communication
// events — the role PARSEC traces gathered under Simics play for the
// paper. Traces record, per event, the issuing thread, the cycle, and
// the request kind; rates derived from a trace feed the OBM problem the
// same way the paper derives (c_j, m_j) from its traces.
//
// Two encodings are supported: a human-greppable JSON-lines form and a
// compact binary form (varint deltas), both self-describing via a
// header record.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"obm/internal/stats"
	"obm/internal/workload"
)

// Kind distinguishes the two request types of the OBM model.
type Kind uint8

// Event kinds.
const (
	// CacheAccess is a shared-L2 request (counts toward c_j).
	CacheAccess Kind = iota
	// MemAccess is a memory-controller request (counts toward m_j).
	MemAccess
)

func (k Kind) String() string {
	switch k {
	case CacheAccess:
		return "cache"
	case MemAccess:
		return "mem"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one communication event.
type Event struct {
	// Cycle is the issue time.
	Cycle uint64 `json:"cycle"`
	// Thread is the flattened thread index.
	Thread uint32 `json:"thread"`
	// Kind is the request type.
	Kind Kind `json:"kind"`
}

// Header describes a trace.
type Header struct {
	// Name labels the workload.
	Name string `json:"name"`
	// Threads is the thread count.
	Threads int `json:"threads"`
	// Cycles is the trace duration.
	Cycles uint64 `json:"cycles"`
}

// Validate reports an error for malformed headers.
func (h Header) Validate() error {
	if h.Threads <= 0 {
		return fmt.Errorf("trace: non-positive thread count %d", h.Threads)
	}
	if h.Cycles == 0 {
		return fmt.Errorf("trace: zero-cycle trace")
	}
	return nil
}

// magic prefixes binary traces.
var magic = [4]byte{'O', 'B', 'M', '1'}

// WriteJSON writes header plus events as JSON lines.
func WriteJSON(w io.Writer, h Header, events []Event) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON reads a JSON-lines trace.
func ReadJSON(r io.Reader) (Header, []Event, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if err := h.Validate(); err != nil {
		return Header{}, nil, err
	}
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return Header{}, nil, fmt.Errorf("trace: reading event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
	return h, events, nil
}

// WriteBinary writes the compact binary form: magic, JSON header line,
// then per event varint(cycle delta), varint(thread), byte(kind).
func WriteBinary(w io.Writer, h Header, events []Event) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hdr))); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	var prev uint64
	for i := range events {
		e := &events[i]
		if e.Cycle < prev {
			return fmt.Errorf("trace: events out of order at %d (cycle %d after %d)", i, e.Cycle, prev)
		}
		n := binary.PutUvarint(buf[:], e.Cycle-prev)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = e.Cycle
		n = binary.PutUvarint(buf[:], uint64(e.Thread))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the compact binary form.
func ReadBinary(r io.Reader) (Header, []Event, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return Header{}, nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return Header{}, nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return Header{}, nil, err
	}
	if hlen > 1<<20 {
		return Header{}, nil, fmt.Errorf("trace: implausible header length %d", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return Header{}, nil, err
	}
	var h Header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return Header{}, nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if err := h.Validate(); err != nil {
		return Header{}, nil, err
	}
	var events []Event
	var cycle uint64
	for {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return Header{}, nil, err
		}
		cycle += delta
		thread, err := binary.ReadUvarint(br)
		if err != nil {
			return Header{}, nil, fmt.Errorf("trace: truncated event %d: %w", len(events), err)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return Header{}, nil, fmt.Errorf("trace: truncated event %d: %w", len(events), err)
		}
		if Kind(kind) > MemAccess {
			return Header{}, nil, fmt.Errorf("trace: unknown kind %d in event %d", kind, len(events))
		}
		if thread >= uint64(h.Threads) {
			return Header{}, nil, fmt.Errorf("trace: thread %d out of range in event %d", thread, len(events))
		}
		events = append(events, Event{Cycle: cycle, Thread: uint32(thread), Kind: Kind(kind)})
	}
	return h, events, nil
}

// Generate synthesizes a trace from a workload: each thread emits cache
// and memory events as Bernoulli processes at its (c_j, m_j) rates,
// interpreted as requests per rateUnit cycles.
func Generate(w *workload.Workload, cycles uint64, rateUnit float64, seed uint64) (Header, []Event, error) {
	if err := w.Validate(); err != nil {
		return Header{}, nil, err
	}
	if cycles == 0 || rateUnit <= 0 {
		return Header{}, nil, fmt.Errorf("trace: need positive cycles and rate unit")
	}
	rng := stats.NewRand(seed)
	cr := w.CacheRates()
	mr := w.MemRates()
	h := Header{Name: w.Name, Threads: w.NumThreads(), Cycles: cycles}
	var events []Event
	for cyc := uint64(0); cyc < cycles; cyc++ {
		for j := range cr {
			if cr[j] > 0 && rng.Float64() < cr[j]/rateUnit {
				events = append(events, Event{Cycle: cyc, Thread: uint32(j), Kind: CacheAccess})
			}
			if mr[j] > 0 && rng.Float64() < mr[j]/rateUnit {
				events = append(events, Event{Cycle: cyc, Thread: uint32(j), Kind: MemAccess})
			}
		}
	}
	return h, events, nil
}

// Rates recovers per-thread (cache, mem) request rates from a trace, in
// requests per rateUnit cycles — the inverse of Generate, and the
// operation a runtime mapper performs on observed statistics
// (Section IV.B's dynamic remapping).
func Rates(h Header, events []Event, rateUnit float64) (cache, mem []float64, err error) {
	if err := h.Validate(); err != nil {
		return nil, nil, err
	}
	if rateUnit <= 0 {
		return nil, nil, fmt.Errorf("trace: need positive rate unit")
	}
	cache = make([]float64, h.Threads)
	mem = make([]float64, h.Threads)
	for i, e := range events {
		if int(e.Thread) >= h.Threads {
			return nil, nil, fmt.Errorf("trace: event %d thread %d out of range", i, e.Thread)
		}
		switch e.Kind {
		case CacheAccess:
			cache[e.Thread]++
		case MemAccess:
			mem[e.Thread]++
		default:
			return nil, nil, fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
	}
	scale := rateUnit / float64(h.Cycles)
	for j := range cache {
		cache[j] *= scale
		mem[j] *= scale
	}
	return cache, mem, nil
}
