package trace_test

import (
	"bytes"
	"fmt"

	"obm/internal/trace"
	"obm/internal/workload"
)

// Generate a trace from a workload, write it in the compact binary
// format, read it back and recover the per-thread request rates — the
// runtime-statistics loop of the paper's Section IV.B.
func Example() {
	w := workload.MustConfig("C1")
	h, events, err := trace.Generate(w, 50_000, 2000, 1)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, h, events); err != nil {
		panic(err)
	}
	h2, ev2, err := trace.ReadBinary(&buf)
	if err != nil {
		panic(err)
	}
	cache, _, err := trace.Rates(h2, ev2, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Println("threads:", h2.Threads)
	fmt.Println("events recovered:", len(ev2) == len(events))
	var sum float64
	for _, c := range cache {
		sum += c
	}
	// True total cache rate is ~448 (64 threads x mean 7.008).
	fmt.Println("total cache rate plausible:", sum > 400 && sum < 500)
	// Output:
	// threads: 64
	// events recovered: true
	// total cache rate plausible: true
}
