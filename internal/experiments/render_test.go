package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func csvRow(cells ...string) string {
	var sb strings.Builder
	writeCSVRow(&sb, cells)
	return sb.String()
}

func TestWriteCSVRowQuoting(t *testing.T) {
	cases := []struct {
		name  string
		cells []string
		want  string
	}{
		{"plain", []string{"a", "b", "c"}, "a,b,c\n"},
		{"empty cells", []string{"", "x", ""}, ",x,\n"},
		{"comma", []string{"a,b", "c"}, "\"a,b\",c\n"},
		{"quote doubled", []string{`say "hi"`}, "\"say \"\"hi\"\"\"\n"},
		{"newline", []string{"two\nlines", "y"}, "\"two\nlines\",y\n"},
		{"all at once", []string{"a,\"b\"\nc"}, "\"a,\"\"b\"\"\nc\"\n"},
		{"no cells", nil, "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := csvRow(tc.cells...); got != tc.want {
				t.Errorf("writeCSVRow(%q) = %q, want %q", tc.cells, got, tc.want)
			}
		})
	}
}

func TestRenderGridShapes(t *testing.T) {
	if got := renderGrid("empty", nil); got != "empty\n" {
		t.Errorf("empty grid = %q", got)
	}
	if got := renderGrid("", nil); got != "" {
		t.Errorf("untitled empty grid = %q", got)
	}
	// Ragged rows render as-is: each row on its own line, no padding.
	got := renderGrid("ragged", [][]int{{1}, {2, 3, 4}})
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("ragged grid lines = %q", lines)
	}
	if lines[1] != "   1 " || lines[2] != "   2  3  4 " {
		t.Errorf("ragged rows rendered as %q, %q", lines[1], lines[2])
	}
}

func TestRenderHeatmapShapes(t *testing.T) {
	// Empty input still emits the title and a (degenerate) range line
	// rather than panicking.
	got := renderHeatmap("empty", nil, "")
	if !strings.HasPrefix(got, "empty\n") || !strings.Contains(got, "range") {
		t.Errorf("empty heatmap = %q", got)
	}
	// A uniform field has mx == mn; every cell must use the lowest ramp
	// shade instead of dividing by zero.
	got = renderHeatmap("", [][]float64{{2, 2}, {2, 2}}, "")
	if strings.ContainsAny(got, "@#%") {
		t.Errorf("uniform field should use the low end of the ramp: %q", got)
	}
	if !strings.Contains(got, "(range 2.00 .. 2.00 cycles)") {
		t.Errorf("range line wrong: %q", got)
	}
	// Ragged rows keep per-row lengths; extremes land on ramp extremes.
	got = renderHeatmap("r", [][]float64{{0}, {1, 100}}, "")
	if !strings.Contains(got, "@@") {
		t.Errorf("max value should map to the densest shade: %q", got)
	}
	if !strings.Contains(got, "(range 0.00 .. 100.00 cycles)") {
		t.Errorf("ragged range: %q", got)
	}
}

func TestDocVisibility(t *testing.T) {
	tb := newTable("T", "h")
	tb.addRow("v")
	d := newDoc().
		add(tb).
		renderOnly(Note("render-note\n")).
		csvOnly(&Table{Title: "flat", Headers: []string{"x"}, Rows: [][]string{{"1"}}})
	r, c := d.Render(), d.CSV()
	if !strings.Contains(r, "render-note") || strings.Contains(c, "render-note") {
		t.Errorf("render-only note leaked: render=%q csv=%q", r, c)
	}
	if strings.Contains(r, "flat") || !strings.Contains(c, "x\n1\n") {
		t.Errorf("csv-only table leaked: render=%q csv=%q", r, c)
	}
	// JSON carries everything regardless of visibility.
	doc := d.Document()
	if len(doc.Blocks) != 3 {
		t.Fatalf("JSON should carry all blocks, got %d", len(doc.Blocks))
	}
	kinds := []string{doc.Blocks[0].Kind, doc.Blocks[1].Kind, doc.Blocks[2].Kind}
	if kinds[0] != "table" || kinds[1] != "note" || kinds[2] != "table" {
		t.Errorf("block kinds = %v", kinds)
	}
}

// TestJSONRoundTrip marshals a document covering every block kind,
// parses it back, and re-marshals: the bytes must be identical, proving
// the schema survives encoding/json unchanged.
func TestJSONRoundTrip(t *testing.T) {
	tb := newTable("T", "a", "b")
	tb.Units = "cycles"
	tb.addRow("1", "x,y")
	d := newDoc().
		add(tb).
		renderOnly(&Grid{Title: "G", Cells: [][]int{{1, 2}, {3, 4}}}).
		renderOnly(&Heatmap{Title: "H", Values: [][]float64{{0.5, 1.25}}, Unit: "cycles"}).
		renderOnly(&Series{Title: "S", Labels: []string{"a"}, Values: []float64{3.5}, Unit: "W"}).
		notef("note %d\n", 7)

	first, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Document
	if err := json.Unmarshal(first, &parsed); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if parsed.Schema != SchemaVersion {
		t.Errorf("schema = %q", parsed.Schema)
	}
	second, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip changed bytes:\n first: %s\nsecond: %s", first, second)
	}

	// multi results emit an array of part documents.
	raw, err := multi{parts: []Result{text("x"), d}}.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parts []Document
	if err := json.Unmarshal(raw, &parts); err != nil {
		t.Fatalf("multi JSON: %v", err)
	}
	if len(parts) != 2 || parts[0].Blocks[0].Kind != "text" || parts[1].Schema != SchemaVersion {
		t.Errorf("multi parts = %+v", parts)
	}
}

// TestEveryExperimentJSONValid runs each registered experiment in quick
// mode and checks JSON() emits a parseable document (or document array)
// tagged with the schema.
func TestEveryExperimentJSONValid(t *testing.T) {
	if testing.Short() {
		t.Skip("even quick mode simulates; skip under -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID(), func(t *testing.T) {
			res, err := r.Run(t.Context(), quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			raw, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !json.Valid(raw) {
				t.Fatalf("invalid JSON: %s", raw)
			}
			if !strings.Contains(string(raw), SchemaVersion) {
				t.Errorf("missing schema tag: %s", raw[:min(len(raw), 120)])
			}
		})
	}
}
