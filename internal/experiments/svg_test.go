package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestFigurersProduceSVG: every experiment result that implements
// Figurer emits non-empty, svg-prefixed documents with sane names.
func TestFigurersProduceSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments; skip under -short")
	}
	figurers := []string{"fig3", "fig4", "fig8", "fig9", "fig10", "fig12", "loadsweep"}
	for _, id := range figurers {
		r, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background(), quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fig, ok := res.(Figurer)
		if !ok {
			t.Errorf("%s result does not implement Figurer", id)
			continue
		}
		figs := fig.SVGFigures()
		if len(figs) == 0 {
			t.Errorf("%s produced no figures", id)
		}
		for stem, svg := range figs {
			if stem == "" || strings.ContainsAny(stem, " /\\") {
				t.Errorf("%s: bad figure stem %q", id, stem)
			}
			if !bytes.HasPrefix(svg, []byte("<svg ")) {
				t.Errorf("%s/%s: output does not start with <svg", id, stem)
			}
			if !bytes.HasSuffix(bytes.TrimSpace(svg), []byte("</svg>")) {
				t.Errorf("%s/%s: output not closed", id, stem)
			}
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Figure 9: max-APL (cycles)": "figure-9-max-apl-cycles",
		"ALL CAPS":                   "all-caps",
		"--weird--":                  "weird",
		"":                           "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
	long := slugify(strings.Repeat("abc ", 40))
	if len(long) > 48 {
		t.Errorf("slug too long: %d", len(long))
	}
}
