package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/stats"
	"obm/internal/workload"
)

func init() { register(extSeeds{}) }

// extSeeds is the reproduction-robustness experiment: the paper's
// headline numbers come from one set of traces; ours come from one set
// of synthetic workloads. This experiment regenerates the eight
// configurations under many independent seeds (same Table 3 moment
// targets) and reports the distribution of the headline metrics, so the
// reproduction is not an artifact of one lucky draw.
type extSeeds struct{}

func (extSeeds) ID() string { return "seeds" }
func (extSeeds) Title() string {
	return "Extension: headline metrics across workload regeneration seeds"
}

// SeedsResult summarizes per-seed headline metrics.
type SeedsResult struct {
	Seeds int
	// MaxAPLRedux[i] is seed i's average SSS-vs-Global max-APL reduction
	// (percent); DevRedux likewise for dev-APL; GAPLOver for g-APL
	// overhead.
	MaxAPLRedux, DevRedux, GAPLOver []float64
}

func (e extSeeds) Run(ctx context.Context, o Options) (Result, error) {
	seeds := 10
	if o.Quick {
		seeds = 4
	}
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	res := &SeedsResult{Seeds: seeds}
	for s := 0; s < seeds; s++ {
		var maxR, devR, gO float64
		type acc struct{ gMax, sMax, gDev, sDev, gG, sG float64 }
		var sums acc
		results := make([]acc, len(cfgs))
		err := parallelConfigs(ctx, cfgs, func(ci int, cfg string) error {
			target := workload.Table3[cfg]
			w, err := workload.Generate(workload.GenSpec{
				Name: fmt.Sprintf("%s-seed%d", cfg, s), NumApps: 4, ThreadsPer: 16,
				Cache: target.Cache, Mem: target.Mem,
				Seed: sp.Seed + uint64(s)*7919 + uint64(ci)*104729 + 1000,
			})
			if err != nil {
				return err
			}
			p, err := core.NewProblem(paperModel(), w)
			if err != nil {
				return err
			}
			_, evG, err := mapEval(ctx, p, mapping.Global{})
			if err != nil {
				return err
			}
			_, evS, err := mapEval(ctx, p, mapping.SortSelectSwap{})
			if err != nil {
				return err
			}
			results[ci] = acc{evG.MaxAPL, evS.MaxAPL, evG.DevAPL, evS.DevAPL, evG.GlobalAPL, evS.GlobalAPL}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			sums.gMax += r.gMax
			sums.sMax += r.sMax
			sums.gDev += r.gDev
			sums.sDev += r.sDev
			sums.gG += r.gG
			sums.sG += r.sG
		}
		maxR = 100 * (sums.gMax - sums.sMax) / sums.gMax
		devR = 100 * (sums.gDev - sums.sDev) / sums.gDev
		gO = 100 * (sums.sG - sums.gG) / sums.gG
		res.MaxAPLRedux = append(res.MaxAPLRedux, maxR)
		res.DevRedux = append(res.DevRedux, devR)
		res.GAPLOver = append(res.GAPLOver, gO)
	}
	return res, nil
}

func (r *SeedsResult) table() *Table {
	t := newTable(fmt.Sprintf("Headline metrics over %d workload regenerations (percent)", r.Seeds),
		"Metric", "mean", "std", "min", "max", "(paper)")
	row := func(name string, xs []float64, paper string) {
		t.addRow(name,
			fmt.Sprintf("%.2f", stats.Mean(xs)),
			fmt.Sprintf("%.2f", stats.StdDev(xs)),
			fmt.Sprintf("%.2f", stats.MustMin(xs)),
			fmt.Sprintf("%.2f", stats.MustMax(xs)),
			paper)
	}
	row("SSS max-APL reduction vs Global", r.MaxAPLRedux, "10.42")
	row("SSS dev-APL reduction vs Global", r.DevRedux, "99.65")
	row("SSS g-APL overhead vs Global", r.GAPLOver, "<3.82")
	return t
}

func (r *SeedsResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(every regeneration keeps the same Table 3 moments; the spread shows how\n" +
			" much of the headline is workload luck vs structure — structure dominates)\n"))
}

// Render implements Result.
func (r *SeedsResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *SeedsResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *SeedsResult) JSON() ([]byte, error) { return r.doc().JSON() }
