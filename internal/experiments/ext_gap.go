package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/workload"
)

func init() { register(extGap{}) }

// extGap is an extension experiment: how close does each heuristic get
// to the (NP-complete) optimum? An exact solve is infeasible at N=64,
// so the yardstick is the Hungarian-relaxation lower bound of
// core.LowerBound, which the exact-solver tests certify as valid.
type extGap struct{}

func (extGap) ID() string { return "gap" }
func (extGap) Title() string {
	return "Extension: optimality gap of the heuristics vs the Hungarian lower bound"
}

// GapResult holds per-config bounds and per-mapper objective values.
type GapResult struct {
	Configs []string
	Bounds  []float64
	Mappers []string
	// Obj[m][c] is mapper m's max-APL on config c.
	Obj [][]float64
}

func (g extGap) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	mappers := append(sp.StandardMappers(),
		mapping.Greedy{},
		mapping.BalancedGreedy{},
		mapping.ClusterSA{Seed: sp.Seed + 21},
	)
	res := &GapResult{Configs: cfgs}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	res.Obj = make([][]float64, len(mappers))
	for mi := range res.Obj {
		res.Obj[mi] = make([]float64, len(cfgs))
	}
	for ci, cfg := range cfgs {
		p, err := problemFor(cfg)
		if err != nil {
			return nil, err
		}
		lb, err := p.LowerBound()
		if err != nil {
			return nil, err
		}
		res.Bounds = append(res.Bounds, lb)
		for mi, m := range mappers {
			_, ev, err := mapEval(ctx, p, m)
			if err != nil {
				return nil, err
			}
			res.Obj[mi][ci] = ev.MaxAPL
		}
	}
	return res, nil
}

// gap returns mapper mi's average gap above the bound, in percent.
func (r *GapResult) gap(mi int) float64 {
	var s float64
	for ci := range r.Configs {
		s += 100 * (r.Obj[mi][ci] - r.Bounds[ci]) / r.Bounds[ci]
	}
	return s / float64(len(r.Configs))
}

func (r *GapResult) table() *Table {
	headers := append([]string{"Mapper"}, r.Configs...)
	headers = append(headers, "avg gap %")
	t := newTable("Optimality gap: max-APL over the Hungarian lower bound (percent)", headers...)
	for mi, name := range r.Mappers {
		cells := []string{name}
		for ci := range r.Configs {
			cells = append(cells, fmt.Sprintf("%.2f", 100*(r.Obj[mi][ci]-r.Bounds[ci])/r.Bounds[ci]))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.gap(mi)))
		t.addRow(cells...)
	}
	bounds := []string{"(bound, cycles)"}
	for _, b := range r.Bounds {
		bounds = append(bounds, fmt.Sprintf("%.2f", b))
	}
	bounds = append(bounds, "")
	t.addRow(bounds...)
	return t
}

func (r *GapResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(the bound is max of per-app unconstrained optima and the optimal g-APL;\n" +
			" the true optimum lies between the bound and the best heuristic)\n"))
}

// Render implements Result.
func (r *GapResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *GapResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *GapResult) JSON() ([]byte, error) { return r.doc().JSON() }
