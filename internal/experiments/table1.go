package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/stats"
)

func init() { register(table1{}) }

// table1 reproduces Table 1 of the paper: how global-latency
// optimization exacerbates the imbalance between applications. For each
// configuration it reports the average g-APL, max-APL and dev-APL over
// many random mappings against the Global mapper's values.
type table1 struct{}

func (table1) ID() string { return "table1" }
func (table1) Title() string {
	return "Table 1: imbalance exacerbation by global optimization"
}

// Table1Row holds one configuration's comparison.
type Table1Row struct {
	Config                   string
	RandGAPL, GlobalGAPL     float64
	RandMaxAPL, GlobalMaxAPL float64
	RandDevAPL, GlobalDevAPL float64
}

// Table1Result is the full table with averages.
type Table1Result struct {
	Rows []Table1Row
	Avg  Table1Row
}

func (t table1) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1", "C2", "C3", "C4")
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, cfg := range sp.Configs {
		p, err := problemFor(cfg)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Config: cfg}
		rng := stats.NewRand(sp.Seed + 100)
		draws := sp.Budget.RandomDraws
		for i := 0; i < draws; i++ {
			ev := p.Evaluate(core.RandomMapping(p.N(), rng))
			row.RandGAPL += ev.GlobalAPL
			row.RandMaxAPL += ev.MaxAPL
			row.RandDevAPL += ev.DevAPL
		}
		row.RandGAPL /= float64(draws)
		row.RandMaxAPL /= float64(draws)
		row.RandDevAPL /= float64(draws)

		_, ev, err := mapEval(ctx, p, mapping.Global{})
		if err != nil {
			return nil, err
		}
		row.GlobalGAPL = ev.GlobalAPL
		row.GlobalMaxAPL = ev.MaxAPL
		row.GlobalDevAPL = ev.DevAPL
		res.Rows = append(res.Rows, row)

		res.Avg.RandGAPL += row.RandGAPL
		res.Avg.RandMaxAPL += row.RandMaxAPL
		res.Avg.RandDevAPL += row.RandDevAPL
		res.Avg.GlobalGAPL += row.GlobalGAPL
		res.Avg.GlobalMaxAPL += row.GlobalMaxAPL
		res.Avg.GlobalDevAPL += row.GlobalDevAPL
	}
	n := float64(len(res.Rows))
	res.Avg.Config = "Avg"
	res.Avg.RandGAPL /= n
	res.Avg.RandMaxAPL /= n
	res.Avg.RandDevAPL /= n
	res.Avg.GlobalGAPL /= n
	res.Avg.GlobalMaxAPL /= n
	res.Avg.GlobalDevAPL /= n
	return res, nil
}

func (r *Table1Result) table() *Table {
	t := newTable("Table 1: imbalance exacerbation by global optimization (cycles)",
		"Config", "g-APL rand", "g-APL Global", "max-APL rand", "max-APL Global", "dev-APL rand", "dev-APL Global")
	t.Units = "cycles"
	emit := func(row Table1Row) {
		t.addRow(row.Config,
			fmt.Sprintf("%.2f", row.RandGAPL), fmt.Sprintf("%.2f", row.GlobalGAPL),
			fmt.Sprintf("%.2f", row.RandMaxAPL), fmt.Sprintf("%.2f", row.GlobalMaxAPL),
			fmt.Sprintf("%.3f", row.RandDevAPL), fmt.Sprintf("%.3f", row.GlobalDevAPL))
	}
	for _, row := range r.Rows {
		emit(row)
	}
	emit(r.Avg)
	return t
}

func (r *Table1Result) doc() *Doc {
	d := newDoc().add(r.table())
	d.notef("\nGlobal vs random: g-APL %+.2f%%, max-APL %+.2f%%, dev-APL x%.2f\n",
		100*(r.Avg.GlobalGAPL-r.Avg.RandGAPL)/r.Avg.RandGAPL,
		100*(r.Avg.GlobalMaxAPL-r.Avg.RandMaxAPL)/r.Avg.RandMaxAPL,
		r.Avg.GlobalDevAPL/r.Avg.RandDevAPL)
	d.renderOnly(Note("(paper: -4.78% g-APL, +9.85% max-APL, ~3.4x dev-APL)\n"))
	return d
}

// Render implements Result.
func (r *Table1Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Table1Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Table1Result) JSON() ([]byte, error) { return r.doc().JSON() }
