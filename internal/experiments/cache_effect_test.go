package experiments

import (
	"context"
	"sync/atomic"
	"testing"

	"obm/internal/engine"
	"obm/internal/scenario"
)

// TestSharedCacheDeduplicatesMapperWork is the refactor's effectiveness
// proof: running the mapper-heavy paper experiments back to back must
// invoke each (problem, mapper) pair once — strictly fewer mapper runs
// than requests — with every repeat surfacing as a skipped progress
// event. A warm re-run of one experiment must then be all hits.
func TestSharedCacheDeduplicatesMapperWork(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real mappers; skip under -short")
	}
	scenario.ResetShared()
	t.Cleanup(func() { scenario.ResetShared() })

	var skipped atomic.Int64
	ctx := engine.WithSink(context.Background(), engine.SinkFunc(func(p engine.Progress) {
		if p.Skipped {
			skipped.Add(1)
		}
	}))

	// table4, fig9 and fig10 all evaluate the same four standard mappers
	// on the same eight configurations; table1 adds Global on four of
	// them. Before the scenario cache that was 4*8*3 + 4 = 100 mapper
	// runs; now the 32 distinct artifacts are computed once and reused.
	for _, id := range []string{"table1", "table4", "fig9", "fig10"} {
		r, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(ctx, quickOpts()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}

	hits, misses := scenario.Shared().Stats()
	total := hits + misses
	if total == 0 {
		t.Fatal("experiments made no cache requests; mapEval not wired?")
	}
	if misses >= total {
		t.Fatalf("no deduplication: %d mapper runs for %d requests", misses, total)
	}
	if misses != 32 {
		t.Errorf("distinct (problem, mapper) artifacts = %d, want 32", misses)
	}
	if hits != total-32 {
		t.Errorf("hits = %d, want %d", hits, total-32)
	}
	if got := skipped.Load(); got != int64(hits) {
		t.Errorf("skipped progress events = %d, want one per cache hit (%d)", got, hits)
	}

	// Warm re-run: everything is served from the cache, nothing recomputed.
	r, err := Get("table4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, quickOpts()); err != nil {
		t.Fatal(err)
	}
	_, misses2 := scenario.Shared().Stats()
	if misses2 != misses {
		t.Errorf("warm re-run recomputed %d artifacts; want 0", misses2-misses)
	}
}
