package experiments

import (
	"context"
	"fmt"
	"math"

	"obm/internal/core"
	"obm/internal/obs"
	"obm/internal/power"
)

func init() { register(extPareto{}) }

// Front-shape metrics, recorded per configuration. Like every obs
// metric they are observability only — never rendered into a result,
// so envelopes stay deterministic whatever the registry has seen.
var (
	mFrontSize = obs.Default().Histogram("pareto.front.size", []float64{1, 2, 4, 8, 16, 32, 64})
	mFrontHV   = obs.Default().Histogram("pareto.front.hypervolume", []float64{1, 1e2, 1e4, 1e6, 1e8, 1e10})
)

// extPareto is the multi-objective experiment: NSGA-II evolves a
// Pareto front over the {max-APL, dev-APL, energy} vector objective
// for each configuration, and the result renders the whole trade-off
// surface — every non-dominated mapping with its three costs — plus
// the knee member's placement grid and per-tile energy field. Every
// front flows through the scenario cache under a vector-objective-
// qualified fingerprint, so warm runs recompute nothing.
type extPareto struct{}

func (extPareto) ID() string { return "pareto" }
func (extPareto) Title() string {
	return "Extension: NSGA-II Pareto fronts over {max-APL, dev-APL, energy}"
}

// ParetoFrontRow is one non-dominated mapping of a front: its vector
// costs in objective order, the g-APL read off the same mapping for
// reference, and whether it is the front's knee.
type ParetoFrontRow struct {
	MaxAPL    float64
	DevAPL    float64
	EnergyPJ  float64
	GlobalAPL float64
	Knee      bool
}

// ParetoConfig is one configuration's front with its summary
// geometry: the exact hypervolume under a deterministic reference
// point (componentwise front maximum scaled by 1.05), the knee
// member's application placement, and its per-tile energy field.
type ParetoConfig struct {
	Config      string
	Rows        []ParetoFrontRow
	Hypervolume float64
	KneeGrid    [][]int
	KneeEnergy  [][]float64
}

// ParetoResult is the full experiment output.
type ParetoResult struct {
	Mapper     string
	Objectives string
	Configs    []ParetoConfig
}

func (e extPareto) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1", "C2")
	if err != nil {
		return nil, err
	}
	sm := sp.ParetoMapper()
	res := &ParetoResult{
		Mapper:     sm.Name(),
		Objectives: sm.Vector().Name(),
		Configs:    make([]ParetoConfig, len(sp.Configs)),
	}
	err = parallelConfigs(ctx, sp.Configs, func(ci int, cfg string) error {
		p, err := problemFor(cfg)
		if err != nil {
			return err
		}
		front, err := mapEvalSet(ctx, p, sm)
		if err != nil {
			return fmt.Errorf("pareto front on %s: %w", cfg, err)
		}
		knee := kneeIndex(front)
		pc := ParetoConfig{
			Config:      cfg,
			Rows:        make([]ParetoFrontRow, front.Len()),
			Hypervolume: frontHypervolume(front),
			KneeGrid:    p.AppGrid(front.Members[knee].Mapping),
			KneeEnergy:  tileEnergyField(p, front.Members[knee].Mapping),
		}
		for i, m := range front.Members {
			pc.Rows[i] = ParetoFrontRow{
				MaxAPL:    m.Vector[0],
				DevAPL:    m.Vector[1],
				EnergyPJ:  m.Vector[2],
				GlobalAPL: p.Evaluate(m.Mapping).GlobalAPL,
				Knee:      i == knee,
			}
		}
		mFrontSize.Observe(float64(front.Len()))
		mFrontHV.Observe(pc.Hypervolume)
		res.Configs[ci] = pc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// kneeIndex returns the front member closest (normalized L2) to the
// ideal point — the componentwise minimum over the front. Components
// with zero spread contribute nothing; canonical order makes the
// first minimizer the deterministic winner under ties.
func kneeIndex(front core.ParetoSet) int {
	if front.Len() == 0 {
		return 0
	}
	dim := len(front.Members[0].Vector)
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, front.Members[0].Vector)
	copy(hi, front.Members[0].Vector)
	for _, m := range front.Members[1:] {
		for d, v := range m.Vector {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	best, bestDist := 0, math.Inf(1)
	for i, m := range front.Members {
		var dist float64
		for d, v := range m.Vector {
			if spread := hi[d] - lo[d]; spread > 0 {
				z := (v - lo[d]) / spread
				dist += z * z
			}
		}
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// frontHypervolume scores the front against the deterministic
// reference point ref = componentwise maximum x 1.05, so the boundary
// members contribute volume too.
func frontHypervolume(front core.ParetoSet) float64 {
	if front.Len() == 0 {
		return 0
	}
	dim := len(front.Members[0].Vector)
	ref := make([]float64, dim)
	points := make([][]float64, front.Len())
	for i, m := range front.Members {
		points[i] = m.Vector
		for d, v := range m.Vector {
			ref[d] = math.Max(ref[d], v)
		}
	}
	for d := range ref {
		ref[d] *= 1.05
	}
	return core.Hypervolume(points, ref)
}

// tileEnergyField lays the mapping's dynamic NoC energy out per tile:
// each thread contributes its rate-weighted hop volume — recovered
// from its analytic cost exactly as core.Energy does in aggregate —
// priced at the default 45nm per-flit-hop energy, accumulated on the
// tile hosting it. Summed over tiles this is core.Energy up to the
// bounded controller-tile clamp documented there.
func tileEnergyField(p *core.Problem, m core.Mapping) [][]float64 {
	msh := p.Model().Mesh()
	out := make([][]float64, msh.Rows())
	for r := range out {
		out[r] = make([]float64, msh.Cols())
	}
	mp := p.Model().Params()
	perHop := mp.PerHop()
	if perHop <= 0 {
		return out
	}
	n := float64(p.N())
	pw := power.Default45nm()
	for j := 0; j < p.N(); j++ {
		offset := mp.TdS * (p.CacheRate(j)*(n-1)/n + p.MemRate(j))
		hops := (p.ThreadCost(j, m[j]) - offset) / perHop
		if hops < 0 {
			hops = 0
		}
		c := msh.Coord(p.TileOfSlot(m[j]))
		out[c.Row][c.Col] += power.EstimateEnergy(pw, hops)
	}
	return out
}

func (r *ParetoResult) doc() *Doc {
	d := newDoc()
	for _, pc := range r.Configs {
		t := newTable(fmt.Sprintf("Pareto front, %s — %s over %s (knee marked *)", pc.Config, r.Mapper, r.Objectives),
			"member", "max-APL", "dev-APL", "energy(pJ)", "g-APL", "knee")
		for i, row := range pc.Rows {
			mark := ""
			if row.Knee {
				mark = "*"
			}
			t.addRow(fmt.Sprint(i+1),
				fmt.Sprintf("%.2f", row.MaxAPL),
				fmt.Sprintf("%.3f", row.DevAPL),
				fmt.Sprintf("%.1f", row.EnergyPJ),
				fmt.Sprintf("%.2f", row.GlobalAPL),
				mark)
		}
		d.add(t)
		d.notef("  front size %d, hypervolume %.4g (ref = componentwise max x 1.05)\n\n", len(pc.Rows), pc.Hypervolume)
		d.renderOnly(&Grid{Title: fmt.Sprintf("Knee mapping of %s (cell = application ID)", pc.Config), Cells: pc.KneeGrid})
		d.renderOnly(Note("\n"))
		d.renderOnly(&Heatmap{Title: fmt.Sprintf("Knee per-tile NoC energy of %s (darker = more pJ)", pc.Config), Values: pc.KneeEnergy, Unit: "pJ"})
		d.renderOnly(Note("\n"))
	}
	d.renderOnly(Note("(each row is one non-dominated mapping of the front: no member improves\n" +
		" any column without losing another — the latency/balance/energy trade-off\n" +
		" the scalar objectives collapse; the knee is the normalized-L2-closest\n" +
		" member to the front's ideal point)\n"))
	return d
}

// Render implements Result.
func (r *ParetoResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *ParetoResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *ParetoResult) JSON() ([]byte, error) { return r.doc().JSON() }
