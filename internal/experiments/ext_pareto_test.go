package experiments

import (
	"context"
	"testing"

	"obm/internal/scenario"
)

// TestParetoFrontShape pins the acceptance shape of the pareto
// experiment: every configuration yields a front of at least three
// mutually non-dominated mappings over {max-APL, dev-APL, energy},
// with exactly one knee and a positive hypervolume.
func TestParetoFrontShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs NSGA-II; skip under -short")
	}
	res, err := extPareto{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	pr := res.(*ParetoResult)
	if pr.Objectives != "vec(max-APL,dev-APL,energy)" {
		t.Errorf("objectives = %q", pr.Objectives)
	}
	if len(pr.Configs) != 2 {
		t.Fatalf("configs = %d, want 2", len(pr.Configs))
	}
	for _, pc := range pr.Configs {
		if len(pc.Rows) < 3 {
			t.Errorf("%s front has %d members, want >= 3", pc.Config, len(pc.Rows))
		}
		knees := 0
		for _, row := range pc.Rows {
			if row.Knee {
				knees++
			}
			if row.MaxAPL <= 0 || row.EnergyPJ <= 0 {
				t.Errorf("%s has non-positive costs: %+v", pc.Config, row)
			}
		}
		if knees != 1 {
			t.Errorf("%s has %d knees, want exactly 1", pc.Config, knees)
		}
		if pc.Hypervolume <= 0 {
			t.Errorf("%s hypervolume = %v, want > 0", pc.Config, pc.Hypervolume)
		}
		if len(pc.KneeGrid) != 8 || len(pc.KneeEnergy) != 8 {
			t.Errorf("%s knee fields not 8x8", pc.Config)
		}
	}
}

// TestParetoWorkersInvariant: the front (and therefore the whole
// render) is bit-identical whatever -workers setting the run uses —
// NSGA-II is strictly sequential, so this holds structurally. Each run
// gets a fresh shared cache so the second cannot trivially replay the
// first's artifact.
func TestParetoWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs NSGA-II; skip under -short")
	}
	t.Cleanup(func() { scenario.ResetShared() })
	renders := make([]string, 2)
	for i, workers := range []int{0, 4} {
		scenario.ResetShared()
		o := quickOpts()
		o.Workers = workers
		res, err := extPareto{}.Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		renders[i] = res.Render()
	}
	if renders[0] != renders[1] {
		t.Error("pareto render differs across -workers settings")
	}
}

// TestParetoUsesSharedCache: fronts route through the shared artifact
// store — one compute per configuration cold, zero on a warm re-run
// with identical output.
func TestParetoUsesSharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs NSGA-II; skip under -short")
	}
	scenario.ResetShared()
	t.Cleanup(func() { scenario.ResetShared() })
	cold, err := extPareto{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := scenario.Shared().StoreStats()
	if st.Computed != 2 {
		t.Fatalf("cold run computed %d artifacts, want 2 (one per config)", st.Computed)
	}
	warm, err := extPareto{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	st = scenario.Shared().StoreStats()
	if st.Computed != 2 || st.MemHits != 2 {
		t.Errorf("warm run stats = %+v, want 2 computed, 2 memory hits", st)
	}
	if cold.Render() != warm.Render() {
		t.Error("warm render differs from cold")
	}
}
