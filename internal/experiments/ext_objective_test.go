package experiments

import (
	"context"
	"strings"
	"testing"

	"obm/internal/core"
)

// TestObjectiveGridShape pins the grid's structure: every configuration
// carries one cell per (optimizing mapper, objective) pair.
func TestObjectiveGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mappers under every objective; skip under -short")
	}
	r, err := Get("objective")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	or, ok := res.(*ObjectiveResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	wantCells := 3 * len(core.Objectives())
	for _, g := range or.Configs {
		if len(g.Cells) != wantCells {
			t.Errorf("%s: %d cells, want %d", g.Config, len(g.Cells), wantCells)
		}
	}
	if !strings.Contains(res.Render(), "dev-APL") {
		t.Error("render misses objective rows")
	}
}

// TestObjectiveGridOwnMetricWins is the experiment's acceptance
// property: at least one non-default objective must strictly beat the
// max-APL-optimized mapping of the same mapper under its own metric —
// the whole point of making objectives pluggable rather than reading
// alternative metrics off the max-APL optimum.
func TestObjectiveGridOwnMetricWins(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mappers under every objective; skip under -short")
	}
	r, err := Get("objective")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	or := res.(*ObjectiveResult)
	wins := 0
	for _, g := range or.Configs {
		for _, mapper := range []string{"MC", "SA", "SSS"} {
			for _, obj := range core.Objectives()[1:] {
				if gain, ok := or.OwnMetricGain(g.Config, mapper, obj.Name()); ok && gain > 0 {
					wins++
				}
			}
		}
	}
	if wins == 0 {
		t.Error("no non-default objective beat the max-APL optimum under its own metric")
	}
}
