package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func init() { register(fig5{}) }

// fig5 reproduces the Figure 5 worked example of Section III.A: on a
// 4x4 mesh with four 4-thread applications (cache rates 0.1..0.4,
// td_r=3, td_w=1, td_s=1), the mapping that minimizes the max-APL gives
// every application 10.3375 cycles, while a mapping that is optimal
// under the standard-deviation or min-to-max metrics can leave every
// application equally bad at 11.5375 cycles.
type fig5 struct{}

func (fig5) ID() string    { return "fig5" }
func (fig5) Title() string { return "Figure 5: comparison of balance metrics on the worked example" }

// Fig5Result holds both mappings' metrics.
type Fig5Result struct {
	GoodAPL, BadAPL         float64
	GoodDev, BadDev         float64
	GoodRatio, BadRatio     float64
	SSSMaxAPL, GlobalMaxAPL float64
}

func (f fig5) Run(ctx context.Context, o Options) (Result, error) {
	lm, err := model.New(mesh.MustNew(4, 4), model.Figure5Params())
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(lm, workload.Figure5Workload())
	if err != nil {
		return nil, err
	}
	msh := lm.Mesh()

	// Figure 5a: each application occupies one quadrant, heaviest thread
	// on the quadrant's center-most tile.
	good := make(core.Mapping, 16)
	quadrants := [][2]int{{0, 0}, {0, 2}, {2, 0}, {2, 2}}
	for a, q := range quadrants {
		r0, c0 := q[0], q[1]
		outerR, outerC := r0, c0 // corner-most cell of the quadrant
		innerR, innerC := r0+1, c0+1
		if r0 == 2 {
			outerR, innerR = r0+1, r0
		}
		if c0 == 2 {
			outerC, innerC = c0+1, c0
		}
		good[a*4+0] = msh.TileAt(outerR, outerC) // rate 0.1 on the corner
		good[a*4+1] = msh.TileAt(outerR, innerC) // 0.2 on an edge
		good[a*4+2] = msh.TileAt(innerR, outerC) // 0.3 on an edge
		good[a*4+3] = msh.TileAt(innerR, innerC) // 0.4 on the center
	}
	if err := good.Validate(16); err != nil {
		return nil, err
	}
	// Figure 5b: reverse each application's thread order — equal APLs,
	// but equally bad.
	bad := make(core.Mapping, 16)
	for a := 0; a < 4; a++ {
		for x := 0; x < 4; x++ {
			bad[a*4+x] = good[a*4+(3-x)]
		}
	}
	evGood := p.Evaluate(good)
	evBad := p.Evaluate(bad)

	res := &Fig5Result{
		GoodAPL: evGood.MaxAPL, BadAPL: evBad.MaxAPL,
		GoodDev: evGood.DevAPL, BadDev: evBad.DevAPL,
		GoodRatio: evGood.MinMaxRatio, BadRatio: evBad.MinMaxRatio,
	}
	// Cross-check: SSS should find the good solution's objective value;
	// Global is optimal for g-APL which here coincides with it.
	_, sev, err := mapEval(ctx, p, mapping.SortSelectSwap{})
	if err != nil {
		return nil, err
	}
	res.SSSMaxAPL = sev.MaxAPL
	_, gev, err := mapEval(ctx, p, mapping.Global{})
	if err != nil {
		return nil, err
	}
	res.GlobalMaxAPL = gev.MaxAPL
	return res, nil
}

func (r *Fig5Result) doc() *Doc {
	d := newDoc()
	rt := newTable("Figure 5: two mappings both 'perfectly balanced' under dev/min-max metrics",
		"Mapping", "APL (cycles)", "dev-APL", "min/max ratio")
	rt.addRow("(a) optimal", fmt.Sprintf("%.4f", r.GoodAPL), fmt.Sprintf("%.4f", r.GoodDev), fmt.Sprintf("%.4f", r.GoodRatio))
	rt.addRow("(b) equally bad", fmt.Sprintf("%.4f", r.BadAPL), fmt.Sprintf("%.4f", r.BadDev), fmt.Sprintf("%.4f", r.BadRatio))
	d.renderOnly(rt)
	d.notef("\npaper values: 10.3375 vs 11.5375 cycles; both have dev 0 and ratio 1,\n"+
		"so only the max-APL objective separates them.\n"+
		"sort-select-swap achieves max-APL %.4f on this instance (Global: %.4f).\n",
		r.SSSMaxAPL, r.GlobalMaxAPL)
	ct := newTable("", "mapping", "apl", "dev", "ratio")
	ct.addRow("optimal", fmt.Sprintf("%.4f", r.GoodAPL), fmt.Sprintf("%.4f", r.GoodDev), fmt.Sprintf("%.4f", r.GoodRatio))
	ct.addRow("equally-bad", fmt.Sprintf("%.4f", r.BadAPL), fmt.Sprintf("%.4f", r.BadDev), fmt.Sprintf("%.4f", r.BadRatio))
	d.csvOnly(ct)
	return d
}

// Render implements Result.
func (r *Fig5Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Fig5Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Fig5Result) JSON() ([]byte, error) { return r.doc().JSON() }
