package experiments

import (
	"fmt"

	"obm/internal/viz"
)

// Figurer is implemented by results that can render themselves as SVG
// figures; the map key becomes the file stem (e.g. "fig3a" →
// fig3a.svg). cmd/obmsim writes these when -svgdir is set.
type Figurer interface {
	SVGFigures() map[string][]byte
}

// SVGFigures implements Figurer for the Figure 3 heatmaps.
func (r *Fig3Result) SVGFigures() map[string][]byte {
	return map[string][]byte{
		"fig3a-cache-latency":  viz.Heatmap("L2 cache access latency TC(k), cycles", r.TC),
		"fig3b-memory-latency": viz.Heatmap("Memory-controller access latency TM(k), cycles", r.TM),
	}
}

// SVGFigures implements Figurer for mapping grids (Figure 4).
func (r *FigMappingResult) SVGFigures() map[string][]byte {
	return map[string][]byte{
		"fig4-global-mapping": viz.Grid("Global mapping of C1 (application IDs)", r.Grid),
	}
}

// SVGFigures implements Figurer for Figure 8: the SSS grid plus the
// per-application APL bars.
func (r *Fig8Result) SVGFigures() map[string][]byte {
	apps := make([]string, len(r.SSSAPLs))
	for i := range apps {
		apps[i] = fmt.Sprintf("app %d", i+1)
	}
	return map[string][]byte{
		"fig8a-sss-mapping": viz.Grid("SSS mapping of C1 (application IDs)", r.Grid),
		"fig8b-apl-comparison": viz.Bars("Per-application APL on C1",
			apps, []string{"Global", "SSS"},
			[][]float64{r.GlobalAPLs, r.SSSAPLs}, "cycles"),
	}
}

// SVGFigures implements Figurer for the grouped-bar series experiments
// (Figures 9, 10, 11).
func (r *MapperSeries) SVGFigures() map[string][]byte {
	values := r.Values
	if r.Normalized {
		values = make([][]float64, len(r.Values))
		for mi := range r.Values {
			values[mi] = make([]float64, len(r.Values[mi]))
			for ci := range r.Values[mi] {
				if r.Values[0][ci] != 0 {
					values[mi][ci] = r.Values[mi][ci] / r.Values[0][ci]
				}
			}
		}
	}
	return map[string][]byte{
		slugify(r.Caption): viz.Bars(r.Caption, r.Configs, r.Mappers, values, r.Unit),
	}
}

// SVGFigures implements Figurer for Figure 12.
func (r *Fig12Result) SVGFigures() map[string][]byte {
	sss := make([]float64, len(r.Multipliers))
	for i := range sss {
		sss[i] = r.SSSMaxAPL
	}
	return map[string][]byte{
		"fig12-sa-vs-runtime": viz.Lines("SA quality vs runtime budget",
			"SA runtime (x SSS, log-ish spacing)", "max-APL (cycles)",
			r.Multipliers, []string{"SA", "SSS"},
			map[string][]float64{"SA": r.SAMaxAPL, "SSS": sss}),
	}
}

// SVGFigures implements Figurer for the load sweep.
func (r *LoadSweepResult) SVGFigures() map[string][]byte {
	if len(r.Points) == 0 {
		return nil
	}
	xs := make([]float64, len(r.Points[0]))
	for i, pt := range r.Points[0] {
		xs[i] = pt.InjectionRate
	}
	series := map[string][]float64{}
	for pi, name := range r.Patterns {
		ys := make([]float64, len(r.Points[pi]))
		for i, pt := range r.Points[pi] {
			ys[i] = pt.AvgLatency
		}
		series[name] = ys
	}
	return map[string][]byte{
		"loadsweep-latency": viz.Lines("Latency vs offered load",
			"packets/tile/cycle", "avg latency (cycles)", xs, r.Patterns, series),
	}
}

// slugify turns a caption into a safe file stem.
func slugify(s string) string {
	out := make([]rune, 0, len(s))
	lastDash := true
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
			lastDash = false
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
			lastDash = false
		default:
			if !lastDash {
				out = append(out, '-')
				lastDash = true
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	if len(out) > 48 {
		out = out[:48]
	}
	return string(out)
}
