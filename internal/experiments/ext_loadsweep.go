package experiments

import (
	"context"
	"fmt"

	"obm/internal/mesh"
	"obm/internal/noc"
	"obm/internal/sim"
)

func init() { register(extLoadSweep{}) }

// extLoadSweep is a substrate-validation experiment: the classic
// latency-vs-offered-load characterization of the flit-level simulator
// under standard synthetic traffic patterns. It certifies the Garnet
// substitute behaves like an interconnect: zero-load latency at light
// loads, graceful rise, saturation under adversarial patterns.
type extLoadSweep struct{}

func (extLoadSweep) ID() string { return "loadsweep" }
func (extLoadSweep) Title() string {
	return "Extension: NoC latency/throughput vs offered load (simulator validation)"
}

// LoadSweepResult holds curves per pattern.
type LoadSweepResult struct {
	Patterns []string
	ZeroLoad []float64
	// Points[p] is the sweep for pattern p.
	Points [][]noc.LoadPoint
}

func (e extLoadSweep) Run(ctx context.Context, o Options) (Result, error) {
	cfg := noc.DefaultConfig()
	sw := noc.DefaultSweepConfig()
	sw.Seed = o.Seed + 41
	if o.Quick {
		sw.Rates = []float64{0.01, 0.04, 0.12}
		sw.Cycles = 8_000
	}
	// The hotspot sits on the center-most tile of whatever mesh the
	// sweep config describes (tile 27 on the default 8x8).
	hot := mesh.Tile(((cfg.Rows-1)/2)*cfg.Cols + (cfg.Cols-1)/2)
	pats := []noc.Pattern{
		noc.UniformRandom{},
		noc.Transpose{},
		noc.BitComplement{},
		noc.Hotspot{Hot: hot, Frac: 0.2},
	}
	// Every (pattern, rate) point is an independent deterministic
	// simulation (noc.MeasureLoadPoint), so flatten the grid into one
	// job list and shard it across cores; reassembling by index keeps
	// the curves identical to the serial sweep.
	type job struct{ pi, ri int }
	var jobs []job
	for pi := range pats {
		for ri := range sw.Rates {
			jobs = append(jobs, job{pi, ri})
		}
	}
	pts, err := sim.RunReplicas(ctx, len(jobs), 0, func(ctx context.Context, i int) (noc.LoadPoint, error) {
		j := jobs[i]
		return noc.MeasureLoadPoint(cfg, pats[j.pi], sw.Rates[j.ri], sw)
	})
	if err != nil {
		return nil, err
	}
	res := &LoadSweepResult{}
	for pi, pat := range pats {
		zl, err := noc.ZeroLoadLatency(cfg, pat, 200_000, sw.Seed)
		if err != nil {
			return nil, err
		}
		res.Patterns = append(res.Patterns, pat.Name())
		res.ZeroLoad = append(res.ZeroLoad, zl)
		res.Points = append(res.Points, pts[pi*len(sw.Rates):(pi+1)*len(sw.Rates)])
	}
	return res, nil
}

func (r *LoadSweepResult) table() *Table {
	t := newTable("NoC load sweep: avg latency (cycles) by offered load (packets/tile/cycle)",
		"Pattern", "zero-load", "rate", "latency", "throughput", "saturated")
	for pi, name := range r.Patterns {
		for _, pt := range r.Points[pi] {
			t.addRow(name,
				fmt.Sprintf("%.2f", r.ZeroLoad[pi]),
				fmt.Sprintf("%.3f", pt.InjectionRate),
				fmt.Sprintf("%.2f", pt.AvgLatency),
				fmt.Sprintf("%.4f", pt.Throughput),
				fmt.Sprint(pt.Saturated))
		}
	}
	return t
}

func (r *LoadSweepResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(latency hugs the zero-load bound at light loads and rises toward\n" +
			" saturation; adversarial patterns saturate earlier than uniform)\n"))
}

// Render implements Result.
func (r *LoadSweepResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *LoadSweepResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *LoadSweepResult) JSON() ([]byte, error) { return r.doc().JSON() }
