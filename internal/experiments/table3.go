package experiments

import (
	"context"
	"fmt"

	"obm/internal/workload"
)

func init() { register(table3{}) }

// table3 reproduces Table 3: the per-configuration traffic statistics
// of the synthetic workloads against the paper's published targets,
// demonstrating the moment-matched substitution for PARSEC traces.
type table3 struct{}

func (table3) ID() string    { return "table3" }
func (table3) Title() string { return "Table 3: configuration rate statistics vs paper targets" }

// Table3Row compares one configuration against its target.
type Table3Row struct {
	Config        string
	Got, Want     workload.RateStats
	CacheMemRatio float64
}

// Table3Result is the whole table.
type Table3Result struct {
	Rows []Table3Row
}

func (t table3) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for _, cfg := range sp.Configs {
		w, err := workload.Config(cfg)
		if err != nil {
			return nil, err
		}
		got := w.ComputeRateStats()
		row := Table3Row{Config: cfg, Got: got, Want: workload.Table3[cfg]}
		if got.Mem.Mean > 0 {
			row.CacheMemRatio = got.Cache.Mean / got.Mem.Mean
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *Table3Result) table() *Table {
	t := newTable("Table 3: communication-rate statistics (generated vs paper)",
		"Config", "cache mean", "(paper)", "cache std", "(paper)", "mem mean", "(paper)", "mem std", "(paper)", "cache:mem")
	for _, row := range r.Rows {
		t.addRow(row.Config,
			fmt.Sprintf("%.3f", row.Got.Cache.Mean), fmt.Sprintf("%.3f", row.Want.Cache.Mean),
			fmt.Sprintf("%.3f", row.Got.Cache.Std), fmt.Sprintf("%.3f", row.Want.Cache.Std),
			fmt.Sprintf("%.3f", row.Got.Mem.Mean), fmt.Sprintf("%.3f", row.Want.Mem.Mean),
			fmt.Sprintf("%.3f", row.Got.Mem.Std), fmt.Sprintf("%.3f", row.Want.Mem.Std),
			fmt.Sprintf("%.2f", row.CacheMemRatio))
	}
	return t
}

func (r *Table3Result) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(paper 'Std-dev' columns read as variances; targets shown are their square roots — see DESIGN.md)\n"))
}

// Render implements Result.
func (r *Table3Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Table3Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Table3Result) JSON() ([]byte, error) { return r.doc().JSON() }
