package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func init() { register(extPlacement{}) }

// extPlacement is an extension experiment: the OBM problem under
// different memory-controller placements. The paper fixes corner
// controllers; TM(k)'s shape changes with placement, which shifts where
// the cache/memory latency tension lands and how much balancing buys.
type extPlacement struct{}

func (extPlacement) ID() string { return "placement" }
func (extPlacement) Title() string {
	return "Extension: latency balance under alternative memory-controller placements"
}

// PlacementRow holds one (placement, config) outcome.
type PlacementRow struct {
	Placement            string
	Config               string
	GlobalMax, GlobalDev float64
	SSSMax, SSSDev       float64
}

// PlacementResult is the sweep.
type PlacementResult struct {
	Rows []PlacementRow
}

func (e extPlacement) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1", "C4")
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	msh := mesh.MustNew(8, 8)
	placements := []model.Placement{
		model.CornersPlacement(msh),
		model.EdgeCentersPlacement(msh),
		model.DiagonalPlacement(msh),
	}
	res := &PlacementResult{}
	for _, pl := range placements {
		lm, err := model.NewWithPlacement(msh, model.DefaultParams(), pl)
		if err != nil {
			return nil, err
		}
		for _, cfg := range cfgs {
			w, err := workload.Config(cfg)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProblem(lm, w)
			if err != nil {
				return nil, err
			}
			_, evG, err := mapEval(ctx, p, mapping.Global{})
			if err != nil {
				return nil, err
			}
			_, evS, err := mapEval(ctx, p, mapping.SortSelectSwap{})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PlacementRow{
				Placement: pl.Name(), Config: cfg,
				GlobalMax: evG.MaxAPL, GlobalDev: evG.DevAPL,
				SSSMax: evS.MaxAPL, SSSDev: evS.DevAPL,
			})
		}
	}
	return res, nil
}

func (r *PlacementResult) table() *Table {
	t := newTable("Balance under memory-controller placements (8x8 mesh)",
		"Placement", "Config", "Global max", "Global dev", "SSS max", "SSS dev")
	for _, row := range r.Rows {
		t.addRow(row.Placement, row.Config,
			fmt.Sprintf("%.2f", row.GlobalMax), fmt.Sprintf("%.3f", row.GlobalDev),
			fmt.Sprintf("%.2f", row.SSSMax), fmt.Sprintf("%.3f", row.SSSDev))
	}
	return t
}

func (r *PlacementResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(SSS balances every placement; the corner arrangement has the strongest\n" +
			" cache/memory location tension, edge-centers the mildest)\n"))
}

// Render implements Result.
func (r *PlacementResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *PlacementResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *PlacementResult) JSON() ([]byte, error) { return r.doc().JSON() }
