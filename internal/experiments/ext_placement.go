package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func init() { register(extPlacement{}) }

// extPlacement is an extension experiment: the OBM problem under
// different memory-controller placements. The paper fixes corner
// controllers; TM(k)'s shape changes with placement, which shifts where
// the cache/memory latency tension lands and how much balancing buys.
type extPlacement struct{}

func (extPlacement) ID() string { return "placement" }
func (extPlacement) Title() string {
	return "Extension: latency balance under alternative memory-controller placements"
}

// PlacementRow holds one (placement, config) outcome.
type PlacementRow struct {
	Placement            string
	Config               string
	GlobalMax, GlobalDev float64
	SSSMax, SSSDev       float64
}

// PlacementResult is the sweep.
type PlacementResult struct {
	Rows []PlacementRow
}

func (e extPlacement) Run(ctx context.Context, o Options) (Result, error) {
	cfgs, err := configsOrDefault(o, []string{"C1", "C4"})
	if err != nil {
		return nil, err
	}
	msh := mesh.MustNew(8, 8)
	placements := []model.Placement{
		model.CornersPlacement(msh),
		model.EdgeCentersPlacement(msh),
		model.DiagonalPlacement(msh),
	}
	res := &PlacementResult{}
	for _, pl := range placements {
		lm, err := model.NewWithPlacement(msh, model.DefaultParams(), pl)
		if err != nil {
			return nil, err
		}
		for _, cfg := range cfgs {
			w, err := workload.Config(cfg)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProblem(lm, w)
			if err != nil {
				return nil, err
			}
			gm, err := mapping.MapAndCheck(ctx, mapping.Global{}, p)
			if err != nil {
				return nil, err
			}
			sm, err := mapping.MapAndCheck(ctx, mapping.SortSelectSwap{}, p)
			if err != nil {
				return nil, err
			}
			evG, evS := p.Evaluate(gm), p.Evaluate(sm)
			res.Rows = append(res.Rows, PlacementRow{
				Placement: pl.Name(), Config: cfg,
				GlobalMax: evG.MaxAPL, GlobalDev: evG.DevAPL,
				SSSMax: evS.MaxAPL, SSSDev: evS.DevAPL,
			})
		}
	}
	return res, nil
}

func (r *PlacementResult) table() *table {
	t := newTable("Balance under memory-controller placements (8x8 mesh)",
		"Placement", "Config", "Global max", "Global dev", "SSS max", "SSS dev")
	for _, row := range r.Rows {
		t.addRow(row.Placement, row.Config,
			fmt.Sprintf("%.2f", row.GlobalMax), fmt.Sprintf("%.3f", row.GlobalDev),
			fmt.Sprintf("%.2f", row.SSSMax), fmt.Sprintf("%.3f", row.SSSDev))
	}
	return t
}

// Render implements Result.
func (r *PlacementResult) Render() string {
	return r.table().Render() +
		"\n(SSS balances every placement; the corner arrangement has the strongest\n" +
		" cache/memory location tension, edge-centers the mildest)\n"
}

// CSV implements Result.
func (r *PlacementResult) CSV() string { return r.table().CSV() }
