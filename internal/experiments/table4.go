package experiments

import (
	"context"
	"fmt"

	"obm/internal/workload"
)

func init() { register(table4{}) }

// table4 reproduces Table 4: the standard deviation of per-application
// APLs (dev-APL) for the four mapping algorithms on each configuration,
// with SA budgeted to runtime comparable to SSS (Section V.B.3).
type table4 struct{}

func (table4) ID() string    { return "table4" }
func (table4) Title() string { return "Table 4: dev-APL of Global/MC/SA/SSS across configurations" }

// Table4Result holds dev-APL per (mapper, config).
type Table4Result struct {
	Configs []string
	Mappers []string
	// Dev[m][c] is the dev-APL of mapper m on config c.
	Dev [][]float64
}

func (t table4) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	mappers := sp.StandardMappers()
	res := &Table4Result{Configs: cfgs}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	res.Dev = make([][]float64, len(mappers))
	for mi := range mappers {
		res.Dev[mi] = make([]float64, len(cfgs))
	}
	err = parallelConfigs(ctx, cfgs, func(ci int, cfg string) error {
		p, err := problemFor(cfg)
		if err != nil {
			return err
		}
		for mi, m := range mappers {
			_, ev, err := mapEval(ctx, p, m)
			if err != nil {
				return err
			}
			res.Dev[mi][ci] = ev.DevAPL
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// avg returns mapper mi's mean dev-APL.
func (r *Table4Result) avg(mi int) float64 {
	var s float64
	for _, v := range r.Dev[mi] {
		s += v
	}
	return s / float64(len(r.Dev[mi]))
}

func (r *Table4Result) table() *Table {
	headers := append([]string{"Mapper"}, r.Configs...)
	headers = append(headers, "Avg")
	t := newTable("Table 4: dev-APL for different configurations", headers...)
	for mi, name := range r.Mappers {
		cells := []string{name}
		for _, v := range r.Dev[mi] {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		cells = append(cells, fmt.Sprintf("%.3f", r.avg(mi)))
		t.addRow(cells...)
	}
	return t
}

func (r *Table4Result) doc() *Doc {
	d := newDoc().add(r.table())
	// Reduction of SSS vs the others (the paper reports 99.65%, 95.45%,
	// 83.15% vs Global, MC, SA).
	sssIdx := -1
	for i, n := range r.Mappers {
		if n == "SSS" {
			sssIdx = i
		}
	}
	if sssIdx >= 0 {
		sss := r.avg(sssIdx)
		for i, n := range r.Mappers {
			if i == sssIdx {
				continue
			}
			if a := r.avg(i); a > 0 {
				d.notef("SSS reduces dev-APL vs %s by %.2f%%\n", n, 100*(1-sss/a))
			}
		}
		d.renderOnly(Note("(paper: 99.65% vs Global, 95.45% vs MC, 83.15% vs SA)\n"))
	}
	return d
}

// Render implements Result.
func (r *Table4Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Table4Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Table4Result) JSON() ([]byte, error) { return r.doc().JSON() }
