package experiments

import (
	"context"
	"testing"

	"obm/internal/scenario"
)

// TestTimingRunnersBypass enforces the store policy for the runners
// whose tables report mapper wall time: every mapper invocation goes
// through the explicit bypass (counted, never cached), and none
// touches a store tier — a cached lookup would make the runtime
// columns measure the cache instead of the mapper.
func TestTimingRunnersBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real mappers; skip under -short")
	}
	for _, id := range []string{"ablation", "scaling"} {
		t.Run(id, func(t *testing.T) {
			scenario.ResetShared()
			t.Cleanup(func() { scenario.ResetShared() })
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Run(context.Background(), quickOpts()); err != nil {
				t.Fatal(err)
			}
			st := scenario.Shared().StoreStats()
			if st.Bypass == 0 {
				t.Fatalf("%s made no bypass requests; timing loop not routed through mapEvalUncached?", id)
			}
			if st.Computed != 0 || st.MemHits != 0 || st.DiskHits != 0 {
				t.Errorf("%s touched the store: %+v, want bypass-only traffic", id, st)
			}
			if n := scenario.Shared().Len(); n != 0 {
				t.Errorf("%s populated the memory tier with %d artifacts", id, n)
			}
		})
	}
}

// TestCachedRunnersNeverBypass is the inverse policy: a paper-table
// runner must never route around the store (its mapper work would stop
// deduplicating across experiments).
func TestCachedRunnersNeverBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real mappers; skip under -short")
	}
	scenario.ResetShared()
	t.Cleanup(func() { scenario.ResetShared() })
	r, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), quickOpts()); err != nil {
		t.Fatal(err)
	}
	st := scenario.Shared().StoreStats()
	if st.Bypass != 0 {
		t.Errorf("table1 bypassed the store %d times", st.Bypass)
	}
	if st.Computed == 0 {
		t.Error("table1 computed nothing through the store")
	}
}

// TestOptionsSpecThreadsCacheKnobs: the cache knobs ride Options into
// scenario.Spec verbatim, so run manifests record them.
func TestOptionsSpecThreadsCacheKnobs(t *testing.T) {
	o := Options{Quick: true, CacheDir: "/tmp/artifacts", CacheSize: 123}
	sp, err := o.Spec("C1")
	if err != nil {
		t.Fatal(err)
	}
	if sp.CacheDir != o.CacheDir || sp.CacheSizeBytes != o.CacheSize {
		t.Errorf("Spec dropped cache knobs: %+v", sp)
	}
}
