package experiments

import (
	"context"
	"obm/internal/workload"
)

func init() { register(fig10{}) }

// fig10 reproduces Figure 10: global APL of the four methods,
// normalized to Global (which is optimal for this metric by
// construction). The paper reports all three balancing methods within
// 6% of Global, SSS best at <3.82%.
type fig10 struct{}

func (fig10) ID() string    { return "fig10" }
func (fig10) Title() string { return "Figure 10: normalized global APL of the four mapping methods" }

func (f fig10) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	mappers := sp.StandardMappers()
	res := &MapperSeries{
		Caption:    "Figure 10: g-APL normalized to Global",
		Configs:    cfgs,
		Unit:       "normalized",
		Normalized: true,
		PaperNote:  "paper: SSS loses <3.82% g-APL vs Global; SA 4.82%, MC 5.35%",
	}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	res.Values = make([][]float64, len(mappers))
	for mi := range mappers {
		res.Values[mi] = make([]float64, len(cfgs))
	}
	err = parallelConfigs(ctx, cfgs, func(ci int, cfg string) error {
		p, err := problemFor(cfg)
		if err != nil {
			return err
		}
		for mi, m := range mappers {
			_, ev, err := mapEval(ctx, p, m)
			if err != nil {
				return err
			}
			res.Values[mi][ci] = ev.GlobalAPL
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
