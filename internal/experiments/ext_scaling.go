package experiments

import (
	"context"
	"fmt"
	"time"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func init() { register(extScaling{}) }

// extScaling is an extension experiment: SSS and Global across mesh
// sizes (the paper evaluates only 8x8), reporting balance and the
// O(N^3) runtime growth that underpins the dynamic-remapping argument.
type extScaling struct{}

func (extScaling) ID() string { return "scaling" }
func (extScaling) Title() string {
	return "Extension: balance and runtime scaling with mesh size"
}

// ScalingRow is one mesh size's outcome.
type ScalingRow struct {
	N                    int // mesh dimension (NxN)
	GlobalMax, GlobalDev float64
	SSSMax, SSSDev       float64
	LowerBound           float64
	SSSRuntime           time.Duration
}

// ScalingResult is the sweep.
type ScalingResult struct {
	Rows []ScalingRow
}

func (s extScaling) Run(ctx context.Context, o Options) (Result, error) {
	sizes := []int{4, 6, 8, 10, 12, 16}
	if o.Quick {
		sizes = []int{4, 8, 12}
	}
	res := &ScalingResult{}
	for _, n := range sizes {
		lm, err := model.New(mesh.MustNew(n, n), model.DefaultParams())
		if err != nil {
			return nil, err
		}
		tiles := n * n
		apps := 4
		w, err := workload.Generate(workload.GenSpec{
			Name:       fmt.Sprintf("scale%d", n),
			NumApps:    apps,
			ThreadsPer: tiles / apps,
			Cache:      workload.Stats{Mean: 8, Std: 10},
			Mem:        workload.Stats{Mean: 1.2, Std: 3},
			Seed:       o.Seed + uint64(n),
		})
		if err != nil {
			return nil, err
		}
		if err := w.PadTo(tiles); err != nil {
			return nil, err
		}
		p, err := core.NewProblem(lm, w)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{N: n}
		// Both calls use the explicit store bypass: the SSS runtime
		// column must time real mapper work (test-enforced by
		// TestTimingRunnersBypass).
		_, evG, err := mapEvalUncached(ctx, p, mapping.Global{})
		if err != nil {
			return nil, err
		}
		row.GlobalMax, row.GlobalDev = evG.MaxAPL, evG.DevAPL
		start := time.Now()
		_, evS, err := mapEvalUncached(ctx, p, mapping.SortSelectSwap{})
		if err != nil {
			return nil, err
		}
		row.SSSRuntime = time.Since(start)
		row.SSSMax, row.SSSDev = evS.MaxAPL, evS.DevAPL
		if row.LowerBound, err = p.LowerBound(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *ScalingResult) table() *Table {
	t := newTable("Scaling with mesh size (4 applications, synthetic rates)",
		"Mesh", "Global max/dev", "SSS max/dev", "LB", "SSS gap %", "SSS runtime")
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%dx%d", row.N, row.N),
			fmt.Sprintf("%.2f / %.3f", row.GlobalMax, row.GlobalDev),
			fmt.Sprintf("%.2f / %.3f", row.SSSMax, row.SSSDev),
			fmt.Sprintf("%.2f", row.LowerBound),
			fmt.Sprintf("%.2f", 100*(row.SSSMax-row.LowerBound)/row.LowerBound),
			row.SSSRuntime.Round(100*time.Microsecond).String())
	}
	return t
}

func (r *ScalingResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(balance holds at every size; runtime grows with the O(N^3) bound,\n" +
			" staying in remap-at-runtime territory through 256 tiles)\n"))
}

// Render implements Result.
func (r *ScalingResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *ScalingResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *ScalingResult) JSON() ([]byte, error) { return r.doc().JSON() }
