// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) from this repository's substrates. Each
// experiment is a named Runner producing a typed result that renders as
// a paper-style ASCII table or grid and exports CSV. DESIGN.md's
// per-experiment index maps experiment IDs to these runners;
// EXPERIMENTS.md records paper-vs-measured numbers.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/scenario"
	"obm/internal/sched"
	"obm/internal/workload"
)

// Options tunes experiment cost and seeding.
type Options struct {
	// Quick trades sample counts for speed (used by CI and -short
	// tests); headline shapes survive, error bars grow.
	Quick bool
	// Seed offsets every stochastic component deterministically.
	Seed uint64
	// Configs restricts which of C1..C8 run; nil means the experiment's
	// paper-default set.
	Configs []string
	// Objective selects the cost the optimizing mappers minimize; nil
	// keeps the paper's max-APL everywhere.
	Objective core.Objective
	// Workers is the execution-shape knob threaded through every layer
	// that can shard work: the parallel mappers (Monte-Carlo chunking,
	// annealing restart portfolios) and the NoC simulator's intra-step
	// engine. 0 keeps every serial default, negative selects GOMAXPROCS.
	// Simulator statistics are bit-identical for any setting; mapper
	// fingerprints (and therefore artifact cache keys and golden
	// outputs) never include it.
	Workers int
	// CacheDir roots the persistent disk tier of the shared artifact
	// store ("" keeps it memory-only). The option is recorded and
	// threaded into scenario.Spec for run manifests; attaching the tier
	// to the process-wide store is the host's job (cmd/obmsim does it
	// from -cachedir before running). Execution-shape only: it never
	// reaches a fingerprint, an artifact key, or a result.
	CacheDir string
	// CacheSize bounds the disk tier in bytes (LRU-evicted); <= 0
	// means unbounded. Execution-shape only, like CacheDir.
	CacheSize int64
	// Stream overrides the dynstream experiment's timeline generator:
	// a comma-separated key=value list over sched.GenConfig's load
	// shape (load, gap, minthreads, maxthreads, appsigma, threadsigma),
	// e.g. "load=0.8,maxthreads=24". "" keeps the documented defaults.
	// Only experiments that generate timelines read it.
	Stream string
}

// Validate fails fast on malformed options — in particular an unknown
// configuration name, which would otherwise surface as a confusing
// workload error deep inside a runner. Callers (cmd/obmsim, the
// runners themselves via configsOrDefault) check it before doing any
// work.
func (o Options) Validate() error {
	names := workload.ConfigNames()
	valid := make(map[string]bool, len(names))
	for _, n := range names {
		valid[n] = true
	}
	for _, c := range o.Configs {
		if !valid[c] {
			return fmt.Errorf("experiments: unknown config %q (valid: %s)", c, strings.Join(names, ", "))
		}
	}
	// Parse (not apply) the stream override spec, so a typo exits 2 up
	// front instead of failing deep inside the dynstream runner.
	if _, err := (sched.GenConfig{}).WithOverrides(o.Stream); err != nil {
		return err
	}
	return nil
}

// Spec resolves the options into a declarative scenario.Spec: the
// configuration list (def when o.Configs is empty), the quick or full
// budgets, and the base seed. It fails fast on unknown configuration
// names. Every runner starts by calling this.
func (o Options) Spec(def ...string) (scenario.Spec, error) {
	cfgs, err := configsOrDefault(o, def)
	if err != nil {
		return scenario.Spec{}, err
	}
	return scenario.Spec{Configs: cfgs, Budget: scenario.DefaultBudget(o.Quick), Seed: o.Seed, Objective: o.Objective, Workers: o.Workers,
		CacheDir: o.CacheDir, CacheSizeBytes: o.CacheSize}, nil
}

// Result is what every experiment returns.
type Result interface {
	// Render returns the paper-style human-readable form.
	Render() string
	// CSV returns a machine-readable form (header row first).
	CSV() string
	// JSON returns the machine-readable Document form (schema
	// SchemaVersion), derived from the same typed blocks as Render and
	// CSV.
	JSON() ([]byte, error)
}

// Runner regenerates one table or figure.
type Runner interface {
	// ID is the registry key, e.g. "table1" or "fig9".
	ID() string
	// Title describes the experiment.
	Title() string
	// Run executes it. ctx carries cancellation, a deadline, and
	// optionally an engine progress sink; runners (and the mappers and
	// simulations below them) poll it and return a ctx.Err()-wrapped
	// error when interrupted. The context never influences results: an
	// uncancelled run is bit-identical whatever ctx carries.
	Run(ctx context.Context, o Options) (Result, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.ID()]; dup {
		panic("experiments: duplicate ID " + r.ID())
	}
	registry[r.ID()] = r
}

// Get returns the runner for id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r, nil
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all runners in ID order.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// paperModel returns the 8x8 default-parameter latency model.
func paperModel() *model.LatencyModel {
	return model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
}

// problemFor builds the OBM problem for one paper configuration.
func problemFor(cfg string) (*core.Problem, error) {
	w, err := workload.Config(cfg)
	if err != nil {
		return nil, err
	}
	return core.NewProblem(paperModel(), w)
}

// configsOrDefault resolves the option's config list, failing fast on
// unknown configuration names.
func configsOrDefault(o Options, def []string) ([]string, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(o.Configs) > 0 {
		return o.Configs, nil
	}
	return def, nil
}

// mapEval runs mapper m on p through the process-wide artifact store:
// each distinct work unit is computed once per run (once per machine
// with a disk tier attached) and shared by every experiment that asks
// for it; hits surface as skipped stages on the progress sink.
func mapEval(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	return scenario.Shared().MapEval(ctx, p, m)
}

// mapEvalSet is the set-valued twin of mapEval: it runs set-mapper sm
// through the same process-wide artifact store, keyed by the vector
// objective's fingerprint, so Pareto fronts are computed once per run
// (once per machine with a disk tier) and hits surface as skipped
// stages exactly like scalar artifacts. Never call mapping.MapSet
// directly from a runner.
func mapEvalSet(ctx context.Context, p *core.Problem, sm mapping.SetMapper) (core.ParetoSet, error) {
	return scenario.Shared().MapEvalSet(ctx, p, sm)
}

// mapEvalUncached is the explicit no-cache path for runners that
// measure mapper wall time (ext_ablation, ext_scaling): the mapper
// always runs for real, nothing is read from or written to either
// store tier, and the bypass is counted so TestTimingRunnersBypass can
// enforce the policy — a future runner can neither silently reuse the
// cache (its timings would measure lookups) nor silently skip the
// store (its traffic would be invisible). Never call
// mapping.MapAndCheck directly from a runner.
func mapEvalUncached(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	return scenario.Shared().MapEvalUncached(ctx, p, m)
}

// parallelConfigs runs fn once per configuration concurrently — each
// builds its own Problem, so the fan-out is share-nothing — and joins
// any errors. Callers write results into per-index slots, keeping the
// output identical to the serial loop. fn closures are expected to
// poll ctx (via the mappers and simulations they call); when the
// context fires, the joined error includes its ctx.Err() so callers
// see the batch was interrupted rather than individually failed.
func parallelConfigs(ctx context.Context, cfgs []string, fn func(ci int, cfg string) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiments: interrupted before configs ran: %w", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cfgs), len(cfgs)+1)
	for ci, cfg := range cfgs {
		wg.Add(1)
		go func(ci int, cfg string) {
			defer wg.Done()
			// A panic on a fan-out goroutine would kill the process
			// before the engine runner's job-level recover could see it;
			// convert it here so it surfaces as this config's error (the
			// stack is preserved) and the sibling configs still finish.
			defer func() {
				if r := recover(); r != nil {
					errs[ci] = fmt.Errorf("experiments: config %s panicked: %v\n%s", cfg, r, debug.Stack())
				}
			}()
			errs[ci] = fn(ci, cfg)
		}(ci, cfg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, fmt.Errorf("experiments: config batch interrupted: %w", err))
	}
	return errors.Join(errs...)
}

// shortName maps mapper names to the paper's labels.
func shortName(m mapping.Mapper) string {
	n := m.Name()
	switch {
	case strings.HasPrefix(n, "MC"):
		return "MC"
	case strings.HasPrefix(n, "SA"):
		return "SA"
	default:
		return n
	}
}
